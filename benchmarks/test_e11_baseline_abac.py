"""E11 (baseline) — SACK vs the ABAC-in-LSM baseline (Varshith et al.).

The paper's related work positions kernel ABAC as the closest prior art
and criticises it on two axes: (i) environmental attributes limited to
clock-derived ones (no crashes, no driving situations), and (ii)
per-access attribute evaluation.  This benchmark quantifies (ii): the
per-access check cost of an attribute-rule walk vs SACK's precompiled
current-state ruleset, as the policy grows.
"""

import pytest

from repro.bench import run_baseline_comparison

RULE_COUNTS = (10, 100, 500)


def test_per_access_cost_comparison(benchmark, show):
    holder = {}

    def run():
        holder["out"] = run_baseline_comparison(rule_counts=RULE_COUNTS,
                                                accesses=8000)
        return holder["out"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    out = holder["out"]

    lines = ["SACK vs ABAC baseline: governed-read cost (ns/access)",
             f"  {'rules':>8} {'abac':>10} {'sack':>10} {'ratio':>8}"]
    for count in RULE_COUNTS:
        row = out[count]
        lines.append(f"  {count:>8} {row['abac_ns']:>10.0f} "
                     f"{row['sack_ns']:>10.0f} {row['ratio']:>7.1f}x")
    show("\n".join(lines))

    # Shape: ABAC's cost grows with the rule count (linear rule walk with
    # per-access attribute gathering); SACK's stays roughly flat.
    assert out[500]["abac_ns"] > out[10]["abac_ns"] * 2
    assert out[500]["sack_ns"] < out[10]["sack_ns"] * 3
    assert out[500]["ratio"] > out[10]["ratio"]


def test_sack_expressiveness_advantage(benchmark):
    """The qualitative gap: a crash event changes SACK's decision within
    one event; ABAC's attribute space cannot represent it at all.
    (Asserted functionally; see tests/abac for the full matrix.)"""
    from repro.abac import AbacLsm, AbacPolicy
    from repro.kernel import KernelError, user_credentials
    from repro.lsm import boot_kernel
    from repro.sack import SackLsm, SituationEvent, parse_policy

    def scenario():
        sack = SackLsm()
        kernel, _ = boot_kernel([sack])
        sack.load_policy(parse_policy(
            "policy p;\ninitial normal;\n"
            "states {\n  normal = 0;\n  emergency = 1;\n}\n"
            "transitions {\n  normal -> emergency on crash_detected;\n}\n"
            "permissions {\n  DOORS;\n}\n"
            "state_per {\n  emergency: DOORS;\n}\n"
            "per_rules {\n  DOORS {\n"
            "    allow write /dev/car/door subject=rescue_daemon;\n"
            "  }\n}\n"
            "guard /dev/car/**;\n"))
        kernel.vfs.makedirs("/dev/car")
        kernel.vfs.create_file("/dev/car/door", mode=0o666)
        rescue = kernel.sys_fork(kernel.procs.init)
        rescue.comm = "rescue_daemon"
        rescue.cred = user_credentials(0, caps=())
        denied_before = False
        try:
            kernel.write_file(rescue, "/dev/car/door", b"x", create=False)
        except KernelError:
            denied_before = True
        sack.ssm.process_event(SituationEvent(name="crash_detected"))
        kernel.write_file(rescue, "/dev/car/door", b"x", create=False)
        return denied_before

    assert benchmark(scenario)
