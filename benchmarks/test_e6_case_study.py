"""E6 — the Fig. 4 case study: unlock car doors only in emergencies.

Runs the full scenario end to end on both prototypes and reports each
phase's outcome, as the paper's §IV-C-1 narrates it.
"""

import pytest

from repro.kernel import KernelError
from repro.vehicle import (DOOR_UNLOCK, EnforcementConfig, build_ivi_world)


def run_case_study(config):
    """Execute the scenario; returns the phase-outcome log."""
    world = build_ivi_world(config)
    log = []

    def attempt(phase, fn):
        try:
            fn()
            log.append((phase, "ALLOWED"))
        except KernelError:
            log.append((phase, "DENIED"))

    attempt("parked: rescue daemon unlocks doors",
            lambda: world.device_ioctl("rescue_daemon", "door",
                                       DOOR_UNLOCK))
    world.drive_to_speed(60)
    attempt("driving: rescue daemon unlocks doors",
            lambda: world.device_ioctl("rescue_daemon", "door",
                                       DOOR_UNLOCK))
    world.trigger_crash()
    attempt("emergency: rescue daemon unlocks doors",
            lambda: world.rescue_unlock_doors())
    attempt("emergency: media app unlocks doors",
            lambda: world.device_ioctl("media_app", "door", DOOR_UNLOCK))
    world.clear_emergency()
    attempt("cleared: rescue daemon unlocks doors",
            lambda: world.device_ioctl("rescue_daemon", "door",
                                       DOOR_UNLOCK))
    return world, log


EXPECTED = [
    ("parked: rescue daemon unlocks doors", "DENIED"),
    ("driving: rescue daemon unlocks doors", "DENIED"),
    ("emergency: rescue daemon unlocks doors", "ALLOWED"),
    ("emergency: media app unlocks doors", "DENIED"),
    ("cleared: rescue daemon unlocks doors", "DENIED"),
]


@pytest.mark.parametrize("config", [EnforcementConfig.SACK_INDEPENDENT,
                                    EnforcementConfig.SACK_APPARMOR])
def test_case_study(benchmark, show, config):
    holder = {}

    def run():
        holder["result"] = run_case_study(config)
        return holder["result"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    world, log = holder["result"]

    lines = [f"Case study (Fig. 4) under {config.value}:"]
    lines.extend(f"  {phase:<45} {verdict}" for phase, verdict in log)
    lines.append(f"  doors after scenario: "
                 f"{'unlocked' if not world.devices['door'].all_locked else 'locked'}, "
                 f"window at {world.devices['window'].position}%")
    show("\n".join(lines))

    assert log == EXPECTED
    assert not world.devices["door"].all_locked
    assert world.devices["window"].position == 100
