"""E7 — the KOFFEE (CVE-2020-8539) and CVE-2023-6073 attack matrix.

Reproduces the paper's security-enhancement evaluation: attacks that
bypass user-space checks succeed without kernel MAC, and are blocked by
SACK in every situation state — while the legitimate emergency path
still works.
"""

import pytest

from repro.vehicle import (EnforcementConfig, KoffeeAttack, VolumeMaxAttack,
                           build_ivi_world)


def run_matrix():
    """Attack outcomes per (configuration, situation)."""
    matrix = {}
    for config in EnforcementConfig:
        for situation in ("parked", "driving", "emergency"):
            world = build_ivi_world(config)
            if situation == "driving":
                world.drive_to_speed(60)
            elif situation == "emergency":
                world.drive_to_speed(60)
                world.trigger_crash()
            koffee = KoffeeAttack(world).run()
            volume = VolumeMaxAttack(world).run()
            matrix[(config.value, situation)] = (koffee.blocked,
                                                 volume.blocked)
    return matrix


def test_attack_matrix(benchmark, show):
    holder = {}

    def run():
        holder["matrix"] = run_matrix()
        return holder["matrix"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    matrix = holder["matrix"]

    lines = ["KOFFEE door-unlock and CVE-2023-6073 volume attacks",
             f"  {'configuration':>18} {'situation':>10} "
             f"{'koffee':>9} {'volume':>9}"]
    for (config, situation), (koffee, volume) in matrix.items():
        lines.append(
            f"  {config:>18} {situation:>10} "
            f"{'BLOCKED' if koffee else 'SUCCESS':>9} "
            f"{'BLOCKED' if volume else 'SUCCESS':>9}")
    show("\n".join(lines))

    # Without kernel MAC the attacks land in every situation.
    for situation in ("parked", "driving", "emergency"):
        assert matrix[("none", situation)] == (False, False)
    # With SACK (either prototype) every attack is blocked everywhere.
    for config in ("sack-independent", "sack-apparmor"):
        for situation in ("parked", "driving", "emergency"):
            assert matrix[(config, situation)] == (True, True), \
                (config, situation)


def test_attack_attempt_cost(benchmark):
    """Latency of one blocked injection attempt (deny path cost)."""
    world = build_ivi_world(EnforcementConfig.SACK_INDEPENDENT)
    world.drive_to_speed(60)
    attack = KoffeeAttack(world)
    result = benchmark(attack.run)
    assert result.blocked
