"""E2 — Table III: LMBench with a growing number of SACK rules stacked on
AppArmor (0 / 10 / 100 / 500 / 1000 rules).

Paper's claim: rule count causes negligible runtime overhead because the
AppArmor check path does not walk SACK's rule store — SACK's rules only
matter at transition time.  The curve should be flat.
"""

import pytest

from repro.bench import (build_rule_count_world, render_sweep_table,
                         run_rule_sweep, LmbenchSuite, pct_delta)
from conftest import REPS, SCALE

RULE_COUNTS = (0, 10, 100, 500, 1000)
BENCHES = ["syscall", "io", "file_create_0k", "file_delete_0k",
           "file_create_10k", "file_delete_10k", "stat", "open_close"]


def test_table3_full(benchmark, show):
    holder = {}

    def run():
        holder["sweep"] = run_rule_sweep(
            rule_counts=RULE_COUNTS, benches=BENCHES,
            repetitions=max(2, REPS // 2), scale=SCALE / 2)
        return holder["sweep"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    sweep = holder["sweep"]
    show(render_sweep_table(
        sweep, 0, "Table III: LMBench vs number of SACK rules "
        "(SACK-enhanced AppArmor)"))

    # Shape check: overhead must not grow with rule count.  Flatness
    # criterion over the slower (less jitter-dominated) file operations:
    # the mean |delta| of the 1000-rule column stays bounded, and is not
    # systematically worse than the 10-rule column (the paper attributes
    # the residual differences to errors and jitter).
    file_ops = [b for b in BENCHES if b.startswith(("file_", "open",
                                                    "stat"))]
    mean_1000 = sum(abs(pct_delta(sweep[0][b].value, sweep[1000][b].value))
                    for b in file_ops) / len(file_ops)
    mean_10 = sum(abs(pct_delta(sweep[0][b].value, sweep[10][b].value))
                  for b in file_ops) / len(file_ops)
    show(f"mean |delta| on file ops: 10 rules {mean_10:.2f}%, "
         f"1000 rules {mean_1000:.2f}%")
    assert mean_1000 < 30.0, "rule count should not change hot-path cost"
    assert mean_1000 < mean_10 + 15.0, \
        "overhead must not grow with rule count"


@pytest.mark.parametrize("count", RULE_COUNTS)
def test_stat_latency_vs_rules(benchmark, count):
    """stat(2) latency as the rule store grows — pytest-benchmark rows."""
    world = build_rule_count_world(count)
    suite = LmbenchSuite(world.kernel, scale=SCALE)
    kernel, task = suite.kernel, suite.task
    kernel.vfs.create_file("/tmp/lmbench/statprobe")
    benchmark(lambda: kernel.sys_stat(task, "/tmp/lmbench/statprobe"))
