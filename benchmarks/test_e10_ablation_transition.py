"""E10 (ablation) — transition cost: independent SACK vs SACK-enhanced
AppArmor, as a function of policy size.

Independent SACK pays at *check* time (a guard/rule lookup per hook) but
transitions are an O(1) pointer swap; the bridge's check path is vanilla
AppArmor but every transition rewrites and reloads profiles.  This is the
design trade-off DESIGN.md §5 calls out; the crossover against transition
frequency follows from these numbers.
"""

import pytest

from repro.bench import run_transition_cost_ablation
from repro.bench.harness import make_synthetic_policy
from repro.lsm import boot_kernel
from repro.sack import SackLsm, SituationEvent
from repro.vehicle.devices import IOCTL_SYMBOLS

RULE_COUNTS = (10, 100, 500, 1000)


def test_transition_cost_sweep(benchmark, show):
    holder = {}

    def run():
        holder["out"] = run_transition_cost_ablation(
            rule_counts=RULE_COUNTS, transitions=200)
        return holder["out"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    out = holder["out"]

    lines = ["Transition cost: independent vs bridge (us/transition)",
             f"  {'rules':>8} {'independent':>13} {'bridge':>10} "
             f"{'ratio':>8}"]
    for count in RULE_COUNTS:
        row = out[count]
        lines.append(f"  {count:>8} {row['independent_us']:>13.1f} "
                     f"{row['bridge_us']:>10.1f} {row['ratio']:>7.1f}x")
    show("\n".join(lines))

    # Shape checks: the bridge's transition cost grows with policy size;
    # independent SACK's does not (pointer swap).
    assert out[1000]["bridge_us"] > out[10]["bridge_us"]
    assert out[1000]["independent_us"] < out[10]["independent_us"] * 5
    # The bridge is always the more expensive transition.
    assert all(out[c]["ratio"] > 1 for c in RULE_COUNTS)


def test_independent_transition(benchmark):
    """A single independent-SACK transition (SSM + APE remap)."""
    sack = SackLsm()
    kernel, _ = boot_kernel([sack])
    sack.load_policy(make_synthetic_policy(100),
                     ioctl_symbols=IOCTL_SYMBOLS)
    ssm = sack.ssm
    counter = {"i": 0}

    def flip():
        counter["i"] += 1
        target = f"s{counter['i'] % 2}"
        ssm.process_event(SituationEvent(name=f"go_{target}"))

    benchmark(flip)
    assert sack.ape.remap_count > 0


def test_compile_time_vs_policy_size(benchmark, show):
    """Ablation of the State->Permission->MAC double indirection: the
    compile step precomputes g(f(s)) for every state; measure its cost at
    a representative policy size (it is paid once per policy load)."""
    from repro.sack import compile_policy
    policy = make_synthetic_policy(500, n_states=10)

    def compile_it():
        return compile_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)

    compiled = benchmark(compile_it)
    assert compiled.total_rules() >= 500
