"""E3 — Fig. 3(a): runtime overhead vs number of situation states
(independent SACK, the worst case, against a no-LSM baseline).

Paper's claim: ~1.8% file-operation overhead at 100 states — i.e. the
per-access cost does not scale with the number of states, because the APE
consults only the precompiled ruleset of the *current* state.
"""

import pytest

from repro.bench import (FILE_OP_BENCHES, LmbenchSuite,
                         build_state_count_world, pct_delta,
                         run_state_sweep)
from conftest import REPS, SCALE

STATE_COUNTS = (2, 5, 10, 25, 50, 100)


def test_fig3a_sweep(benchmark, show):
    holder = {}

    def run():
        holder["sweep"] = run_state_sweep(
            state_counts=STATE_COUNTS, scale=SCALE,
            repetitions=max(2, REPS // 2))
        return holder["sweep"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    sweep = holder["sweep"]
    base = sweep["baseline"]

    lines = ["Fig. 3(a): file-operation overhead vs #situation states",
             "  (independent SACK vs no-LSM kernel)",
             f"  {'states':>8} " + "".join(f"{b:>18}"
                                           for b in FILE_OP_BENCHES)
             + f"{'mean':>10}"]
    series = {}
    for count in STATE_COUNTS:
        deltas = [pct_delta(base[b].value, sweep[count][b].value)
                  for b in FILE_OP_BENCHES]
        series[count] = sum(deltas) / len(deltas)
        lines.append(f"  {count:>8} "
                     + "".join(f"{d:>+17.2f}%" for d in deltas)
                     + f"{series[count]:>+9.2f}%")
    show("\n".join(lines))

    # Shape check: overhead is roughly flat in the state count — the
    # 100-state mean overhead is not dramatically above the 2-state one.
    assert series[100] < series[2] + 25.0, \
        "per-access overhead must not scale with state count"


@pytest.mark.parametrize("count", STATE_COUNTS)
def test_open_close_vs_states(benchmark, count):
    world = build_state_count_world(count)
    suite = LmbenchSuite(world.kernel, scale=SCALE)
    kernel, task = suite.kernel, suite.task
    kernel.vfs.create_file("/tmp/lmbench/probe")
    from repro.kernel import OpenFlags

    def op():
        fd = kernel.sys_open(task, "/tmp/lmbench/probe",
                             OpenFlags.O_RDONLY)
        kernel.sys_close(task, fd)

    benchmark(op)
