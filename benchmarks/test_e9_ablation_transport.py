"""E9 (ablation) — event-transport channels for design challenge C1.

The paper argues securityfs beats socket- and relay-based channels on
latency for user->kernel situation-event delivery.  We measure the three
channels: a direct SACKfs write, an AF_UNIX relay (SDS -> broker daemon ->
SACKfs), and a TCP relay.
"""

import pytest

from repro.bench import (CONFIG_SACK_INDEPENDENT, build_world,
                         run_transport_ablation)
from repro.kernel import SocketFamily


def test_transport_comparison(benchmark, show):
    holder = {}

    def run():
        holder["out"] = run_transport_ablation(samples=1000)
        return holder["out"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    out = holder["out"]

    lines = ["Event transport ablation (mean per-event latency)",
             f"  {'channel':>20} {'us/event':>10}"]
    for channel, us in out.items():
        lines.append(f"  {channel.removesuffix('_us'):>20} {us:>10.2f}")
    ratio_unix = out["af_unix_relay_us"] / out["sackfs_us"]
    ratio_tcp = out["tcp_relay_us"] / out["sackfs_us"]
    lines.append(f"  relay penalty: AF_UNIX {ratio_unix:.2f}x, "
                 f"TCP {ratio_tcp:.2f}x vs SACKfs")
    show("\n".join(lines))

    # Shape: the direct securityfs channel is the cheapest.
    assert out["sackfs_us"] < out["af_unix_relay_us"]
    assert out["sackfs_us"] < out["tcp_relay_us"]


def test_sackfs_channel(benchmark):
    world = build_world(CONFIG_SACK_INDEPENDENT)
    kernel = world.kernel
    init = kernel.procs.init
    benchmark(lambda: kernel.write_file(
        init, "/sys/kernel/security/SACK/events",
        b"speed_high\n", create=False))


def test_af_unix_relay_channel(benchmark):
    world = build_world(CONFIG_SACK_INDEPENDENT)
    kernel = world.kernel
    init = kernel.procs.init
    server = kernel.sys_socket(init, SocketFamily.AF_UNIX)
    kernel.sys_bind(init, server, "/run/relay.sock")
    kernel.sys_listen(init, server)
    client = kernel.sys_socket(init, SocketFamily.AF_UNIX)
    kernel.sys_connect(init, client, "/run/relay.sock")
    conn = kernel.sys_accept(init, server)

    def relay_once():
        kernel.sys_send(init, client, b"speed_high\n")
        data = kernel.sys_recv(init, conn, 64)
        kernel.write_file(init, "/sys/kernel/security/SACK/events",
                          data, create=False)

    benchmark(relay_once)
