"""AVC — repeated-access speedup of the situation-epoch vector cache.

The acceptance target for the stack AVC: a repeated-access microbenchmark
on the LSM hot path (``security.file_permission``, the hook every
``read(2)``/``write(2)`` pays) must show at least a 5x hit-path speedup
over the uncached module walk while producing bit-identical decisions.
Run with

    pytest benchmarks/test_avc.py --benchmark-json=BENCH_avc.json

to emit the JSON artifact the CI job uploads; the measured speedup and
per-operation latencies ride along in ``extra_info``.
"""

import functools

from repro.bench import CONFIG_SACK_INDEPENDENT, best_of, build_world
from repro.bench.suite import avc_bench_policy
from repro.kernel import KernelError, MAY_READ, OpenFlags, user_credentials
from repro.sack.events import SituationEvent
from conftest import REPS, SCALE

#: Rules in the bulk permission class; the probe path matches last, so
#: every uncached check pays a full linear walk as a large real policy
#: would.  The policy text itself is shared with the suite runner's
#: ``avc`` workload (``repro.bench.suite.avc_bench_policy``).
RULE_COUNT = 200

#: Hot-loop iterations (scaled by SACK_BENCH_SCALE).
ITERATIONS = max(500, int(5000 * SCALE))

#: Best-of-N with this file's repetition knob baked in (the helper
#: itself lives in ``repro.bench.timing``).
_best_of = functools.partial(best_of, reps=REPS)


def _boot(cache_enabled):
    world = build_world(CONFIG_SACK_INDEPENDENT,
                        policy_text=avc_bench_policy(RULE_COUNT))
    kernel = world.kernel
    kernel.security.avc.enabled = cache_enabled
    kernel.vfs.makedirs("/dev/car")
    kernel.vfs.create_file("/dev/car/probe", mode=0o666)
    kernel.vfs.create_file("/dev/car/door", mode=0o666)
    task = kernel.sys_fork(kernel.procs.init)
    task.comm = "bench_app"
    task.cred = user_credentials(1000)  # no CAP_MAC_OVERRIDE short-circuit
    fd = kernel.sys_open(task, "/dev/car/probe", OpenFlags.O_RDONLY)
    file = task.get_fd(fd).obj
    return world, kernel, task, file


def _permission_loop(security, task, file, n):
    for _ in range(n):
        security.file_permission(task, file, MAY_READ)


def _decision_trace(cache_enabled):
    """A mixed allow/deny workload spanning situation transitions."""
    world, kernel, task, _ = _boot(cache_enabled)
    rescue = kernel.sys_fork(kernel.procs.init)
    rescue.comm = "rescue_daemon"
    rescue.cred = user_credentials(990)
    outcomes = []

    def attempt(who, path, flags):
        try:
            fd = kernel.sys_open(who, path, flags)
            kernel.sys_close(who, fd)
            outcomes.append((who.comm, path, int(flags), "ok"))
        except KernelError as exc:
            outcomes.append((who.comm, path, int(flags), int(exc.errno)))

    for phase_event in (None, "crash_detected", "emergency_cleared"):
        if phase_event is not None:
            world.sack.ssm.process_event(SituationEvent(name=phase_event))
        for _ in range(20):
            attempt(task, "/dev/car/probe", OpenFlags.O_RDONLY)
            attempt(task, "/dev/car/probe", OpenFlags.O_WRONLY)
            attempt(rescue, "/dev/car/door", OpenFlags.O_WRONLY)
    return outcomes, kernel.security.avc.core


def test_avc_hit_path(benchmark):
    """Repeated file_permission checks with the cache warm."""
    _, kernel, task, file = _boot(cache_enabled=True)
    security = kernel.security
    _permission_loop(security, task, file, 10)  # warm the cache
    assert security.avc.core.hits > 0
    benchmark(lambda: _permission_loop(security, task, file, ITERATIONS))


def test_avc_uncached_baseline(benchmark):
    """The same loop against the full module walk, cache disabled."""
    _, kernel, task, file = _boot(cache_enabled=False)
    security = kernel.security
    benchmark(lambda: _permission_loop(security, task, file, ITERATIONS))


def test_avc_speedup_target(benchmark, show):
    """>= 5x on the repeated-access microbenchmark, decisions identical."""
    _, k_hot, t_hot, f_hot = _boot(cache_enabled=True)
    _, k_cold, t_cold, f_cold = _boot(cache_enabled=False)
    hot_sec, cold_sec = k_hot.security, k_cold.security
    _permission_loop(hot_sec, t_hot, f_hot, 10)  # warm

    hot = _best_of(lambda: _permission_loop(hot_sec, t_hot, f_hot,
                                            ITERATIONS))
    cold = _best_of(lambda: _permission_loop(cold_sec, t_cold, f_cold,
                                             ITERATIONS))
    speedup = cold / hot

    cached_trace, core = _decision_trace(cache_enabled=True)
    uncached_trace, _ = _decision_trace(cache_enabled=False)

    benchmark.pedantic(
        lambda: _permission_loop(hot_sec, t_hot, f_hot, ITERATIONS),
        rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cached_ns_per_op"] = hot / ITERATIONS * 1e9
    benchmark.extra_info["uncached_ns_per_op"] = cold / ITERATIONS * 1e9
    benchmark.extra_info["rule_count"] = RULE_COUNT
    show(f"AVC repeated-access microbenchmark ({RULE_COUNT}-rule policy)\n"
         f"  uncached {cold / ITERATIONS * 1e9:>8.0f} ns/op\n"
         f"  cached   {hot / ITERATIONS * 1e9:>8.0f} ns/op\n"
         f"  speedup  {speedup:>8.2f}x  (target >= 5x)")

    assert speedup >= 5.0, f"hit path only {speedup:.2f}x faster"
    assert cached_trace == uncached_trace
    assert core.stale_served == 0
