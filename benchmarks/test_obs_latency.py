"""E12 — observability: per-hook latency breakdown and tracing overhead.

Two questions the paper's Table II cannot answer on its own:

1. *Where* does the security-stack time go?  ``run_hook_latency_breakdown``
   runs the LMBench workload with per-hook latency histograms enabled and
   reports count/mean/p50/p99/max per hook per configuration.  The full
   breakdown is attached to the pytest-benchmark JSON via ``extra_info``,
   so ``--benchmark-json`` output carries the histogram summaries.

2. *What* does observability cost when it is off?  Tracepoints with no
   probes attached and a disabled audit ring must stay off the hot path —
   the detached/attached pair below bounds that overhead directly.
"""

from repro.bench import (CONFIG_SACK_INDEPENDENT, TABLE2_CONFIGS,
                         build_world, run_hook_latency_breakdown)
from repro.kernel import OpenFlags
from conftest import SCALE


def test_hook_latency_breakdown(benchmark, show):
    """Per-hook latency histograms for every Table II configuration."""
    holder = {}

    def run():
        holder["breakdown"] = run_hook_latency_breakdown(scale=SCALE)
        return holder["breakdown"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    breakdown = holder["breakdown"]

    lines = ["Per-hook latency under the LMBench workload"]
    for config, hooks in breakdown.items():
        lines.append(f"  {config}:")
        for hook, row in sorted(hooks.items(),
                                key=lambda kv: kv[1]["count"],
                                reverse=True):
            lines.append(f"    {hook:<22} n={int(row['count']):>8} "
                         f"mean {row['mean_ns']:>8.0f} ns  "
                         f"p50 {row['p50_ns']:>8.0f} ns  "
                         f"p99 {row['p99_ns']:>8.0f} ns")
    show("\n".join(lines))

    # The breakdown rides along in the benchmark JSON output.
    benchmark.extra_info["hook_latency"] = breakdown

    # Shape: every security-enabled config saw file hooks fire, and each
    # summary row carries the percentile fields the JSON consumers expect.
    for config in TABLE2_CONFIGS:
        assert breakdown[config], f"no hooks recorded for {config}"
        for row in breakdown[config].values():
            assert row["count"] > 0
            # p50/p99 are geometric-bucket upper bounds, so p99 may sit
            # just above the observed max — only ordering is guaranteed.
            assert row["p50_ns"] <= row["p99_ns"]
            assert row["mean_ns"] <= row["max_ns"]
    assert "file_open" in breakdown[CONFIG_SACK_INDEPENDENT]


def _open_close_loop(kernel, task, path, n=2000):
    for _ in range(n):
        fd = kernel.sys_open(task, path, OpenFlags.O_RDONLY)
        kernel.sys_close(task, fd)


def test_obs_detached_overhead(benchmark):
    """Hot path with tracepoints detached and audit disabled (default)."""
    world = build_world(CONFIG_SACK_INDEPENDENT)
    kernel = world.kernel
    kernel.obs.audit.enabled = False
    task = kernel.procs.init
    kernel.vfs.create_file("/tmp/obs_probe")
    benchmark(lambda: _open_close_loop(kernel, task, "/tmp/obs_probe"))


def test_obs_enabled_overhead(benchmark):
    """Same loop with every tracepoint recording and latency histograms
    on — the price of full observability, for comparison."""
    world = build_world(CONFIG_SACK_INDEPENDENT)
    kernel = world.kernel
    kernel.obs.enable_all_recording()
    kernel.security.enable_hook_latency()
    task = kernel.procs.init
    kernel.vfs.create_file("/tmp/obs_probe")
    benchmark(lambda: _open_close_loop(kernel, task, "/tmp/obs_probe"))


def test_spans_disabled_overhead(benchmark):
    """Hot path with the span tracer constructed but disabled.

    The dispatch core pays one attribute load + flag test per call; this
    must stay within noise of :func:`test_obs_detached_overhead` (the
    acceptance bound is <5% regression vs. the no-span baseline).
    """
    world = build_world(CONFIG_SACK_INDEPENDENT)
    kernel = world.kernel
    kernel.obs.audit.enabled = False
    assert not kernel.obs.spans.enabled
    assert not kernel.obs.spans.watch_hooks
    task = kernel.procs.init
    kernel.vfs.create_file("/tmp/obs_probe")
    benchmark(lambda: _open_close_loop(kernel, task, "/tmp/obs_probe"))


def test_spans_enabled_overhead(benchmark):
    """Same loop with tracing on and the hook link-window permanently
    armed — every dispatch takes the spanned path and records a root hook
    span.  The worst case, for comparison against the disabled cost."""
    world = build_world(CONFIG_SACK_INDEPENDENT)
    kernel = world.kernel
    spans = kernel.obs.spans
    spans.enable()
    spans.trace_all_hooks()
    task = kernel.procs.init
    kernel.vfs.create_file("/tmp/obs_probe")
    benchmark(lambda: _open_close_loop(kernel, task, "/tmp/obs_probe"))
