"""E1 — Table II: LMBench under AppArmor, SACK-enhanced AppArmor, and
independent SACK (all with default policies).

Paper's headline: both SACK prototypes add only negligible overhead to
AppArmor (mean below ~3%); SACK-enhanced AppArmor's check path is
identical to vanilla AppArmor.
"""

import pytest

from repro.bench import (CONFIG_APPARMOR, TABLE2_CONFIGS, LmbenchSuite,
                         build_world, mean_abs_overhead_pct,
                         render_comparison_table, run_lmbench)
from conftest import REPS, SCALE


def test_table2_full(benchmark, show):
    """Regenerates the full Table II and prints it."""
    holder = {}

    def run():
        holder["results"] = run_lmbench(scale=SCALE, repetitions=REPS)
        return holder["results"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    results = holder["results"]
    show(render_comparison_table(results, CONFIG_APPARMOR,
                                 "Table II: LMBench results of SACK"))
    lines = ["", "mean |overhead| vs AppArmor baseline:"]
    for config in TABLE2_CONFIGS[1:]:
        pct = mean_abs_overhead_pct(results, CONFIG_APPARMOR, config)
        lines.append(f"  {config}: {pct:.2f}%")
    show("\n".join(lines))
    # Shape check: the suite ran every row for every configuration.
    assert all(len(results[c]) == 17 for c in TABLE2_CONFIGS)


@pytest.mark.parametrize("config", TABLE2_CONFIGS)
def test_open_close_latency(benchmark, config):
    """Per-config open/close fd latency as a pytest-benchmark metric."""
    suite = LmbenchSuite(build_world(config).kernel, scale=SCALE)
    kernel, task = suite.kernel, suite.task
    kernel.vfs.create_file("/tmp/lmbench/probe")
    from repro.kernel import OpenFlags

    def op():
        fd = kernel.sys_open(task, "/tmp/lmbench/probe",
                             OpenFlags.O_RDONLY)
        kernel.sys_close(task, fd)

    benchmark(op)


@pytest.mark.parametrize("config", TABLE2_CONFIGS)
def test_null_syscall_latency(benchmark, config):
    suite = LmbenchSuite(build_world(config).kernel, scale=SCALE)
    kernel, task = suite.kernel, suite.task
    benchmark(lambda: kernel.sys_getpid(task))
