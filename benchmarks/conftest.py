"""Shared configuration for the paper-reproduction benchmarks.

Every benchmark prints the paper-style table it regenerates.  Scale and
repetitions can be tuned through environment variables:

``SACK_BENCH_SCALE``  — iteration multiplier (default 0.5; 1.0 = full)
``SACK_BENCH_REPS``   — repetitions for best-of reduction (default 5)
"""

import os
import sys

import pytest

SCALE = float(os.environ.get("SACK_BENCH_SCALE", "0.5"))
REPS = int(os.environ.get("SACK_BENCH_REPS", "5"))


@pytest.fixture
def show(capfd):
    """Print a report so it reaches the terminal (and any tee) even on
    passing tests: pytest replays captured output only on failure, so the
    paper-style tables are emitted with capture suspended."""
    def _show(text):
        with capfd.disabled():
            sys.stdout.write("\n" + text + "\n")
            sys.stdout.flush()
    return _show
