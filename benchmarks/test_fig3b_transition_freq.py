"""E4 — Fig. 3(b): runtime overhead vs situation-transition frequency.

The paper's setup: two situations (high-speed / low-speed); a critical
file may only be accessed at low speed; transitions occur at millisecond
granularity.  Expected shape: overhead falls as the period grows —
~0.93% at a 1000 ms period.
"""

import pytest

from repro.bench import SPEED_POLICY, run_frequency_sweep
from repro.sack import parse_policy

PERIODS_MS = (1, 10, 100, 1000)


def test_fig3b_sweep(benchmark, show):
    holder = {}

    def run():
        holder["results"] = run_frequency_sweep(periods_ms=PERIODS_MS,
                                                accesses=20000)
        return holder["results"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    results = holder["results"]

    lines = ["Fig. 3(b): overhead vs situation transition period",
             f"  {'period':>10} {'ns/access':>12} {'transitions':>12} "
             f"{'overhead':>10}"]
    for key in ("baseline", *PERIODS_MS):
        row = results[key]
        label = key if key == "baseline" else f"{key} ms"
        lines.append(f"  {label:>10} {row['ns_per_access']:>12.0f} "
                     f"{row['transitions']:>12} "
                     f"{row['overhead_pct']:>+9.2f}%")
    show("\n".join(lines))

    # Shape checks: transitions actually happened at every period, and
    # slower transition rates cost less than the fastest rate.
    assert all(results[p]["transitions"] > 0 for p in PERIODS_MS)
    assert results[1000]["overhead_pct"] < results[1]["overhead_pct"]
    # The paper's 1000 ms point is sub-1%; the simulator's floor is noisy
    # at the few-percent level, so assert the order of magnitude only.
    assert results[1000]["overhead_pct"] < 25.0


def test_speed_policy_is_valid():
    """The Fig. 3(b) policy itself parses and validates cleanly."""
    from repro.sack import check_policy, has_errors
    policy = parse_policy(SPEED_POLICY)
    assert not has_errors(check_policy(policy))


def test_single_transition_cost(benchmark):
    """Raw cost of one event->transition->remap cycle (independent)."""
    from repro.lsm import boot_kernel
    from repro.sack import SackFs, SackLsm

    sack = SackLsm()
    kernel, _ = boot_kernel([sack])
    SackFs(kernel, sack, authorized_event_uids={990})
    kernel.write_file(kernel.procs.init,
                      "/sys/kernel/security/SACK/policy",
                      SPEED_POLICY.encode(), create=False)
    init = kernel.procs.init
    state = {"high": False}

    def flip():
        event = b"speed_low\n" if state["high"] else b"speed_high\n"
        kernel.write_file(init, "/sys/kernel/security/SACK/events",
                          event, create=False)
        state["high"] = not state["high"]

    benchmark(flip)
    assert sack.ssm.transition_count > 0
