"""Fleet orchestration benchmarks: throughput scaling and bus fan-out.

The acceptance target for ``repro.fleet``: sharding N vehicle kernels
across a worker pool must scale — at least **3x** vehicles/sec going
from 1 to 4 workers — while the run's fingerprint stays bit-identical
at every worker count.  Scaling is measured on the fleet's *virtual*
compute makespan (the explicit Amdahl cost model in
``repro.fleet.orchestrator``): vehicle ticks parallelise across shards,
barrier work is serial control plane.  Run with

    pytest benchmarks/test_fleet.py --benchmark-json=BENCH_fleet.json

to emit the JSON artifact the CI job uploads; vehicles/sec per worker
count and the bus fan-out latencies ride along in ``extra_info``.
"""

from repro.fleet.bundle import BundleSigner, make_bundle
from repro.fleet.bus import V2xBus
from repro.fleet.orchestrator import Fleet, FleetConfig, ScriptedDriver
from repro.vehicle.ivi import DEFAULT_SACK_POLICY
from conftest import SCALE

#: Fleet size for the scaling run (divisible by 4 so shards balance).
FLEET_SIZE = max(8, 4 * round(4 * SCALE))

EPOCHS = 8

WORKER_COUNTS = (1, 2, 4)

#: Subscribers for the bus fan-out measurement.
FANOUT_SUBSCRIBERS = max(100, int(400 * SCALE))


def _run_fleet(workers):
    driver = ScriptedDriver().at(1, "veh001", "crash") \
                             .at(5, "veh001", "clear")
    fleet = Fleet(FleetConfig(n_vehicles=FLEET_SIZE, seed=3,
                              workers=workers), driver=driver)
    fleet.stage_rollout(make_bundle(
        1, DEFAULT_SACK_POLICY,
        signer=BundleSigner(fleet.config.fleet_key)))
    return fleet.run(EPOCHS).report


def test_fleet_throughput_scaling(benchmark, show):
    """>= 3x vehicles/sec from 1 to 4 workers, fingerprints identical."""
    reports = {w: _run_fleet(w) for w in WORKER_COUNTS}
    prints = {r.fingerprint() for r in reports.values()}
    assert len(prints) == 1, "worker count changed the outcome"
    vps = {w: r.vehicles_per_second() for w, r in reports.items()}
    speedup = vps[4] / vps[1]

    benchmark.pedantic(lambda: _run_fleet(4), rounds=1, iterations=1)
    benchmark.extra_info["vehicles"] = FLEET_SIZE
    benchmark.extra_info["epochs"] = EPOCHS
    benchmark.extra_info["vehicles_per_second"] = {
        str(w): round(v, 1) for w, v in vps.items()}
    benchmark.extra_info["speedup_1_to_4"] = round(speedup, 2)

    lines = [f"fleet throughput scaling ({FLEET_SIZE} vehicles, "
             f"{EPOCHS} epochs, virtual makespan)"]
    for w in WORKER_COUNTS:
        lines.append(f"  {w} worker(s): {vps[w]:>8.1f} vehicle-epochs/s "
                     f"(makespan "
                     f"{reports[w].compute_makespan_ns / 1e6:.0f} ms)")
    lines.append(f"  1 -> 4 workers: {speedup:.2f}x  (target >= 3x)")
    show("\n".join(lines))

    assert speedup >= 3.0, f"only {speedup:.2f}x from 1 to 4 workers"


def test_bus_fanout_latency(benchmark, show):
    """Publishing one event to a dense platoon: cost per delivered copy."""
    def fanout():
        bus = V2xBus(seed=11, range_km=10_000.0)
        positions = {}
        for i in range(FANOUT_SUBSCRIBERS):
            vid = f"veh{i:04d}"
            bus.subscribe(vid, ["crash"])
            positions[vid] = i * 0.001
        bus.publish("crash", "veh0000", 0.0, 0, positions=positions)
        delivered = bus.deliver_due(10**12)
        assert len(delivered) == FANOUT_SUBSCRIBERS - 1
        return bus

    bus = benchmark(fanout)
    latencies = [r for r in bus.tail(FANOUT_SUBSCRIBERS)
                 if r.action == "delivered"]
    benchmark.extra_info["subscribers"] = FANOUT_SUBSCRIBERS
    benchmark.extra_info["copies_delivered"] = \
        bus.stats["copies_delivered"]
    show(f"V2X fan-out: 1 publish -> {bus.stats['copies_delivered']} "
         f"copies delivered ({len(latencies)} tail records)")
