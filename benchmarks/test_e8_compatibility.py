"""E8 — compatibility with AppArmor (§IV-D).

Ten distinct SACK policies, each stacked as ``CONFIG_LSM="sack,apparmor"``
over the Ubuntu-20.04-style default AppArmor profiles, for both
prototypes.  "Work well" means: the stack boots, SACK enforces its
situational rules, and the default AppArmor profiles behave exactly as
without SACK.
"""

import pytest

from repro.apparmor import AppArmorLsm, load_ubuntu_defaults
from repro.bench import make_synthetic_policy
from repro.kernel import KernelError, user_credentials
from repro.lsm import boot_kernel
from repro.sack import SackAppArmorBridge, SackLsm, parse_policy
from repro.vehicle.devices import IOCTL_SYMBOLS
from repro.vehicle.ivi import DEFAULT_SACK_POLICY, IVI_APPARMOR_PROFILES


def ten_policies():
    policies = [parse_policy(DEFAULT_SACK_POLICY)]
    for i in range(1, 10):
        policies.append(make_synthetic_policy(
            n_rules=5 * i, n_states=1 + i % 4, name=f"compat-{i}"))
    return policies


def check_compat(policy, prototype):
    """Boot the stacked world and probe both enforcement layers."""
    apparmor = AppArmorLsm()
    load_ubuntu_defaults(apparmor.policy)
    apparmor.policy.load_text(IVI_APPARMOR_PROFILES)
    if prototype == "independent":
        sack = SackLsm()
        kernel, fw = boot_kernel([sack, apparmor])
        sack.load_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)
    else:
        bridge = SackAppArmorBridge(apparmor)
        kernel, fw = boot_kernel([bridge, apparmor])
        bridge.load_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)

    init = kernel.procs.init
    # 1. stack order is the paper's whitelist order.
    ok_order = fw.config_lsm == "capability,sack,apparmor"
    # 2. ordinary system work is unaffected.
    kernel.write_file(init, "/tmp/probe", b"x")
    ok_system = kernel.read_file(init, "/tmp/probe") == b"x"
    # 3. AppArmor still confines a default-profile program.
    kernel.vfs.makedirs("/sbin")
    kernel.vfs.create_file("/sbin/dhclient", mode=0o755)
    kernel.vfs.create_file("/etc/hostname", mode=0o644)
    dhclient = kernel.sys_fork(init)
    dhclient.cred = user_credentials(0, caps=())
    kernel.sys_execve(dhclient, "/sbin/dhclient")
    try:
        kernel.read_file(dhclient, "/etc/hostname")
        ok_apparmor = False  # not in dhclient's profile: must be denied
    except KernelError:
        ok_apparmor = True
    return ok_order and ok_system and ok_apparmor


def test_ten_policies_both_prototypes(benchmark, show):
    holder = {}

    def run():
        outcomes = {}
        for prototype in ("independent", "bridge"):
            for policy in ten_policies():
                outcomes[(prototype, policy.name)] = \
                    check_compat(policy, prototype)
        holder["outcomes"] = outcomes
        return outcomes

    benchmark.pedantic(run, rounds=1, iterations=1)
    outcomes = holder["outcomes"]

    lines = ["Compatibility: 10 SACK policies x Ubuntu default AppArmor",
             f"  {'prototype':>12} {'policy':>14} {'result':>8}"]
    for (prototype, name), ok in outcomes.items():
        lines.append(f"  {prototype:>12} {name:>14} "
                     f"{'OK' if ok else 'FAIL':>8}")
    show("\n".join(lines))

    assert all(outcomes.values())
    assert len(outcomes) == 20
