"""E5 — situation awareness latency (§IV-B).

The paper measures the securityfs-based user/kernel event channel with
four situation events: average latency ~5.4 µs with 100% delivery
accuracy.  Absolute numbers here are simulator numbers; the reproduction
targets are (i) microsecond-order latency, (ii) 100% accuracy, and
(iii) per-event-type uniformity.
"""

import pytest

from repro.bench import (CONFIG_SACK_INDEPENDENT, LATENCY_EVENTS,
                         build_world, run_event_latency)


def test_event_latency_table(benchmark, show):
    holder = {}

    def run():
        holder["out"] = run_event_latency(samples_per_event=300)
        return holder["out"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    out = holder["out"]

    lines = ["Situation awareness latency via SACKfs (per event type)",
             f"  {'event':>20} {'mean us':>9} {'p50 us':>9} "
             f"{'p99 us':>9} {'accuracy':>9}"]
    for name in LATENCY_EVENTS:
        m = out[name]
        lines.append(f"  {name:>20} {m['mean_us']:>9.2f} "
                     f"{m['p50_us']:>9.2f} {m['p99_us']:>9.2f} "
                     f"{m['accuracy_pct']:>8.1f}%")
    mean_all = sum(out[n]["mean_us"] for n in LATENCY_EVENTS) / 4
    lines.append(f"  overall mean latency: {mean_all:.2f} us "
                 f"(paper: ~5.4 us on bare metal)")
    show("\n".join(lines))

    # Reproduction targets.
    assert all(out[n]["accuracy_pct"] == 100.0 for n in LATENCY_EVENTS)
    assert mean_all < 1000.0  # microsecond order, not milliseconds


def test_single_event_write(benchmark):
    """The raw SACKfs event write as a pytest-benchmark metric."""
    world = build_world(CONFIG_SACK_INDEPENDENT)
    kernel = world.kernel
    init = kernel.procs.init

    benchmark(lambda: kernel.write_file(
        init, "/sys/kernel/security/SACK/events",
        b"vehicle_started\n", create=False))
    assert world.sack.ssm.events_processed > 0
