#!/usr/bin/env python3
"""Drive cycles: watch situations track a whole trip's physics.

Runs the scripted urban, highway, and crash scenarios and prints, for
each phase, the dominant situation and the SACK events the SDS emitted —
the end-to-end story from pedal inputs to kernel permissions.

Run:  python examples/drive_cycles.py
"""

from repro.vehicle import EnforcementConfig, build_ivi_world
from repro.vehicle.scenarios import SCENARIOS, ScenarioRunner


def run_one(name):
    print(f"\n=== {name} " + "=" * (40 - len(name)))
    world = build_ivi_world(EnforcementConfig.SACK_INDEPENDENT)
    runner = ScenarioRunner(world)
    records = runner.run(SCENARIOS[name]())
    print(f"{'phase':<16} {'t (s)':>10} {'km/h':>6} "
          f"{'situation':<24} events")
    for record in records:
        window = f"{record.start_s:.0f}-{record.end_s:.0f}"
        events = ", ".join(record.events) if record.events else "-"
        print(f"{record.name:<16} {window:>10} "
              f"{record.final_speed_kmh:>6.0f} "
              f"{record.dominant_situation:<24} {events}")
    ssm = world.sack.ssm
    print(f"-- {ssm.transition_count} transitions, "
          f"{world.sds.stats.events_sent} events sent, "
          f"mean SACKfs latency "
          f"{world.sds.stats.mean_latency_us:.1f} us")


def main():
    for name in SCENARIOS:
        run_one(name)
    print("\nEvery permission change above was driven purely by the")
    print("physics: dynamics -> sensors -> detectors -> SACKfs -> SSM.")


if __name__ == "__main__":
    main()
