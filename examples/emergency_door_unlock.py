#!/usr/bin/env python3
"""The paper's case study (Fig. 4): allow unlock car door ONLY in
emergencies — run side by side on both SACK prototypes.

Phases:
  1. normal (parked/driving): door & window ioctl/write denied for all.
  2. crash event -> emergency: the privileged rescue daemon may send the
     specific door/window ioctls (optimistic access control: "break the
     glass").
  3. other apps remain denied even during the emergency.
  4. emergency cleared: rights revoked.

Run:  python examples/emergency_door_unlock.py
"""

from repro.kernel import KernelError
from repro.vehicle import (DOOR_UNLOCK, EnforcementConfig, WINDOW_SET,
                           build_ivi_world)
from repro.vehicle.can import CAN_ID_DOOR, CAN_ID_WINDOW


def attempt(world, app, device, cmd, arg=0):
    try:
        world.device_ioctl(app, device, cmd, arg)
        return "ALLOWED"
    except KernelError as err:
        return f"DENIED ({err.errno.name})"


def run_prototype(config):
    print(f"\n{'=' * 64}")
    print(f"Prototype: {config.value}")
    print("=" * 64)
    world = build_ivi_world(config)

    print(f"[{world.situation}]")
    print(f"  rescue_daemon DOOR_UNLOCK : "
          f"{attempt(world, 'rescue_daemon', 'door', DOOR_UNLOCK)}")
    print(f"  rescue_daemon WINDOW_SET  : "
          f"{attempt(world, 'rescue_daemon', 'window', WINDOW_SET, 100)}")

    world.drive_to_speed(50)
    print(f"[{world.situation}] ({world.dynamics.speed_kmh:.0f} km/h)")
    print(f"  rescue_daemon DOOR_UNLOCK : "
          f"{attempt(world, 'rescue_daemon', 'door', DOOR_UNLOCK)}")

    # A "react app" triggers the vehicle crash event (paper §IV-C-1):
    # here the physics crash + the SDS detection cycle deliver it.
    world.trigger_crash()
    print(f"[{world.situation}]  <- crash_detected via SACKfs")
    print(f"  rescue_daemon DOOR_UNLOCK : "
          f"{attempt(world, 'rescue_daemon', 'door', DOOR_UNLOCK)}")
    print(f"  rescue_daemon WINDOW_SET  : "
          f"{attempt(world, 'rescue_daemon', 'window', WINDOW_SET, 100)}")
    print(f"  media_app    DOOR_UNLOCK : "
          f"{attempt(world, 'media_app', 'door', DOOR_UNLOCK)}")

    door_frame = world.bus.last_frame(CAN_ID_DOOR)
    window_frame = world.bus.last_frame(CAN_ID_WINDOW)
    print("  physical effects on the CAN bus:")
    print(f"    door frame   {door_frame.arb_id:#05x}: "
          f"{'unlocked' if door_frame.data[0] == 0 else 'locked'}")
    print(f"    window frame {window_frame.arb_id:#05x}: "
          f"position {window_frame.data[0]}%")

    world.clear_emergency()
    print(f"[{world.situation}]  <- emergency_cleared")
    print(f"  rescue_daemon DOOR_UNLOCK : "
          f"{attempt(world, 'rescue_daemon', 'door', DOOR_UNLOCK)}")


def main():
    for config in (EnforcementConfig.SACK_INDEPENDENT,
                   EnforcementConfig.SACK_APPARMOR):
        run_prototype(config)
    print("\nBoth prototypes enforce the same situation-aware policy —")
    print("independent SACK with per-ioctl-command granularity, the")
    print("bridge by rewriting AppArmor profiles at each transition.")


if __name__ == "__main__":
    main()
