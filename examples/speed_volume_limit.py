#!/usr/bin/env python3
"""Situation-aware volume control (the CVE-2023-6073 scenario).

"An attacker can set the audio volume to its maximum in Volkswagen ID.3.
It may threaten the driver's focus when the CAV is in a driving situation
while it is not so dangerous in a parking situation."  (paper §I)

The default IVI policy encodes exactly that: VOLUME_SET is granted to the
volume service only while parked with a driver; while driving only
VOLUME_GET survives.  This example drives the vehicle through a speed
profile and shows the permission flipping with the physics.

Run:  python examples/speed_volume_limit.py
"""

from repro.kernel import KernelError
from repro.vehicle import EnforcementConfig, build_ivi_world


def set_volume(world, level):
    try:
        world.request_volume("media_app", level)
        return f"volume set to {level}"
    except KernelError as err:
        return f"DENIED by kernel ({err.errno.name})"
    except Exception as err:  # user-space framework denial
        return f"DENIED in user space ({err})"


def main():
    world = build_ivi_world(EnforcementConfig.SACK_INDEPENDENT)
    audio = world.devices["audio"]

    print(f"[{world.situation}] parked, volume={audio.volume}")
    print(f"  media app requests volume 60 -> {set_volume(world, 60)}")

    print("\nAccelerating to highway speed...")
    world.drive_to_speed(100)
    print(f"[{world.situation}] {world.dynamics.speed_kmh:.0f} km/h")
    print(f"  media app requests volume 100 -> {set_volume(world, 100)}")
    print(f"  (volume remains {audio.volume})")

    print("\nEven reading volume is still fine while driving:")
    from repro.vehicle import VOLUME_GET
    level = world.device_ioctl("media_app", "audio", VOLUME_GET)
    print(f"  VOLUME_GET -> {level}")

    print("\nBraking to a stop...")
    world.park()
    print(f"[{world.situation}] {world.dynamics.speed_kmh:.0f} km/h")
    print(f"  media app requests volume 30 -> {set_volume(world, 30)}")

    print("\nThe permission followed the *physics*: no app asked for a")
    print("policy change; the SDS observed speed, emitted situation")
    print("events, and the kernel state machine adapted the MAC policy.")

    ssm = world.sack.ssm
    print(f"\nSSM history ({ssm.transition_count} transitions):")
    for transition in ssm.history:
        print(f"  {transition.from_state} --{transition.event.name}--> "
              f"{transition.to_state}")


if __name__ == "__main__":
    main()
