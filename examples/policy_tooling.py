#!/usr/bin/env python3
"""Authoring SACK policies: the language, the checker, and SACKfs loading.

Walks through the policy workflow a security administrator would use:
  1. write a policy in the SACK policy language (Table I interfaces),
  2. run the policy-checking tools (errors + conflict warnings),
  3. fix the issues, compile, and inspect the per-state rulesets,
  4. load the policy into a live kernel through securityfs.

Run:  python examples/policy_tooling.py
"""

from repro.lsm import boot_kernel
from repro.sack import (SackFs, SackLsm, check_policy, compile_policy,
                        format_policy, parse_policy)
from repro.vehicle.devices import IOCTL_SYMBOLS

DRAFT = """
policy cargo_bay;
initial transit;

states {
  transit = 0 "driving between depots";
  loading = 1 "parked at a loading dock";
  sealed = 2  "cargo sealed, long-haul";
}

transitions {
  transit -> loading on arrived_at_dock;
  loading -> transit on departed_dock;
  transit -> sealed on cargo_sealed;
  # BUG: nothing ever leaves 'sealed', and 'cargo_scale' is never granted
}

permissions {
  TELEMETRY "read-only sensors";
  CARGO_DOOR "open the cargo bay";
  CARGO_SCALE "tare the scale";
}

state_per {
  transit: TELEMETRY;
  loading: TELEMETRY, CARGO_DOOR;
  sealed: TELEMETRY;
}

per_rules {
  TELEMETRY {
    allow read /dev/car/**;
  }
  CARGO_DOOR {
    allow ioctl /dev/car/door cmd=DOOR_UNLOCK,DOOR_LOCK subject=dock_agent;
    allow write /dev/car/door subject=dock_agent;
    deny write /dev/car/door subject=dock_agent;   # conflicting rule
  }
  CARGO_SCALE {
    allow read /etc/scale.conf;                    # outside the guard
  }
}

guard /dev/car/**;
"""


def main():
    print("1. Parse the draft policy")
    policy = parse_policy(DRAFT)
    print(f"   parsed {policy.name!r}: {len(policy.states)} states, "
          f"{policy.rule_count()} MAC rules")

    print("\n2. Run the policy checker")
    diagnostics = check_policy(policy)
    for diag in diagnostics:
        print(f"   {diag}")
    assert diagnostics, "the draft is intentionally flawed"

    print("\n3. Fix the draft: add the missing transition, drop the "
          "conflicting deny,\n   grant CARGO_SCALE while loading, and "
          "guard the scale config")
    fixed_text = DRAFT.replace(
        "  # BUG: nothing ever leaves 'sealed', and 'cargo_scale' is "
        "never granted",
        "  sealed -> loading on arrived_at_dock;")
    fixed_text = fixed_text.replace(
        "  deny write /dev/car/door subject=dock_agent;   "
        "# conflicting rule\n", "")
    fixed_text = fixed_text.replace(
        "loading: TELEMETRY, CARGO_DOOR;",
        "loading: TELEMETRY, CARGO_DOOR, CARGO_SCALE;")
    fixed_text = fixed_text.replace(
        "guard /dev/car/**;",
        "guard /dev/car/**;\nguard /etc/scale.conf;")
    fixed = parse_policy(fixed_text)
    remaining = check_policy(fixed)
    print(f"   remaining diagnostics: "
          f"{[str(d) for d in remaining] or 'none'}")

    print("\n4. Compile and inspect per-state rulesets")
    compiled = compile_policy(fixed, ioctl_symbols=IOCTL_SYMBOLS)
    for state_name, ruleset in compiled.rulesets.items():
        print(f"   state {state_name:>8}: {ruleset.rule_count} rules")
    loading = compiled.ruleset_for("loading")
    from repro.sack import RuleOp
    print("   loading/dock_agent may unlock the cargo door:",
          loading.check(RuleOp.IOCTL, "/dev/car/door", "dock_agent",
                        IOCTL_SYMBOLS["DOOR_UNLOCK"]))
    print("   transit/dock_agent may unlock the cargo door:",
          compiled.ruleset_for("transit").check(
              RuleOp.IOCTL, "/dev/car/door", "dock_agent",
              IOCTL_SYMBOLS["DOOR_UNLOCK"]))

    print("\n5. Canonical form (format_policy round-trips via parse):")
    canonical = format_policy(fixed)
    assert parse_policy(canonical).rule_count() == fixed.rule_count()
    print("   " + "\n   ".join(canonical.splitlines()[:8]) + "\n   ...")

    print("\n6. Load into a live kernel through securityfs")
    sack = SackLsm()
    kernel, _ = boot_kernel([sack])
    SackFs(kernel, sack, ioctl_symbols=IOCTL_SYMBOLS)
    kernel.write_file(kernel.procs.init,
                      "/sys/kernel/security/SACK/policy",
                      canonical.encode(), create=False)
    current = kernel.read_file(kernel.procs.init,
                               "/sys/kernel/security/SACK/current")
    print(f"   /sys/kernel/security/SACK/current -> {current.decode()!r}")
    states = kernel.read_file(kernel.procs.init,
                              "/sys/kernel/security/SACK/states")
    print("   /sys/kernel/security/SACK/states:")
    for line in states.decode().splitlines():
        print(f"     {line}")


if __name__ == "__main__":
    main()
