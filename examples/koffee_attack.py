#!/usr/bin/env python3
"""KOFFEE (CVE-2020-8539) and CVE-2023-6073 attack demonstration.

The attacker controls code inside the IVI media app.  It does NOT ask the
user-space permission framework for anything — it opens the device nodes
directly and injects ioctls, exactly the bypass the paper's motivation
describes.  Only kernel-level MAC can stop it; only *situation-aware*
kernel MAC can stop it while still letting the rescue daemon work in an
emergency.

Run:  python examples/koffee_attack.py
"""

from repro.vehicle import (EnforcementConfig, KoffeeAttack, VolumeMaxAttack,
                           build_ivi_world)


def situation_worlds(config):
    """Yield (label, world) in three situations."""
    world = build_ivi_world(config)
    yield "parked", world
    world = build_ivi_world(config)
    world.drive_to_speed(60)
    yield "driving", world
    world = build_ivi_world(config)
    world.drive_to_speed(60)
    world.trigger_crash()
    yield "emergency", world


def main():
    print(f"{'configuration':>18} {'situation':>10} "
          f"{'KOFFEE doors':>14} {'CVE volume':>12}")
    print("-" * 58)
    for config in EnforcementConfig:
        for label, world in situation_worlds(config):
            koffee = KoffeeAttack(world).run()
            volume = VolumeMaxAttack(world).run()
            print(f"{config.value:>18} {label:>10} "
                  f"{'BLOCKED' if koffee.blocked else '** PWNED **':>14} "
                  f"{'BLOCKED' if volume.blocked else '** PWNED **':>12}")

    print()
    print("Reading the matrix:")
    print(" * none: user-space checks alone — the attacks always land")
    print("   (this is CVE-2020-8539 / CVE-2023-6073 as reported).")
    print(" * apparmor: static MAC blocks the attacks, but it would also")
    print("   block the rescue daemon in an emergency (no situations).")
    print(" * sack-*: attacks blocked in every situation, while the")
    print("   emergency rescue path still works (see the case study).")

    # Demonstrate the last claim explicitly.
    world = build_ivi_world(EnforcementConfig.SACK_INDEPENDENT)
    world.drive_to_speed(60)
    world.trigger_crash()
    assert KoffeeAttack(world).run().blocked
    world.rescue_unlock_doors()
    print(f"\nVerified: in the emergency the attacker stays blocked while "
          f"the rescue daemon opened the doors "
          f"(locked={world.devices['door'].all_locked}).")

    print("\nAudit trail of the blocked injections (last 3 records):")
    for record in world.kernel.audit.by_kind("sack_denied")[-3:]:
        print(f"  pid={record.pid} comm={record.comm}: {record.detail}")


if __name__ == "__main__":
    main()
