#!/usr/bin/env python3
"""Quickstart: boot a SACK-protected IVI world and watch permissions adapt.

Builds the full stack — simulated kernel, independent SACK LSM, SACKfs,
vehicle devices, IVI services, and the user-space situation detection
service — then drives the vehicle through the paper's running scenario:
park -> drive -> crash -> rescue -> recover.

Run:  python examples/quickstart.py
"""

from repro.kernel import KernelError
from repro.vehicle import (DOOR_UNLOCK, EnforcementConfig, build_ivi_world)


def try_unlock(world, app):
    """Attempt a door unlock as *app*; report what the kernel said."""
    try:
        world.device_ioctl(app, "door", DOOR_UNLOCK)
        return "ALLOWED"
    except KernelError as err:
        return f"DENIED ({err.errno.name})"


def main():
    print("Booting IVI world with independent SACK...")
    world = build_ivi_world(EnforcementConfig.SACK_INDEPENDENT)
    print(f"  LSM stack: {world.framework.config_lsm}")
    print(f"  situation: {world.situation}")
    print(f"  doors:     {'locked' if world.devices['door'].all_locked else 'unlocked'}")

    print("\n[parked] rescue daemon tries to unlock the doors (POLP: no)")
    print(f"  -> {try_unlock(world, 'rescue_daemon')}")

    print("\nDriver starts the car and accelerates to 60 km/h...")
    world.drive_to_speed(60)
    print(f"  situation: {world.situation} "
          f"({world.dynamics.speed_kmh:.0f} km/h)")
    print(f"  [driving] rescue daemon unlock -> "
          f"{try_unlock(world, 'rescue_daemon')}")

    print("\nCRASH! The SDS detects the impact and writes the event to")
    print("/sys/kernel/security/SACK/events; the in-kernel state machine")
    print("transitions and the adaptive policy enforcer remaps rights.")
    world.trigger_crash()
    print(f"  situation: {world.situation}")

    print("\n[emergency] rescue daemon unlocks doors and opens windows")
    world.rescue_unlock_doors()
    print(f"  doors:  {'unlocked!' if not world.devices['door'].all_locked else 'still locked?'}")
    print(f"  window: {world.devices['window'].position}% open")
    print(f"  [emergency] compromised media app unlock -> "
          f"{try_unlock(world, 'media_app')}   (subject mismatch)")

    print("\nEmergency cleared; rights are revoked again.")
    world.clear_emergency()
    print(f"  situation: {world.situation}")
    print(f"  [cleared] rescue daemon unlock -> "
          f"{try_unlock(world, 'rescue_daemon')}")

    print("\nKernel-side statistics (read from SACKfs):")
    stats = world.kernel.read_file(
        world.kernel.procs.init,
        "/sys/kernel/security/SACK/stats").decode()
    for line in stats.splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
