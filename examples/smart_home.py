#!/usr/bin/env python3
"""SACK beyond vehicles: a situation-aware smart home.

The paper's conclusion claims SACK "is a general solution at kernel
space and, therefore, applicable to scenarios such as the smartphone,
IoT and medical application".  This example runs the same SACK machinery
(policy language, SSM, SACKfs, APE) over a smart home:

  * while occupants are home, the indoor camera may NOT stream (privacy);
  * when everyone leaves, streaming is allowed and the lock control is
    frozen;
  * a break-in grants the alarm responder lock release and siren control
    — optimistic access control, exactly like the vehicle's rescue
    daemon.

Run:  python examples/smart_home.py
"""

from repro.iot import (CAM_STREAM_START, LOCK_RELEASE, SIREN_ON,
                       build_smart_home)
from repro.kernel import KernelError


def attempt(home, app, device, cmd):
    try:
        home.device_ioctl(app, device, cmd)
        return "ALLOWED"
    except KernelError as err:
        return f"DENIED ({err.errno.name})"


def show(home, label):
    print(f"\n[{home.situation}] {label}")
    print(f"  camera_service starts streaming  -> "
          f"{attempt(home, 'camera_service', 'camera', CAM_STREAM_START)}")
    print(f"  automation_app releases the lock -> "
          f"{attempt(home, 'automation_app', 'front_lock', LOCK_RELEASE)}")
    print(f"  responder_service sounds siren   -> "
          f"{attempt(home, 'responder_service', 'siren', SIREN_ON)}")


def main():
    print("Booting the smart home under independent SACK...")
    home = build_smart_home()
    show(home, "family at home (privacy first)")

    home.everyone_leaves()
    show(home, "everyone left for work")

    home.everyone_returns()
    home.nightfall()
    show(home, "bedtime")

    print("\nCRASH — a window sensor fires during the night!")
    home.window_breaks()
    show(home, "break-in: optimistic access control kicks in")
    print(f"  siren sounding: {home.devices['siren'].sounding}")
    print(f"  camera streaming for evidence: "
          f"{home.devices['camera'].streaming or 'permitted now'}")

    home.all_clear()
    show(home, "alarm cleared, back to normal")

    print("\nSame kernel, same LSM, same policy language as the vehicle —")
    print("only the policy text changed.  That is the generality claim.")


if __name__ == "__main__":
    main()
