#!/usr/bin/env python3
"""SACK on a type-enforcement backend (SACK-enhanced SELinux).

The paper's policy design "separates policy and implementation to be
compatible with different enforcement approaches" (§III-D).  This example
proves the claim: the *same* SACK policy drives a completely different
MAC model — SELinux-style type enforcement — through the SELinux bridge,
which rewrites the access-vector table at every situation transition
(and the AVC flush makes it atomic).

Run:  python examples/selinux_backend.py
"""

from repro.kernel import KernelError, user_credentials
from repro.lsm import boot_kernel
from repro.sack import SituationEvent, parse_policy
from repro.sack.selinux_bridge import SackSelinuxBridge
from repro.selinux import SelinuxLsm, parse_te_policy

TE_BASE = """
# Static TE base policy: domains, executables, device types.
type rescue_t;
type rescue_exec_t;
type media_t;
type media_exec_t;
type car_door_t;
type car_audio_t;

allow rescue_t rescue_exec_t : file { read execute };
allow media_t media_exec_t : file { read execute };
allow rescue_t car_door_t : chr_file { read getattr };
allow media_t car_audio_t : chr_file { read };
type_transition init_t rescue_exec_t : process rescue_t;
type_transition init_t media_exec_t : process media_t;
filecon /dev/car/door system_u:object_r:car_door_t;
filecon /dev/car/audio system_u:object_r:car_audio_t;
filecon /usr/bin/rescue_daemon system_u:object_r:rescue_exec_t;
filecon /usr/bin/media_app system_u:object_r:media_exec_t;
"""

SACK_POLICY = """
policy door_control_te;
initial normal;

states {
  normal = 0;
  emergency = 1;
}

transitions {
  normal -> emergency on crash_detected;
  emergency -> normal on emergency_cleared;
}

permissions {
  CONTROL_CAR_DOORS;
}

state_per {
  emergency: CONTROL_CAR_DOORS;
}

per_rules {
  CONTROL_CAR_DOORS {
    allow write /dev/car/door subject=rescue_daemon;
    allow ioctl /dev/car/door subject=rescue_daemon;
  }
}

guard /dev/car/**;
"""


def attempt(kernel, task, label):
    try:
        kernel.write_file(task, "/dev/car/door", b"unlock", create=False)
        print(f"  {label}: ALLOWED")
    except KernelError as err:
        print(f"  {label}: DENIED ({err.errno.name})")


def main():
    print("Booting CONFIG_LSM=\"sack,selinux\"...")
    selinux = SelinuxLsm(parse_te_policy(TE_BASE))
    bridge = SackSelinuxBridge(selinux, subject_domains={
        "rescue_daemon": "rescue_t", "media_app": "media_t"})
    kernel, fw = boot_kernel([bridge, selinux])
    print(f"  stack: {fw.config_lsm}")

    kernel.vfs.makedirs("/dev/car")
    kernel.vfs.create_file("/dev/car/door", mode=0o666)
    kernel.vfs.create_file("/dev/car/audio", mode=0o666)
    for exe in ("rescue_daemon", "media_app"):
        kernel.vfs.create_file(f"/usr/bin/{exe}", mode=0o755)

    bridge.load_policy(parse_policy(SACK_POLICY))
    print(f"  situation: {bridge.current_state}")

    rescue = kernel.sys_fork(kernel.procs.init)
    rescue.cred = user_credentials(0, caps=())
    kernel.sys_execve(rescue, "/usr/bin/rescue_daemon")
    media = kernel.sys_fork(kernel.procs.init)
    media.cred = user_credentials(0, caps=())
    kernel.sys_execve(media, "/usr/bin/media_app")
    print(f"  rescue daemon domain: {selinux.context_of(rescue)}")
    print(f"  media app domain:     {selinux.context_of(media)}")

    print("\n[normal] door writes:")
    attempt(kernel, rescue, "rescue_daemon")
    attempt(kernel, media, "media_app")

    print("\ncrash_detected -> the bridge rewrites the AV table:")
    bridge.ssm.process_event(SituationEvent(name="crash_detected"))
    print(f"  situation: {bridge.current_state}, "
          f"AV rules injected: {bridge.rules_injected}, "
          f"policy revision: {selinux.policy.revision}")
    attempt(kernel, rescue, "rescue_daemon")
    attempt(kernel, media, "media_app  ")

    print("\nemergency_cleared -> rules retracted:")
    bridge.ssm.process_event(SituationEvent(name="emergency_cleared"))
    attempt(kernel, rescue, "rescue_daemon")

    print(f"\nAVC statistics: {selinux.avc.stats()}")
    print("Same SACK policy text would drive AppArmor or independent")
    print("SACK unchanged — the State->Permission->MAC indirection is")
    print("what buys the backend independence.")


if __name__ == "__main__":
    main()
