"""Situation-event detectors.

Detectors turn raw sensor samples into the *edge-triggered* situation
events the SSM consumes.  SACK's key efficiency claim (C1) is that only
*events* cross the user/kernel boundary, not the sensor firehose — so each
detector keeps the state needed to emit an event exactly once per
situation change.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sack import events as ev

Samples = Dict[str, object]


class Detector:
    """Base detector: stateful sample-stream → event-name mapper."""

    name = "detector"

    def update(self, samples: Samples, now_ns: int) -> List[str]:
        """Consume one sample sweep; return newly detected event names."""
        raise NotImplementedError

    def resync(self) -> None:
        """Forget edge state after a policy (re)load.

        A policy load replaces the SSM, which restarts in the policy's
        initial state; a detector that kept its edge memory would then
        never re-emit the situation the vehicle is *currently* in.
        ``resync`` rewinds the detector to its boot assumptions so the
        next sweep re-detects reality and the new SSM catches up.
        """


class CrashDetector(Detector):
    """Crash on airbag flag or extreme deceleration.

    The deceleration threshold defaults to 40 m/s² (~4 g), in line with
    airbag-deployment criteria; commercial crash detection (paper cites
    GM/OnStar) fuses more signals, but the event contract is the same.
    """

    name = "crash"

    def __init__(self, decel_threshold_ms2: float = 40.0):
        self.decel_threshold_ms2 = decel_threshold_ms2
        self._in_crash = False

    def update(self, samples: Samples, now_ns: int) -> List[str]:
        crashed = bool(samples.get("crashed", False))
        hard_impact = samples.get("accel_ms2", 0.0) <= -self.decel_threshold_ms2
        if (crashed or hard_impact) and not self._in_crash:
            self._in_crash = True
            return [ev.CRASH_DETECTED]
        if not crashed and not hard_impact and self._in_crash:
            self._in_crash = False
            return [ev.EMERGENCY_CLEARED]
        return []

    def resync(self) -> None:
        self._in_crash = False


class DrivingStateDetector(Detector):
    """vehicle_started / vehicle_parked edges from speed + ignition."""

    name = "driving_state"

    def __init__(self, moving_threshold_kmh: float = 1.0):
        self.moving_threshold_kmh = moving_threshold_kmh
        self._driving: Optional[bool] = None

    def update(self, samples: Samples, now_ns: int) -> List[str]:
        speed = float(samples.get("speed_kmh", 0.0))
        engine = bool(samples.get("engine_on", False))
        driving = engine and speed > self.moving_threshold_kmh
        if driving == self._driving:
            return []
        first = self._driving is None
        self._driving = driving
        if driving:
            return [ev.VEHICLE_STARTED]
        # Suppress the initial "parked" edge at boot: the SSM starts there.
        return [] if first else [ev.VEHICLE_PARKED]

    def resync(self) -> None:
        # The SSM restarts parked; a moving vehicle must re-edge.
        self._driving = False


class DriverPresenceDetector(Detector):
    """driver_left / driver_returned edges from seat occupancy."""

    name = "driver_presence"

    def __init__(self):
        self._present: Optional[bool] = None

    def update(self, samples: Samples, now_ns: int) -> List[str]:
        present = bool(samples.get("driver_present", False))
        if present == self._present:
            return []
        first = self._present is None
        self._present = present
        if first:
            return []
        return [ev.DRIVER_RETURNED if present else ev.DRIVER_LEFT]

    def resync(self) -> None:
        # The SSM restarts with-driver; an empty seat must re-edge.
        self._present = True


class SpeedBandDetector(Detector):
    """speed_high / speed_low crossings with hysteresis.

    Drives the paper's Fig. 3(b) experiment (high-speed vs low-speed
    situations gating a critical file) and the CVE-2023-6073 volume case.
    """

    name = "speed_band"

    def __init__(self, threshold_kmh: float = 60.0,
                 hysteresis_kmh: float = 5.0):
        if hysteresis_kmh < 0 or threshold_kmh <= 0:
            raise ValueError("bad speed band parameters")
        self.threshold_kmh = threshold_kmh
        self.hysteresis_kmh = hysteresis_kmh
        self._high: Optional[bool] = None

    def update(self, samples: Samples, now_ns: int) -> List[str]:
        speed = float(samples.get("speed_kmh", 0.0))
        if self._high:
            high = speed > self.threshold_kmh - self.hysteresis_kmh
        else:
            high = speed > self.threshold_kmh
        if high == self._high:
            return []
        first = self._high is None
        self._high = high
        if first and not high:
            return []
        return [ev.SPEED_HIGH if high else ev.SPEED_LOW]

    def resync(self) -> None:
        self._high = False


class GeofenceDetector(Detector):
    """Zone entry/exit events from the odometer position.

    The paper's related work (Gupta et al.) treats location as an ABAC
    attribute; SACK instead turns geofence crossings into situation
    events — ``entered_zone_<name>`` / ``left_zone_<name>`` — so location
    can drive state transitions like any other situation change.
    """

    name = "geofence"

    def __init__(self, zones: Dict[str, tuple]):
        """*zones*: name -> (start_km, end_km) intervals along the route."""
        for zone, (start, end) in zones.items():
            if not zone.replace("_", "").isalnum():
                raise ValueError(f"invalid zone name {zone!r}")
            if start >= end:
                raise ValueError(f"zone {zone!r}: start must be < end")
        self.zones = dict(zones)
        self._inside: Dict[str, bool] = {}

    def update(self, samples: Samples, now_ns: int) -> List[str]:
        position = float(samples.get("position_km", 0.0))
        out: List[str] = []
        for zone, (start, end) in self.zones.items():
            inside = start <= position < end
            was_inside = self._inside.get(zone)
            if was_inside is None:
                self._inside[zone] = inside
                if inside:
                    out.append(f"entered_zone_{zone}")
                continue
            if inside != was_inside:
                self._inside[zone] = inside
                out.append(f"entered_zone_{zone}" if inside
                           else f"left_zone_{zone}")
        return out

    def resync(self) -> None:
        self._inside = {}


def default_detector_suite() -> List[Detector]:
    return [CrashDetector(), DrivingStateDetector(),
            DriverPresenceDetector(), SpeedBandDetector()]
