"""The Situation Detection Service (SDS) — paper §III-B, user space.

The SDS is a privileged user-space daemon: it samples sensors, runs the
detectors, and forwards detected situation events to the kernel by writing
lines to SACKfs (``/sys/kernel/security/SACK/events``).  It is the *only*
component that bridges situation tracking (user space) and enforcement
(kernel) — the decoupling the paper credits for consistency and POLP.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..kernel.errors import KernelError
from ..sack.sackfs import EVENTS_PATH
from .detectors import Detector, default_detector_suite
from .sensors import Sensor, default_sensor_suite, sample_all


class SdsStats:
    """Operational counters plus the user→kernel latency samples."""

    def __init__(self):
        self.polls = 0
        self.events_sent = 0
        self.events_failed = 0
        self.send_latencies_ns: List[int] = []

    @property
    def mean_latency_us(self) -> float:
        if not self.send_latencies_ns:
            return 0.0
        return sum(self.send_latencies_ns) / len(self.send_latencies_ns) / 1e3

    def summary(self) -> Dict[str, object]:
        return {
            "polls": self.polls,
            "events_sent": self.events_sent,
            "events_failed": self.events_failed,
            "mean_send_latency_us": round(self.mean_latency_us, 3),
        }


class SituationDetectionService:
    """Samples, detects, and transmits — one poll per vehicle tick."""

    def __init__(self, kernel, task, dynamics,
                 sensors: Optional[List[Sensor]] = None,
                 detectors: Optional[List[Detector]] = None,
                 events_path: str = EVENTS_PATH,
                 poll_period_ms: float = 10.0):
        self.kernel = kernel
        self.task = task
        self.dynamics = dynamics
        self.sensors = sensors if sensors is not None else default_sensor_suite()
        self.detectors = (detectors if detectors is not None
                          else default_detector_suite())
        self.events_path = events_path
        self.poll_period_ms = poll_period_ms
        self.stats = SdsStats()
        self.last_samples: Dict[str, object] = {}

    def poll(self) -> List[str]:
        """One detection cycle; returns the event names transmitted."""
        self.stats.polls += 1
        now_ns = self.kernel.clock.now_ns
        samples = sample_all(self.sensors, self.dynamics)
        self.last_samples = samples
        sent: List[str] = []
        for detector in self.detectors:
            for event_name in detector.update(samples, now_ns):
                if self.send_event(event_name, samples):
                    sent.append(event_name)
        return sent

    def send_event(self, event_name: str,
                   samples: Optional[Dict[str, object]] = None) -> bool:
        """Write one event line to SACKfs; returns success."""
        payload = ""
        if samples and "speed_kmh" in samples:
            payload = f" speed={samples['speed_kmh']:.0f}"
        line = f"{event_name}{payload}\n".encode()
        start = time.perf_counter_ns()
        try:
            self.kernel.write_file(self.task, self.events_path, line,
                                   create=False)
        except KernelError:
            self.stats.events_failed += 1
            return False
        self.stats.send_latencies_ns.append(time.perf_counter_ns() - start)
        self.stats.events_sent += 1
        return True

    def run(self, ticks: int, step_dynamics: bool = True,
            dt_s: Optional[float] = None) -> List[str]:
        """Run *ticks* poll cycles, advancing dynamics and virtual time."""
        dt_s = dt_s if dt_s is not None else self.poll_period_ms / 1e3
        all_events: List[str] = []
        for _ in range(ticks):
            if step_dynamics:
                self.dynamics.step(dt_s)
            self.kernel.clock.advance_ms(self.poll_period_ms)
            all_events.extend(self.poll())
        return all_events
