"""The Situation Detection Service (SDS) — paper §III-B, user space.

The SDS is a privileged user-space daemon: it samples sensors, runs the
detectors, and forwards detected situation events to the kernel by writing
lines to SACKfs (``/sys/kernel/security/SACK/events``).  It is the *only*
component that bridges situation tracking (user space) and enforcement
(kernel) — the decoupling the paper credits for consistency and POLP.

Resilience (see ``docs/fault-injection.md``): failed sends land in a
bounded, coalescing outbox retried with exponential backoff on the virtual
clock; sensors carry per-sensor health with last-known-good fallback; and
a periodic ``sds_heartbeat`` keeps the kernel's staleness watchdog fed
even when no situation changes.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict, deque
from typing import Dict, List, Optional

from ..faults import points as fault_points
from ..kernel.errors import KernelError
from ..obs.spans import TRACEPARENT_KEY
from ..sack.events import HEARTBEAT
from ..sack.sackfs import EVENTS_PATH
from .detectors import Detector, default_detector_suite
from .sensors import Sensor, default_sensor_suite, span_attributes

#: Latency samples kept for percentile inspection; the mean/max are
#: streamed so the window size never biases the summary.
LATENCY_WINDOW = 1024

#: Outbox capacity: distinct coalesced events awaiting retry.
OUTBOX_CAPACITY = 64

#: Retry backoff bounds (virtual-clock milliseconds).
RETRY_BACKOFF_INITIAL_MS = 20.0
RETRY_BACKOFF_MAX_MS = 2000.0


class SdsStats:
    """Operational counters plus the user→kernel latency samples.

    Latency samples are bounded (a long soak must not grow memory), so
    the mean and max are maintained as running aggregates over *all*
    sends, not just the retained window.
    """

    def __init__(self, latency_window: int = LATENCY_WINDOW):
        self.polls = 0
        self.events_sent = 0
        self.events_failed = 0
        self.retries = 0
        self.outbox_dropped = 0
        self.heartbeats_sent = 0
        self.heartbeats_failed = 0
        self.sensor_faults = 0
        self.send_latencies_ns = deque(maxlen=latency_window)
        self._latency_count = 0
        self._latency_total_ns = 0
        self._latency_max_ns = 0

    def record_latency(self, latency_ns: int) -> None:
        self.send_latencies_ns.append(latency_ns)
        self._latency_count += 1
        self._latency_total_ns += latency_ns
        if latency_ns > self._latency_max_ns:
            self._latency_max_ns = latency_ns

    @property
    def mean_latency_us(self) -> float:
        if not self._latency_count:
            return 0.0
        return self._latency_total_ns / self._latency_count / 1e3

    @property
    def max_latency_us(self) -> float:
        return self._latency_max_ns / 1e3

    def summary(self) -> Dict[str, object]:
        return {
            "polls": self.polls,
            "events_sent": self.events_sent,
            "events_failed": self.events_failed,
            "retries": self.retries,
            "outbox_dropped": self.outbox_dropped,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_failed": self.heartbeats_failed,
            "sensor_faults": self.sensor_faults,
            "mean_send_latency_us": round(self.mean_latency_us, 3),
            "max_send_latency_us": round(self.max_latency_us, 3),
        }


@dataclasses.dataclass
class SensorHealth:
    """Per-sensor liveness tracked by the SDS supervisor."""

    ok: bool = True
    consecutive_failures: int = 0
    total_failures: int = 0
    last_good: object = None

    def record_good(self, value: object) -> None:
        self.ok = True
        self.consecutive_failures = 0
        self.last_good = value

    def record_failure(self) -> None:
        self.ok = False
        self.consecutive_failures += 1
        self.total_failures += 1


class SituationDetectionService:
    """Samples, detects, and transmits — one poll per vehicle tick."""

    def __init__(self, kernel, task, dynamics,
                 sensors: Optional[List[Sensor]] = None,
                 detectors: Optional[List[Detector]] = None,
                 events_path: str = EVENTS_PATH,
                 poll_period_ms: float = 10.0,
                 heartbeat_period_ms: float = 1000.0,
                 fault_plan=None):
        self.kernel = kernel
        self.task = task
        self.dynamics = dynamics
        self.sensors = sensors if sensors is not None else default_sensor_suite()
        self.detectors = (detectors if detectors is not None
                          else default_detector_suite())
        self.events_path = events_path
        self.poll_period_ms = poll_period_ms
        self.heartbeat_period_ms = heartbeat_period_ms
        self.fault_plan = fault_plan
        self.stats = SdsStats()
        self.last_samples: Dict[str, object] = {}
        self.health: Dict[str, SensorHealth] = {
            sensor.name: SensorHealth() for sensor in self.sensors}
        #: Coalescing outbox: event name -> (line, traceparent) awaiting
        #: retry.  A newer occurrence of a queued event replaces the stale
        #: payload; the traceparent keeps the retry in the original trace.
        self.outbox: "OrderedDict[str, tuple]" = OrderedDict()
        self.retry_backoff_ms = RETRY_BACKOFF_INITIAL_MS
        self.next_retry_ns: Optional[int] = None
        self._last_heartbeat_ns: Optional[int] = None

    # -- sensing -------------------------------------------------------------
    def _sample_sensors(self, now_ns: int) -> Dict[str, object]:
        """One sampling sweep, with faults applied and health tracked.

        A dropped-out sensor contributes its last-known-good value (the
        detectors keep running on slightly stale data rather than on
        holes); a stuck sensor silently repeats its previous value; a
        spiked numeric sensor is scaled by the plan's magnitude.
        """
        plan = self.fault_plan
        samples: Dict[str, object] = {}
        for sensor in self.sensors:
            health = self.health.setdefault(sensor.name, SensorHealth())
            if plan is not None and plan.should_fail(
                    fault_points.SDS_SENSOR_DROPOUT, now_ns, arg=sensor.name):
                self.stats.sensor_faults += 1
                health.record_failure()
                if health.last_good is not None:
                    samples[sensor.name] = health.last_good
                continue
            value = sensor.sample(self.dynamics)
            if plan is not None and plan.should_fail(
                    fault_points.SDS_SENSOR_STUCK, now_ns, arg=sensor.name):
                self.stats.sensor_faults += 1
                if health.last_good is not None:
                    value = health.last_good
                samples[sensor.name] = value
                continue
            if (plan is not None and isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and plan.should_fail(fault_points.SDS_SENSOR_SPIKE,
                                         now_ns, arg=sensor.name)):
                self.stats.sensor_faults += 1
                value = plan.spike(value)
            health.record_good(value)
            samples[sensor.name] = value
        return samples

    def _tracer(self):
        """The kernel's span tracer, or None when tracing is off."""
        obs = getattr(self.kernel, "obs", None)
        spans = getattr(obs, "spans", None) if obs is not None else None
        return spans if spans is not None and spans.enabled else None

    def poll(self) -> List[str]:
        """One detection cycle; returns the event names transmitted."""
        self.stats.polls += 1
        now_ns = self.kernel.clock.now_ns
        samples = self._sample_sensors(now_ns)
        self.last_samples = samples
        spans = self._tracer()
        # The trace root: this sensor sweep.  Every event the detectors
        # derive from it — and everything those events cause down in the
        # kernel — hangs off this span.  Sweeps that detect nothing close
        # childless and are discarded by the tracer, so idle polling does
        # not flood the ring.
        root = None
        if spans is not None:
            root = spans.start_span("sensor.sample", stage="detect",
                                    root=True,
                                    attributes=span_attributes(samples))
        sent: List[str] = []
        try:
            for detector in self.detectors:
                for event_name in detector.update(samples, now_ns):
                    if self.send_event(event_name, samples):
                        sent.append(event_name)
        finally:
            if spans is not None:
                spans.end_span(root)
        return sent

    # -- transmission --------------------------------------------------------
    def _write_line(self, line: bytes) -> None:
        self.kernel.write_file(self.task, self.events_path, line,
                               create=False)

    def send_event(self, event_name: str,
                   samples: Optional[Dict[str, object]] = None) -> bool:
        """Write one event line to SACKfs; returns success.

        A failed send is queued in the outbox for backoff-driven retry —
        the event is delayed, not lost (unless the outbox overflows).
        """
        payload = ""
        if samples and "speed_kmh" in samples:
            payload = f" speed={samples['speed_kmh']:.0f}"
        spans = self._tracer()
        span = None
        traceparent = ""
        if spans is not None:
            span = spans.start_span("sds.send", stage="coalesce",
                                    attributes={"event": event_name})
            # Cross the user→kernel boundary explicitly: the context rides
            # the event line itself, so SACKfs resumes this exact trace.
            traceparent = span.context.to_traceparent()
            payload += f" {TRACEPARENT_KEY}={traceparent}"
        line = f"{event_name}{payload}\n".encode()
        start = time.perf_counter_ns()
        try:
            self._write_line(line)
        except KernelError:
            self.stats.events_failed += 1
            self._enqueue(event_name, line, traceparent)
            if spans is not None:
                spans.end_span(span, status="queued")
            return False
        self.stats.record_latency(time.perf_counter_ns() - start)
        self.stats.events_sent += 1
        if spans is not None:
            spans.end_span(span)
        return True

    def _enqueue(self, event_name: str, line: bytes,
                 traceparent: str = "") -> None:
        if event_name in self.outbox:
            # Coalesce: keep queue position, refresh the payload.
            self.outbox[event_name] = (line, traceparent)
            return
        if len(self.outbox) >= OUTBOX_CAPACITY:
            self.outbox.popitem(last=False)
            self.stats.outbox_dropped += 1
        self.outbox[event_name] = (line, traceparent)
        if self.next_retry_ns is None:
            self._schedule_retry()

    def _schedule_retry(self) -> None:
        delay_ns = int(self.retry_backoff_ms * 1e6)
        self.next_retry_ns = self.kernel.clock.now_ns + delay_ns

    def flush_outbox(self, now_ns: Optional[int] = None) -> int:
        """Retry queued events once the backoff deadline has passed.

        Returns the number of events delivered.  On the first failure the
        backoff doubles (capped) and the rest of the queue waits; on full
        drain the backoff resets.
        """
        if not self.outbox:
            self.next_retry_ns = None
            return 0
        now = self.kernel.clock.now_ns if now_ns is None else now_ns
        if self.next_retry_ns is not None and now < self.next_retry_ns:
            return 0
        delivered = 0
        spans = self._tracer()
        while self.outbox:
            event_name, (line, traceparent) = next(iter(self.outbox.items()))
            self.stats.retries += 1
            span = None
            if spans is not None:
                # The retry continues the original trace: its fragment is
                # parented on the queued send's remote context.
                span = spans.start_span("sds.retry", stage="coalesce",
                                        remote=traceparent or None,
                                        attributes={"event": event_name})
            start = time.perf_counter_ns()
            try:
                self._write_line(line)
            except KernelError:
                if spans is not None:
                    spans.end_span(span, status="queued")
                self.retry_backoff_ms = min(self.retry_backoff_ms * 2,
                                            RETRY_BACKOFF_MAX_MS)
                self._schedule_retry()
                return delivered
            if spans is not None:
                spans.end_span(span)
            del self.outbox[event_name]
            self.stats.record_latency(time.perf_counter_ns() - start)
            self.stats.events_sent += 1
            delivered += 1
        self.retry_backoff_ms = RETRY_BACKOFF_INITIAL_MS
        self.next_retry_ns = None
        return delivered

    def send_heartbeat(self) -> bool:
        """Tell the kernel the channel is alive (feeds its watchdog)."""
        self._last_heartbeat_ns = self.kernel.clock.now_ns
        try:
            self._write_line(f"{HEARTBEAT}\n".encode())
        except KernelError:
            self.stats.heartbeats_failed += 1
            return False
        self.stats.heartbeats_sent += 1
        return True

    def _maybe_heartbeat(self, now_ns: int) -> None:
        if self._last_heartbeat_ns is None:
            self.send_heartbeat()
            return
        due_ns = self._last_heartbeat_ns + int(self.heartbeat_period_ms * 1e6)
        if now_ns >= due_ns:
            self.send_heartbeat()

    # -- main loop -----------------------------------------------------------
    def run(self, ticks: int, step_dynamics: bool = True,
            dt_s: Optional[float] = None) -> List[str]:
        """Run *ticks* poll cycles, advancing dynamics and virtual time."""
        dt_s = dt_s if dt_s is not None else self.poll_period_ms / 1e3
        all_events: List[str] = []
        for _ in range(ticks):
            if step_dynamics:
                self.dynamics.step(dt_s)
            self.kernel.clock.advance_ms(self.poll_period_ms)
            all_events.extend(self.poll())
            self.flush_outbox()
            self._maybe_heartbeat(self.kernel.clock.now_ns)
        return all_events
