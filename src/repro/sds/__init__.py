"""Situation Detection Service: sensors, detectors, and the SDS daemon."""

from .detectors import (CrashDetector, Detector, DriverPresenceDetector,
                        DrivingStateDetector, GeofenceDetector,
                        SpeedBandDetector, default_detector_suite)
from .sensors import (Accelerometer, CrashSensor, GpsSensor, IgnitionSensor,
                      SeatOccupancySensor, Sensor, SpeedSensor,
                      default_sensor_suite, sample_all)
from .service import SdsStats, SensorHealth, SituationDetectionService

__all__ = [
    "CrashDetector", "Detector", "DriverPresenceDetector",
    "DrivingStateDetector", "SpeedBandDetector", "default_detector_suite",
    "GeofenceDetector",
    "Accelerometer", "CrashSensor", "GpsSensor", "IgnitionSensor",
    "SeatOccupancySensor", "Sensor", "SpeedSensor", "default_sensor_suite",
    "sample_all", "SdsStats", "SensorHealth", "SituationDetectionService",
]
