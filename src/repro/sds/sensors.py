"""Sensors: the SDS's view of the vehicle's environment.

Each sensor samples one signal from the vehicle dynamics model.  The paper
assumes "environmental information perception is trusted" (§III-A); the
sensors are therefore deliberately simple, faithful transducers — the
interesting logic lives in the detectors.
"""

from __future__ import annotations

from typing import Dict


class Sensor:
    """Base sensor: a named sampler over the dynamics model."""

    name = "sensor"

    def sample(self, dynamics) -> object:
        raise NotImplementedError


class SpeedSensor(Sensor):
    """Vehicle speed in km/h."""

    name = "speed_kmh"

    def sample(self, dynamics) -> float:
        return dynamics.speed_kmh


class Accelerometer(Sensor):
    """Longitudinal acceleration in m/s² (large negative = hard impact)."""

    name = "accel_ms2"

    def sample(self, dynamics) -> float:
        return dynamics.accel_ms2


class GpsSensor(Sensor):
    """Odometer-style position along the route, in km."""

    name = "position_km"

    def sample(self, dynamics) -> float:
        return dynamics.position_km


class SeatOccupancySensor(Sensor):
    """Is someone in the driver's seat?"""

    name = "driver_present"

    def sample(self, dynamics) -> bool:
        return dynamics.driver_present


class IgnitionSensor(Sensor):
    """Is the engine running?"""

    name = "engine_on"

    def sample(self, dynamics) -> bool:
        return dynamics.engine_on


class CrashSensor(Sensor):
    """Dedicated crash flag (airbag controller output)."""

    name = "crashed"

    def sample(self, dynamics) -> bool:
        return dynamics.crashed


def default_sensor_suite() -> list:
    """The sensor set a production SDS deployment would ship."""
    return [SpeedSensor(), Accelerometer(), GpsSensor(),
            SeatOccupancySensor(), IgnitionSensor(), CrashSensor()]


def sample_all(sensors, dynamics) -> Dict[str, object]:
    """One synchronized sampling sweep across *sensors*."""
    return {sensor.name: sensor.sample(dynamics) for sensor in sensors}


def span_attributes(samples: Dict[str, object]) -> Dict[str, object]:
    """Render a sampling sweep as span attributes.

    Floats are rounded so attribute values stay stable (and readable)
    across runs; booleans become 0/1 as they would on a real wire.
    """
    attrs: Dict[str, object] = {}
    for name, value in samples.items():
        if isinstance(value, bool):
            attrs[name] = int(value)
        elif isinstance(value, float):
            attrs[name] = round(value, 3)
        else:
            attrs[name] = value
    return attrs
