"""ABAC-in-LSM baseline (Varshith et al.), for comparison with SACK."""

from .attributes import (DAYS, EnvironmentAttributes, subject_attributes)
from .module import AbacLsm
from .policy import AbacEffect, AbacPolicy, AbacRule

__all__ = ["DAYS", "EnvironmentAttributes", "subject_attributes",
           "AbacLsm", "AbacEffect", "AbacPolicy", "AbacRule"]
