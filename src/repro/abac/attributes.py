"""Attribute providers for the ABAC baseline.

This package reimplements the approach of Varshith & Sural et al.
("Enabling attribute-based access control in Linux kernel", AsiaCCS'22 /
TDSC'23), which the paper positions as the closest prior kernel-level
work: an LSM that evaluates *attributes* per access, where the only
environmental attributes are clock-derived (time of day, day of week).

The contrast with SACK is architectural: ABAC queries the environment on
**every access check** (situation tracking entangled with enforcement),
while SACK tracks situations once in user space and the kernel merely
indexes precompiled rulesets by the current state.
"""

from __future__ import annotations

from typing import Dict

from ..kernel.clock import NSEC_PER_SEC, VirtualClock

SECONDS_PER_DAY = 86_400
DAYS = ("mon", "tue", "wed", "thu", "fri", "sat", "sun")


class EnvironmentAttributes:
    """Clock-derived environmental attributes (the baseline's limit)."""

    def __init__(self, clock: VirtualClock, epoch_weekday: int = 0):
        """*epoch_weekday*: which day of week virtual time 0 falls on
        (0 = Monday)."""
        self.clock = clock
        self.epoch_weekday = epoch_weekday % 7
        self.queries = 0

    def hour_of_day(self) -> int:
        self.queries += 1
        seconds = self.clock.now_ns // NSEC_PER_SEC
        return (seconds % SECONDS_PER_DAY) // 3600

    def day_of_week(self) -> str:
        self.queries += 1
        days = self.clock.now_ns // NSEC_PER_SEC // SECONDS_PER_DAY
        return DAYS[(self.epoch_weekday + days) % 7]

    def snapshot(self) -> Dict[str, object]:
        return {"hour": self.hour_of_day(), "day": self.day_of_week()}


def subject_attributes(task) -> Dict[str, object]:
    """The subject attributes the baseline exposes."""
    return {
        "uid": task.cred.euid,
        "gid": task.cred.egid,
        "comm": task.comm,
        "exe": task.exe_path,
    }
