"""ABAC rules and policy with deny-overrides combining."""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..apparmor.globs import compile_glob
from ..sack.policy.model import RuleOp


class AbacEffect(enum.Enum):
    PERMIT = "permit"
    DENY = "deny"


@dataclasses.dataclass(frozen=True)
class AbacRule:
    """One attribute rule.

    Conditions are conjunctive: subject attributes must all match, the
    object path must match the glob, the op must be listed, and the
    environmental window (hours, days) must contain "now".  Empty
    condition = wildcard.
    """

    effect: AbacEffect
    ops: FrozenSet[RuleOp]
    path_glob: str
    subject_equals: Tuple[Tuple[str, object], ...] = ()
    hour_range: Optional[Tuple[int, int]] = None   # [start, end) hours
    days: FrozenSet[str] = frozenset()

    def __post_init__(self):
        compile_glob(self.path_glob)
        if self.hour_range is not None:
            start, end = self.hour_range
            if not (0 <= start < 24 and 0 < end <= 24):
                raise ValueError(f"bad hour range {self.hour_range}")

    def matches(self, op: RuleOp, path: str,
                subject: Dict[str, object],
                environment: Dict[str, object]) -> bool:
        if op not in self.ops:
            return False
        if compile_glob(self.path_glob).match(path) is None:
            return False
        for key, expected in self.subject_equals:
            if subject.get(key) != expected:
                return False
        if self.hour_range is not None:
            start, end = self.hour_range
            hour = environment["hour"]
            inside = (start <= hour < end) if start < end \
                else (hour >= start or hour < end)
            if not inside:
                return False
        if self.days and environment["day"] not in self.days:
            return False
        return True


class AbacPolicy:
    """A rule list with deny-overrides and guard-scoped default deny."""

    def __init__(self, rules: List[AbacRule], guards: List[str],
                 name: str = "abac-policy"):
        self.name = name
        self.rules = list(rules)
        self.guards = [compile_glob(g) for g in guards]
        self.guard_globs = list(guards)

    def governs(self, path: str) -> bool:
        return any(g.match(path) is not None for g in self.guards)

    def decide(self, op: RuleOp, path: str, subject: Dict[str, object],
               environment: Dict[str, object]) -> bool:
        """Deny-overrides: any matching deny wins; else any permit; else
        allowed only when ungoverned."""
        permitted = False
        for rule in self.rules:
            if rule.matches(op, path, subject, environment):
                if rule.effect is AbacEffect.DENY:
                    return False
                permitted = True
        if permitted:
            return True
        return not self.governs(path)

    def rule_count(self) -> int:
        return len(self.rules)
