"""The ABAC LSM module (the Varshith-style baseline).

Every decision hook gathers subject attributes, queries the environment
(clock), and walks the rule list — the per-access evaluation model the
paper contrasts with SACK's precompiled situation rulesets.
"""

from __future__ import annotations

from typing import Optional

from ..kernel.syscalls import MAY_READ, MAY_WRITE
from ..kernel.vfs.file import OpenFile
from ..lsm.module import LsmModule
from ..sack.policy.model import RuleOp
from .attributes import EnvironmentAttributes, subject_attributes
from .policy import AbacPolicy

MODULE_NAME = "abac"


class AbacLsm(LsmModule):
    """Attribute-based access control in the LSM framework."""

    name = MODULE_NAME

    def __init__(self, policy: Optional[AbacPolicy] = None):
        self.policy = policy
        self.environment: Optional[EnvironmentAttributes] = None
        self.denial_count = 0
        self.evaluations = 0

    def registered(self, kernel) -> None:
        super().registered(kernel)
        self.environment = EnvironmentAttributes(kernel.clock)

    def load_policy(self, policy: AbacPolicy) -> None:
        self.policy = policy
        self.audit("abac_policy_loaded",
                   f"{policy.name!r}, {policy.rule_count()} rules")

    # -- the per-access evaluation (the architectural contrast) ---------------
    def _check(self, task, op: RuleOp, path: str) -> int:
        if self.policy is None or self.environment is None:
            return 0
        self.evaluations += 1
        subject = subject_attributes(task)        # gathered per access
        environment = self.environment.snapshot()  # clock queried per access
        if self.policy.decide(op, path, subject, environment):
            return 0
        self.denial_count += 1
        self.audit("abac_denied", f"{op.value} {path} env={environment}",
                   task)
        return self.EACCES

    # -- hooks ------------------------------------------------------------------
    def file_open(self, task, file: OpenFile) -> int:
        if file.wants_read:
            rc = self._check(task, RuleOp.READ, file.path)
            if rc != 0:
                return rc
        if file.wants_write:
            return self._check(task, RuleOp.WRITE, file.path)
        return 0

    def file_permission(self, task, file: OpenFile, mask: int) -> int:
        if mask & MAY_READ:
            rc = self._check(task, RuleOp.READ, file.path)
            if rc != 0:
                return rc
        if mask & MAY_WRITE:
            return self._check(task, RuleOp.WRITE, file.path)
        return 0

    def file_ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        return self._check(task, RuleOp.IOCTL, file.path)

    def inode_create(self, task, parent_inode, path: str,
                     mode: int) -> int:
        return self._check(task, RuleOp.CREATE, path)

    def inode_unlink(self, task, inode, path: str) -> int:
        return self._check(task, RuleOp.UNLINK, path)
