"""Vehicle & IVI emulation: dynamics, CAN, devices, the IVI world, attacks."""

from .attacks import (Attack, AttackResult, KoffeeAttack, VolumeMaxAttack,
                      run_attack_campaign)
from .can import (CAN_ID_AUDIO, CAN_ID_CRASH, CAN_ID_DOOR, CAN_ID_ENGINE,
                  CAN_ID_SPEED, CAN_ID_WINDOW, CanBus, CanFrame)
from .devices import (AudioDevice, DOOR_LOCK, DOOR_UNLOCK, DoorDevice,
                      ENGINE_START, ENGINE_STOP, EngineDevice,
                      IOCTL_SYMBOLS, SpeedometerDevice, VOLUME_GET,
                      VOLUME_SET, WINDOW_DOWN, WINDOW_SET, WINDOW_UP,
                      WindowDevice)
from .dynamics import VehicleDynamics
from .ivi import (DEFAULT_SACK_POLICY, EnforcementConfig, IVI_APPARMOR_PROFILES,
                  IVI_APPS, IviWorld, PermissionDenied, PermissionFramework,
                  SDS_UID, build_ivi_world)

__all__ = [
    "Attack", "AttackResult", "KoffeeAttack", "VolumeMaxAttack",
    "run_attack_campaign", "CanBus", "CanFrame", "CAN_ID_AUDIO",
    "CAN_ID_CRASH", "CAN_ID_DOOR", "CAN_ID_ENGINE", "CAN_ID_SPEED",
    "CAN_ID_WINDOW", "AudioDevice", "DoorDevice", "EngineDevice",
    "SpeedometerDevice", "WindowDevice", "DOOR_LOCK", "DOOR_UNLOCK",
    "ENGINE_START", "ENGINE_STOP", "IOCTL_SYMBOLS", "VOLUME_GET",
    "VOLUME_SET", "WINDOW_DOWN", "WINDOW_SET", "WINDOW_UP",
    "VehicleDynamics", "DEFAULT_SACK_POLICY", "EnforcementConfig",
    "IVI_APPARMOR_PROFILES", "IVI_APPS", "IviWorld", "PermissionDenied",
    "PermissionFramework", "SDS_UID", "build_ivi_world",
]
