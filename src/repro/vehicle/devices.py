"""Vehicle device drivers: the CAV hardware behind ``/dev/car/*``.

These are the fine-grained kernel objects the paper argues MAC should
govern directly (§II-B): doors, windows, audio, engine, speedometer.  Each
driver implements the char-device file operations and broadcasts state
changes on the CAN bus.

The ioctl command numbers are exported as :data:`IOCTL_SYMBOLS` so SACK
policies can reference them by name (``cmd=DOOR_UNLOCK``).
"""

from __future__ import annotations

from typing import Dict

from ..kernel.devices import CharDevice, ioc_r, ioc_w
from ..kernel.errors import Errno, KernelError
from ..kernel.vfs.file import OpenFile
from .can import (CAN_ID_AUDIO, CAN_ID_DOOR, CAN_ID_ENGINE, CAN_ID_WINDOW,
                  CanBus, CanFrame)

# ioctl command numbers (stable ABI for policies and apps).  Direction
# bits follow the Linux _IOC convention: state-changing commands are
# write-direction, queries are read-direction — AppArmor mediates them as
# write/read access to the node respectively.
DOOR_LOCK = ioc_w(0x101)
DOOR_UNLOCK = ioc_w(0x102)
WINDOW_UP = ioc_w(0x201)
WINDOW_DOWN = ioc_w(0x202)
WINDOW_SET = ioc_w(0x203)
VOLUME_SET = ioc_w(0x301)
VOLUME_GET = ioc_r(0x302)
ENGINE_START = ioc_w(0x401)
ENGINE_STOP = ioc_w(0x402)

IOCTL_SYMBOLS: Dict[str, int] = {
    "DOOR_LOCK": DOOR_LOCK,
    "DOOR_UNLOCK": DOOR_UNLOCK,
    "WINDOW_UP": WINDOW_UP,
    "WINDOW_DOWN": WINDOW_DOWN,
    "WINDOW_SET": WINDOW_SET,
    "VOLUME_SET": VOLUME_SET,
    "VOLUME_GET": VOLUME_GET,
    "ENGINE_START": ENGINE_START,
    "ENGINE_STOP": ENGINE_STOP,
}


class CarDevice(CharDevice):
    """Base for vehicle devices: CAN broadcasting plus a clock."""

    can_id = 0

    def __init__(self, name: str, bus: CanBus, clock):
        super().__init__(name)
        self.bus = bus
        self.clock = clock

    def broadcast(self, data: bytes) -> None:
        self.bus.send(CanFrame(self.can_id, data,
                               timestamp_ns=self.clock.now_ns))


class DoorDevice(CarDevice):
    """Central door locking.  ``arg`` selects the door (0 = all)."""

    can_id = CAN_ID_DOOR
    NUM_DOORS = 4

    def __init__(self, bus: CanBus, clock):
        super().__init__("door", bus, clock)
        self.locked = [True] * self.NUM_DOORS

    @property
    def all_locked(self) -> bool:
        return all(self.locked)

    @property
    def any_unlocked(self) -> bool:
        return not self.all_locked

    def _set(self, locked: bool, door: int) -> None:
        if door == 0:
            self.locked = [locked] * self.NUM_DOORS
        elif 1 <= door <= self.NUM_DOORS:
            self.locked[door - 1] = locked
        else:
            raise KernelError(Errno.EINVAL, f"no door {door}")
        self.broadcast(bytes([0x01 if locked else 0x00, door]))

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        if cmd == DOOR_LOCK:
            self._set(True, arg)
            return 0
        if cmd == DOOR_UNLOCK:
            self._set(False, arg)
            return 0
        raise KernelError(Errno.ENOTTY, f"door: unknown ioctl {cmd:#x}")

    def write(self, task, file: OpenFile, data: bytes) -> int:
        """Text command interface: ``lock``/``unlock`` [door-number]."""
        parts = data.decode("ascii", "replace").split()
        if not parts or parts[0] not in ("lock", "unlock"):
            raise KernelError(Errno.EINVAL, f"door: bad command {data!r}")
        door = int(parts[1]) if len(parts) > 1 else 0
        self._set(parts[0] == "lock", door)
        return len(data)

    def read(self, task, file: OpenFile, count: int) -> bytes:
        state = " ".join("locked" if l else "unlocked" for l in self.locked)
        return state.encode()[:count]


class WindowDevice(CarDevice):
    """Power windows: position 0 (closed) … 100 (fully open)."""

    can_id = CAN_ID_WINDOW
    STEP = 25

    def __init__(self, bus: CanBus, clock):
        super().__init__("window", bus, clock)
        self.position = 0

    def _move(self, position: int) -> None:
        self.position = max(0, min(100, position))
        self.broadcast(bytes([self.position]))

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        if cmd == WINDOW_DOWN:
            self._move(self.position + self.STEP)
            return self.position
        if cmd == WINDOW_UP:
            self._move(self.position - self.STEP)
            return self.position
        if cmd == WINDOW_SET:
            if not 0 <= arg <= 100:
                raise KernelError(Errno.EINVAL, f"window: position {arg}")
            self._move(arg)
            return self.position
        raise KernelError(Errno.ENOTTY, f"window: unknown ioctl {cmd:#x}")

    def read(self, task, file: OpenFile, count: int) -> bytes:
        return f"{self.position}".encode()[:count]


class AudioDevice(CarDevice):
    """IVI audio: volume 0…100 (CVE-2023-6073's attack surface)."""

    can_id = CAN_ID_AUDIO
    MAX_VOLUME = 100

    def __init__(self, bus: CanBus, clock):
        super().__init__("audio", bus, clock)
        self.volume = 20

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        if cmd == VOLUME_SET:
            if not 0 <= arg <= self.MAX_VOLUME:
                raise KernelError(Errno.EINVAL, f"audio: volume {arg}")
            self.volume = arg
            self.broadcast(bytes([self.volume]))
            return self.volume
        if cmd == VOLUME_GET:
            return self.volume
        raise KernelError(Errno.ENOTTY, f"audio: unknown ioctl {cmd:#x}")

    def read(self, task, file: OpenFile, count: int) -> bytes:
        return f"{self.volume}".encode()[:count]


class EngineDevice(CarDevice):
    """Engine start/stop, wired to the dynamics model."""

    can_id = CAN_ID_ENGINE

    def __init__(self, bus: CanBus, clock, dynamics):
        super().__init__("engine", bus, clock)
        self.dynamics = dynamics

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        if cmd == ENGINE_START:
            self.dynamics.start_engine()
            self.broadcast(b"\x01")
            return 0
        if cmd == ENGINE_STOP:
            self.dynamics.stop_engine()
            self.broadcast(b"\x00")
            return 0
        raise KernelError(Errno.ENOTTY, f"engine: unknown ioctl {cmd:#x}")


class SpeedometerDevice(CarDevice):
    """Read-only speed telemetry."""

    can_id = 0x0C0

    def __init__(self, bus: CanBus, clock, dynamics):
        super().__init__("speedometer", bus, clock)
        self.dynamics = dynamics

    def read(self, task, file: OpenFile, count: int) -> bytes:
        return f"{self.dynamics.speed_kmh:.1f}".encode()[:count]
