"""Drive-cycle scenarios: scripted trips for tests and demonstrations.

A scenario is a list of timed phases (accelerate, cruise, brake, park,
crash, driver in/out).  The runner steps the dynamics and the SDS
together and records the SSM's state timeline — letting tests assert
"during phase X the system was in situation Y" over realistic trips
instead of hand-poked events.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from .ivi import IviWorld


@dataclasses.dataclass(frozen=True)
class Phase:
    """One scripted phase of a trip."""

    name: str
    duration_s: float
    #: Called once when the phase starts (dynamics manipulation).
    on_enter: Optional[Callable] = None


def _enter(action: Callable) -> Callable:
    return action


def urban_commute() -> List[Phase]:
    """Stop-and-go city driving: pull out, two lights, park."""
    return [
        Phase("start", 1.0, lambda d: (d.start_engine(),
                                       d.accelerate(2.5))),
        Phase("street", 15.0, lambda d: d.cruise()),
        Phase("red_light_brake", 6.0, lambda d: d.accelerate(-2.0)),
        Phase("pull_away", 10.0, lambda d: d.accelerate(2.5)),
        Phase("street2", 15.0, lambda d: d.cruise()),
        Phase("arrive_brake", 12.0, lambda d: d.accelerate(-2.5)),
        Phase("park", 2.0, lambda d: d.stop_engine()),
        Phase("leave_car", 2.0, lambda d: d.set_driver_present(False)),
    ]


def highway_trip() -> List[Phase]:
    """Motorway run: hard acceleration, long cruise, exit."""
    return [
        Phase("start", 1.0, lambda d: (d.start_engine(),
                                       d.accelerate(3.0))),
        Phase("onramp", 12.0, None),
        Phase("cruise", 60.0, lambda d: d.cruise()),
        Phase("exit_brake", 12.0, lambda d: d.accelerate(-2.5)),
        Phase("surface_street", 10.0, lambda d: d.accelerate(1.0)),
        Phase("arrive", 10.0, lambda d: d.accelerate(-2.0)),
        Phase("park", 2.0, lambda d: d.stop_engine()),
    ]


def crash_on_highway() -> List[Phase]:
    """A highway trip that ends in a collision and a rescue."""
    return [
        Phase("start", 1.0, lambda d: (d.start_engine(),
                                       d.accelerate(3.0))),
        Phase("accelerate", 12.0, None),
        Phase("cruise", 20.0, lambda d: d.cruise()),
        Phase("impact", 1.0, lambda d: d.crash()),
        Phase("aftermath", 10.0, None),
        Phase("rescue_done", 2.0, lambda d: d.clear_emergency()),
    ]


@dataclasses.dataclass
class PhaseRecord:
    """What happened during one phase."""

    name: str
    start_s: float
    end_s: float
    situations: List[str]
    events: List[str]
    final_speed_kmh: float

    @property
    def dominant_situation(self) -> str:
        return max(set(self.situations), key=self.situations.count)


class ScenarioRunner:
    """Runs scripted phases against an IVI world."""

    def __init__(self, world: IviWorld, tick_s: float = 0.5):
        self.world = world
        self.tick_s = tick_s

    def run(self, phases: List[Phase]) -> List[PhaseRecord]:
        records: List[PhaseRecord] = []
        elapsed = 0.0
        for phase in phases:
            if phase.on_enter is not None:
                phase.on_enter(self.world.dynamics)
            situations: List[str] = []
            events: List[str] = []
            ticks = max(1, int(phase.duration_s / self.tick_s))
            for _ in range(ticks):
                events.extend(self.world.run_sds(1, dt_s=self.tick_s))
                situations.append(self.world.situation or "none")
            records.append(PhaseRecord(
                name=phase.name, start_s=elapsed,
                end_s=elapsed + phase.duration_s,
                situations=situations, events=events,
                final_speed_kmh=self.world.dynamics.speed_kmh))
            elapsed += phase.duration_s
        return records

    def timeline(self, phases: List[Phase]) -> List[Tuple[str, str]]:
        """(phase, dominant situation) pairs — the compact trip story."""
        return [(r.name, r.dominant_situation) for r in self.run(phases)]


SCENARIOS: Dict[str, Callable[[], List[Phase]]] = {
    "urban_commute": urban_commute,
    "highway_trip": highway_trip,
    "crash_on_highway": crash_on_highway,
}
