"""A miniature CAN bus.

Device drivers broadcast state changes as CAN frames; the IVI display and
the tests subscribe to observe what physically happened (did the door
actually unlock?).  Arbitration ids follow the usual convention of lower =
higher priority.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

# Arbitration ids for the simulated vehicle's frames.
CAN_ID_CRASH = 0x010
CAN_ID_DOOR = 0x120
CAN_ID_WINDOW = 0x130
CAN_ID_AUDIO = 0x140
CAN_ID_ENGINE = 0x100
CAN_ID_SPEED = 0x0C0


@dataclasses.dataclass(frozen=True)
class CanFrame:
    """One classic CAN data frame (payload <= 8 bytes)."""

    arb_id: int
    data: bytes
    timestamp_ns: int = 0

    def __post_init__(self):
        if not 0 <= self.arb_id <= 0x7FF:
            raise ValueError(f"arbitration id out of 11-bit range: "
                             f"{self.arb_id:#x}")
        if len(self.data) > 8:
            raise ValueError("classic CAN payload is at most 8 bytes")


class CanBus:
    """Broadcast bus with per-id subscriptions and a frame log."""

    def __init__(self, log_size: int = 1024):
        self._subscribers: Dict[Optional[int], List[Callable]] = {}
        self.log: Deque[CanFrame] = deque(maxlen=log_size)
        self.frames_sent = 0

    def subscribe(self, callback: Callable[[CanFrame], None],
                  arb_id: Optional[int] = None) -> None:
        """Subscribe to frames with *arb_id* (None = all frames)."""
        self._subscribers.setdefault(arb_id, []).append(callback)

    def send(self, frame: CanFrame) -> None:
        self.frames_sent += 1
        self.log.append(frame)
        for callback in self._subscribers.get(frame.arb_id, ()):
            callback(frame)
        for callback in self._subscribers.get(None, ()):
            callback(frame)

    def frames_with_id(self, arb_id: int) -> List[CanFrame]:
        return [f for f in self.log if f.arb_id == arb_id]

    def last_frame(self, arb_id: int) -> Optional[CanFrame]:
        frames = self.frames_with_id(arb_id)
        return frames[-1] if frames else None
