"""Vehicle dynamics: the physical world the sensors observe.

A deliberately simple longitudinal model — speed, position, commanded
acceleration — plus the discrete facts access control cares about: engine
state, driver presence, and a crash flag.  A crash is modelled as the
severe deceleration pulse crash detectors key on.
"""

from __future__ import annotations

KMH_PER_MS = 3.6


class VehicleDynamics:
    """Longitudinal vehicle state, stepped at a fixed dt."""

    def __init__(self, speed_kmh: float = 0.0, driver_present: bool = True,
                 engine_on: bool = False):
        self.speed_kmh = speed_kmh
        self.position_km = 0.0
        self.accel_ms2 = 0.0
        self.commanded_accel_ms2 = 0.0
        self.driver_present = driver_present
        self.engine_on = engine_on
        self.crashed = False
        self.elapsed_s = 0.0

    # -- controls -----------------------------------------------------------
    def start_engine(self) -> None:
        self.engine_on = True

    def stop_engine(self) -> None:
        self.engine_on = False
        self.commanded_accel_ms2 = 0.0

    def accelerate(self, accel_ms2: float) -> None:
        """Command a longitudinal acceleration (negative = braking)."""
        if not self.engine_on and accel_ms2 > 0:
            raise RuntimeError("cannot accelerate with the engine off")
        self.commanded_accel_ms2 = accel_ms2

    def cruise(self) -> None:
        self.commanded_accel_ms2 = 0.0

    def crash(self) -> None:
        """An impact: speed collapses to zero within one step."""
        self.crashed = True
        self.engine_on = False

    def clear_emergency(self) -> None:
        """Rescue completed / system reset after a crash."""
        self.crashed = False
        self.accel_ms2 = 0.0

    def set_driver_present(self, present: bool) -> None:
        self.driver_present = present

    # -- integration --------------------------------------------------------
    def step(self, dt_s: float) -> None:
        """Advance the model by *dt_s* seconds."""
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        self.elapsed_s += dt_s
        old_speed_ms = self.speed_kmh / KMH_PER_MS
        if self.crashed and self.speed_kmh > 0:
            # Impact: full stop this step; accel is the impact pulse.
            new_speed_ms = 0.0
        else:
            new_speed_ms = max(0.0,
                               old_speed_ms + self.commanded_accel_ms2 * dt_s)
            if not self.engine_on:
                # Rolling drag when coasting with the engine off.
                new_speed_ms = max(0.0, new_speed_ms - 0.5 * dt_s)
        self.accel_ms2 = (new_speed_ms - old_speed_ms) / dt_s
        self.position_km += (old_speed_ms + new_speed_ms) / 2 * dt_s / 1000.0
        self.speed_kmh = new_speed_ms * KMH_PER_MS

    @property
    def is_moving(self) -> bool:
        return self.speed_kmh > 0.5

    @property
    def is_parked(self) -> bool:
        return not self.is_moving and not self.engine_on

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"VehicleDynamics(speed={self.speed_kmh:.1f}km/h, "
                f"engine={'on' if self.engine_on else 'off'}, "
                f"crashed={self.crashed})")
