"""Attack simulations from the paper's motivation and evaluation.

Two attacks, both characterised by *bypassing the user-space permission
framework* and talking to the kernel directly — the paper's core threat:

* :class:`KoffeeAttack` (CVE-2020-8539): a compromised IVI app injects
  vehicle-control commands (here: unlock the doors) straight at the device
  node, skipping every middleware check.
* :class:`VolumeMaxAttack` (CVE-2023-6073, VW ID.3): a compromised app
  forces audio volume to maximum — dangerous while driving, merely rude
  while parked, which is precisely why the mitigation must be
  situation-aware.

Each attack reports whether the *kernel* stopped it, and the tests compare
outcomes across enforcement configurations.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..kernel import KernelError, OpenFlags
from .devices import DOOR_UNLOCK, VOLUME_SET
from .ivi import IviWorld


@dataclasses.dataclass
class AttackResult:
    """Outcome of one attack attempt."""

    attack: str
    compromised_app: str
    situation: Optional[str]
    blocked: bool
    error: Optional[str]
    effect: str

    def __str__(self) -> str:
        verdict = "BLOCKED" if self.blocked else "SUCCEEDED"
        return (f"{self.attack} from {self.compromised_app} "
                f"[situation={self.situation}]: {verdict} — {self.effect}")


class Attack:
    """Base class: an attacker with code execution inside one IVI app."""

    name = "attack"

    def __init__(self, world: IviWorld, compromised_app: str = "media_app"):
        self.world = world
        self.compromised_app = compromised_app

    def _attempt_ioctl(self, device: str, cmd: int, arg: int,
                       effect_ok: str) -> AttackResult:
        """Open the device node directly and fire the ioctl.

        Deliberately does NOT consult ``world.permissions`` — that is the
        bypass.  Only the kernel can stop this.
        """
        kernel = self.world.kernel
        task = self.world.task(self.compromised_app)
        situation = self.world.situation
        try:
            fd = kernel.sys_open(task, f"/dev/car/{device}",
                                 OpenFlags.O_RDONLY)
            try:
                kernel.sys_ioctl(task, fd, cmd, arg)
            finally:
                kernel.sys_close(task, fd)
        except KernelError as err:
            return AttackResult(attack=self.name,
                                compromised_app=self.compromised_app,
                                situation=situation, blocked=True,
                                error=str(err), effect="no effect")
        return AttackResult(attack=self.name,
                            compromised_app=self.compromised_app,
                            situation=situation, blocked=False,
                            error=None, effect=effect_ok)

    def run(self) -> AttackResult:
        raise NotImplementedError


class KoffeeAttack(Attack):
    """Command injection: unlock all doors from a compromised app."""

    name = "koffee_door_unlock"

    def run(self) -> AttackResult:
        result = self._attempt_ioctl("door", DOOR_UNLOCK, 0,
                                     effect_ok="all doors unlocked")
        door = self.world.devices["door"]
        if not result.blocked and door.all_locked:
            # The ioctl returned but nothing moved — count as blocked.
            result.blocked = True
            result.effect = "no physical effect"
        return result


class VolumeMaxAttack(Attack):
    """CVE-2023-6073: force audio volume to maximum."""

    name = "cve_2023_6073_volume_max"

    def run(self) -> AttackResult:
        audio = self.world.devices["audio"]
        before = audio.volume
        result = self._attempt_ioctl("audio", VOLUME_SET, audio.MAX_VOLUME,
                                     effect_ok="volume forced to maximum")
        if not result.blocked and audio.volume == before != audio.MAX_VOLUME:
            result.blocked = True
            result.effect = "no physical effect"
        return result


def run_attack_campaign(world: IviWorld,
                        compromised_app: str = "media_app"
                        ) -> List[AttackResult]:
    """Run every attack against *world* in its current situation."""
    return [KoffeeAttack(world, compromised_app).run(),
            VolumeMaxAttack(world, compromised_app).run()]
