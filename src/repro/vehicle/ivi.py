"""The in-vehicle infotainment (IVI) world: a full system assembly.

Builds a booted kernel with a chosen enforcement configuration, the
``/dev/car`` device nodes wired to a dynamics model and CAN bus, the IVI
services as processes (media app, navigation, volume service, rescue
daemon, ignition service, SDS), AppArmor profiles for them, the default
SACK policy from the paper's running example, and the *bypassable*
user-space permission framework the paper's motivation section attacks.

This is the shared substrate for the case study (E6), the KOFFEE attack
(E7), the compatibility experiment (E8) and the examples.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from ..apparmor import AppArmorLsm, load_ubuntu_defaults
from ..kernel import (Capability, Kernel, KernelError, OpenFlags,
                      user_credentials)
from ..kernel.process import Task
from ..lsm import LsmFramework, boot_kernel
from ..sack import SackAppArmorBridge, SackFs, SackLsm, parse_policy
from ..sds import SituationDetectionService
from .can import CanBus
from .devices import (AudioDevice, DoorDevice, EngineDevice, IOCTL_SYMBOLS,
                      SpeedometerDevice, WindowDevice)
from .dynamics import VehicleDynamics


class EnforcementConfig(enum.Enum):
    """Which kernel-side enforcement the world boots with."""

    NO_LSM = "none"                      # user-space checks only
    APPARMOR = "apparmor"                # Table II baseline
    SACK_INDEPENDENT = "sack-independent"
    SACK_APPARMOR = "sack-apparmor"      # SACK-enhanced AppArmor


#: uid of the SDS daemon (authorised to write SACK events).
SDS_UID = 990

#: The IVI services: name -> (uid, user-space permissions granted).
IVI_APPS: Dict[str, tuple] = {
    "media_app": (1001, {"PLAY_MEDIA", "SET_VOLUME"}),
    "nav_app": (1002, {"READ_LOCATION"}),
    "volume_service": (1003, {"SET_VOLUME"}),
    "ignition_service": (1004, {"ENGINE_CONTROL"}),
    "rescue_daemon": (0, {"CONTROL_CAR_DOORS"}),
    "sds": (SDS_UID, {"REPORT_SITUATION"}),
}


# The paper's Fig. 2 state machine + the case-study and CVE policies.
DEFAULT_SACK_POLICY = """
policy ivi_default;
initial parking_with_driver;

states {
  driving = 0 "vehicle moving normally";
  parking_with_driver = 1 "parked, driver present";
  parking_without_driver = 2 "parked, unattended";
  emergency = 3 "crash or other emergency";
}

transitions {
  parking_with_driver -> driving on vehicle_started;
  driving -> parking_with_driver on vehicle_parked;
  parking_with_driver -> parking_without_driver on driver_left;
  parking_without_driver -> parking_with_driver on driver_returned;
  * -> emergency on crash_detected;
  emergency -> parking_with_driver on emergency_cleared;
}

permissions {
  NORMAL "read-only vehicle telemetry";
  CONTROL_CAR_DOORS "door and window actuation (rescue)";
  AUDIO_FULL "set audio volume";
  AUDIO_SAFE "query audio volume";
  ENGINE_CONTROL "start/stop the engine";
}

state_per {
  driving: NORMAL, AUDIO_SAFE;
  parking_with_driver: NORMAL, AUDIO_FULL, AUDIO_SAFE, ENGINE_CONTROL;
  parking_without_driver: NORMAL, AUDIO_SAFE;
  emergency: NORMAL, CONTROL_CAR_DOORS, AUDIO_SAFE;
}

per_rules {
  NORMAL {
    allow read /dev/car/**;
  }
  CONTROL_CAR_DOORS {
    allow ioctl /dev/car/door cmd=DOOR_LOCK,DOOR_UNLOCK subject=rescue_daemon;
    allow write /dev/car/door subject=rescue_daemon;
    allow ioctl /dev/car/window cmd=WINDOW_UP,WINDOW_DOWN,WINDOW_SET subject=rescue_daemon;
  }
  AUDIO_FULL {
    allow ioctl /dev/car/audio cmd=VOLUME_SET,VOLUME_GET subject=volume_service;
  }
  AUDIO_SAFE {
    allow ioctl /dev/car/audio cmd=VOLUME_GET;
  }
  ENGINE_CONTROL {
    allow ioctl /dev/car/engine cmd=ENGINE_START,ENGINE_STOP subject=ignition_service;
  }
}

guard /dev/car/**;

# Fail safe: on unrecoverable enforcement failure — or a silent event
# channel — assume the worst and degrade to emergency lockdown.
failsafe emergency after 2000ms;

targets {
  media_app;
  nav_app;
  volume_service;
  ignition_service;
  rescue_daemon;
}
"""


# Static AppArmor profiles for the IVI services.  Note: no write access to
# /dev/car/* here — in SACK-enhanced mode the bridge injects it per state.
IVI_APPARMOR_PROFILES = """
profile media_app /usr/bin/media_app {
  /usr/bin/media_app rm,
  /usr/lib/** rm,
  /var/media/** rw,
  /dev/car/audio r,
  /dev/car/speedometer r,
  network unix stream,
}

profile nav_app /usr/bin/nav_app {
  /usr/bin/nav_app rm,
  /usr/lib/** rm,
  /var/nav/** rw,
  /dev/car/speedometer r,
  network inet stream,
}

profile volume_service /usr/bin/volume_service {
  /usr/bin/volume_service rm,
  /usr/lib/** rm,
  /dev/car/audio r,
  network unix stream,
}

profile ignition_service /usr/bin/ignition_service {
  /usr/bin/ignition_service rm,
  /usr/lib/** rm,
  /dev/car/engine r,
}

profile rescue_daemon /usr/bin/rescue_daemon {
  /usr/bin/rescue_daemon rm,
  /usr/lib/** rm,
  /dev/car/** r,
  /var/log/rescue.log rw,
}

profile sds /usr/bin/sds {
  /usr/bin/sds rm,
  /usr/lib/** rm,
  /dev/car/** r,
  /sys/kernel/security/SACK/events w,
}
"""


class PermissionDenied(Exception):
    """User-space permission framework denial (the bypassable layer)."""


class PermissionFramework:
    """The user-space permission framework of the IVI middleware.

    This is the layer the paper's motivation shows attackers bypassing
    (KOFFEE, CVE-2023-6073): a cooperative check that well-behaved apps
    call before touching hardware.  Nothing forces a compromised app
    through it — that is exactly SACK's point.
    """

    def __init__(self, grants: Optional[Dict[str, set]] = None):
        self.grants: Dict[str, set] = {name: set(perms)
                                       for name, (_, perms) in IVI_APPS.items()}
        if grants:
            for app, perms in grants.items():
                self.grants.setdefault(app, set()).update(perms)
        self.checks = 0
        self.denials = 0

    def check(self, app: str, permission: str) -> None:
        self.checks += 1
        if permission not in self.grants.get(app, ()):
            self.denials += 1
            raise PermissionDenied(f"{app} lacks {permission}")

    def grant(self, app: str, permission: str) -> None:
        self.grants.setdefault(app, set()).add(permission)

    def revoke(self, app: str, permission: str) -> None:
        self.grants.get(app, set()).discard(permission)


class IviWorld:
    """A fully assembled IVI system."""

    def __init__(self, config: EnforcementConfig, kernel: Kernel,
                 framework: Optional[LsmFramework],
                 dynamics: VehicleDynamics, bus: CanBus,
                 devices: Dict[str, object], tasks: Dict[str, Task],
                 permission_framework: PermissionFramework,
                 apparmor: Optional[AppArmorLsm] = None,
                 sack: Optional[SackLsm] = None,
                 bridge: Optional[SackAppArmorBridge] = None,
                 sackfs: Optional[SackFs] = None,
                 sds: Optional[SituationDetectionService] = None):
        self.config = config
        self.kernel = kernel
        self.framework = framework
        self.dynamics = dynamics
        self.bus = bus
        self.devices = devices
        self.tasks = tasks
        self.permissions = permission_framework
        self.apparmor = apparmor
        self.sack = sack
        self.bridge = bridge
        self.sackfs = sackfs
        self.sds = sds

    # -- situation helpers ------------------------------------------------------
    @property
    def situation(self) -> Optional[str]:
        module = self.sack or self.bridge
        if module is None or module.ssm is None:
            return None
        return module.ssm.current_name

    def task(self, app: str) -> Task:
        return self.tasks[app]

    def run_sds(self, ticks: int = 1, dt_s: float = 0.1) -> list:
        """Advance the world: dynamics steps + SDS polls.

        With a live SDS the staleness watchdog is evaluated every tick —
        heartbeats keep it fed, so it only ever fires when the channel is
        genuinely broken.  Without an SDS (a world built for direct event
        writes) the watchdog is left to the caller; see
        :meth:`check_watchdog`.
        """
        if self.sds is None:
            for _ in range(ticks):
                self.dynamics.step(dt_s)
                self.kernel.clock.advance_s(dt_s)
            return []
        events = self.sds.run(ticks, dt_s=dt_s)
        self.check_watchdog()
        return events

    def check_watchdog(self) -> bool:
        """Evaluate the kernel's event-staleness deadline now."""
        if self.sackfs is None:
            return False
        return self.sackfs.check_watchdog()

    def drive_to_speed(self, speed_kmh: float, accel_ms2: float = 3.0,
                       max_ticks: int = 2000) -> None:
        """Start the engine and accelerate until *speed_kmh* is reached."""
        self.dynamics.start_engine()
        self.dynamics.accelerate(accel_ms2)
        ticks = 0
        while self.dynamics.speed_kmh < speed_kmh and ticks < max_ticks:
            self.run_sds(1)
            ticks += 1
        self.dynamics.cruise()
        self.run_sds(1)

    def park(self, decel_ms2: float = 4.0, max_ticks: int = 2000) -> None:
        self.dynamics.accelerate(-abs(decel_ms2))
        ticks = 0
        while self.dynamics.is_moving and ticks < max_ticks:
            self.run_sds(1)
            ticks += 1
        self.dynamics.stop_engine()
        self.run_sds(1)

    def trigger_crash(self) -> None:
        """A collision: dynamics crash + SDS detection cycle."""
        self.dynamics.crash()
        self.run_sds(2)

    def clear_emergency(self) -> None:
        self.dynamics.clear_emergency()
        self.run_sds(2)

    # -- device access paths ------------------------------------------------------
    def device_ioctl(self, app: str, device: str, cmd: int,
                     arg: int = 0) -> int:
        """Direct device access by *app* (kernel-mediated, of course)."""
        task = self.task(app)
        fd = self.kernel.sys_open(task, f"/dev/car/{device}",
                                  OpenFlags.O_RDONLY)
        try:
            return self.kernel.sys_ioctl(task, fd, cmd, arg)
        finally:
            self.kernel.sys_close(task, fd)

    def request_volume(self, app: str, level: int) -> int:
        """The legitimate path: framework check, then the volume service
        (the deputy actually holding kernel-side permission) sets it."""
        from .devices import VOLUME_SET
        self.permissions.check(app, "SET_VOLUME")
        return self.device_ioctl("volume_service", "audio", VOLUME_SET, level)

    def rescue_unlock_doors(self) -> int:
        """The rescue daemon's emergency action (case study, Fig. 4)."""
        from .devices import DOOR_UNLOCK, WINDOW_SET
        self.permissions.check("rescue_daemon", "CONTROL_CAR_DOORS")
        rc = self.device_ioctl("rescue_daemon", "door", DOOR_UNLOCK, 0)
        self.device_ioctl("rescue_daemon", "window", WINDOW_SET, 100)
        return rc


def build_ivi_world(config: EnforcementConfig = EnforcementConfig.SACK_INDEPENDENT,
                    policy_text: str = DEFAULT_SACK_POLICY,
                    with_ubuntu_profiles: bool = False,
                    with_sds: bool = True,
                    initial_speed_kmh: float = 0.0,
                    fault_plan=None) -> IviWorld:
    """Assemble and boot a complete IVI world.

    *fault_plan* (a :class:`~repro.faults.plan.FaultPlan`) is threaded to
    every layer that declares fault points: the SDS's sensors, the SACKfs
    channel, and the AppArmor bridge's profile reload.
    """
    dynamics = VehicleDynamics(speed_kmh=initial_speed_kmh)
    bus = CanBus()

    apparmor = None
    sack = None
    bridge = None
    modules = []
    if config in (EnforcementConfig.APPARMOR, EnforcementConfig.SACK_APPARMOR):
        apparmor = AppArmorLsm()
        if with_ubuntu_profiles:
            load_ubuntu_defaults(apparmor.policy)
        apparmor.policy.load_text(IVI_APPARMOR_PROFILES)
    if config is EnforcementConfig.SACK_INDEPENDENT:
        sack = SackLsm()
        modules = [sack]
    elif config is EnforcementConfig.SACK_APPARMOR:
        bridge = SackAppArmorBridge(apparmor, fault_plan=fault_plan)
        modules = [bridge, apparmor]
    elif config is EnforcementConfig.APPARMOR:
        modules = [apparmor]

    if modules:
        kernel, framework = boot_kernel(modules)
    else:
        kernel, framework = Kernel(), None

    # Device nodes.
    devices = {
        "door": DoorDevice(bus, kernel.clock),
        "window": WindowDevice(bus, kernel.clock),
        "audio": AudioDevice(bus, kernel.clock),
        "engine": EngineDevice(bus, kernel.clock, dynamics),
        "speedometer": SpeedometerDevice(bus, kernel.clock, dynamics),
    }
    kernel.vfs.makedirs("/dev/car")
    for name, driver in devices.items():
        rdev = kernel.devices.alloc_rdev()
        kernel.devices.register(rdev, driver)
        kernel.vfs.mknod(f"/dev/car/{name}", rdev, mode=0o666)

    # App binaries, working dirs, and processes.
    init = kernel.procs.init
    for d in ("/var/media", "/var/nav", "/var/log"):
        kernel.vfs.makedirs(d)
    tasks: Dict[str, Task] = {}
    for name, (uid, _perms) in IVI_APPS.items():
        exe = f"/usr/bin/{name}"
        kernel.vfs.create_file(exe, mode=0o755)
        task = kernel.sys_fork(init)
        if uid == 0:
            # Privileged services keep root but never the MAC-bypass
            # capabilities — the paper's threat-model boundary (§III-A).
            task.cred = init.cred.dropping_caps(
                Capability.CAP_MAC_OVERRIDE, Capability.CAP_MAC_ADMIN)
        else:
            task.cred = user_credentials(uid)
        kernel.sys_execve(task, exe, comm=name)
        tasks[name] = task

    # SACK policy + SACKfs.
    sackfs = None
    module = sack or bridge
    if module is not None:
        sackfs = SackFs(kernel, module,
                        authorized_event_uids={SDS_UID},
                        ioctl_symbols=IOCTL_SYMBOLS,
                        fault_plan=fault_plan)
        kernel.write_file(init, "/sys/kernel/security/SACK/policy",
                          policy_text.encode(), create=False)

    sds = None
    if with_sds and module is not None:
        sds = SituationDetectionService(kernel, tasks["sds"], dynamics,
                                        fault_plan=fault_plan)

    return IviWorld(config=config, kernel=kernel, framework=framework,
                    dynamics=dynamics, bus=bus, devices=devices,
                    tasks=tasks, permission_framework=PermissionFramework(),
                    apparmor=apparmor, sack=sack, bridge=bridge,
                    sackfs=sackfs, sds=sds)
