"""repro: a full-system reproduction of SACK (DATE 2025).

SACK — *Situation-aware Access Control in the Kernel* — makes Linux MAC
adapt to environmental situations (driving, parking, emergencies) for
connected and autonomous vehicles.  This package reproduces the system in
pure Python on a simulated kernel substrate:

* :mod:`repro.kernel` — simulated Linux kernel (VFS, processes, devices,
  IPC, mmap, syscalls with security hooks).
* :mod:`repro.lsm` — the LSM framework: module stacking, blobs, securityfs.
* :mod:`repro.apparmor` — an AppArmor simulator (profiles, parser, globs).
* :mod:`repro.sack` — the paper's contribution: situation states/events,
  the situation state machine, the policy language, the adaptive policy
  enforcer, independent SACK and SACK-enhanced AppArmor, SACKfs.
* :mod:`repro.sds` — the user-space situation detection service.
* :mod:`repro.vehicle` — vehicle dynamics, CAN, devices, the IVI world,
  and the KOFFEE / CVE-2023-6073 attack simulations.
* :mod:`repro.bench` — the LMBench-style harness behind every table and
  figure of the paper's evaluation.

Quickstart::

    from repro.vehicle import build_ivi_world, EnforcementConfig
    world = build_ivi_world(EnforcementConfig.SACK_INDEPENDENT)
    world.drive_to_speed(60)
    print(world.situation)          # 'driving'
    world.trigger_crash()
    print(world.situation)          # 'emergency'
    world.rescue_unlock_doors()     # allowed only now
"""

__version__ = "1.0.0"
