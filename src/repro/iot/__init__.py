"""Smart-home generalisation of SACK (the paper's IoT claim)."""

from .devices import (CAM_STATUS, CAM_STREAM_START, CAM_STREAM_STOP,
                      HOME_IOCTL_SYMBOLS, LOCK_ENGAGE, LOCK_RELEASE,
                      SecurityCamera, Siren, SIREN_OFF, SIREN_ON,
                      SmartLock, THERMO_GET, THERMO_SET, Thermostat)
from .home import (HOME_APPS, HOME_SACK_POLICY, MONITOR_UID,
                   SmartHomeWorld, build_smart_home)

__all__ = [
    "CAM_STATUS", "CAM_STREAM_START", "CAM_STREAM_STOP",
    "HOME_IOCTL_SYMBOLS", "LOCK_ENGAGE", "LOCK_RELEASE", "SecurityCamera",
    "Siren", "SIREN_OFF", "SIREN_ON", "SmartLock", "THERMO_GET",
    "THERMO_SET", "Thermostat", "HOME_APPS", "HOME_SACK_POLICY",
    "MONITOR_UID", "SmartHomeWorld", "build_smart_home",
]
