"""Smart-home devices for the IoT generalisation of SACK.

The paper closes by claiming SACK "is a general solution at kernel space
and, therefore, applicable to scenarios such as the smartphone, IoT and
medical application".  This package substantiates the IoT claim: the same
SACK machinery (states, events, SACKfs, APE) governs a smart home's
devices, following the situational access control literature the paper
builds on (Schuster et al.'s situation oracles, Malkin et al.'s
optimistic access control for emergencies).
"""

from __future__ import annotations

from typing import Dict

from ..kernel.devices import CharDevice, ioc_r, ioc_w
from ..kernel.errors import Errno, KernelError
from ..kernel.vfs.file import OpenFile

# ioctl command ABI for the home devices.
LOCK_ENGAGE = ioc_w(0x501)
LOCK_RELEASE = ioc_w(0x502)
CAM_STREAM_START = ioc_w(0x601)
CAM_STREAM_STOP = ioc_w(0x602)
CAM_STATUS = ioc_r(0x603)
THERMO_SET = ioc_w(0x701)
THERMO_GET = ioc_r(0x702)
SIREN_ON = ioc_w(0x801)
SIREN_OFF = ioc_w(0x802)

HOME_IOCTL_SYMBOLS: Dict[str, int] = {
    "LOCK_ENGAGE": LOCK_ENGAGE,
    "LOCK_RELEASE": LOCK_RELEASE,
    "CAM_STREAM_START": CAM_STREAM_START,
    "CAM_STREAM_STOP": CAM_STREAM_STOP,
    "CAM_STATUS": CAM_STATUS,
    "THERMO_SET": THERMO_SET,
    "THERMO_GET": THERMO_GET,
    "SIREN_ON": SIREN_ON,
    "SIREN_OFF": SIREN_OFF,
}


class SmartLock(CharDevice):
    """Front-door smart lock."""

    def __init__(self):
        super().__init__("front_lock")
        self.engaged = True

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        if cmd == LOCK_ENGAGE:
            self.engaged = True
            return 0
        if cmd == LOCK_RELEASE:
            self.engaged = False
            return 0
        raise KernelError(Errno.ENOTTY, f"lock: unknown ioctl {cmd:#x}")

    def read(self, task, file: OpenFile, count: int) -> bytes:
        return (b"engaged" if self.engaged else b"released")[:count]


class SecurityCamera(CharDevice):
    """Indoor camera — the privacy-sensitive device."""

    def __init__(self):
        super().__init__("camera")
        self.streaming = False
        self.frames_served = 0

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        if cmd == CAM_STREAM_START:
            self.streaming = True
            return 0
        if cmd == CAM_STREAM_STOP:
            self.streaming = False
            return 0
        if cmd == CAM_STATUS:
            return 1 if self.streaming else 0
        raise KernelError(Errno.ENOTTY, f"camera: unknown ioctl {cmd:#x}")

    def read(self, task, file: OpenFile, count: int) -> bytes:
        if not self.streaming:
            raise KernelError(Errno.EAGAIN, "camera: not streaming")
        self.frames_served += 1
        return b"\x89FRAME"[:count]


class Thermostat(CharDevice):
    """Heating setpoint control."""

    MIN_C, MAX_C = 5, 30

    def __init__(self):
        super().__init__("thermostat")
        self.setpoint_c = 20

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        if cmd == THERMO_SET:
            if not self.MIN_C <= arg <= self.MAX_C:
                raise KernelError(Errno.EINVAL, f"setpoint {arg}")
            self.setpoint_c = arg
            return self.setpoint_c
        if cmd == THERMO_GET:
            return self.setpoint_c
        raise KernelError(Errno.ENOTTY,
                          f"thermostat: unknown ioctl {cmd:#x}")


class Siren(CharDevice):
    """Alarm siren."""

    def __init__(self):
        super().__init__("siren")
        self.sounding = False

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        if cmd == SIREN_ON:
            self.sounding = True
            return 0
        if cmd == SIREN_OFF:
            self.sounding = False
            return 0
        raise KernelError(Errno.ENOTTY, f"siren: unknown ioctl {cmd:#x}")
