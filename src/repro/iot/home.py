"""The smart-home world: SACK governing household devices.

Situations follow the smart-home access control literature the paper
cites: *home* (occupants present — indoor camera streaming is a privacy
violation), *away* (cameras may stream; locks engaged), *night*
(locks engaged, thermostat setback), and *break_in* — the optimistic
"break the glass" emergency where the responder service may release the
lock and the siren sounds (Malkin et al.'s OAC, transplanted).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..kernel import Kernel, OpenFlags, user_credentials
from ..kernel.process import Task
from ..lsm import boot_kernel
from ..sack import SackFs, SackLsm
from .devices import (HOME_IOCTL_SYMBOLS, SecurityCamera, Siren, SmartLock,
                      Thermostat)

#: uid of the home monitor daemon (the SDS analogue).
MONITOR_UID = 991

HOME_APPS = {
    "automation_app": 2001,   # scenes, thermostat schedules
    "camera_service": 2002,   # cloud streaming uploader
    "guest_app": 2003,        # a guest's phone app
    "responder_service": 0,   # alarm-company responder daemon
    "home_monitor": MONITOR_UID,
}

HOME_SACK_POLICY = """
policy smart_home;
initial home;

states {
  home = 0 "occupants present";
  away = 1 "house empty";
  night = 2 "occupants sleeping";
  break_in = 3 "intrusion detected";
}

transitions {
  home -> away on occupants_left;
  away -> home on occupants_returned;
  home -> night on night_started;
  night -> home on morning_started;
  away -> break_in on intrusion_detected;
  night -> break_in on intrusion_detected;
  break_in -> home on alarm_cleared;
}

permissions {
  STATUS "read-only device status";
  CAMERA_STREAM "start/stop camera streaming";
  LOCK_CONTROL "engage/release the front lock";
  CLIMATE "set the thermostat";
  ALARM_RESPONSE "siren + lock release for responders";
}

state_per {
  home: STATUS, LOCK_CONTROL, CLIMATE;
  away: STATUS, CAMERA_STREAM, CLIMATE;
  night: STATUS, CLIMATE;
  break_in: STATUS, CAMERA_STREAM, ALARM_RESPONSE;
}

per_rules {
  STATUS {
    allow read /dev/home/**;
    allow ioctl /dev/home/camera cmd=CAM_STATUS;
    allow ioctl /dev/home/thermostat cmd=THERMO_GET;
  }
  CAMERA_STREAM {
    allow ioctl /dev/home/camera cmd=CAM_STREAM_START,CAM_STREAM_STOP subject=camera_service;
  }
  LOCK_CONTROL {
    allow ioctl /dev/home/front_lock cmd=LOCK_ENGAGE,LOCK_RELEASE subject=automation_app;
  }
  CLIMATE {
    allow ioctl /dev/home/thermostat cmd=THERMO_SET subject=automation_app;
  }
  ALARM_RESPONSE {
    allow ioctl /dev/home/front_lock cmd=LOCK_RELEASE subject=responder_service;
    allow ioctl /dev/home/siren cmd=SIREN_ON,SIREN_OFF subject=responder_service;
  }
}

guard /dev/home/**;

targets {
  automation_app;
  camera_service;
  guest_app;
  responder_service;
}
"""


class SmartHomeWorld:
    """A booted smart home under independent SACK."""

    def __init__(self, kernel: Kernel, sack: SackLsm, sackfs: SackFs,
                 devices: Dict[str, object], tasks: Dict[str, Task]):
        self.kernel = kernel
        self.sack = sack
        self.sackfs = sackfs
        self.devices = devices
        self.tasks = tasks

    @property
    def situation(self) -> Optional[str]:
        return self.sack.current_state

    def task(self, app: str) -> Task:
        return self.tasks[app]

    def send_event(self, event: str) -> None:
        """The home monitor reports a situation event."""
        self.kernel.write_file(self.tasks["home_monitor"],
                               "/sys/kernel/security/SACK/events",
                               f"{event}\n".encode(), create=False)

    def device_ioctl(self, app: str, device: str, cmd: int,
                     arg: int = 0) -> int:
        task = self.task(app)
        fd = self.kernel.sys_open(task, f"/dev/home/{device}",
                                  OpenFlags.O_RDONLY)
        try:
            return self.kernel.sys_ioctl(task, fd, cmd, arg)
        finally:
            self.kernel.sys_close(task, fd)

    # -- scenario helpers -----------------------------------------------------
    def everyone_leaves(self) -> None:
        self.send_event("occupants_left")

    def everyone_returns(self) -> None:
        self.send_event("occupants_returned")

    def nightfall(self) -> None:
        self.send_event("night_started")

    def morning(self) -> None:
        self.send_event("morning_started")

    def window_breaks(self) -> None:
        self.send_event("intrusion_detected")

    def all_clear(self) -> None:
        self.send_event("alarm_cleared")


def build_smart_home(policy_text: str = HOME_SACK_POLICY
                     ) -> SmartHomeWorld:
    """Assemble and boot the smart home."""
    sack = SackLsm()
    kernel, _ = boot_kernel([sack])
    sackfs = SackFs(kernel, sack, authorized_event_uids={MONITOR_UID},
                    ioctl_symbols=HOME_IOCTL_SYMBOLS)

    devices = {
        "front_lock": SmartLock(),
        "camera": SecurityCamera(),
        "thermostat": Thermostat(),
        "siren": Siren(),
    }
    kernel.vfs.makedirs("/dev/home")
    for name, driver in devices.items():
        rdev = kernel.devices.alloc_rdev()
        kernel.devices.register(rdev, driver)
        kernel.vfs.mknod(f"/dev/home/{name}", rdev, mode=0o666)

    init = kernel.procs.init
    tasks: Dict[str, Task] = {}
    for name, uid in HOME_APPS.items():
        exe = f"/usr/bin/{name}"
        kernel.vfs.create_file(exe, mode=0o755)
        task = kernel.sys_fork(init)
        if uid == 0:
            from ..kernel import Capability
            task.cred = init.cred.dropping_caps(
                Capability.CAP_MAC_OVERRIDE, Capability.CAP_MAC_ADMIN)
        else:
            task.cred = user_credentials(uid)
        kernel.sys_execve(task, exe, comm=name)
        tasks[name] = task

    kernel.write_file(init, "/sys/kernel/security/SACK/policy",
                      policy_text.encode(), create=False)
    return SmartHomeWorld(kernel, sack, sackfs, devices, tasks)
