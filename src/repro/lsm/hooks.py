"""Catalogue of LSM hook names.

Mirrors (a subset of) ``include/linux/lsm_hook_defs.h``.  Modules implement
hooks as plain methods; this enum exists so the framework, the statistics
layer, and the tests can enumerate the hook surface without reflection
guesswork.
"""

from __future__ import annotations

import enum


class Hook(enum.Enum):
    """Hook identifiers, named after their Linux counterparts."""

    TASK_ALLOC = "task_alloc"
    BPRM_CHECK_SECURITY = "bprm_check_security"
    BPRM_COMMITTED_CREDS = "bprm_committed_creds"
    TASK_KILL = "task_kill"
    CAPABLE = "capable"
    INODE_CREATE = "inode_create"
    INODE_MKDIR = "inode_mkdir"
    INODE_MKNOD = "inode_mknod"
    INODE_UNLINK = "inode_unlink"
    INODE_RMDIR = "inode_rmdir"
    INODE_RENAME = "inode_rename"
    INODE_GETATTR = "inode_getattr"
    INODE_SETATTR = "inode_setattr"
    FILE_OPEN = "file_open"
    FILE_PERMISSION = "file_permission"
    FILE_IOCTL = "file_ioctl"
    MMAP_FILE = "mmap_file"
    SOCKET_CREATE = "socket_create"
    SOCKET_BIND = "socket_bind"
    SOCKET_LISTEN = "socket_listen"
    SOCKET_CONNECT = "socket_connect"
    SOCKET_ACCEPT = "socket_accept"
    SOCKET_SENDMSG = "socket_sendmsg"
    SOCKET_RECVMSG = "socket_recvmsg"


#: Hooks that return an authorization decision (int); the rest are
#: notification-only (``void`` in Linux).
DECISION_HOOKS = frozenset(h for h in Hook
                           if h is not Hook.BPRM_COMMITTED_CREDS)

#: Hooks invoked on every file data access — the hot path the paper's
#: LMBench file benchmarks stress.
HOT_PATH_HOOKS = frozenset({Hook.FILE_PERMISSION, Hook.FILE_OPEN,
                            Hook.SOCKET_SENDMSG, Hook.SOCKET_RECVMSG})

#: Stable bit position per hook, for the framework's implemented-hook
#: bitmap (one ``and`` decides "does anyone implement this?" before any
#: dispatch bookkeeping runs).
HOOK_BIT = {hook: 1 << index for index, hook in enumerate(Hook)}
