"""The capability module — the simulator's ``commoncap``.

Always first in the stack (Linux hard-wires it).  Its only decision hook is
``capable``: a task may exercise a capability iff its credential set holds
it.  Other modules can *further* restrict capability use but can never grant
a capability the credentials lack — matching Linux semantics where all
stacked modules must agree.
"""

from __future__ import annotations

from ..kernel.credentials import Capability
from .module import LsmModule


class CapabilityLsm(LsmModule):
    """Credential-based capability checks."""

    name = "capability"

    #: A pure function of the (immutable, hashable) credential set.
    avc_cacheable = True

    def avc_subject_key(self, task):
        return task.cred

    def capable(self, task, cap: Capability) -> int:
        if task.cred.has_cap(cap):
            return 0
        return self.EPERM
