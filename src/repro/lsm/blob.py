"""Security-blob helpers.

Kernel objects (tasks, inodes, files, sockets) each carry a ``security``
dict keyed by module name — the simulator's version of the LSM blob
infrastructure (``lsm_blob_sizes``).  These helpers give modules a tidy,
typo-proof way to read and initialise their slice of an object's blob.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


def get_blob(obj: Any, module_name: str, default: Any = None) -> Any:
    """Read *module_name*'s blob from a kernel object."""
    return obj.security.get(module_name, default)


def set_blob(obj: Any, module_name: str, value: Any) -> None:
    """Replace *module_name*'s blob on a kernel object."""
    obj.security[module_name] = value


def ensure_blob(obj: Any, module_name: str,
                factory: Callable[[], Any]) -> Any:
    """Return the module's blob, creating it with *factory* if absent."""
    blob = obj.security.get(module_name)
    if blob is None:
        blob = factory()
        obj.security[module_name] = blob
    return blob


def clear_blob(obj: Any, module_name: str) -> Optional[Any]:
    """Remove and return the module's blob (None when absent)."""
    return obj.security.pop(module_name, None)
