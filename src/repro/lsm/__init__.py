"""Linux Security Module framework for the simulated kernel."""

from .avc import AccessVectorCache, AvcCore
from .blob import clear_blob, ensure_blob, get_blob, set_blob
from .capability import CapabilityLsm
from .framework import HookStats, LsmFramework, boot_kernel
from .hooks import DECISION_HOOKS, HOOK_BIT, HOT_PATH_HOOKS, Hook
from .module import LsmModule
from .securityfs import SECURITYFS_ROOT, SecurityFs

__all__ = [
    "AccessVectorCache", "AvcCore",
    "clear_blob", "ensure_blob", "get_blob", "set_blob", "CapabilityLsm",
    "HookStats", "LsmFramework", "boot_kernel", "Hook", "DECISION_HOOKS",
    "HOOK_BIT", "HOT_PATH_HOOKS", "LsmModule", "SecurityFs",
    "SECURITYFS_ROOT",
]
