"""Base class for Linux security modules in the simulator."""

from __future__ import annotations

from ..kernel.credentials import Capability
from ..kernel.errors import Errno


class LsmModule:
    """A security module: a named bundle of hook implementations.

    Subclasses override the hooks they care about.  The default for every
    decision hook is 0 (allow) — an LSM that implements nothing restricts
    nothing, exactly as in Linux.  Deny by returning ``-int(Errno.EACCES)``
    (or any negative errno).
    """

    name = "lsm"

    #: Set by the framework at registration time; lets modules reach the
    #: kernel (audit log, clock, VFS) without global state.
    kernel = None

    #: Whether the stack-level AVC may cache this module's allow
    #: decisions.  Off by default: a module must opt in by proving its
    #: decisions are a pure function of ``avc_subject_key(task)``, the
    #: hook's object key, and the situation epoch (bumping the epoch on
    #: any other input change).  A hook's dispatch is only cached when
    #: *every* module on its call list opted in.
    avc_cacheable = False

    def registered(self, kernel) -> None:
        """Called by the framework once the module joins the stack."""
        self.kernel = kernel

    def avc_subject_key(self, task):
        """Hashable digest of every task-derived input this module's
        decisions read, or None to veto caching for this dispatch (e.g.
        an allow that must keep auditing, like complain mode)."""
        return None

    def bump_avc(self, reason: str) -> None:
        """Invalidate the stack-level AVC (O(1) epoch bump).

        Safe to call from unregistered or AVC-less configurations; the
        module need not know whether a cache exists.
        """
        avc = getattr(getattr(self, "kernel", None), "security", None)
        avc = getattr(avc, "avc", None)
        if avc is not None:
            avc.bump_epoch(reason)

    # Convenience deny values ------------------------------------------------
    EACCES = -int(Errno.EACCES)
    EPERM = -int(Errno.EPERM)

    def audit(self, kind: str, detail: str, task=None) -> None:
        """Emit an audit record tagged with this module's name."""
        if self.kernel is None:
            return
        from ..kernel.syscalls import AuditRecord
        self.kernel.audit.emit(AuditRecord(
            self.kernel.clock.now_ns, kind, f"{self.name}: {detail}",
            pid=getattr(task, "pid", 0), comm=getattr(task, "comm", "")))

    # -- task hooks -----------------------------------------------------------
    def task_alloc(self, parent, child) -> int:
        return 0

    def bprm_check_security(self, task, exe_path: str) -> int:
        return 0

    def bprm_committed_creds(self, task, exe_path: str) -> None:
        pass

    def task_kill(self, task, target) -> int:
        return 0

    def capable(self, task, cap: Capability) -> int:
        return 0

    # -- inode hooks ------------------------------------------------------------
    def inode_create(self, task, parent_inode, path: str, mode: int) -> int:
        return 0

    def inode_mkdir(self, task, parent_inode, path: str, mode: int) -> int:
        return 0

    def inode_mknod(self, task, parent_inode, path: str, mode: int) -> int:
        return 0

    def inode_unlink(self, task, inode, path: str) -> int:
        return 0

    def inode_rmdir(self, task, inode, path: str) -> int:
        return 0

    def inode_rename(self, task, old_path: str, new_path: str) -> int:
        return 0

    def inode_getattr(self, task, path: str) -> int:
        return 0

    def inode_setattr(self, task, path: str) -> int:
        return 0

    # -- file hooks ------------------------------------------------------------
    def file_open(self, task, file) -> int:
        return 0

    def file_permission(self, task, file, mask: int) -> int:
        return 0

    def file_ioctl(self, task, file, cmd: int, arg: int) -> int:
        return 0

    def mmap_file(self, task, file, prot: int) -> int:
        return 0

    # -- socket hooks ------------------------------------------------------------
    def socket_create(self, task, family) -> int:
        return 0

    def socket_bind(self, task, sock, addr) -> int:
        return 0

    def socket_listen(self, task, sock) -> int:
        return 0

    def socket_connect(self, task, sock, addr) -> int:
        return 0

    def socket_accept(self, task, sock) -> int:
        return 0

    def socket_sendmsg(self, task, sock, size: int) -> int:
        return 0

    def socket_recvmsg(self, task, sock, size: int) -> int:
        return 0
