"""Precompiled decision tables: the allow fast path ahead of the AVC.

The AVC (:mod:`repro.lsm.avc`) fills *reactively* — each miss pays one
full module walk, then later accesses with the same key hit.  SACK's
structure admits something stronger: within one situation state the APE's
State → Permission → MAC-rules mapping is a *fixed function*, so the
whole allow surface can be compiled ahead of time.  At every epoch bump
(situation transition, rollback, policy load, administrative flush) the
framework recompiles a **decision table**: for every enumerable subject
(live task comms × MAC-override bit) and every literal governed path, the
full access vector each module would compute.  Steady-state dispatch is
then a single dict probe — no miss path, no insertion bookkeeping, no
LRU maintenance — consulted *before* the AVC.

Contents are **allows only**, and a zero vector is never stored: a probe
that does not cover the requested mask simply falls through to the AVC
and, past it, the full module walk — so denials keep their audit
records, counters and span attribution bit-for-bit.

Staleness discipline mirrors the AVC's: the table records the epoch it
was built against, a lookup against any other epoch refuses to answer,
and the ``last_hit_*`` / ``stale_served`` probes let the chaos harness's
I11 invariant verify at runtime that no stale-table decision was ever
served.

Disabled by default: a kernel that never touches the table exports no
metrics and changes no fingerprints.  Toggle via
``/sys/kernel/tracing/SACK/dtable/enable`` or ``sackctl dtable``.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

#: Glob metacharacters; a path pattern containing none of them names
#: exactly one object and can be enumerated into the table.
_GLOB_META = ("*", "?", "[", "{")


def is_literal_path(pattern: str) -> bool:
    """True iff *pattern* matches exactly one path (no glob syntax)."""
    return not any(ch in pattern for ch in _GLOB_META)


class DecisionTable:
    """Epoch-stamped precompiled ``(hook, subject, object) -> vector`` map.

    The framework owns (re)building it (:meth:`LsmFramework.
    rebuild_dtable`); this class owns the lookup discipline and the
    runtime-verification probes.
    """

    def __init__(self):
        self.enabled = False
        self._entries: Dict[Tuple[Any, Any, Any], int] = {}
        #: AVC epoch the current contents were compiled against; -1 means
        #: "no table" (never built, or invalidated without rebuild).
        self.built_epoch = -1
        self.builds = 0
        self.invalidations = 0
        self.hits = 0
        self.misses = 0
        # Runtime-verification probes (chaos invariant I11): every hit
        # records the epoch of the table served and the epoch current at
        # serve time.  If they ever differ — or ``stale_served`` is
        # nonzero — a stale precompiled decision escaped.
        self.last_hit_built_epoch = 0
        self.last_hit_at_epoch = 0
        self.stale_served = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used(self) -> bool:
        """Has this table ever influenced (or been asked to influence)
        a run?  Gates metrics export so an untouched table stays
        invisible to fingerprints."""
        return bool(self.enabled or self.builds or self.hits
                    or self.misses)

    # -- lifecycle ---------------------------------------------------------
    def install(self, entries: Dict[Tuple[Any, Any, Any], int],
                epoch: int) -> None:
        """Swap in a freshly compiled table, valid for *epoch*."""
        self._entries = entries
        self.built_epoch = epoch
        self.builds += 1

    def invalidate(self) -> None:
        """Mark the table unusable (epoch moved, no rebuild yet)."""
        if self.built_epoch >= 0:
            self.built_epoch = -1
            self.invalidations += 1

    # -- the hot path ------------------------------------------------------
    def lookup(self, key: Tuple[Any, Any, Any], mask: int,
               current_epoch: int) -> bool:
        """Allow iff a current-epoch entry's vector covers every bit of
        *mask*.  A table built for any other epoch answers nothing."""
        if self.built_epoch != current_epoch:
            self.misses += 1
            return False
        vector = self._entries.get(key)
        if vector is None or mask & vector != mask:
            self.misses += 1
            return False
        self.hits += 1
        self.last_hit_built_epoch = self.built_epoch
        self.last_hit_at_epoch = current_epoch
        if self.built_epoch != current_epoch:  # defense in depth
            self.stale_served += 1
        return True

    # -- rendering ---------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        total = self.hits + self.misses
        return {
            "enabled": 1 if self.enabled else 0,
            "entries": len(self._entries),
            "built_epoch": self.built_epoch,
            "builds": self.builds,
            "invalidations": self.invalidations,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate_pct": (self.hits * 100 // total) if total else 0,
            "stale_served": self.stale_served,
            "last_hit_built_epoch": self.last_hit_built_epoch,
            "last_hit_at_epoch": self.last_hit_at_epoch,
        }

    def render(self) -> str:
        """``key value`` lines for ``SACK/dtable/stats``."""
        return "\n".join(f"{key} {value}"
                         for key, value in self.stats().items()) + "\n"
