"""The stack-level access vector cache (AVC), stamped by situation epoch.

Real kernels answer most security checks out of a cache of recently
computed access vectors; SELinux's ``security/selinux/avc.c`` is the
canonical example.  SACK adds a twist: decisions are only constant
*between situation transitions*, so the cache key must include the
situation.  Rather than storing the situation in every key (and paying a
full flush walk on every transition), entries are stamped with a
monotonically increasing **epoch**.  Invalidation is then O(1): the SSM
(or the AppArmor bridge, on profile reload) bumps the epoch and every
older entry becomes unreachable — stale entries are lazily dropped when a
lookup trips over them, and capacity eviction reclaims the rest.

Two layers live here:

:class:`AvcCore`
    The generic epoch-stamped LRU.  Values are opaque; the framework
    stores permission bitmasks ("access vectors"), the SELinux AVC
    (refolded onto this core) stores permission sets.

:class:`AccessVectorCache`
    The framework-facing wrapper: an :class:`AvcCore` plus the hot-path
    key extractors, the enable/disable toggle the tracefs file flips,
    and the stats rendering shared by ``SACK/avc`` and ``sackctl avc``.

Caching policy — **allows only**.  A denial always takes the full module
walk, because denials have side effects the cache must not swallow:
module audit records, denial counters, span annotations, the AVC audit
trail.  Allowed accesses have exactly one observable side effect
(per-module HookStats counters), which the framework replays on a hit so
a census is bit-identical with and without the cache.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..kernel.syscalls import MAY_EXEC, MAY_READ, MAY_WRITE
from .hooks import Hook

#: Every permission bit a file access vector can carry.
AV_ALL = MAY_READ | MAY_WRITE | MAY_EXEC

#: The single "this exact operation is allowed" bit used for hooks whose
#: decision has no mask structure (ioctl cmd, capability, socket family):
#: the operation's scalar lives in the key, the vector is just this bit.
AV_OP = 0x1


class AvcCore:
    """Epoch-stamped LRU mapping arbitrary hashable keys to values.

    An entry is *live* iff its stamp equals the current epoch;
    :meth:`bump_epoch` therefore invalidates the whole cache in O(1).
    Stale entries are dropped lazily by the lookup that finds them.

    The two ``last_hit_*`` fields exist for runtime verification (the
    chaos harness's I7 invariant): every hit records the epoch of the
    entry served and the epoch current at serve time.  If they ever
    differ — or ``stale_served`` is nonzero — a stale decision escaped.
    """

    def __init__(self, capacity: int = 8192):
        if capacity < 1:
            raise ValueError("AVC capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Any, Tuple[int, Any]]" = OrderedDict()
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.stale_drops = 0
        self.flushes = 0
        self.epoch_bumps = 0
        self.bump_reasons: Counter = Counter()
        # Runtime-verification probes (see class docstring).
        self.last_hit_entry_epoch = 0
        self.last_hit_at_epoch = 0
        self.stale_served = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- invalidation --------------------------------------------------------
    def bump_epoch(self, reason: str = "unspecified") -> int:
        """O(1) whole-cache invalidation; returns the new epoch."""
        self.epoch += 1
        self.epoch_bumps += 1
        self.bump_reasons[reason] += 1
        return self.epoch

    def flush(self) -> None:
        """Eager invalidation: drop every entry now (frees the memory a
        bump leaves behind; semantically equivalent)."""
        self._entries.clear()
        self.flushes += 1

    # -- the generic lookup/insert pair --------------------------------------
    def lookup(self, key) -> Tuple[bool, Any]:
        """Returns ``(hit, value)``; a stale entry counts as a miss and is
        dropped on the spot."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return False, None
        epoch, value = entry
        if epoch != self.epoch:
            del self._entries[key]
            self.stale_drops += 1
            self.misses += 1
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        self.last_hit_entry_epoch = epoch
        self.last_hit_at_epoch = self.epoch
        if epoch != self.epoch:  # defense in depth; must be impossible
            self.stale_served += 1
        return True, value

    def insert(self, key, value) -> None:
        """Stamp *value* with the current epoch; LRU-evict at capacity."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        elif len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = (self.epoch, value)
        self.insertions += 1

    # -- bitmask ("access vector") variants ----------------------------------
    def lookup_vector(self, key, mask: int) -> bool:
        """Hit iff a live entry's vector covers every bit of *mask*."""
        hit, vector = self.lookup(key)
        if not hit:
            return False
        if mask & vector == mask:
            return True
        # Live entry, but it doesn't prove these bits: a partial miss.
        # The lookup above already counted a hit; correct the books.
        self.hits -= 1
        self.misses += 1
        return False

    def extend_vector(self, key, bits: int) -> None:
        """OR *bits* into the live vector at *key* (insert if absent)."""
        entry = self._entries.get(key)
        if entry is not None and entry[0] == self.epoch:
            self._entries[key] = (self.epoch, entry[1] | bits)
            self._entries.move_to_end(key)
        else:
            self.insert(key, bits)

    def stats(self) -> Dict[str, int]:
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "epoch": self.epoch,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate_pct": (self.hits * 100 // total) if total else 0,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "stale_drops": self.stale_drops,
            "stale_served": self.stale_served,
            "flushes": self.flushes,
            "epoch_bumps": self.epoch_bumps,
            "last_hit_entry_epoch": self.last_hit_entry_epoch,
            "last_hit_at_epoch": self.last_hit_at_epoch,
        }


# -- hot-path key extraction ----------------------------------------------------
#
# Each extractor maps a hook's argument tuple to ``(object_key, mask)`` or
# None when this particular dispatch must not be cached (e.g. an anonymous
# mmap).  The subject half of the key comes from the modules themselves
# (``LsmModule.avc_subject_key``) so every task-derived decision input is
# captured by the module that consumes it.

def _k_file_open(args):
    file = args[1]
    mask = ((MAY_READ if file.wants_read else 0)
            | (MAY_WRITE if file.wants_write else 0))
    return file.path, mask


def _k_file_permission(args):
    return args[1].path, args[2]


def _k_file_ioctl(args):
    # The command is part of the object identity, not the mask: two cmds
    # on one node are two independent decisions.
    return (args[1].path, args[2]), AV_OP


def _k_mmap(args):
    file = args[1]
    if file is None:
        return None  # anonymous mapping: no stable object identity
    return (file.path, args[2]), AV_OP


def _k_bprm(args):
    return args[1], MAY_EXEC


def _k_path1(args):
    return args[1], AV_OP


def _k_path2(args):
    return args[2], AV_OP


def _k_create(args):
    return (args[2], args[3]), AV_OP


def _k_rename(args):
    return (args[1], args[2]), AV_OP


def _k_capable(args):
    return args[1], AV_OP


def _k_sock_family(args):
    return args[1], AV_OP


def _k_sock(args):
    return args[1].family, AV_OP


def _k_sock_addr(args):
    return (args[1].family, args[2]), AV_OP


#: hook -> extractor.  Hooks absent here (task_alloc, task_kill) carry
#: per-call subject pairs with no stable object identity — never cached.
KEY_EXTRACTORS = {
    Hook.FILE_OPEN: _k_file_open,
    Hook.FILE_PERMISSION: _k_file_permission,
    Hook.FILE_IOCTL: _k_file_ioctl,
    Hook.MMAP_FILE: _k_mmap,
    Hook.BPRM_CHECK_SECURITY: _k_bprm,
    Hook.INODE_CREATE: _k_create,
    Hook.INODE_MKDIR: _k_create,
    Hook.INODE_MKNOD: _k_create,
    Hook.INODE_UNLINK: _k_path2,
    Hook.INODE_RMDIR: _k_path2,
    Hook.INODE_RENAME: _k_rename,
    Hook.INODE_GETATTR: _k_path1,
    Hook.INODE_SETATTR: _k_path1,
    Hook.CAPABLE: _k_capable,
    Hook.SOCKET_CREATE: _k_sock_family,
    Hook.SOCKET_BIND: _k_sock_addr,
    Hook.SOCKET_CONNECT: _k_sock_addr,
    Hook.SOCKET_LISTEN: _k_sock,
    Hook.SOCKET_ACCEPT: _k_sock,
    Hook.SOCKET_SENDMSG: _k_sock,
    Hook.SOCKET_RECVMSG: _k_sock,
}

#: Hooks whose vectors hold MAY_* bits and can be pre-filled by the
#: modules' ``compute_av()`` on a miss (one policy walk proves the whole
#: read/write/exec vector, so later accesses with other masks still hit).
VECTOR_HOOKS = frozenset({Hook.FILE_OPEN, Hook.FILE_PERMISSION})


class AccessVectorCache:
    """The framework's AVC: an :class:`AvcCore` plus the runtime toggle."""

    def __init__(self, capacity: int = 8192, enabled: bool = True):
        self.core = AvcCore(capacity=capacity)
        self.enabled = enabled
        #: Optional ``(reason, new_epoch)`` callback fired after every
        #: epoch bump that flows through this wrapper — the decision
        #: table rides it to recompile eagerly, so table invalidation
        #: shares the AVC's exact invalidation points by construction.
        self.on_bump = None

    def bump_epoch(self, reason: str = "unspecified") -> int:
        epoch = self.core.bump_epoch(reason)
        if self.on_bump is not None:
            self.on_bump(reason, epoch)
        return epoch

    def flush(self) -> None:
        self.core.flush()

    def stats(self) -> Dict[str, int]:
        stats = self.core.stats()
        stats["enabled"] = 1 if self.enabled else 0
        return stats

    def render(self) -> str:
        """``key value`` lines for the ``SACK/avc/stats`` tracefs file."""
        lines = [f"{key} {value}" for key, value in self.stats().items()]
        lines.extend(f"epoch_bumps_{reason} {count}"
                     for reason, count in
                     sorted(self.core.bump_reasons.items()))
        return "\n".join(lines) + "\n"
