"""The LSM framework: ordered module stacking and hook dispatch.

Implements the semantics the paper's compatibility evaluation (§IV-D)
relies on: modules are consulted in the order given by the ``CONFIG_LSM``
string ("whitelist-based"); the first module that denies short-circuits the
call, so when SACK is listed first its check runs *before* AppArmor's, and
AppArmor only sees accesses SACK already allowed.

The capability module is always implicitly first, as in Linux.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernel.credentials import Capability
from ..kernel.security import SecurityHooks
from ..obs.metrics import sample
from ..obs.tracepoints import LSM_HOOK_DISPATCH
from .avc import AV_ALL, KEY_EXTRACTORS, VECTOR_HOOKS, AccessVectorCache
from .capability import CapabilityLsm
from .dtable import DecisionTable
from .hooks import HOOK_BIT, Hook
from .module import LsmModule


class HookStats:
    """Per-(module, hook) call and denial counters."""

    def __init__(self):
        self.calls: Counter = Counter()
        self.denials: Counter = Counter()

    def record(self, module: str, hook: Hook, denied: bool) -> None:
        key = f"{module}.{hook.value}"
        self.calls[key] += 1
        if denied:
            self.denials[key] += 1

    def total_calls(self) -> int:
        return self.calls.total()

    def total_denials(self) -> int:
        return self.denials.total()

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time copy, safe to hold across further dispatches."""
        return {
            "calls": dict(self.calls),
            "denials": dict(self.denials),
            "total_calls": self.total_calls(),
            "total_denials": self.total_denials(),
        }

    def top(self, n: int = 10) -> List[Tuple[str, int, int]]:
        """The *n* hottest (module.hook, calls, denials) sites."""
        return [(key, count, self.denials.get(key, 0))
                for key, count in self.calls.most_common(n)]

    def reset(self) -> None:
        self.calls.clear()
        self.denials.clear()


class LsmFramework(SecurityHooks):
    """Hook multiplexer over an ordered list of :class:`LsmModule`."""

    name = "lsm"

    def __init__(self, modules: Sequence[LsmModule] = (),
                 collect_stats: bool = False,
                 avc_capacity: int = 8192):
        self.capability = CapabilityLsm()
        self.modules: List[LsmModule] = [self.capability, *modules]
        self.stats = HookStats() if collect_stats else None
        self._kernel = None
        self.obs = None            # set by attach(); the kernel's hub
        self._tp_hook = None       # cached lsm:hook_dispatch tracepoint
        self._spans = None         # cached hub SpanTracer
        self._latency = None       # {(module, hook): Histogram} when on
        names = [m.name for m in self.modules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate LSM names in stack: {names}")
        # Per-hook call lists, as Linux builds at security_init time: only
        # modules that actually override a hook appear on its list, so
        # unimplemented hooks cost nothing at dispatch time.
        self._hook_lists: Dict[Hook, List] = {}
        for hook in Hook:
            entries = []
            for module in self.modules:
                method = getattr(type(module), hook.value, None)
                if method is not None and method is not getattr(
                        LsmModule, hook.value):
                    entries.append((module.name,
                                    getattr(module, hook.value)))
            self._hook_lists[hook] = entries
        # Implemented-hook bitmap: one bit per hook anyone implements.
        # ``_call_int`` tests it before any other dispatch bookkeeping,
        # so hooks no module cares about cost a single ``and``.
        self.hook_bitmap = 0
        for hook, entries in self._hook_lists.items():
            if entries:
                self.hook_bitmap |= HOOK_BIT[hook]
        self.avc = AccessVectorCache(capacity=avc_capacity)
        self._avc_plans: Dict[Hook, Optional[tuple]] = {
            hook: self._build_avc_plan(hook) for hook in Hook}
        #: Precompiled decision table (see repro.lsm.dtable): consulted
        #: before the AVC when enabled; rebuilt on every epoch bump.
        self.dtable = DecisionTable()
        self._dtable_plans: Dict[Hook, Optional[tuple]] = {
            hook: self._build_dtable_plan(hook) for hook in Hook}
        self.avc.on_bump = self._on_avc_bump

    def _build_avc_plan(self, hook: Hook) -> Optional[tuple]:
        """Precompute the AVC recipe for *hook*, or None if uncacheable.

        A hook is cacheable only when every module on its call list opted
        in (``avc_cacheable``) — one opaque module poisons the hook, not
        the stack.  The plan is ``(extractor, subject_key_fns,
        compute_av_fns)``; the last is None unless every module offers a
        ``compute_av`` to pre-fill the whole vector on a miss.
        """
        extractor = KEY_EXTRACTORS.get(hook)
        entries = self._hook_lists[hook]
        if extractor is None or not entries:
            return None
        modules = [self.module_named(name) for name, _method in entries]
        if not all(getattr(m, "avc_cacheable", False) for m in modules):
            return None
        subject_fns = tuple(m.avc_subject_key for m in modules)
        compute_fns = None
        if hook in VECTOR_HOOKS:
            fns = tuple(getattr(m, "compute_av", None) for m in modules)
            if all(fns):
                compute_fns = fns
        return extractor, subject_fns, compute_fns

    def _build_dtable_plan(self, hook: Hook) -> Optional[tuple]:
        """The module tuple whose decisions *hook* can precompile, or None.

        A hook is table-able only when it is AVC-cacheable, its vectors
        carry real MAY_* masks (:data:`VECTOR_HOOKS`), and every module
        on its call list implements the enumeration protocol —
        ``table_subject_keys()``, ``table_paths()``, and the pure
        ``compute_av_for_subject()``.
        """
        if hook not in VECTOR_HOOKS or self._avc_plans[hook] is None:
            return None
        modules = tuple(self.module_named(name)
                        for name, _method in self._hook_lists[hook])
        if not all(hasattr(m, "table_subject_keys")
                   and hasattr(m, "table_paths")
                   and hasattr(m, "compute_av_for_subject")
                   for m in modules):
            return None
        return modules

    def _on_avc_bump(self, reason: str, epoch: int) -> None:
        """Epoch moved: the old table is wrong.  Recompile eagerly while
        the table is live (the transition already remapped the APE, so
        the new contents are the new state's), drop it otherwise."""
        if self.dtable.enabled:
            self.rebuild_dtable()
        else:
            self.dtable.invalidate()

    def rebuild_dtable(self) -> int:
        """Compile the decision table for the current epoch; returns the
        entry count.  Enumerates every table-able hook's subject space
        (cross product of each module's subject keys) against the
        literal governed paths, storing the AND of every module's pure
        access vector — zero vectors are dropped, keeping the table
        allows-only."""
        import itertools
        entries: Dict[tuple, int] = {}
        for hook, modules in self._dtable_plans.items():
            if modules is None:
                continue
            subject_keys = [list(m.table_subject_keys())
                            for m in modules]
            if not all(subject_keys):
                continue
            paths = sorted(set().union(
                *(set(m.table_paths()) for m in modules)))
            for subject in itertools.product(*subject_keys):
                for path in paths:
                    vector = AV_ALL
                    for module, key in zip(modules, subject):
                        vector &= module.compute_av_for_subject(key, path)
                        if not vector:
                            break
                    if vector:
                        entries[(hook, subject, path)] = vector
        self.dtable.install(entries, self.avc.core.epoch)
        return len(entries)

    @classmethod
    def from_config(cls, config_lsm: str,
                    registry: Dict[str, LsmModule],
                    collect_stats: bool = False) -> "LsmFramework":
        """Build a stack from a ``CONFIG_LSM="sack,apparmor"`` string.

        *registry* maps module names to instances; unknown names raise
        ``KeyError`` (a misconfigured kernel fails to boot), and so does
        a name listed twice — Linux's ``ordered_lsm_parse`` drops
        duplicates, but a doubled entry in a curated config is always a
        typo and silently reordering the stack would mask it.
        """
        names = [n.strip() for n in config_lsm.split(",") if n.strip()]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(
                f"CONFIG_LSM lists duplicate module names: {dupes} "
                f"(config was {config_lsm!r})")
        modules = []
        for name in names:
            if name == "capability":
                continue  # always present, always first
            modules.append(registry[name])
        return cls(modules, collect_stats=collect_stats)

    @property
    def config_lsm(self) -> str:
        """The effective ``CONFIG_LSM`` string for this stack."""
        return ",".join(m.name for m in self.modules)

    def attach(self, kernel) -> None:
        """Give every module a back-reference to the booted kernel."""
        self._kernel = kernel
        self.obs = getattr(kernel, "obs", None)
        if self.obs is not None:
            self._tp_hook = self.obs.tracepoints.get(LSM_HOOK_DISPATCH)
            self._spans = getattr(self.obs, "spans", None)
            if self.stats is not None:
                # The metrics export reads HookStats live instead of
                # keeping duplicate counts that could drift.
                self.obs.metrics.register_collector(self._collect_stats)
            self.obs.metrics.register_collector(self._collect_avc)
            self.obs.metrics.register_collector(self._collect_dtable)
        for module in self.modules:
            module.registered(kernel)

    def _collect_stats(self):
        stats = self.stats
        if stats is None:
            return []
        out = [sample("lsm_hook_calls_total", {"site": key}, "counter",
                      count) for key, count in stats.calls.items()]
        out.extend(sample("lsm_hook_denials_total", {"site": key},
                          "counter", count)
                   for key, count in stats.denials.items())
        return out

    def _collect_avc(self):
        core = self.avc.core
        out = [
            sample("lsm_avc_lookups_total", {"result": "hit"}, "counter",
                   core.hits),
            sample("lsm_avc_lookups_total", {"result": "miss"}, "counter",
                   core.misses),
            sample("lsm_avc_insertions_total", {}, "counter",
                   core.insertions),
            sample("lsm_avc_evictions_total", {}, "counter",
                   core.evictions),
            sample("lsm_avc_stale_drops_total", {}, "counter",
                   core.stale_drops),
            sample("lsm_avc_flushes_total", {}, "counter", core.flushes),
            sample("lsm_avc_epoch", {}, "gauge", core.epoch),
            sample("lsm_avc_entries", {}, "gauge", len(core)),
        ]
        out.extend(sample("lsm_avc_epoch_bumps_total", {"reason": reason},
                          "counter", count)
                   for reason, count in core.bump_reasons.items())
        return out

    def _collect_dtable(self):
        dtable = self.dtable
        if not dtable.used:
            # An untouched table exports nothing, so default-config runs
            # (and their fingerprints) are byte-identical to pre-table
            # builds.
            return []
        return [
            sample("lsm_dtable_lookups_total", {"result": "hit"},
                   "counter", dtable.hits),
            sample("lsm_dtable_lookups_total", {"result": "miss"},
                   "counter", dtable.misses),
            sample("lsm_dtable_builds_total", {}, "counter",
                   dtable.builds),
            sample("lsm_dtable_invalidations_total", {}, "counter",
                   dtable.invalidations),
            sample("lsm_dtable_stale_served_total", {}, "counter",
                   dtable.stale_served),
            sample("lsm_dtable_entries", {}, "gauge", len(dtable)),
            sample("lsm_dtable_built_epoch", {}, "gauge",
                   dtable.built_epoch),
        ]

    # -- hook latency collection ---------------------------------------------
    def enable_hook_latency(self) -> None:
        """Collect per-(module, hook) latency histograms on every dispatch.

        Requires an attached kernel (histograms live in its metrics
        registry).  Until enabled, the dispatch fast path never reads the
        wall clock.
        """
        if self.obs is None:
            raise RuntimeError("attach() the framework to a kernel first")
        self._latency = {}

    def disable_hook_latency(self) -> None:
        self._latency = None

    def _latency_histogram(self, module: str, hook: Hook):
        hist = self._latency.get((module, hook))
        if hist is None:
            hist = self.obs.metrics.histogram(
                "lsm_hook_latency_ns",
                {"module": module, "hook": hook.value})
            self._latency[(module, hook)] = hist
        return hist

    def hook_latency_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-hook latency summary (merged across modules).

        Returns ``{hook: {count, mean_ns, p50_ns, p99_ns, max_ns}}``; the
        percentiles of the merged view are the worst (largest) per-module
        percentile, a conservative bound that avoids re-binning.
        """
        if self._latency is None:
            return {}
        merged: Dict[str, Dict[str, float]] = {}
        for (module, hook), hist in self._latency.items():
            if hist.count == 0:
                continue
            row = merged.setdefault(hook.value, {
                "count": 0, "total_ns": 0.0, "p50_ns": 0.0,
                "p99_ns": 0.0, "max_ns": 0.0})
            row["count"] += hist.count
            row["total_ns"] += hist.total
            row["p50_ns"] = max(row["p50_ns"], hist.percentile(50))
            row["p99_ns"] = max(row["p99_ns"], hist.percentile(99))
            row["max_ns"] = max(row["max_ns"], hist.max or 0.0)
        for row in merged.values():
            row["mean_ns"] = row.pop("total_ns") / row["count"]
        return merged

    def module_named(self, name: str) -> LsmModule:
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(name)

    # -- dispatch core ---------------------------------------------------------
    @staticmethod
    def _object_path(args) -> str:
        """Best-effort object path from a hook's arguments (for audit)."""
        for arg in args[1:]:
            if isinstance(arg, str):
                return arg
            path = getattr(arg, "path", None)
            if isinstance(path, str):
                return path
        return ""

    def _report_denial(self, hook: Hook, module: str, args,
                       rc: int) -> None:
        """AVC audit record for one denied access (never for allows).

        ``capable`` probes are excluded, as Linux routes them through the
        noaudit variant: DAC fallbacks probe capabilities on every access
        by unprivileged tasks and a 'denial' there is normal operation.
        """
        obs = self.obs
        if obs is None or hook is Hook.CAPABLE:
            return
        task = args[0] if args else None
        obs.denial(module, hook.value, self._object_path(args), task, rc)

    def _call_int(self, hook: Hook, *args) -> int:
        """Walk the hook's call list; first nonzero return wins (deny).

        Three fast paths run before any dispatch bookkeeping: the
        implemented-hook bitmap (nobody registered → allow, one ``and``),
        the precompiled decision table (when enabled: the whole allow
        surface for this epoch, one dict probe, no miss path to
        maintain), and the AVC (a live cache entry proving every module
        already allowed this (subject, object, mask) → allow without
        walking).  Denials are never cached in either structure — they
        must reach the modules so audit records, denial counters and
        span attribution still fire.
        """
        if not self.hook_bitmap & HOOK_BIT[hook]:
            return 0
        avc = self.avc
        dtable = self.dtable
        if dtable.enabled:
            modules = self._dtable_plans[hook]
            if modules is not None:
                if dtable.built_epoch != avc.core.epoch:
                    # Self-heal: first use after enable, or a bump that
                    # bypassed the wrapper (direct core access).
                    self.rebuild_dtable()
                extractor, subject_fns, _compute = self._avc_plans[hook]
                object_mask = extractor(args)
                if object_mask is not None:
                    obj, mask = object_mask
                    task = args[0]
                    try:
                        subject = tuple(fn(task) for fn in subject_fns)
                    except TypeError:
                        subject = (None,)
                    if None not in subject and dtable.lookup(
                            (hook, subject, obj), mask, avc.core.epoch):
                        return self._avc_hit(hook, args, source="dtable")
        if avc.enabled:
            plan = self._avc_plans[hook]
            if plan is not None:
                extractor, subject_fns, compute_fns = plan
                object_mask = extractor(args)
                if object_mask is not None:
                    obj, mask = object_mask
                    task = args[0]
                    key = None
                    hit = False
                    try:
                        subject = tuple(fn(task) for fn in subject_fns)
                        if None not in subject:
                            key = (hook, subject, obj)
                            hit = avc.core.lookup_vector(key, mask)
                    except TypeError:
                        key = None  # unhashable key part: don't cache
                    if hit:
                        return self._avc_hit(hook, args)
                    rc = self._dispatch_int(hook, args)
                    if rc == 0 and key is not None:
                        if compute_fns is not None:
                            vector = AV_ALL
                            for fn in compute_fns:
                                vector &= fn(task, obj)
                            avc.core.extend_vector(key, vector | mask)
                        else:
                            avc.core.extend_vector(key, mask)
                    return rc
        return self._dispatch_int(hook, args)

    def _avc_hit(self, hook: Hook, args, source: str = "avc") -> int:
        """Serve an allow from a cache/table, replaying the side effects
        an allowed module walk would have had (HookStats counters; an
        ``avc.hit``/``dtable.hit`` span when hooks are being watched) so
        decisions and counters are bit-identical with the fast paths
        off."""
        stats = self.stats
        if stats is not None:
            for name, _method in self._hook_lists[hook]:
                stats.record(name, hook, denied=False)
        spans = self._spans
        if spans is not None and spans.watch_hooks:
            task = args[0] if args else None
            span = spans.start_span(
                f"lsm.{hook.value}", stage="hook", root=True,
                attributes={"pid": getattr(task, "pid", 0),
                            "comm": getattr(task, "comm", ""),
                            f"{source}.hit": True})
            if span is not None:
                span.add_link(spans.consume_link())
            spans.end_span(span)
        return 0

    def _dispatch_int(self, hook: Hook, args) -> int:
        """The full module walk (AVC miss or uncacheable dispatch)."""
        spans = self._spans
        if spans is not None and spans.watch_hooks:
            return self._call_int_spanned(hook, args)
        latency = self._latency
        tp = self._tp_hook
        if latency is not None or (tp is not None and tp.callbacks):
            return self._call_int_observed(hook, args)
        stats = self.stats
        for name, method in self._hook_lists[hook]:
            rc = method(*args)
            if stats is not None:
                stats.record(name, hook, denied=rc != 0)
            if rc != 0:
                self._report_denial(hook, name, args, rc)
                return rc
        return 0

    def _call_int_observed(self, hook: Hook, args) -> int:
        """Dispatch with timing and the lsm:hook_dispatch tracepoint."""
        stats = self.stats
        tp = self._tp_hook
        latency = self._latency
        for name, method in self._hook_lists[hook]:
            t0 = time.perf_counter_ns()
            rc = method(*args)
            dt = time.perf_counter_ns() - t0
            if latency is not None:
                self._latency_histogram(name, hook).record(dt)
            if tp.callbacks:
                tp.emit(module=name, hook=hook.value, rc=rc, latency_ns=dt)
            if stats is not None:
                stats.record(name, hook, denied=rc != 0)
            if rc != 0:
                self._report_denial(hook, name, args, rc)
                return rc
        return 0

    def _call_int_spanned(self, hook: Hook, args) -> int:
        """Dispatch wrapped in a root hook span *linked* to the trace that
        caused the current situation (the first K decisions after a
        transition).  The link is weaker than a parent/child edge: the
        hook runs under the new state, it is not part of the transition's
        critical path."""
        spans = self._spans
        task = args[0] if args else None
        span = spans.start_span(
            f"lsm.{hook.value}", stage="hook", root=True,
            attributes={"pid": getattr(task, "pid", 0),
                        "comm": getattr(task, "comm", "")})
        if span is not None:
            span.add_link(spans.consume_link())
        latency = self._latency
        tp = self._tp_hook
        stats = self.stats
        rc = 0
        try:
            for name, method in self._hook_lists[hook]:
                t0 = time.perf_counter_ns()
                rc = method(*args)
                dt = time.perf_counter_ns() - t0
                if latency is not None:
                    self._latency_histogram(name, hook).record(
                        dt, trace_id=span.trace_id
                        if span is not None else None)
                if tp is not None and tp.callbacks:
                    tp.emit(module=name, hook=hook.value, rc=rc,
                            latency_ns=dt)
                if stats is not None:
                    stats.record(name, hook, denied=rc != 0)
                if rc != 0:
                    if span is not None:
                        span.attributes["module"] = name
                        span.attributes["rc"] = rc
                    self._report_denial(hook, name, args, rc)
                    return rc
            return 0
        finally:
            spans.end_span(span, status="denied" if rc != 0 else "ok")

    def _call_void(self, hook: Hook, *args) -> None:
        latency = self._latency
        tp = self._tp_hook
        observed = latency is not None or (tp is not None and tp.callbacks)
        for name, method in self._hook_lists[hook]:
            if observed:
                t0 = time.perf_counter_ns()
                method(*args)
                dt = time.perf_counter_ns() - t0
                if latency is not None:
                    self._latency_histogram(name, hook).record(dt)
                if tp.callbacks:
                    tp.emit(module=name, hook=hook.value, rc=0,
                            latency_ns=dt)
            else:
                method(*args)
            if self.stats is not None:
                self.stats.record(name, hook, denied=False)

    # -- SecurityHooks implementation -------------------------------------------
    def task_alloc(self, parent, child) -> int:
        return self._call_int(Hook.TASK_ALLOC, parent, child)

    def bprm_check_security(self, task, exe_path: str) -> int:
        return self._call_int(Hook.BPRM_CHECK_SECURITY, task, exe_path)

    def bprm_committed_creds(self, task, exe_path: str) -> None:
        self._call_void(Hook.BPRM_COMMITTED_CREDS, task, exe_path)

    def task_kill(self, task, target) -> int:
        return self._call_int(Hook.TASK_KILL, task, target)

    def capable(self, task, cap: Capability) -> int:
        return self._call_int(Hook.CAPABLE, task, cap)

    def inode_create(self, task, parent_inode, path: str, mode: int) -> int:
        return self._call_int(Hook.INODE_CREATE, task, parent_inode, path, mode)

    def inode_mkdir(self, task, parent_inode, path: str, mode: int) -> int:
        return self._call_int(Hook.INODE_MKDIR, task, parent_inode, path, mode)

    def inode_mknod(self, task, parent_inode, path: str, mode: int) -> int:
        return self._call_int(Hook.INODE_MKNOD, task, parent_inode, path, mode)

    def inode_unlink(self, task, inode, path: str) -> int:
        return self._call_int(Hook.INODE_UNLINK, task, inode, path)

    def inode_rmdir(self, task, inode, path: str) -> int:
        return self._call_int(Hook.INODE_RMDIR, task, inode, path)

    def inode_rename(self, task, old_path: str, new_path: str) -> int:
        return self._call_int(Hook.INODE_RENAME, task, old_path, new_path)

    def inode_getattr(self, task, path: str) -> int:
        return self._call_int(Hook.INODE_GETATTR, task, path)

    def inode_setattr(self, task, path: str) -> int:
        return self._call_int(Hook.INODE_SETATTR, task, path)

    def file_open(self, task, file) -> int:
        return self._call_int(Hook.FILE_OPEN, task, file)

    def file_permission(self, task, file, mask: int) -> int:
        return self._call_int(Hook.FILE_PERMISSION, task, file, mask)

    def file_ioctl(self, task, file, cmd: int, arg: int) -> int:
        return self._call_int(Hook.FILE_IOCTL, task, file, cmd, arg)

    def mmap_file(self, task, file, prot: int) -> int:
        return self._call_int(Hook.MMAP_FILE, task, file, prot)

    def socket_create(self, task, family) -> int:
        return self._call_int(Hook.SOCKET_CREATE, task, family)

    def socket_bind(self, task, sock, addr) -> int:
        return self._call_int(Hook.SOCKET_BIND, task, sock, addr)

    def socket_listen(self, task, sock) -> int:
        return self._call_int(Hook.SOCKET_LISTEN, task, sock)

    def socket_connect(self, task, sock, addr) -> int:
        return self._call_int(Hook.SOCKET_CONNECT, task, sock, addr)

    def socket_accept(self, task, sock) -> int:
        return self._call_int(Hook.SOCKET_ACCEPT, task, sock)

    def socket_sendmsg(self, task, sock, size: int) -> int:
        return self._call_int(Hook.SOCKET_SENDMSG, task, sock, size)

    def socket_recvmsg(self, task, sock, size: int) -> int:
        return self._call_int(Hook.SOCKET_RECVMSG, task, sock, size)


def boot_kernel(modules: Sequence[LsmModule] = (),
                collect_stats: bool = False,
                clock=None):
    """Boot a kernel with the given LSM stack; returns ``(kernel, framework)``.

    The returned framework is already attached (modules hold a kernel
    back-reference), matching the real boot order where ``security_init``
    runs before init starts.
    """
    from ..kernel.syscalls import Kernel
    framework = LsmFramework(modules, collect_stats=collect_stats)
    kernel = Kernel(security=framework, clock=clock)
    framework.attach(kernel)
    return kernel, framework
