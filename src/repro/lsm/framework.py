"""The LSM framework: ordered module stacking and hook dispatch.

Implements the semantics the paper's compatibility evaluation (§IV-D)
relies on: modules are consulted in the order given by the ``CONFIG_LSM``
string ("whitelist-based"); the first module that denies short-circuits the
call, so when SACK is listed first its check runs *before* AppArmor's, and
AppArmor only sees accesses SACK already allowed.

The capability module is always implicitly first, as in Linux.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..kernel.credentials import Capability
from ..kernel.security import SecurityHooks
from .capability import CapabilityLsm
from .hooks import Hook
from .module import LsmModule


class HookStats:
    """Per-(module, hook) call and denial counters."""

    def __init__(self):
        self.calls: Dict[str, int] = {}
        self.denials: Dict[str, int] = {}

    def record(self, module: str, hook: Hook, denied: bool) -> None:
        key = f"{module}.{hook.value}"
        self.calls[key] = self.calls.get(key, 0) + 1
        if denied:
            self.denials[key] = self.denials.get(key, 0) + 1

    def total_calls(self) -> int:
        return sum(self.calls.values())

    def total_denials(self) -> int:
        return sum(self.denials.values())

    def reset(self) -> None:
        self.calls.clear()
        self.denials.clear()


class LsmFramework(SecurityHooks):
    """Hook multiplexer over an ordered list of :class:`LsmModule`."""

    name = "lsm"

    def __init__(self, modules: Sequence[LsmModule] = (),
                 collect_stats: bool = False):
        self.capability = CapabilityLsm()
        self.modules: List[LsmModule] = [self.capability, *modules]
        self.stats = HookStats() if collect_stats else None
        self._kernel = None
        names = [m.name for m in self.modules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate LSM names in stack: {names}")
        # Per-hook call lists, as Linux builds at security_init time: only
        # modules that actually override a hook appear on its list, so
        # unimplemented hooks cost nothing at dispatch time.
        self._hook_lists: Dict[Hook, List] = {}
        for hook in Hook:
            entries = []
            for module in self.modules:
                method = getattr(type(module), hook.value, None)
                if method is not None and method is not getattr(
                        LsmModule, hook.value):
                    entries.append((module.name,
                                    getattr(module, hook.value)))
            self._hook_lists[hook] = entries

    @classmethod
    def from_config(cls, config_lsm: str,
                    registry: Dict[str, LsmModule],
                    collect_stats: bool = False) -> "LsmFramework":
        """Build a stack from a ``CONFIG_LSM="sack,apparmor"`` string.

        *registry* maps module names to instances; unknown names raise
        ``KeyError`` (a misconfigured kernel fails to boot).
        """
        names = [n.strip() for n in config_lsm.split(",") if n.strip()]
        modules = []
        for name in names:
            if name == "capability":
                continue  # always present, always first
            modules.append(registry[name])
        return cls(modules, collect_stats=collect_stats)

    @property
    def config_lsm(self) -> str:
        """The effective ``CONFIG_LSM`` string for this stack."""
        return ",".join(m.name for m in self.modules)

    def attach(self, kernel) -> None:
        """Give every module a back-reference to the booted kernel."""
        self._kernel = kernel
        for module in self.modules:
            module.registered(kernel)

    def module_named(self, name: str) -> LsmModule:
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(name)

    # -- dispatch core ---------------------------------------------------------
    def _call_int(self, hook: Hook, *args) -> int:
        """Walk the hook's call list; first nonzero return wins (deny)."""
        stats = self.stats
        for name, method in self._hook_lists[hook]:
            rc = method(*args)
            if stats is not None:
                stats.record(name, hook, denied=rc != 0)
            if rc != 0:
                return rc
        return 0

    def _call_void(self, hook: Hook, *args) -> None:
        for name, method in self._hook_lists[hook]:
            method(*args)
            if self.stats is not None:
                self.stats.record(name, hook, denied=False)

    # -- SecurityHooks implementation -------------------------------------------
    def task_alloc(self, parent, child) -> int:
        return self._call_int(Hook.TASK_ALLOC, parent, child)

    def bprm_check_security(self, task, exe_path: str) -> int:
        return self._call_int(Hook.BPRM_CHECK_SECURITY, task, exe_path)

    def bprm_committed_creds(self, task, exe_path: str) -> None:
        self._call_void(Hook.BPRM_COMMITTED_CREDS, task, exe_path)

    def task_kill(self, task, target) -> int:
        return self._call_int(Hook.TASK_KILL, task, target)

    def capable(self, task, cap: Capability) -> int:
        return self._call_int(Hook.CAPABLE, task, cap)

    def inode_create(self, task, parent_inode, path: str, mode: int) -> int:
        return self._call_int(Hook.INODE_CREATE, task, parent_inode, path, mode)

    def inode_mkdir(self, task, parent_inode, path: str, mode: int) -> int:
        return self._call_int(Hook.INODE_MKDIR, task, parent_inode, path, mode)

    def inode_mknod(self, task, parent_inode, path: str, mode: int) -> int:
        return self._call_int(Hook.INODE_MKNOD, task, parent_inode, path, mode)

    def inode_unlink(self, task, inode, path: str) -> int:
        return self._call_int(Hook.INODE_UNLINK, task, inode, path)

    def inode_rmdir(self, task, inode, path: str) -> int:
        return self._call_int(Hook.INODE_RMDIR, task, inode, path)

    def inode_rename(self, task, old_path: str, new_path: str) -> int:
        return self._call_int(Hook.INODE_RENAME, task, old_path, new_path)

    def inode_getattr(self, task, path: str) -> int:
        return self._call_int(Hook.INODE_GETATTR, task, path)

    def inode_setattr(self, task, path: str) -> int:
        return self._call_int(Hook.INODE_SETATTR, task, path)

    def file_open(self, task, file) -> int:
        return self._call_int(Hook.FILE_OPEN, task, file)

    def file_permission(self, task, file, mask: int) -> int:
        return self._call_int(Hook.FILE_PERMISSION, task, file, mask)

    def file_ioctl(self, task, file, cmd: int, arg: int) -> int:
        return self._call_int(Hook.FILE_IOCTL, task, file, cmd, arg)

    def mmap_file(self, task, file, prot: int) -> int:
        return self._call_int(Hook.MMAP_FILE, task, file, prot)

    def socket_create(self, task, family) -> int:
        return self._call_int(Hook.SOCKET_CREATE, task, family)

    def socket_bind(self, task, sock, addr) -> int:
        return self._call_int(Hook.SOCKET_BIND, task, sock, addr)

    def socket_listen(self, task, sock) -> int:
        return self._call_int(Hook.SOCKET_LISTEN, task, sock)

    def socket_connect(self, task, sock, addr) -> int:
        return self._call_int(Hook.SOCKET_CONNECT, task, sock, addr)

    def socket_accept(self, task, sock) -> int:
        return self._call_int(Hook.SOCKET_ACCEPT, task, sock)

    def socket_sendmsg(self, task, sock, size: int) -> int:
        return self._call_int(Hook.SOCKET_SENDMSG, task, sock, size)

    def socket_recvmsg(self, task, sock, size: int) -> int:
        return self._call_int(Hook.SOCKET_RECVMSG, task, sock, size)


def boot_kernel(modules: Sequence[LsmModule] = (),
                collect_stats: bool = False,
                clock=None):
    """Boot a kernel with the given LSM stack; returns ``(kernel, framework)``.

    The returned framework is already attached (modules hold a kernel
    back-reference), matching the real boot order where ``security_init``
    runs before init starts.
    """
    from ..kernel.syscalls import Kernel
    framework = LsmFramework(modules, collect_stats=collect_stats)
    kernel = Kernel(security=framework, clock=clock)
    framework.attach(kernel)
    return kernel, framework
