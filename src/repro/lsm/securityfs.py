"""securityfs: the pseudo-filesystem security modules expose files through.

The paper (§III-C, §IV-C-2) transmits situation events through a
securityfs file because it "has security, integrity and efficiency
guarantees from the LSM framework": it lives in the kernel, its files are
backed by module callbacks rather than pages, and access is gated by DAC
plus capability checks.  This module reproduces that surface at
``/sys/kernel/security``.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..kernel.credentials import Capability
from ..kernel.errors import Errno, KernelError
from ..kernel.vfs.inode import PseudoFileOps

#: Where securityfs lives, as on Linux.
SECURITYFS_ROOT = "/sys/kernel/security"


class SecurityFs:
    """Manages the securityfs mount and file registration for one kernel."""

    def __init__(self, kernel):
        self.kernel = kernel
        kernel.vfs.mount("securityfs", SECURITYFS_ROOT)
        self.root = SECURITYFS_ROOT

    def create_dir(self, name: str) -> str:
        """Create (or reuse) a module directory; returns its path."""
        path = f"{self.root}/{name}"
        self.kernel.vfs.makedirs(path)
        return path

    def create_file(self, relpath: str,
                    read: Optional[Callable[[object], bytes]] = None,
                    write: Optional[Callable[[object, bytes], int]] = None,
                    mode: int = 0o600,
                    write_cap: Optional[Capability] = None) -> str:
        """Register a securityfs file backed by *read*/*write* callbacks.

        When *write_cap* is given, writes additionally require that
        capability — the hook checks ``capable()`` through the full LSM
        stack, the same way SACK's policy files demand ``CAP_MAC_ADMIN``.
        """
        path = f"{self.root}/{relpath}"
        parent = path.rsplit("/", 1)[0]
        self.kernel.vfs.makedirs(parent)

        guarded_write = write
        if write is not None and write_cap is not None:
            def guarded_write(task, data, _inner=write, _cap=write_cap):
                if not self.kernel.capable(task, _cap):
                    raise KernelError(Errno.EPERM,
                                      f"{path}: requires {_cap.value}")
                return _inner(task, data)

        ops = PseudoFileOps(read=read, write=guarded_write)
        self.kernel.vfs.create_pseudo(path, ops, mode=mode)
        return path

    def remove(self, relpath: str) -> None:
        self.kernel.vfs.unlink(f"{self.root}/{relpath}")
