"""The OTA proof gate: no bundle ships unless its policy verifies.

The fleet's delivery path already refuses unsigned and tampered bundles;
this adds the semantic gate on top — a *validly signed* bundle whose
policy violates any static safety property is refused fleet-wide, before
the canary wave ever sees it.  Decisions are cached by policy digest, so
staging the same bundle to ten thousand vehicles proves it once.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from .checker import VerificationReport, verify_policies


@dataclasses.dataclass
class GateDecision:
    """The proof gate's verdict on one policy revision."""

    passed: bool
    failed_properties: Tuple[str, ...]
    summary: str
    report: Optional[VerificationReport] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "failed_properties": list(self.failed_properties),
            "summary": self.summary,
        }


class ProofGate:
    """Policy-revision admission control backed by the model checker."""

    def __init__(self, properties: Optional[Sequence] = None,
                 solver: str = "exhaustive",
                 ioctl_symbols=None, enabled: bool = True):
        self.properties = properties
        self.solver = solver
        self.ioctl_symbols = ioctl_symbols
        self.enabled = enabled
        self.evaluations = 0
        self.refusals = 0
        self._cache: Dict[str, GateDecision] = {}

    def _verify(self, policy_text: str) -> GateDecision:
        report = verify_policies(
            policy_text, ioctl_symbols=self.ioctl_symbols,
            properties=self.properties, solver=self.solver)
        failed = tuple(report.failed_properties)
        if report.ok:
            summary = (f"proof gate: all "
                       f"{len(report.results)} properties hold")
        else:
            first = report.counterexamples[:1]
            why = (f" — {first[0].describe()}" if first
                   else (f" — {report.error}" if report.error else ""))
            summary = (f"proof gate: {', '.join(failed)} violated{why}")
        return GateDecision(passed=report.ok, failed_properties=failed,
                            summary=summary, report=report)

    def evaluate_policy(self, policy_text: str) -> GateDecision:
        """Verify one policy text (digest-cached)."""
        if not self.enabled:
            return GateDecision(True, (), "proof gate disabled")
        digest = hashlib.sha256(policy_text.encode()).hexdigest()
        decision = self._cache.get(digest)
        if decision is None:
            decision = self._verify(policy_text)
            self._cache[digest] = decision
        self.evaluations += 1
        if not decision.passed:
            self.refusals += 1
        return decision

    def evaluate_bundle(self, bundle) -> GateDecision:
        """Verify the policy an OTA bundle carries."""
        return self.evaluate_policy(bundle.policy_text)

    def stats(self) -> Dict[str, int]:
        return {
            "evaluations": self.evaluations,
            "refusals": self.refusals,
            "distinct_policies": len(self._cache),
        }
