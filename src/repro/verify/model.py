"""The finite-state model the checker enumerates.

The model is the product of the **policy revision chain** (one revision
per policy — a single loaded policy, or a committed policy followed by a
staged OTA bundle) and each revision's **situation state graph**:

* ``event`` edges come from the SSM transition rules (with ``'*'``
  wildcard sources expanded, self-transitions dropped — the SSM ignores
  them);
* ``failsafe`` edges model the watchdog / rollback degradation path: the
  policy-declared failsafe state is reachable from *every* state within
  the declared staleness bound;
* ``ota`` edges connect every state of revision *k* to the initial state
  of revision *k+1* (an applied bundle builds a fresh SSM).

The decision oracle at each node is the **production compiler's** ruleset
(:meth:`~repro.sack.policy.compiler.CompiledRuleset.check`), not a
re-implementation — the model checker proves facts about the exact code
the hot path runs.  The access grid (subjects × objects × operations ×
ioctl commands) is derived from the policy text itself: literal rule
subjects and paths, witness paths for globs and guards, and every ioctl
command the policy or the probe symbols name.

The space is small and enumerable by construction (states × revisions is
bounded by the policy, and the grid by its rules), which is what makes
the exhaustive solver complete; see ``docs/verification.md``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..apparmor.globs import glob_match
from ..sack.policy.compiler import CompiledPolicy, compile_policy
from ..sack.policy.model import RuleOp, SackPolicy
from ..sack.ssm import ANY_STATE, FAILSAFE_EVENT
from .counterexample import (STEP_EVENT, STEP_FAILSAFE, STEP_OTA,
                             AccessRequest, Counterexample, TraceStep)

#: Probe subject that matches no ``subject=`` rule glob in any shipped
#: policy — the witness for "an arbitrary unnamed application".
WITNESS_SUBJECT = "probe_app"

#: Probe path no sane policy guards — the witness for "outside SACK's
#: scope", where independent SACK must allow by design.
UNGOVERNED_PROBE = "/tmp/verify_probe"

_GLOB_CHARS = "*?[{"


def _is_literal(text: str) -> bool:
    return not any(ch in text for ch in _GLOB_CHARS)


def _glob_witness(glob: str) -> Optional[str]:
    """A concrete path matching *glob*, or None when none can be built."""
    if _is_literal(glob):
        return glob
    if "[" in glob or "{" in glob:
        return None
    witness = glob.replace("**", "probe").replace("*", "x")
    witness = witness.replace("?", "q")
    return witness if glob_match(glob, witness) else None


@dataclasses.dataclass(frozen=True)
class ModelNode:
    """One point of the reachable (revision, state) product."""

    revision: str
    state: str

    def describe(self) -> str:
        return f"{self.state} [{self.revision}]"


@dataclasses.dataclass(frozen=True)
class ModelEdge:
    """One transition of the product graph."""

    kind: str       # STEP_EVENT | STEP_FAILSAFE | STEP_OTA
    label: str
    source: ModelNode
    target: ModelNode


@dataclasses.dataclass
class Revision:
    """One policy revision: source, compiled form, staged profiles."""

    rev_id: str
    policy: SackPolicy
    compiled: CompiledPolicy
    profiles: Dict[str, str] = dataclasses.field(default_factory=dict)

    @property
    def state_names(self) -> List[str]:
        return [s.name for s in self.policy.states]


class PolicyModel:
    """The explicit finite-state model, plus its access grid."""

    def __init__(self, revisions: Sequence[Revision],
                 ioctl_symbols: Mapping[str, int],
                 subjects: Sequence[str], objects: Sequence[str],
                 ioctl_cmds: Mapping[str, int]):
        self.revisions: Dict[str, Revision] = {r.rev_id: r
                                               for r in revisions}
        self.rev_order: Tuple[str, ...] = tuple(r.rev_id for r in revisions)
        self.ioctl_symbols = dict(ioctl_symbols)
        self.subjects: Tuple[str, ...] = tuple(subjects)
        self.objects: Tuple[str, ...] = tuple(objects)
        #: Modeled ioctl commands, name -> resolved number.
        self.ioctl_cmds: Dict[str, int] = dict(ioctl_cmds)
        self.cmd_names: Dict[int, str] = {v: k
                                          for k, v in ioctl_cmds.items()}
        #: Decision-oracle invocations so far (model-size accounting).
        self.checks = 0
        self.initial = ModelNode(revisions[0].rev_id,
                                 revisions[0].policy.initial)
        self.nodes: List[ModelNode] = []
        self.edges: Dict[ModelNode, List[ModelEdge]] = {}
        self._preds: Dict[ModelNode, ModelEdge] = {}
        self._explore()

    # -- construction -------------------------------------------------------
    def _revision_edges(self, rev: Revision,
                        source: ModelNode) -> List[ModelEdge]:
        edges: List[ModelEdge] = []
        policy = rev.policy
        for rule in policy.transitions:
            if rule.from_state not in (source.state, ANY_STATE):
                continue
            if rule.to_state == source.state:
                continue  # the SSM ignores self-transitions
            edges.append(ModelEdge(
                STEP_EVENT, rule.event, source,
                ModelNode(rev.rev_id, rule.to_state)))
        if policy.failsafe is not None \
                and policy.failsafe != source.state:
            edges.append(ModelEdge(
                STEP_FAILSAFE, FAILSAFE_EVENT, source,
                ModelNode(rev.rev_id, policy.failsafe)))
        idx = self.rev_order.index(rev.rev_id)
        if idx + 1 < len(self.rev_order):
            nxt = self.revisions[self.rev_order[idx + 1]]
            edges.append(ModelEdge(
                STEP_OTA, f"apply {nxt.rev_id}", source,
                ModelNode(nxt.rev_id, nxt.policy.initial)))
        return edges

    def _explore(self) -> None:
        """BFS over the product graph from the initial node."""
        seen = {self.initial}
        frontier = [self.initial]
        self.nodes.append(self.initial)
        while frontier:
            node = frontier.pop(0)
            rev = self.revisions[node.revision]
            out = self._revision_edges(rev, node)
            self.edges[node] = out
            for edge in out:
                if edge.target not in seen:
                    seen.add(edge.target)
                    self._preds[edge.target] = edge
                    self.nodes.append(edge.target)
                    frontier.append(edge.target)

    # -- queries ------------------------------------------------------------
    def nodes_of(self, rev_id: str) -> List[ModelNode]:
        return [n for n in self.nodes if n.revision == rev_id]

    def ruleset(self, node: ModelNode):
        return self.revisions[node.revision].compiled.ruleset_for(
            node.state)

    def decision(self, node: ModelNode, subject: str, path: str,
                 op: RuleOp, cmd: Optional[int] = None) -> bool:
        """The production decision oracle at *node* (True = allow)."""
        self.checks += 1
        return self.ruleset(node).check(op, path, subject, cmd)

    def trace_to(self, node: ModelNode) -> Tuple[TraceStep, ...]:
        """Shortest transition sequence from the initial node."""
        steps: List[TraceStep] = []
        cursor = node
        while cursor != self.initial:
            edge = self._preds[cursor]
            steps.append(TraceStep(
                kind=edge.kind, label=edge.label,
                from_state=edge.source.state, to_state=edge.target.state,
                revision=edge.target.revision))
            cursor = edge.source
        steps.reverse()
        return tuple(steps)

    def counterexample(self, property_id: str, node: ModelNode,
                       expected: str, actual: str, detail: str,
                       request: Optional[AccessRequest] = None
                       ) -> Counterexample:
        return Counterexample(
            property_id=property_id, revision=node.revision,
            state=node.state, trace=self.trace_to(node),
            expected=expected, actual=actual, detail=detail,
            request=request)

    def emergency_states(self, rev_id: str,
                         events: Iterable[str]) -> set:
        """States of *rev_id* entered by *events* or by degradation."""
        rev = self.revisions[rev_id]
        reachable = {n.state for n in self.nodes_of(rev_id)}
        states = set()
        for rule in rev.policy.transitions:
            if rule.event in events and rule.to_state in reachable:
                states.add(rule.to_state)
        if rev.policy.failsafe is not None \
                and rev.policy.failsafe in reachable:
            states.add(rev.policy.failsafe)
        return states

    def stats(self) -> Dict[str, int]:
        return {
            "revisions": len(self.revisions),
            "states": len(self.nodes),
            "transitions": sum(len(v) for v in self.edges.values()),
            "subjects": len(self.subjects),
            "objects": len(self.objects),
            "ioctl_cmds": len(self.ioctl_cmds),
            "checks": self.checks,
        }


def _default_ioctl_symbols() -> Dict[str, int]:
    # Lazy: repro.verify must stay importable from the layers below
    # repro.vehicle (the chaos harness imports the property registry).
    from ..vehicle.devices import IOCTL_SYMBOLS
    return dict(IOCTL_SYMBOLS)


def _derive_subjects(policies: Sequence[SackPolicy],
                     extra: Sequence[str]) -> List[str]:
    subjects = {WITNESS_SUBJECT}
    subjects.update(extra)
    for policy in policies:
        for state in policy.states:
            for rule in policy.rules_for_state(state.name):
                if rule.subject is not None and _is_literal(rule.subject):
                    subjects.add(rule.subject)
    return sorted(subjects)


def _derive_objects(policies: Sequence[SackPolicy],
                    extra: Sequence[str]) -> List[str]:
    objects = {UNGOVERNED_PROBE}
    objects.update(extra)
    for policy in policies:
        globs = list(policy.guards)
        for state in policy.states:
            globs.extend(rule.path_glob
                         for rule in policy.rules_for_state(state.name))
        for glob in globs:
            witness = _glob_witness(glob)
            if witness is not None:
                objects.add(witness)
    return sorted(objects)


def _derive_cmds(policies: Sequence[SackPolicy],
                 symbols: Mapping[str, int]) -> Dict[str, int]:
    cmds = dict(symbols)
    for policy in policies:
        for state in policy.states:
            for rule in policy.rules_for_state(state.name):
                for token in rule.ioctl_cmds:
                    if token in cmds:
                        continue
                    if token.isdigit():
                        cmds[token] = int(token)
    return cmds


def build_model(policies, ioctl_symbols: Optional[Mapping[str, int]] = None,
                profiles: Optional[Sequence[Dict[str, str]]] = None,
                extra_subjects: Sequence[str] = (),
                extra_objects: Sequence[str] = ()) -> PolicyModel:
    """Build the model for one policy or a revision chain.

    *policies* is a policy text, a :class:`SackPolicy`, or a sequence of
    either (the OTA revision chain, oldest first).  Parse and compile
    errors propagate — an uncompilable policy has no model, and the
    checker reports that as its own failure.
    """
    from ..sack.policy import parse_policy
    if isinstance(policies, (str, SackPolicy)):
        policies = [policies]
    if not policies:
        raise ValueError("build_model needs at least one policy")
    symbols = (dict(ioctl_symbols) if ioctl_symbols is not None
               else _default_ioctl_symbols())
    parsed: List[SackPolicy] = [
        parse_policy(p) if isinstance(p, str) else p for p in policies]
    revisions = []
    for i, policy in enumerate(parsed):
        rev_profiles = {}
        if profiles is not None and i < len(profiles):
            rev_profiles = dict(profiles[i] or {})
        revisions.append(Revision(
            rev_id=f"rev{i}:{policy.name}", policy=policy,
            compiled=compile_policy(policy, ioctl_symbols=symbols),
            profiles=rev_profiles))
    return PolicyModel(
        revisions, symbols,
        subjects=_derive_subjects(parsed, extra_subjects),
        objects=_derive_objects(parsed, extra_objects),
        ioctl_cmds=_derive_cmds(parsed, symbols))
