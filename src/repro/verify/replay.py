"""Counterexample replay: confirm a static finding on a live kernel.

A model-checker verdict is only as credible as the model.  The replay
driver closes that loop: it boots a full IVI world with the *same* policy
the model was built from, drives the SSM along the counterexample's
transition trace through the real kernel surfaces (situation events
through the SACKfs write handler, degradation through
``enter_failsafe``), and then issues the counterexample's access request
as the real subject task through the real syscall path.  A confirmed
replay means the violation is not a modeling artifact — the live kernel
grants (or denies) exactly as the trace predicted.

Multi-revision traces replay their post-OTA suffix: the world boots the
revision the violating node lives in (an applied bundle starts a fresh
SSM at that policy's initial state, which is exactly where the suffix
begins).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from .counterexample import (STEP_EVENT, STEP_FAILSAFE, STEP_OTA,
                             Counterexample, TraceStep)

#: SACKfs event channel (the SDS's kernel entry point).
EVENTS_PATH = "/sys/kernel/security/SACK/events"

OUTCOME_ALLOW = "allow"
OUTCOME_DENY = "deny"
OUTCOME_INCONCLUSIVE = "inconclusive"


@dataclasses.dataclass
class ReplayResult:
    """What actually happened when the trace ran on a live kernel."""

    confirmed: bool
    outcome: str            # allow | deny | inconclusive
    detail: str
    final_state: str = ""
    steps_applied: int = 0
    mode: str = "independent"

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def _suffix_after_ota(trace: Sequence[TraceStep]
                      ) -> Tuple[TraceStep, ...]:
    """The trace steps after the last OTA apply (all, when none)."""
    steps = list(trace)
    for i in range(len(steps) - 1, -1, -1):
        if steps[i].kind == STEP_OTA:
            return tuple(steps[i + 1:])
    return tuple(steps)


def _select_policy(cex: Counterexample, policies) -> str:
    """The policy text of the revision the violating node lives in."""
    if isinstance(policies, str):
        return policies
    texts = list(policies)
    rev = cex.revision
    if rev.startswith("rev"):
        index_text = rev[3:].split(":", 1)[0]
        if index_text.isdigit() and int(index_text) < len(texts):
            return texts[int(index_text)]
    return texts[-1]


def _event_writer(world):
    """The task SACKfs will accept situation events from."""
    sds = world.tasks.get("sds")
    return sds if sds is not None else world.kernel.procs.init


def _subject_task(world, comm: str):
    """The live task named *comm*, forked on demand for witnesses."""
    task = world.tasks.get(comm)
    if task is not None:
        return task
    from ..kernel import user_credentials
    kernel = world.kernel
    exe = f"/usr/bin/{comm}"
    kernel.vfs.create_file(exe, mode=0o755)
    task = kernel.sys_fork(kernel.procs.init)
    task.cred = user_credentials(4242)
    kernel.sys_execve(task, exe, comm=comm)
    world.tasks[comm] = task
    return task


def _probe_access(world, request) -> Tuple[str, str]:
    """Issue the counterexample's access request; returns (outcome, why)."""
    from ..kernel import KernelError, OpenFlags
    from ..kernel.errors import Errno
    kernel = world.kernel
    task = _subject_task(world, request.subject)
    denied = (Errno.EACCES, Errno.EPERM)

    if request.op == "ioctl":
        fd = None
        try:
            fd = kernel.sys_open(task, request.path, OpenFlags.O_RDONLY)
            kernel.sys_ioctl(task, fd, request.cmd or 0, 0)
        except KernelError as exc:
            if exc.errno in denied:
                return OUTCOME_DENY, f"kernel denied: {exc}"
            if exc.errno == Errno.ENOTTY:
                # The driver saw the command: MAC mediation passed.
                return OUTCOME_ALLOW, f"device refused command: {exc}"
            return OUTCOME_INCONCLUSIVE, f"probe failed: {exc}"
        finally:
            if fd is not None:
                kernel.sys_close(task, fd)
        return OUTCOME_ALLOW, "ioctl delivered to the device"

    if request.op in ("read", "write"):
        flags = (OpenFlags.O_RDONLY if request.op == "read"
                 else OpenFlags.O_WRONLY)
        try:
            fd = kernel.sys_open(task, request.path, flags)
        except KernelError as exc:
            if exc.errno in denied:
                return OUTCOME_DENY, f"kernel denied: {exc}"
            return OUTCOME_INCONCLUSIVE, f"probe failed: {exc}"
        kernel.sys_close(task, fd)
        return OUTCOME_ALLOW, f"open for {request.op} succeeded"

    return (OUTCOME_INCONCLUSIVE,
            f"operation {request.op!r} has no replay probe")


def replay_counterexample(cex: Counterexample, policies,
                          mode: str = "independent") -> ReplayResult:
    """Execute *cex* against a freshly booted live kernel instance.

    *policies* is the policy text (or revision chain) the model was
    built from; *mode* selects ``independent`` SACK or the ``apparmor``
    bridge.  Confirmed means: the trace reached the predicted state AND
    the live access decision matches the counterexample's ``actual``.
    """
    from ..vehicle.ivi import EnforcementConfig, build_ivi_world
    config = {
        "independent": EnforcementConfig.SACK_INDEPENDENT,
        "apparmor": EnforcementConfig.SACK_APPARMOR,
    }.get(mode)
    if config is None:
        raise ValueError(f"unknown replay mode {mode!r}; "
                         f"use 'independent' or 'apparmor'")
    policy_text = _select_policy(cex, policies)
    world = build_ivi_world(config, policy_text=policy_text,
                            with_sds=False)
    module = world.sack or world.bridge
    ssm = module.ssm if module is not None else None
    if ssm is None:
        return ReplayResult(False, OUTCOME_INCONCLUSIVE,
                            "world booted without a SACK module",
                            mode=mode)
    writer = _event_writer(world)
    applied = 0
    for step in _suffix_after_ota(cex.trace):
        if step.kind == STEP_EVENT:
            from ..kernel import KernelError
            try:
                world.kernel.write_file(writer, EVENTS_PATH,
                                        f"{step.label}\n".encode(),
                                        create=False)
            except KernelError as exc:
                return ReplayResult(
                    False, OUTCOME_INCONCLUSIVE,
                    f"event {step.label!r} rejected by SACKfs: {exc}",
                    final_state=ssm.current_name, steps_applied=applied,
                    mode=mode)
        elif step.kind == STEP_FAILSAFE:
            ssm.enter_failsafe("replay: forced degradation",
                               now_ns=world.kernel.clock.now_ns)
        else:
            return ReplayResult(
                False, OUTCOME_INCONCLUSIVE,
                f"unexpected {step.kind!r} step after OTA suffix split",
                final_state=ssm.current_name, steps_applied=applied,
                mode=mode)
        applied += 1
        if ssm.current_name != step.to_state:
            return ReplayResult(
                False, OUTCOME_INCONCLUSIVE,
                f"step {applied} ({step.describe()}) left the live SSM "
                f"in {ssm.current_name!r}, not {step.to_state!r}",
                final_state=ssm.current_name, steps_applied=applied,
                mode=mode)
    final_state = ssm.current_name
    if final_state != cex.state:
        return ReplayResult(
            False, OUTCOME_INCONCLUSIVE,
            f"trace ended in {final_state!r} but the counterexample "
            f"names {cex.state!r}", final_state=final_state,
            steps_applied=applied, mode=mode)
    if cex.request is None:
        # Structural violations have nothing to probe; reaching the
        # state is all the replay can (and needs to) confirm.
        return ReplayResult(
            True, OUTCOME_INCONCLUSIVE,
            "structural counterexample: state reached, no access to "
            "probe", final_state=final_state, steps_applied=applied,
            mode=mode)
    outcome, why = _probe_access(world, cex.request)
    confirmed = outcome in (OUTCOME_ALLOW, OUTCOME_DENY) \
        and outcome == cex.actual
    detail = (f"live kernel: {cex.request.describe()} -> {outcome} "
              f"in state {final_state!r} ({why}); "
              f"model predicted {cex.actual}")
    return ReplayResult(confirmed, outcome, detail,
                        final_state=final_state, steps_applied=applied,
                        mode=mode)
