"""Counterexample traces: how a property violation is reported.

A counterexample is a *constructive* refutation: the concrete transition
sequence that drives the state machine from its initial state into the
violating ``(revision, state)`` node, plus — for decision properties —
the access request that comes out wrong there.  The trace is what makes a
static finding actionable: the replay driver
(:mod:`~repro.verify.replay`) executes exactly these steps against a live
kernel instance and confirms the mismatch end to end.

Everything here is plain data with a stable dict form, so counterexamples
can be exported from ``sackctl verify``, attached to refused OTA bundles,
and re-imported for replay.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

#: Trace step kinds.
STEP_EVENT = "event"        # a situation event drives an SSM rule
STEP_FAILSAFE = "failsafe"  # watchdog / rollback degradation edge
STEP_OTA = "ota"            # an OTA bundle apply swaps the policy revision


@dataclasses.dataclass(frozen=True)
class TraceStep:
    """One edge of the model walked on the way to the violating node."""

    kind: str          # STEP_EVENT | STEP_FAILSAFE | STEP_OTA
    label: str         # event name / failsafe reason / "apply <rev>"
    from_state: str
    to_state: str
    revision: str      # revision the step lands in

    def describe(self) -> str:
        if self.kind == STEP_EVENT:
            return (f"event {self.label!r}: {self.from_state} -> "
                    f"{self.to_state}")
        if self.kind == STEP_FAILSAFE:
            return (f"failsafe degradation: {self.from_state} -> "
                    f"{self.to_state}")
        return (f"OTA apply {self.label}: {self.from_state} -> "
                f"{self.to_state} [{self.revision}]")

    def to_dict(self) -> Dict[str, str]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, str]) -> "TraceStep":
        return cls(**doc)


@dataclasses.dataclass(frozen=True)
class AccessRequest:
    """The concrete access whose decision violates the property."""

    subject: str                 # task comm
    path: str                    # object path
    op: str                      # RuleOp value ("read", "ioctl", ...)
    cmd: Optional[int] = None    # resolved ioctl command number
    cmd_name: Optional[str] = None

    def describe(self) -> str:
        text = f"{self.subject}: {self.op} {self.path}"
        if self.cmd is not None:
            name = self.cmd_name or f"{self.cmd:#x}"
            text += f" cmd={name}"
        return text

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "AccessRequest":
        return cls(**doc)


@dataclasses.dataclass(frozen=True)
class Counterexample:
    """One property violation, with the trace that reaches it.

    ``expected``/``actual`` are decision words (``allow``/``deny``) for
    access properties, or short structural phrases for model-shape
    properties (e.g. P3 with no declared failsafe).  ``request`` is None
    for structural violations — those have nothing to replay.
    """

    property_id: str
    revision: str
    state: str
    trace: Tuple[TraceStep, ...]
    expected: str
    actual: str
    detail: str
    request: Optional[AccessRequest] = None

    @property
    def replayable(self) -> bool:
        return self.request is not None

    def describe(self) -> str:
        what = (self.request.describe() if self.request is not None
                else self.detail)
        return (f"{self.property_id} violated in state {self.state!r} "
                f"[{self.revision}]: {what} — expected {self.expected}, "
                f"got {self.actual}")

    def render(self) -> List[str]:
        """Human-readable multi-line rendering for CLI output."""
        lines = [self.describe()]
        if self.trace:
            lines.append("  trace from initial state:")
            lines.extend(f"    {i + 1}. {step.describe()}"
                         for i, step in enumerate(self.trace))
        else:
            lines.append("  trace: (initial state)")
        if self.detail and self.request is not None:
            lines.append(f"  detail: {self.detail}")
        return lines

    def to_dict(self) -> Dict[str, object]:
        return {
            "property_id": self.property_id,
            "revision": self.revision,
            "state": self.state,
            "trace": [step.to_dict() for step in self.trace],
            "expected": self.expected,
            "actual": self.actual,
            "detail": self.detail,
            "request": (self.request.to_dict()
                        if self.request is not None else None),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "Counterexample":
        request = doc.get("request")
        return cls(
            property_id=doc["property_id"],
            revision=doc["revision"],
            state=doc["state"],
            trace=tuple(TraceStep.from_dict(s) for s in doc["trace"]),
            expected=doc["expected"],
            actual=doc["actual"],
            detail=doc["detail"],
            request=(AccessRequest.from_dict(request)
                     if request is not None else None),
        )
