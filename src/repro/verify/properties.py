"""The shared property registry: runtime invariants + static proofs.

Single source of truth for what "safe" means, consumed by two layers:

* the **runtime** side — the chaos harness's per-tick fail-closed checks
  I1–I11 (:data:`RUNTIME_INVARIANTS`; the chaos checker imports its check
  functions from here, so the dynamic layer can never drift from this
  registry);
* the **static** side — the safety properties P1–P5
  (:data:`STATIC_PROPERTIES`) the model checker proves over every
  reachable ``(revision, state)`` node of a
  :class:`~repro.verify.model.PolicyModel`.

Each runtime invariant names its static counterparts (``static_ids``) and
vice versa (``runtime_ids``): I4's per-tick KOFFEE probe is the sampled
shadow of P2's exhaustive proof, I5's consistency check of P5's
equivalence proof, I6 of P3, I7/I11 of P4.  I2/I3 (counter accounting)
and I8–I10 (fleet convergence, quarantine, restore fidelity) are
inherently runtime and have no static analog.

Runtime check functions take ``(world, ctx)`` — ``ctx`` is a small dict
that persists across ticks (monotonicity needs the previous counter
snapshot) — and return ``(invariant_label, detail)`` pairs.  Static check
functions take a model and return
:class:`~repro.verify.counterexample.Counterexample` objects.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from .counterexample import AccessRequest, Counterexample
from .model import PolicyModel

#: Situation events that signal an emergency (P1's trigger set).
EMERGENCY_EVENTS = ("crash_detected",)

#: The KOFFEE attack path (CVE-2020-8539): a compromised infotainment
#: app actuating the door lock directly.
KOFFEE_SUBJECT = "media_app"
KOFFEE_PATH = "/dev/car/door"
KOFFEE_CMD = "DOOR_UNLOCK"

#: The rescue daemon's emergency door actions (the case-study workload).
RESCUE_SUBJECT = "rescue_daemon"
RESCUE_CMDS = ("DOOR_LOCK", "DOOR_UNLOCK")


# ---------------------------------------------------------------------------
# Runtime invariants (the chaos harness's per-tick checks)
# ---------------------------------------------------------------------------

def _ssm_of(world):
    module = world.sack or world.bridge
    return module.ssm if module is not None else None


def _check_state_defined(world, ctx) -> List[Tuple[str, str]]:
    ssm = _ssm_of(world)
    if ssm is None:
        return []
    if ssm.current_name not in {s.name for s in ssm.states}:
        return [("I1:state-defined",
                 f"current state {ssm.current_name!r} not in policy")]
    return []


def _check_ssm_accounting(world, ctx) -> List[Tuple[str, str]]:
    ssm = _ssm_of(world)
    if ssm is None:
        return []
    buckets = (ssm.transition_count + ssm.events_ignored
               + ssm.transitions_failed)
    if ssm.events_processed != buckets:
        return [("I2:ssm-accounting",
                 f"processed={ssm.events_processed} != "
                 f"transitions+ignored+failed={buckets}")]
    return []


def _check_sackfs_counters(world, ctx) -> List[Tuple[str, str]]:
    """I3, both halves in check order: accounting, then monotonicity."""
    failures: List[Tuple[str, str]] = []
    fs = world.sackfs
    if fs is not None:
        accounted = (fs.events_accepted + fs.events_rejected
                     + fs.heartbeats_received)
        if accounted < fs.events_received:
            failures.append(("I3:sackfs-accounting",
                             f"received={fs.events_received} > "
                             f"accepted+rejected+heartbeats={accounted}"))
    ssm = _ssm_of(world)
    counters = {}
    if fs is not None:
        counters.update(received=fs.events_received,
                        accepted=fs.events_accepted,
                        rejected=fs.events_rejected,
                        heartbeats=fs.heartbeats_received)
    if ssm is not None:
        counters.update(processed=ssm.events_processed,
                        transitions=ssm.transition_count,
                        ignored=ssm.events_ignored,
                        failed=ssm.transitions_failed,
                        rollbacks=ssm.rollback_count)
    last = ctx.setdefault("last_counters", {})
    for name, value in counters.items():
        prev = last.get(name)
        # Counters reset on policy reload (a new SSM); only flag
        # decreases for counters that cannot legitimately reset.
        if prev is not None and value < prev and name in (
                "received", "accepted", "rejected", "heartbeats"):
            failures.append(("I3:monotone",
                             f"counter {name} went {prev} -> {value}"))
    ctx["last_counters"] = counters
    return failures


def _check_fail_closed_access(world, ctx) -> List[Tuple[str, str]]:
    """I4: media_app can never actuate the door, whatever just broke."""
    from ..kernel.errors import KernelError
    from ..vehicle.devices import DOOR_UNLOCK
    try:
        world.device_ioctl("media_app", "door", DOOR_UNLOCK, 0)
    except KernelError:
        return []
    return [("I4:fail-closed",
             f"media_app unlocked the door in state "
             f"{world.situation!r}")]


def _check_enforcement_agrees(world, ctx) -> List[Tuple[str, str]]:
    ssm = _ssm_of(world)
    if ssm is None:
        return []
    failures: List[Tuple[str, str]] = []
    if world.sack is not None:
        ape = world.sack.ape
        if ape is not None and ape.current_state != ssm.current_name:
            failures.append(("I5:ape-agrees",
                             f"APE enforces {ape.current_state!r} but SSM "
                             f"is in {ssm.current_name!r}"))
    if world.bridge is not None:
        failures.extend(("I5:bridge-agrees", problem)
                        for problem in world.bridge.verify_consistency())
    return failures


def _check_failsafe_state(world, ctx) -> List[Tuple[str, str]]:
    ssm = _ssm_of(world)
    if ssm is None or not ssm.failsafe_engaged:
        return []
    expected = ssm.failsafe_state or ssm.current_name
    if ssm.current_name != expected:
        return [("I6:failsafe-state",
                 f"failsafe engaged but state is "
                 f"{ssm.current_name!r}, not {expected!r}")]
    return []


def _check_avc_coherent(world, ctx) -> List[Tuple[str, str]]:
    """I7: an epoch bump is never followed by a stale-epoch cache hit.

    The AVC core stamps every hit with (entry epoch, epoch at serve
    time); under any interleaving of transitions, rollbacks, failsafe
    settles and profile reloads these must match — a mismatch means a
    pre-transition decision outlived its situation.
    """
    framework = getattr(world, "framework", None)
    avc = getattr(framework, "avc", None)
    if avc is None:
        return []
    failures: List[Tuple[str, str]] = []
    core = avc.core
    if core.stale_served:
        failures.append(("I7:avc-stale-hit",
                         f"{core.stale_served} stale entr(y/ies) served"))
    if core.last_hit_entry_epoch != core.last_hit_at_epoch:
        failures.append(("I7:avc-stale-hit",
                         f"hit served an epoch-{core.last_hit_entry_epoch} "
                         f"entry at epoch {core.last_hit_at_epoch}"))
    return failures


def _check_dtable_coherent(world, ctx) -> List[Tuple[str, str]]:
    """I11: no stale-table hit — a precompiled decision table never
    answers for an epoch it was not built against.

    Same discipline as I7, one layer earlier: every table hit is stamped
    with (epoch built, epoch at serve time); under any interleaving of
    transitions, rollbacks and policy reloads these must match, and the
    table must always be freshly built (or invalidated) whenever the AVC
    epoch has moved.
    """
    framework = getattr(world, "framework", None)
    dtable = getattr(framework, "dtable", None)
    if dtable is None or not dtable.used:
        return []
    failures: List[Tuple[str, str]] = []
    if dtable.stale_served:
        failures.append(("I11:dtable-stale-hit",
                         f"{dtable.stale_served} stale table "
                         f"answer(s) served"))
    if dtable.last_hit_built_epoch != dtable.last_hit_at_epoch:
        failures.append(("I11:dtable-stale-hit",
                         f"hit served an epoch-"
                         f"{dtable.last_hit_built_epoch} table at epoch "
                         f"{dtable.last_hit_at_epoch}"))
    if dtable.enabled and \
            dtable.built_epoch != framework.avc.core.epoch:
        failures.append(("I11:dtable-stale-hit",
                         f"live table built for epoch "
                         f"{dtable.built_epoch} but AVC epoch is "
                         f"{framework.avc.core.epoch}"))
    return failures


@dataclasses.dataclass(frozen=True)
class RuntimeInvariant:
    """One runtime invariant: identity, prose, and (optionally) its check.

    ``check`` is ``(world, ctx) -> [(label, detail), ...]``; invariants
    enforced elsewhere than the per-tick chaos loop (fleet convergence,
    supervisor quarantine/restore) carry ``check=None`` and exist here
    for the registry's cross-reference and documentation value.
    """

    inv_id: str
    label: str
    title: str
    summary: str
    location: str                       # "chaos" | "fleet" | "supervisor"
    static_ids: Tuple[str, ...] = ()
    check: Optional[Callable] = None


RUNTIME_INVARIANTS: Tuple[RuntimeInvariant, ...] = (
    RuntimeInvariant(
        "I1", "I1:state-defined", "State always defined",
        "The SSM's current state is always one the policy defines.",
        "chaos", static_ids=(), check=_check_state_defined),
    RuntimeInvariant(
        "I2", "I2:ssm-accounting", "SSM event accounting",
        "Every processed event is exactly one of transitioned / ignored "
        "/ failed.", "chaos", static_ids=(), check=_check_ssm_accounting),
    RuntimeInvariant(
        "I3", "I3:sackfs-accounting", "SACKfs counter discipline",
        "SACKfs counters are monotone and every received write is "
        "accounted for (accepted, rejected, or a heartbeat).",
        "chaos", static_ids=(), check=_check_sackfs_counters),
    RuntimeInvariant(
        "I4", "I4:fail-closed", "Guarded resources never open up",
        "An unprivileged app's door-control attempt is denied in every "
        "situation state, no matter which faults fired.",
        "chaos", static_ids=("P2:koffee-unreachable",),
        check=_check_fail_closed_access),
    RuntimeInvariant(
        "I5", "I5:ape-agrees", "Enforcement follows tracking",
        "The APE's active ruleset (independent mode) or the live "
        "AppArmor profiles (bridge mode) agree with the SSM's current "
        "state.", "chaos", static_ids=("P5:bridge-equivalence",),
        check=_check_enforcement_agrees),
    RuntimeInvariant(
        "I6", "I6:failsafe-state", "Failsafe means failsafe",
        "When the failsafe is engaged, the machine actually sits in the "
        "policy-declared failsafe state.",
        "chaos", static_ids=("P3:failsafe-reachable",),
        check=_check_failsafe_state),
    RuntimeInvariant(
        "I7", "I7:avc-stale-hit", "No stale AVC hit",
        "An epoch bump is never followed by a stale-epoch cache hit: no "
        "pre-transition decision outlives its situation.",
        "chaos", static_ids=("P4:cache-coherence",),
        check=_check_avc_coherent),
    RuntimeInvariant(
        "I8", "I8:fleet-convergence", "Fleet convergence",
        "After a completed rollout every healthy vehicle runs the "
        "staged bundle version.", "fleet", static_ids=()),
    RuntimeInvariant(
        "I9", "I9:quarantine-frozen", "Quarantine freezes state",
        "A quarantined vehicle takes no further bundles or events until "
        "released.", "supervisor", static_ids=()),
    RuntimeInvariant(
        "I10", "I10:restore-fidelity", "Restore fidelity",
        "A vehicle restored from a checkpoint replays to exactly the "
        "checkpointed situation state and counters.",
        "supervisor", static_ids=()),
    RuntimeInvariant(
        "I11", "I11:dtable-stale-hit", "No stale decision-table hit",
        "A precompiled decision table never answers for an epoch it was "
        "not built against.", "chaos",
        static_ids=("P4:cache-coherence",),
        check=_check_dtable_coherent),
)

_RUNTIME_BY_ID: Dict[str, RuntimeInvariant] = {
    inv.inv_id: inv for inv in RUNTIME_INVARIANTS}


def runtime_invariant(inv_id: str) -> RuntimeInvariant:
    """Look up one invariant by id (``"I4"``) or label prefix."""
    inv = _RUNTIME_BY_ID.get(inv_id)
    if inv is None:
        inv = _RUNTIME_BY_ID.get(inv_id.split(":", 1)[0])
    if inv is None:
        raise KeyError(f"unknown runtime invariant {inv_id!r}")
    return inv


def runtime_checks(location: str = "chaos") -> List[Callable]:
    """The ordered per-tick check functions enforced at *location*.

    Order matters and is part of the contract: I4 probes the door
    through the real kernel (audit records, denial counters), so the
    chaos fingerprints depend on these running in registry order.
    """
    return [inv.check for inv in RUNTIME_INVARIANTS
            if inv.location == location and inv.check is not None]


# ---------------------------------------------------------------------------
# Static safety properties (the model checker's proof obligations)
# ---------------------------------------------------------------------------

def _p1_rescue_never_denied(model: PolicyModel) -> List[Counterexample]:
    from ..sack.policy.model import RuleOp
    violations: List[Counterexample] = []
    for rev_id in model.rev_order:
        emergency = model.emergency_states(rev_id, EMERGENCY_EVENTS)
        for node in model.nodes_of(rev_id):
            if node.state not in emergency:
                continue
            for name in RESCUE_CMDS:
                cmd = model.ioctl_cmds.get(name)
                if cmd is None:
                    continue
                if model.decision(node, RESCUE_SUBJECT, KOFFEE_PATH,
                                  RuleOp.IOCTL, cmd):
                    continue
                violations.append(model.counterexample(
                    "P1:rescue-never-denied", node,
                    expected="allow", actual="deny",
                    detail=f"rescue daemon denied {name} on the door in "
                           f"emergency state {node.state!r}",
                    request=AccessRequest(
                        RESCUE_SUBJECT, KOFFEE_PATH, RuleOp.IOCTL.value,
                        cmd=cmd, cmd_name=name)))
    return violations


def _p2_koffee_unreachable(model: PolicyModel) -> List[Counterexample]:
    from ..sack.policy.model import RuleOp
    violations: List[Counterexample] = []
    cmd = model.ioctl_cmds.get(KOFFEE_CMD)
    if cmd is None:
        return violations
    for node in model.nodes:
        if not model.decision(node, KOFFEE_SUBJECT, KOFFEE_PATH,
                              RuleOp.IOCTL, cmd):
            continue
        if model.ruleset(node).governs(KOFFEE_PATH):
            why = "an allow rule grants the attack path"
        else:
            why = ("the door node is outside every guard — ungoverned "
                   "paths are allowed by design, so guard it")
        violations.append(model.counterexample(
            "P2:koffee-unreachable", node,
            expected="deny", actual="allow",
            detail=f"media_app can issue DOOR_UNLOCK in state "
                   f"{node.state!r}: {why}",
            request=AccessRequest(
                KOFFEE_SUBJECT, KOFFEE_PATH, RuleOp.IOCTL.value,
                cmd=cmd, cmd_name=KOFFEE_CMD)))
    return violations


def _p3_failsafe_reachable(model: PolicyModel) -> List[Counterexample]:
    from .counterexample import STEP_FAILSAFE
    violations: List[Counterexample] = []
    for rev_id in model.rev_order:
        rev = model.revisions[rev_id]
        policy = rev.policy
        entry = next(iter(model.nodes_of(rev_id)))
        if policy.failsafe is None:
            violations.append(model.counterexample(
                "P3:failsafe-reachable", entry,
                expected="failsafe declared", actual="none",
                detail=f"policy {policy.name!r} declares no failsafe "
                       f"state (add 'failsafe <state> after <ms>ms;')"))
            continue
        if policy.failsafe not in {s.name for s in policy.states}:
            violations.append(model.counterexample(
                "P3:failsafe-reachable", entry,
                expected="failsafe defined", actual="undefined",
                detail=f"failsafe state {policy.failsafe!r} is not a "
                       f"defined state"))
            continue
        deadline = policy.failsafe_deadline_ms
        if deadline is None or deadline <= 0:
            violations.append(model.counterexample(
                "P3:failsafe-reachable", entry,
                expected="bounded staleness", actual="unbounded",
                detail=f"failsafe {policy.failsafe!r} has no positive "
                       f"staleness bound (declare 'after <ms>ms')"))
            continue
        for node in model.nodes_of(rev_id):
            if node.state == policy.failsafe:
                continue
            if any(e.kind == STEP_FAILSAFE
                   for e in model.edges.get(node, ())):
                continue
            violations.append(model.counterexample(
                "P3:failsafe-reachable", node,
                expected="failsafe edge", actual="missing",
                detail=f"no degradation edge from {node.state!r} to the "
                       f"failsafe state {policy.failsafe!r}"))
    return violations


def _p4_cache_coherence(model: PolicyModel) -> List[Counterexample]:
    from ..kernel.syscalls import MAY_EXEC, MAY_READ, MAY_WRITE
    from ..sack.ape import AdaptivePolicyEnforcer
    from ..sack.module import SackLsm
    from ..sack.policy.model import RuleOp
    violations: List[Counterexample] = []
    full = MAY_READ | MAY_WRITE | MAY_EXEC
    for rev_id in model.rev_order:
        rev = model.revisions[rev_id]
        ssm = rev.policy.build_ssm()
        lsm = SackLsm()
        lsm.ssm = ssm
        lsm.ape = AdaptivePolicyEnforcer(rev.compiled, ssm)
        for node in model.nodes_of(rev_id):
            if ssm.current_name != node.state:
                ssm.force_state(node.state)
            if ssm.current_name != node.state:
                violations.append(model.counterexample(
                    "P4:cache-coherence", node,
                    expected=node.state, actual=ssm.current_name,
                    detail=f"module SSM refused to enter {node.state!r}"))
                continue
            for comm in model.subjects:
                override = lsm.compute_av_for_subject((comm, True),
                                                      model.objects[0])
                if override != full:
                    violations.append(model.counterexample(
                        "P4:cache-coherence", node,
                        expected="full AV", actual=f"{override:#x}",
                        detail=f"CAP_MAC_OVERRIDE subject {comm!r} did "
                               f"not get the full access vector"))
                for path in model.objects:
                    av = lsm.compute_av_for_subject((comm, False), path)
                    if not av & MAY_EXEC:
                        violations.append(model.counterexample(
                            "P4:cache-coherence", node,
                            expected="MAY_EXEC set", actual=f"{av:#x}",
                            detail=f"file AV for {comm!r} at {path} "
                                   f"dropped MAY_EXEC (exec is mediated "
                                   f"by the bprm hook, not file hooks)"))
                    for op, bit in ((RuleOp.READ, MAY_READ),
                                    (RuleOp.WRITE, MAY_WRITE)):
                        want = model.decision(node, comm, path, op)
                        got = bool(av & bit)
                        if want == got:
                            continue
                        violations.append(model.counterexample(
                            "P4:cache-coherence", node,
                            expected="allow" if want else "deny",
                            actual="allow" if got else "deny",
                            detail=f"AVC/decision-table fill disagrees "
                                   f"with uncached ruleset dispatch for "
                                   f"({comm!r}, {path}, {op.value}) in "
                                   f"state {node.state!r}",
                            request=AccessRequest(comm, path, op.value)))
    return violations


def _p5_bridge_equivalence(model: PolicyModel) -> List[Counterexample]:
    from ..apparmor.globs import glob_match
    from ..apparmor.profile import FilePerm, Profile
    from ..kernel.devices import ioctl_is_write
    from ..sack.apparmor_bridge import mac_rule_to_path_rule
    from ..sack.policy.model import RuleOp
    violations: List[Counterexample] = []
    read_cmds = [(name, num) for name, num in model.ioctl_cmds.items()
                 if not ioctl_is_write(num)]
    write_cmds = [(name, num) for name, num in model.ioctl_cmds.items()
                  if ioctl_is_write(num)]
    # The bridge's fidelity level: AppArmor file rules cannot filter
    # individual ioctl commands, only the _IOC direction.  Equivalence is
    # therefore checked per permission *class*: the bridge grants a class
    # iff independent SACK grants at least one of its members.
    classes = (
        ("read", FilePerm.READ,
         [(RuleOp.READ, None, None)]
         + [(RuleOp.IOCTL, name, num) for name, num in read_cmds]),
        ("write", FilePerm.WRITE,
         [(RuleOp.WRITE, None, None), (RuleOp.CREATE, None, None),
          (RuleOp.UNLINK, None, None)]
         + [(RuleOp.IOCTL, name, num) for name, num in write_cmds]),
        ("exec", FilePerm.EXEC, [(RuleOp.EXEC, None, None)]),
        ("mmap", FilePerm.MMAP, [(RuleOp.MMAP, None, None)]),
    )
    for node in model.nodes:
        rev = model.revisions[node.revision]
        rules = rev.policy.rules_for_state(node.state)
        ruleset = model.ruleset(node)
        for subject in model.subjects:
            profile = Profile(subject)
            for rule in rules:
                if rule.subject is None \
                        or glob_match(rule.subject, subject):
                    profile.add_rule(
                        mac_rule_to_path_rule(rule, model.ioctl_symbols))
            for path in model.objects:
                if not ruleset.governs(path):
                    # The bridge only rewrites what SACK governs; base
                    # profile content is out of scope here.
                    continue
                for label, perm, members in classes:
                    decisions = [
                        (op, name, num,
                         model.decision(node, subject, path, op, num))
                        for op, name, num in members]
                    indep = any(d[3] for d in decisions)
                    bridged = bool(profile.effective_perms(path) & perm)
                    if indep == bridged:
                        continue
                    witness = next((d for d in decisions if d[3]),
                                   decisions[0])
                    op, name, num, _ = witness
                    violations.append(model.counterexample(
                        "P5:bridge-equivalence", node,
                        expected=f"both {'allow' if indep else 'deny'}",
                        actual=f"independent="
                               f"{'allow' if indep else 'deny'}, "
                               f"bridge={'allow' if bridged else 'deny'}",
                        detail=f"{label}-class access for {subject!r} at "
                               f"{path} diverges between independent "
                               f"SACK and the AppArmor bridge in state "
                               f"{node.state!r}",
                        request=AccessRequest(subject, path, op.value,
                                              cmd=num, cmd_name=name)))
    return violations


@dataclasses.dataclass(frozen=True)
class StaticProperty:
    """One proof obligation over the full reachable model."""

    prop_id: str
    title: str
    summary: str
    runtime_ids: Tuple[str, ...]
    check: Callable  # (PolicyModel) -> List[Counterexample]


STATIC_PROPERTIES: Tuple[StaticProperty, ...] = (
    StaticProperty(
        "P1:rescue-never-denied", "Rescue daemon never denied",
        "In every reachable emergency state (crash-entered or failsafe), "
        "the rescue daemon may lock and unlock the doors.",
        runtime_ids=(), check=_p1_rescue_never_denied),
    StaticProperty(
        "P2:koffee-unreachable", "KOFFEE attack path unreachable",
        "No reachable (revision, state) node lets media_app issue "
        "DOOR_UNLOCK on /dev/car/door.",
        runtime_ids=("I4",), check=_p2_koffee_unreachable),
    StaticProperty(
        "P3:failsafe-reachable", "Failsafe reachable from everywhere",
        "A failsafe state with a positive staleness bound is declared "
        "and reachable from every reachable state via the degradation "
        "edge.", runtime_ids=("I6",), check=_p3_failsafe_reachable),
    StaticProperty(
        "P4:cache-coherence", "Cache fills match uncached dispatch",
        "AVC fills and decision-table precompilation (compute_av for "
        "every modeled (state, subject, object, mask)) agree with "
        "uncached module dispatch through the compiled ruleset.",
        runtime_ids=("I7", "I11"), check=_p4_cache_coherence),
    StaticProperty(
        "P5:bridge-equivalence", "Bridge equivalent to independent SACK",
        "Independent SACK and SACK-enhanced AppArmor produce equivalent "
        "decisions everywhere, at the bridge's documented fidelity "
        "(per permission class; AppArmor cannot filter single ioctl "
        "commands).", runtime_ids=("I5",), check=_p5_bridge_equivalence),
)

_STATIC_BY_ID: Dict[str, StaticProperty] = {
    p.prop_id: p for p in STATIC_PROPERTIES}
_STATIC_BY_SHORT: Dict[str, StaticProperty] = {
    p.prop_id.split(":", 1)[0]: p for p in STATIC_PROPERTIES}


def static_properties() -> List[StaticProperty]:
    """All registered static properties, in registry (proof) order."""
    return list(STATIC_PROPERTIES)


def static_property(prop_id: str) -> StaticProperty:
    """Look up one property by full id or short id (``"P2"``)."""
    prop = _STATIC_BY_ID.get(prop_id) or _STATIC_BY_SHORT.get(prop_id)
    if prop is None:
        raise KeyError(f"unknown static property {prop_id!r}")
    return prop
