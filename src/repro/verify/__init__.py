"""repro.verify — static policy model checking with cross-state proofs.

The chaos harness checks the fail-closed invariants *dynamically*, over
whatever states a seeded run happens to visit.  This package turns those
spot checks into static guarantees: it compiles the SSM transition graph,
the APE mapping, the failsafe degradation edges, and the AppArmor-bridge
translation semantics into an explicit finite-state model
(:mod:`~repro.verify.model`), and checks a declarative library of safety
properties (:mod:`~repro.verify.properties`) over every reachable
``(policy-revision, state)`` node with an exhaustive solver
(:mod:`~repro.verify.solver`; the interface is pluggable so an SMT
backend can be added later).

Violations come back as concrete **counterexample traces**
(:mod:`~repro.verify.counterexample`) — a transition sequence from the
initial state plus the access request that misbehaves — which the replay
driver (:mod:`~repro.verify.replay`) executes against a live kernel
instance to confirm the failure end to end.

The same property registry also carries the runtime invariant definitions
I1–I11 consumed by the chaos harness, so the static and dynamic layers can
never drift; and the OTA proof gate (:mod:`~repro.verify.gate`) refuses
any staged bundle whose policy violates a proof, before the canary wave.

See ``docs/verification.md``.
"""

from .checker import VerificationReport, verify_policies, verify_policy
from .counterexample import AccessRequest, Counterexample, TraceStep
from .gate import GateDecision, ProofGate
from .model import ModelNode, PolicyModel, build_model
from .properties import (RUNTIME_INVARIANTS, STATIC_PROPERTIES,
                         RuntimeInvariant, StaticProperty, runtime_checks,
                         runtime_invariant, static_properties,
                         static_property)
from .replay import ReplayResult, replay_counterexample
from .solver import (ExhaustiveSolver, PropertyResult, Solver,
                     SolverUnavailable, get_solver, register_solver,
                     solver_names)

__all__ = [
    "VerificationReport", "verify_policies", "verify_policy",
    "AccessRequest", "Counterexample", "TraceStep",
    "GateDecision", "ProofGate",
    "ModelNode", "PolicyModel", "build_model",
    "RUNTIME_INVARIANTS", "STATIC_PROPERTIES", "RuntimeInvariant",
    "StaticProperty", "runtime_checks", "runtime_invariant",
    "static_properties", "static_property",
    "ReplayResult", "replay_counterexample",
    "ExhaustiveSolver", "PropertyResult", "Solver", "SolverUnavailable",
    "get_solver", "register_solver", "solver_names",
]
