"""Solver backends: how the property library gets discharged.

The shipped backend is :class:`ExhaustiveSolver` — the reachable
``(revision, state)`` product is small and enumerable by construction, so
plain exhaustive enumeration is a complete decision procedure here.  The
interface is deliberately tiny (a name plus ``run(model, properties)``)
so an SMT backend can be registered later without touching the checker:
encode the transition relation and the rule semantics as constraints,
then emit the same :class:`PropertyResult` rows.  ``get_solver("smt")``
reports exactly that.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Sequence, Tuple

from .counterexample import Counterexample
from .model import PolicyModel
from .properties import StaticProperty


class SolverUnavailable(RuntimeError):
    """Raised when a registered solver backend cannot run here."""


@dataclasses.dataclass
class PropertyResult:
    """One property's verdict: pass/fail plus proof-effort accounting."""

    prop_id: str
    title: str
    passed: bool
    counterexamples: Tuple[Counterexample, ...] = ()
    checks: int = 0          # decision-oracle invocations for this proof
    elapsed_ns: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "prop_id": self.prop_id,
            "title": self.title,
            "passed": self.passed,
            "counterexamples": [c.to_dict()
                                for c in self.counterexamples],
            "checks": self.checks,
            "elapsed_ns": self.elapsed_ns,
        }


class Solver:
    """A proof backend for the static property library."""

    name = "abstract"

    def run(self, model: PolicyModel,
            properties: Sequence[StaticProperty]) -> List[PropertyResult]:
        raise NotImplementedError


class ExhaustiveSolver(Solver):
    """Complete enumeration over the reachable product — the reference
    decision procedure every later backend must agree with."""

    name = "exhaustive"

    def run(self, model: PolicyModel,
            properties: Sequence[StaticProperty]) -> List[PropertyResult]:
        results: List[PropertyResult] = []
        for prop in properties:
            before = model.checks
            started = time.perf_counter_ns()
            counterexamples = tuple(prop.check(model))
            results.append(PropertyResult(
                prop_id=prop.prop_id, title=prop.title,
                passed=not counterexamples,
                counterexamples=counterexamples,
                checks=model.checks - before,
                elapsed_ns=time.perf_counter_ns() - started))
        return results


def _smt_unavailable() -> Solver:
    raise SolverUnavailable(
        "the 'smt' backend is a registration point, not an "
        "implementation: encode the transition relation and rule "
        "semantics for an SMT solver and register_solver('smt', ...) it; "
        "the exhaustive solver is complete for these models meanwhile")


_SOLVERS: Dict[str, Callable[[], Solver]] = {
    "exhaustive": ExhaustiveSolver,
    "smt": _smt_unavailable,
}


def register_solver(name: str, factory: Callable[[], Solver]) -> None:
    """Register (or replace) a solver backend under *name*."""
    _SOLVERS[name] = factory


def solver_names() -> List[str]:
    return sorted(_SOLVERS)


def get_solver(name: str) -> Solver:
    factory = _SOLVERS.get(name)
    if factory is None:
        raise SolverUnavailable(
            f"unknown solver {name!r}; registered: "
            f"{', '.join(solver_names())}")
    return factory()
