"""The checker façade: policies in, verification report out.

``verify_policies`` is the one entry point everything else uses — the
``sackctl verify`` command, the OTA proof gate, the bench suite's
``verify`` workload, and the tests.  It builds the model (a revision
chain when given several policies), runs the selected solver over the
property library, and folds everything into a :class:`VerificationReport`
with per-property results, model-size stats, and exportable
counterexamples.

A policy that fails to parse or compile never reaches the solver: that is
reported as the synthetic property ``P0:compilable`` failing, so callers
(the proof gate above all) see exactly one shape of answer.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from .counterexample import Counterexample
from .properties import StaticProperty, static_properties, static_property
from .solver import PropertyResult, get_solver

#: Synthetic property id for parse/compile failures.
COMPILABLE_ID = "P0:compilable"


@dataclasses.dataclass
class VerificationReport:
    """Everything one verification run produced."""

    policy_names: Tuple[str, ...]
    solver: str
    model_stats: Dict[str, int]
    results: List[PropertyResult]
    error: Optional[str] = None      # parse/compile failure, when any

    @property
    def ok(self) -> bool:
        return self.error is None and all(r.passed for r in self.results)

    @property
    def counterexamples(self) -> List[Counterexample]:
        return [c for r in self.results for c in r.counterexamples]

    @property
    def failed_properties(self) -> List[str]:
        failed = [r.prop_id for r in self.results if not r.passed]
        if self.error is not None:
            failed.insert(0, COMPILABLE_ID)
        return failed

    def to_dict(self) -> Dict[str, object]:
        return {
            "policies": list(self.policy_names),
            "solver": self.solver,
            "ok": self.ok,
            "error": self.error,
            "model": dict(self.model_stats),
            "properties": [r.to_dict() for r in self.results],
        }

    def summary_lines(self) -> List[str]:
        names = ", ".join(self.policy_names) or "<none>"
        lines = [f"verify {names} (solver {self.solver})"]
        if self.error is not None:
            lines.append(f"  FAIL {COMPILABLE_ID}: {self.error}")
        for result in self.results:
            word = "pass" if result.passed else "FAIL"
            line = (f"  {word} {result.prop_id}: {result.title} "
                    f"({result.checks} checks)")
            lines.append(line)
            for cex in result.counterexamples:
                lines.extend(f"  {text}" for text in cex.render())
        if self.model_stats:
            ms = self.model_stats
            lines.append(
                f"  model: {ms.get('states', 0)} states, "
                f"{ms.get('transitions', 0)} transitions, "
                f"{ms.get('revisions', 0)} revision(s), "
                f"{ms.get('subjects', 0)}x{ms.get('objects', 0)}x"
                f"{ms.get('ioctl_cmds', 0)} access grid, "
                f"{ms.get('checks', 0)} decisions checked")
        lines.append("  result: "
                     + ("all properties hold" if self.ok
                        else f"{len(self.failed_properties)} propert"
                             f"{'y' if len(self.failed_properties) == 1 else 'ies'}"
                             f" violated"))
        return lines


def _property_set(properties) -> List[StaticProperty]:
    if properties is None:
        return static_properties()
    resolved: List[StaticProperty] = []
    for prop in properties:
        resolved.append(prop if isinstance(prop, StaticProperty)
                        else static_property(prop))
    return resolved


def verify_policies(policies,
                    ioctl_symbols=None,
                    properties: Optional[Sequence] = None,
                    solver: str = "exhaustive",
                    extra_subjects: Sequence[str] = (),
                    extra_objects: Sequence[str] = ()
                    ) -> VerificationReport:
    """Verify one policy or an OTA revision chain (oldest first).

    *policies* may be policy texts or parsed policies; *properties* may
    name registry entries (``"P2"``) or pass :class:`StaticProperty`
    objects directly.  Never raises for a bad policy — that comes back
    as a failing ``P0:compilable`` report.
    """
    from .model import build_model
    backend = get_solver(solver)
    props = _property_set(properties)
    try:
        model = build_model(policies, ioctl_symbols=ioctl_symbols,
                            extra_subjects=extra_subjects,
                            extra_objects=extra_objects)
    except Exception as exc:
        names = []
        if isinstance(policies, (list, tuple)):
            names = [getattr(p, "name", f"policy{i}")
                     for i, p in enumerate(policies)]
        return VerificationReport(
            policy_names=tuple(names), solver=backend.name,
            model_stats={}, results=[],
            error=f"policy does not compile: {exc}")
    report = VerificationReport(
        policy_names=tuple(model.revisions[r].policy.name
                           for r in model.rev_order),
        solver=backend.name, model_stats={},
        results=backend.run(model, props))
    report.model_stats = model.stats()
    return report


def verify_policy(policy, **kwargs) -> VerificationReport:
    """Single-policy convenience wrapper over :func:`verify_policies`."""
    return verify_policies([policy], **kwargs)
