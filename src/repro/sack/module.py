"""Independent SACK: the standalone LSM with its own policy store.

This is the first of the paper's two prototypes (§III-E-3): SACK registers
its own hooks and answers access checks from its own (situation-indexed)
rulesets — low check latency, no dependence on other LSMs' policies.

Tasks holding ``CAP_MAC_OVERRIDE`` bypass SACK, mirroring the threat-model
boundary (§III-A): attackers are assumed unable to obtain it.
"""

from __future__ import annotations

import time
from typing import Optional

from ..kernel.credentials import Capability
from ..kernel.syscalls import MAY_EXEC, MAY_READ, MAY_WRITE
from ..kernel.vfs.file import OpenFile
from ..lsm.module import LsmModule
from .ape import AdaptivePolicyEnforcer
from .policy.compiler import CompiledPolicy, compile_policy
from .policy.model import RuleOp, SackPolicy
from .ssm import SituationStateMachine

MODULE_NAME = "sack"


class SackLsm(LsmModule):
    """The independent SACK security module."""

    name = MODULE_NAME

    #: SACK decisions depend only on (comm, MAC-override bit), the path,
    #: and the current situation — and every situation change flows
    #: through the SSM, whose listener bumps the AVC epoch.
    avc_cacheable = True

    def __init__(self):
        self.ape: Optional[AdaptivePolicyEnforcer] = None
        self.ssm: Optional[SituationStateMachine] = None
        self.denial_count = 0

    # -- stack-AVC participation ---------------------------------------------
    def avc_subject_key(self, task):
        return (task.comm,
                task.cred.has_cap(Capability.CAP_MAC_OVERRIDE))

    def compute_av(self, task, path: str) -> int:
        """The full file access vector for (*task*, *path*) right now.

        MAY_EXEC is always granted here because neither file hook checks
        exec (``bprm_check_security`` is its own, separately keyed hook).
        """
        if (self.ape is None
                or task.cred.has_cap(Capability.CAP_MAC_OVERRIDE)):
            return MAY_READ | MAY_WRITE | MAY_EXEC
        av = MAY_EXEC
        if self.ape.check(RuleOp.READ, path, task.comm):
            av |= MAY_READ
        if self.ape.check(RuleOp.WRITE, path, task.comm):
            av |= MAY_WRITE
        return av

    # -- decision-table participation ------------------------------------------
    def table_subject_keys(self):
        """Every live task's subject key, for table precompilation.

        Forked tasks inherit comm and creds, so enumerating the live
        process table covers every subject the file hooks can see; a
        brand-new comm simply misses the table until the next rebuild
        (and is answered by the AVC / module walk meanwhile).
        """
        kernel = self.kernel
        if kernel is None:
            return []
        keys = {self.avc_subject_key(task)
                for task in kernel.procs.tasks.values()
                if task.is_alive}
        return sorted(keys)

    def table_paths(self):
        """Every literal path the loaded policy names — rule path globs
        and guard prefixes with no glob syntax.  Wildcard patterns match
        unbounded path sets and stay the AVC's job."""
        from ..lsm.dtable import is_literal_path
        if self.ape is None:
            return []
        compiled = self.ape.compiled
        paths = {g for g in compiled.policy.guards if is_literal_path(g)}
        for ruleset in compiled.rulesets.values():
            for table in (ruleset.allow_by_op, ruleset.deny_by_op):
                for rules in table.values():
                    paths.update(
                        rule.source.path_glob for rule in rules
                        if is_literal_path(rule.source.path_glob))
        return sorted(paths)

    def compute_av_for_subject(self, subject, path: str) -> int:
        """Pure variant of :meth:`compute_av` keyed by subject tuple.

        Consults the current compiled ruleset directly — NOT
        ``ape.check`` — so precompiling the table moves no enforcement
        counters and a run with the table on stays bit-identical in
        every observable the fingerprints hash.
        """
        comm, has_override = subject
        if self.ape is None or has_override:
            return MAY_READ | MAY_WRITE | MAY_EXEC
        ruleset = self.ape.current_ruleset
        av = MAY_EXEC
        if ruleset.check(RuleOp.READ, path, comm):
            av |= MAY_READ
        if ruleset.check(RuleOp.WRITE, path, comm):
            av |= MAY_WRITE
        return av

    def _on_transition_bump_avc(self, _transition) -> None:
        self.bump_avc("transition")

    # -- policy lifecycle ----------------------------------------------------
    def load_policy(self, policy: SackPolicy,
                    ioctl_symbols=None) -> AdaptivePolicyEnforcer:
        """Compile and activate *policy*; returns the live enforcer."""
        started_ns = time.perf_counter_ns()
        compiled = compile_policy(policy, ioctl_symbols=ioctl_symbols)
        return self.load_compiled(compiled, _started_ns=started_ns)

    def load_compiled(self, compiled: CompiledPolicy,
                      _started_ns: Optional[int] = None
                      ) -> AdaptivePolicyEnforcer:
        started_ns = (_started_ns if _started_ns is not None
                      else time.perf_counter_ns())
        ssm = compiled.policy.build_ssm()
        self.ssm = ssm
        self.ape = AdaptivePolicyEnforcer(compiled, ssm)
        # After the APE's own listener, so a hit-after-bump can never see
        # the old ruleset: by the time the epoch moves, the remap is done.
        ssm.add_listener(self._on_transition_bump_avc)
        self.bump_avc("policy-load")
        self.audit("sack_policy_loaded",
                   f"policy {compiled.policy.name!r}, "
                   f"{len(compiled.rulesets)} states")
        obs = getattr(self.kernel, "obs", None)
        if obs is not None:
            obs.attach_ssm(ssm, provider=self)
            obs.policy_load(
                compiled.policy.name, "independent",
                len(compiled.rulesets), compiled.total_rules(),
                time.perf_counter_ns() - started_ns,
                state_rule_counts={name: rs.rule_count
                                   for name, rs in
                                   compiled.rulesets.items()})
        return self.ape

    @property
    def current_state(self) -> Optional[str]:
        return self.ssm.current_name if self.ssm is not None else None

    # -- the common check path --------------------------------------------------
    def _check(self, task, op: RuleOp, path: str,
               cmd: Optional[int] = None) -> int:
        if self.ape is None:
            return 0  # no policy loaded: SACK restricts nothing
        if task.cred.has_cap(Capability.CAP_MAC_OVERRIDE):
            return 0
        if self.ape.check(op, path, task.comm, cmd):
            return 0
        self.denial_count += 1
        obs = getattr(self.kernel, "obs", None)
        if obs is not None:
            # When a post-transition hook span is open, record which
            # state's ruleset denied — the attribution the trace exists
            # to provide.
            obs.spans.annotate(op=op.value, path=path,
                               state=self.ape.current_state)
        self.audit("sack_denied",
                   f"{op.value} {path} (state={self.ape.current_state})",
                   task)
        return self.EACCES

    # -- hooks -------------------------------------------------------------------
    def file_open(self, task, file: OpenFile) -> int:
        path = file.path
        if file.wants_read:
            rc = self._check(task, RuleOp.READ, path)
            if rc != 0:
                return rc
        if file.wants_write:
            return self._check(task, RuleOp.WRITE, path)
        return 0

    def file_permission(self, task, file: OpenFile, mask: int) -> int:
        path = file.path
        if mask & MAY_READ:
            rc = self._check(task, RuleOp.READ, path)
            if rc != 0:
                return rc
        if mask & MAY_WRITE:
            return self._check(task, RuleOp.WRITE, path)
        return 0

    def file_ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        return self._check(task, RuleOp.IOCTL, file.path, cmd)

    def bprm_check_security(self, task, exe_path: str) -> int:
        return self._check(task, RuleOp.EXEC, exe_path)

    def inode_create(self, task, parent_inode, path: str, mode: int) -> int:
        return self._check(task, RuleOp.CREATE, path)

    def inode_unlink(self, task, inode, path: str) -> int:
        return self._check(task, RuleOp.UNLINK, path)

    def mmap_file(self, task, file, prot: int) -> int:
        if file is None:
            return 0
        return self._check(task, RuleOp.MMAP, file.path)
