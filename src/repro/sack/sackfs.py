"""SACKfs: the securityfs interface of SACK (paper §III-C, §IV-A).

Exposes, under ``/sys/kernel/security/SACK/``:

``events``
    Write-only.  The SDS writes situation-event lines here; each write is
    parsed and fed to the SSM synchronously (this is the low-latency
    user→kernel channel of design challenge C1).  Writers must either hold
    ``CAP_MAC_ADMIN`` or run as an explicitly authorised uid.
``current``
    Read-only: current situation state name and encoding.
``policy``
    Write loads a full SACK policy text (requires ``CAP_MAC_ADMIN``);
    read returns a summary.
``states`` / ``state_per`` / ``per_rules``
    Read-only dumps of the loaded policy's interfaces (Table I).
``stats``
    Read-only counters (events, transitions, checks).
``audit``
    Read-only: the kernel's observability audit ring, rendered as AVC
    lines (see ``docs/observability.md``).
``watchdog``
    Read-only: staleness-watchdog status (deadline, last event, engaged),
    or ``disabled`` when the loaded policy declares no failsafe deadline
    (see ``docs/fault-injection.md``).

A :class:`~repro.faults.plan.FaultPlan` can be attached to exercise the
channel's failure paths deterministically (EIO/EAGAIN, short writes, byte
corruption, policy-load failure); see ``docs/fault-injection.md``.
"""

from __future__ import annotations

from typing import Optional, Set

from ..faults import points as fault_points
from ..kernel.credentials import Capability
from ..kernel.errors import Errno, KernelError
from ..lsm.securityfs import SecurityFs
from ..obs.spans import TRACEPARENT_KEY
from .events import (EventParseError, EventSequencer, HEARTBEAT,
                     parse_event_buffer)
from .policy.language import parse_policy
from .watchdog import StalenessWatchdog

#: SACKfs directory name under securityfs.
SACK_DIR = "SACK"
EVENTS_PATH = f"/sys/kernel/security/{SACK_DIR}/events"


class SackFs:
    """Registers and serves the SACK securityfs files for one kernel."""

    def __init__(self, kernel, module, securityfs: Optional[SecurityFs] = None,
                 authorized_event_uids: Optional[Set[int]] = None,
                 ioctl_symbols=None, fault_plan=None):
        """*module* is an independent :class:`~repro.sack.module.SackLsm`
        or a :class:`~repro.sack.apparmor_bridge.SackAppArmorBridge` —
        anything with ``ssm``, ``current_state`` and ``load_policy``.
        """
        self.kernel = kernel
        self.module = module
        self.securityfs = securityfs or SecurityFs(kernel)
        self.authorized_event_uids = set(authorized_event_uids or ())
        self.ioctl_symbols = dict(ioctl_symbols or {})
        self.events_received = 0
        self.events_accepted = 0
        self.events_rejected = 0
        self.heartbeats_received = 0
        #: Deterministic fault plan for the channel's failure paths.
        self.fault_plan = fault_plan
        #: Staleness watchdog; created whenever the loaded policy declares
        #: ``failsafe <state> after <deadline>ms``.
        self.watchdog: Optional[StalenessWatchdog] = None
        #: Sequence numbers are assigned at the kernel entry point, so two
        #: kernels fed identical writes stamp identical sequences.
        self.sequencer = EventSequencer()
        self.obs = getattr(kernel, "obs", None)
        if self.obs is not None:
            self.obs.observe_sackfs(self)
            if getattr(module, "ssm", None) is not None:
                self.obs.attach_ssm(module.ssm, provider=module)
        self._register()

    # -- registration -----------------------------------------------------------
    def _register(self) -> None:
        fs = self.securityfs
        fs.create_dir(SACK_DIR)
        fs.create_file(f"{SACK_DIR}/events", write=self._write_events,
                       mode=0o622)
        fs.create_file(f"{SACK_DIR}/current", read=self._read_current,
                       mode=0o644)
        fs.create_file(f"{SACK_DIR}/policy", read=self._read_policy,
                       write=self._write_policy, mode=0o600,
                       write_cap=Capability.CAP_MAC_ADMIN)
        fs.create_file(f"{SACK_DIR}/states", read=self._read_states,
                       mode=0o644)
        fs.create_file(f"{SACK_DIR}/state_per", read=self._read_state_per,
                       mode=0o644)
        fs.create_file(f"{SACK_DIR}/per_rules", read=self._read_per_rules,
                       mode=0o644)
        fs.create_file(f"{SACK_DIR}/stats", read=self._read_stats,
                       mode=0o644)
        fs.create_file(f"{SACK_DIR}/audit", read=self._read_audit,
                       mode=0o600)
        fs.create_file(f"{SACK_DIR}/watchdog", read=self._read_watchdog,
                       mode=0o644)

    # -- event channel -------------------------------------------------------------
    def authorize_event_writer(self, uid: int) -> None:
        """Allow *uid* (the SDS service user) to submit events."""
        self.authorized_event_uids.add(uid)

    def _writer_allowed(self, task) -> bool:
        if task.cred.euid in self.authorized_event_uids:
            return True
        return self.kernel.capable(task, Capability.CAP_MAC_ADMIN)

    def _write_events(self, task, data: bytes) -> int:
        obs = self.obs
        # Every arrival counts as received, authorised or not — a denied
        # writer shows up in both events_received and events_rejected, so
        # the stats file never undercounts traffic.
        self.events_received += 1
        if not self._writer_allowed(task):
            self.events_rejected += 1
            if obs is not None:
                obs.event_rejected("writer not authorised", task)
            raise KernelError(Errno.EPERM,
                              "events: writer not authorised for SACK")
        data = self._inject_channel_faults(data)
        ssm = self.module.ssm
        if ssm is None:
            self.events_rejected += 1
            raise KernelError(Errno.ENODATA, "no SACK policy loaded")
        try:
            events = parse_event_buffer(data, self.kernel.clock.now_ns,
                                        sequencer=self.sequencer)
        except EventParseError as exc:
            self.events_rejected += 1
            if obs is not None:
                obs.event_rejected(str(exc), task)
            raise KernelError(Errno.EINVAL, str(exc)) from exc
        spans = obs.spans if obs is not None else None
        forwarded = 0
        for event in events:
            if event.name == HEARTBEAT:
                # Channel liveness only: feed the watchdog, never the SSM.
                self.heartbeats_received += 1
                continue
            span = None
            if spans is not None:
                # Resume the trace the SDS propagated on the event line:
                # this is where the context crosses user→kernel.
                span = spans.start_span(
                    "sackfs.write", stage="write",
                    remote=event.payload.get(TRACEPARENT_KEY),
                    attributes={"event": event.name, "seq": event.seq,
                                "pid": getattr(task, "pid", 0)})
            try:
                ssm.process_event(event, now_ns=self.kernel.clock.now_ns)
            finally:
                if spans is not None:
                    spans.end_span(span)
            forwarded += 1
        self.events_accepted += forwarded
        if self.watchdog is not None:
            self.watchdog.feed(self.kernel.clock.now_ns)
        if obs is not None and forwarded:
            obs.event_write(forwarded, len(data), task)
        return len(data)

    def _inject_channel_faults(self, data: bytes) -> bytes:
        """Apply any armed SACKfs channel faults to this write."""
        plan = self.fault_plan
        if plan is None:
            return data
        obs = self.obs
        now = self.kernel.clock.now_ns
        if plan.should_fail(fault_points.SACKFS_WRITE_EIO, now):
            self.events_rejected += 1
            if obs is not None:
                obs.fault_injected(fault_points.SACKFS_WRITE_EIO)
            raise KernelError(Errno.EIO,
                              "events: injected I/O error")
        if plan.should_fail(fault_points.SACKFS_WRITE_EAGAIN, now):
            self.events_rejected += 1
            if obs is not None:
                obs.fault_injected(fault_points.SACKFS_WRITE_EAGAIN)
            raise KernelError(Errno.EAGAIN,
                              "events: injected transient busy")
        if plan.should_fail(fault_points.SACKFS_SHORT_WRITE, now):
            if obs is not None:
                obs.fault_injected(fault_points.SACKFS_SHORT_WRITE)
            data = plan.truncate(data)
        if plan.should_fail(fault_points.SACKFS_CORRUPT, now):
            if obs is not None:
                obs.fault_injected(fault_points.SACKFS_CORRUPT)
            data = plan.corrupt(data)
        return data

    # -- policy files ---------------------------------------------------------------
    def _write_policy(self, task, data: bytes) -> int:
        plan = self.fault_plan
        if plan is not None and plan.should_fail(
                fault_points.POLICY_LOAD_FAIL, self.kernel.clock.now_ns):
            if self.obs is not None:
                self.obs.fault_injected(fault_points.POLICY_LOAD_FAIL)
            raise KernelError(Errno.EIO, "policy: injected load failure")
        # Parse, validate, and compile all happen before any live state
        # is replaced: a rejected policy leaves the old one enforcing.
        try:
            policy = parse_policy(data.decode("utf-8"))
            self.module.load_policy(policy,
                                    ioctl_symbols=self.ioctl_symbols)
        except (UnicodeDecodeError, ValueError) as exc:
            raise KernelError(Errno.EINVAL, f"policy: {exc}") from exc
        if policy.failsafe_deadline_ms is not None:
            self.watchdog = StalenessWatchdog(
                self.module.ssm, policy.failsafe_deadline_ms,
                self.kernel.clock)
        else:
            self.watchdog = None
        return len(data)

    def _read_policy(self, task) -> bytes:
        policy = self._policy()
        if policy is None:
            return b"no policy loaded\n"
        return policy.summary().encode()

    def _policy(self):
        # Independent SACK keeps the policy on the APE; the bridge keeps
        # it directly.
        ape = getattr(self.module, "ape", None)
        if ape is not None:
            return ape.compiled.policy
        return getattr(self.module, "policy", None)

    # -- read-only views ----------------------------------------------------------
    def _read_current(self, task) -> bytes:
        ssm = self.module.ssm
        if ssm is None:
            return b"none\n"
        return f"{ssm.current.name} {ssm.current.encoding}\n".encode()

    def _read_states(self, task) -> bytes:
        policy = self._policy()
        if policy is None:
            return b""
        lines = [f"{s.name} {s.encoding}"
                 for s in sorted(policy.states, key=lambda s: s.encoding)]
        return ("\n".join(lines) + "\n").encode()

    def _read_state_per(self, task) -> bytes:
        policy = self._policy()
        if policy is None:
            return b""
        lines = [f"{state}: {', '.join(sorted(perms))}"
                 for state, perms in sorted(policy.state_per.items())]
        return ("\n".join(lines) + "\n").encode()

    def _read_per_rules(self, task) -> bytes:
        policy = self._policy()
        if policy is None:
            return b""
        lines = []
        for perm in sorted(policy.per_rules):
            lines.append(f"{perm}:")
            lines.extend(f"  {rule.to_text()}"
                         for rule in policy.per_rules[perm])
        return ("\n".join(lines) + "\n").encode()

    def _read_stats(self, task) -> bytes:
        lines = [f"events_received {self.events_received}",
                 f"events_accepted {self.events_accepted}",
                 f"events_rejected {self.events_rejected}",
                 f"heartbeats_received {self.heartbeats_received}"]
        ssm = self.module.ssm
        if ssm is not None:
            lines.extend(f"ssm_{k} {v}" for k, v in ssm.stats().items())
        ape = getattr(self.module, "ape", None)
        if ape is not None:
            lines.extend(f"ape_{k} {v}" for k, v in ape.stats().items())
        if self.watchdog is not None:
            lines.extend(f"watchdog_{k} {v}"
                         for k, v in self.watchdog.stats().items())
        return ("\n".join(lines) + "\n").encode()

    def _read_watchdog(self, task) -> bytes:
        if self.watchdog is None:
            return b"disabled\n"
        lines = [f"{k} {v}" for k, v in self.watchdog.stats().items()]
        return ("\n".join(lines) + "\n").encode()

    # -- fail-safe plumbing -------------------------------------------------------
    def check_watchdog(self) -> bool:
        """Evaluate the staleness deadline now.

        The world's tick loop calls this; returns True when the check
        engaged the failsafe.  A no-op without a watchdog (no policy, or
        a policy with no ``failsafe ... after`` deadline).
        """
        if self.watchdog is None:
            return False
        return self.watchdog.check(self.kernel.clock.now_ns)

    def attach_fault_plan(self, plan) -> None:
        """Attach (or replace, with ``None``) the channel fault plan."""
        self.fault_plan = plan

    def _read_audit(self, task) -> bytes:
        if self.obs is None:
            return b""
        text = self.obs.audit.to_text()
        return (text + "\n").encode() if text else b""
