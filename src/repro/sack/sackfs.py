"""SACKfs: the securityfs interface of SACK (paper §III-C, §IV-A).

Exposes, under ``/sys/kernel/security/SACK/``:

``events``
    Write-only.  The SDS writes situation-event lines here; each write is
    parsed and fed to the SSM synchronously (this is the low-latency
    user→kernel channel of design challenge C1).  Writers must either hold
    ``CAP_MAC_ADMIN`` or run as an explicitly authorised uid.
``current``
    Read-only: current situation state name and encoding.
``policy``
    Write loads a full SACK policy text (requires ``CAP_MAC_ADMIN``);
    read returns a summary.
``states`` / ``state_per`` / ``per_rules``
    Read-only dumps of the loaded policy's interfaces (Table I).
``stats``
    Read-only counters (events, transitions, checks).
``audit``
    Read-only: the kernel's observability audit ring, rendered as AVC
    lines (see ``docs/observability.md``).
"""

from __future__ import annotations

from typing import Optional, Set

from ..kernel.credentials import Capability
from ..kernel.errors import Errno, KernelError
from ..lsm.securityfs import SecurityFs
from .events import EventParseError, EventSequencer, parse_event_buffer
from .policy.language import parse_policy

#: SACKfs directory name under securityfs.
SACK_DIR = "SACK"
EVENTS_PATH = f"/sys/kernel/security/{SACK_DIR}/events"


class SackFs:
    """Registers and serves the SACK securityfs files for one kernel."""

    def __init__(self, kernel, module, securityfs: Optional[SecurityFs] = None,
                 authorized_event_uids: Optional[Set[int]] = None,
                 ioctl_symbols=None):
        """*module* is an independent :class:`~repro.sack.module.SackLsm`
        or a :class:`~repro.sack.apparmor_bridge.SackAppArmorBridge` —
        anything with ``ssm``, ``current_state`` and ``load_policy``.
        """
        self.kernel = kernel
        self.module = module
        self.securityfs = securityfs or SecurityFs(kernel)
        self.authorized_event_uids = set(authorized_event_uids or ())
        self.ioctl_symbols = dict(ioctl_symbols or {})
        self.events_received = 0
        self.events_accepted = 0
        self.events_rejected = 0
        #: Sequence numbers are assigned at the kernel entry point, so two
        #: kernels fed identical writes stamp identical sequences.
        self.sequencer = EventSequencer()
        self.obs = getattr(kernel, "obs", None)
        if self.obs is not None:
            self.obs.observe_sackfs(self)
            if getattr(module, "ssm", None) is not None:
                self.obs.attach_ssm(module.ssm, provider=module)
        self._register()

    # -- registration -----------------------------------------------------------
    def _register(self) -> None:
        fs = self.securityfs
        fs.create_dir(SACK_DIR)
        fs.create_file(f"{SACK_DIR}/events", write=self._write_events,
                       mode=0o622)
        fs.create_file(f"{SACK_DIR}/current", read=self._read_current,
                       mode=0o644)
        fs.create_file(f"{SACK_DIR}/policy", read=self._read_policy,
                       write=self._write_policy, mode=0o600,
                       write_cap=Capability.CAP_MAC_ADMIN)
        fs.create_file(f"{SACK_DIR}/states", read=self._read_states,
                       mode=0o644)
        fs.create_file(f"{SACK_DIR}/state_per", read=self._read_state_per,
                       mode=0o644)
        fs.create_file(f"{SACK_DIR}/per_rules", read=self._read_per_rules,
                       mode=0o644)
        fs.create_file(f"{SACK_DIR}/stats", read=self._read_stats,
                       mode=0o644)
        fs.create_file(f"{SACK_DIR}/audit", read=self._read_audit,
                       mode=0o600)

    # -- event channel -------------------------------------------------------------
    def authorize_event_writer(self, uid: int) -> None:
        """Allow *uid* (the SDS service user) to submit events."""
        self.authorized_event_uids.add(uid)

    def _writer_allowed(self, task) -> bool:
        if task.cred.euid in self.authorized_event_uids:
            return True
        return self.kernel.capable(task, Capability.CAP_MAC_ADMIN)

    def _write_events(self, task, data: bytes) -> int:
        obs = self.obs
        if not self._writer_allowed(task):
            if obs is not None:
                obs.event_rejected("writer not authorised", task)
            raise KernelError(Errno.EPERM,
                              "events: writer not authorised for SACK")
        self.events_received += 1
        ssm = self.module.ssm
        if ssm is None:
            raise KernelError(Errno.ENODATA, "no SACK policy loaded")
        try:
            events = parse_event_buffer(data, self.kernel.clock.now_ns,
                                        sequencer=self.sequencer)
        except EventParseError as exc:
            self.events_rejected += 1
            if obs is not None:
                obs.event_rejected(str(exc), task)
            raise KernelError(Errno.EINVAL, str(exc)) from exc
        for event in events:
            ssm.process_event(event, now_ns=self.kernel.clock.now_ns)
        self.events_accepted += len(events)
        if obs is not None:
            obs.event_write(len(events), len(data), task)
        return len(data)

    # -- policy files ---------------------------------------------------------------
    def _write_policy(self, task, data: bytes) -> int:
        # Parse, validate, and compile all happen before any live state
        # is replaced: a rejected policy leaves the old one enforcing.
        try:
            policy = parse_policy(data.decode("utf-8"))
            self.module.load_policy(policy,
                                    ioctl_symbols=self.ioctl_symbols)
        except (UnicodeDecodeError, ValueError) as exc:
            raise KernelError(Errno.EINVAL, f"policy: {exc}") from exc
        return len(data)

    def _read_policy(self, task) -> bytes:
        policy = self._policy()
        if policy is None:
            return b"no policy loaded\n"
        return policy.summary().encode()

    def _policy(self):
        # Independent SACK keeps the policy on the APE; the bridge keeps
        # it directly.
        ape = getattr(self.module, "ape", None)
        if ape is not None:
            return ape.compiled.policy
        return getattr(self.module, "policy", None)

    # -- read-only views ----------------------------------------------------------
    def _read_current(self, task) -> bytes:
        ssm = self.module.ssm
        if ssm is None:
            return b"none\n"
        return f"{ssm.current.name} {ssm.current.encoding}\n".encode()

    def _read_states(self, task) -> bytes:
        policy = self._policy()
        if policy is None:
            return b""
        lines = [f"{s.name} {s.encoding}"
                 for s in sorted(policy.states, key=lambda s: s.encoding)]
        return ("\n".join(lines) + "\n").encode()

    def _read_state_per(self, task) -> bytes:
        policy = self._policy()
        if policy is None:
            return b""
        lines = [f"{state}: {', '.join(sorted(perms))}"
                 for state, perms in sorted(policy.state_per.items())]
        return ("\n".join(lines) + "\n").encode()

    def _read_per_rules(self, task) -> bytes:
        policy = self._policy()
        if policy is None:
            return b""
        lines = []
        for perm in sorted(policy.per_rules):
            lines.append(f"{perm}:")
            lines.extend(f"  {rule.to_text()}"
                         for rule in policy.per_rules[perm])
        return ("\n".join(lines) + "\n").encode()

    def _read_stats(self, task) -> bytes:
        lines = [f"events_received {self.events_received}",
                 f"events_accepted {self.events_accepted}",
                 f"events_rejected {self.events_rejected}"]
        ssm = self.module.ssm
        if ssm is not None:
            lines.extend(f"ssm_{k} {v}" for k, v in ssm.stats().items())
        ape = getattr(self.module, "ape", None)
        if ape is not None:
            lines.extend(f"ape_{k} {v}" for k, v in ape.stats().items())
        return ("\n".join(lines) + "\n").encode()

    def _read_audit(self, task) -> bytes:
        if self.obs is None:
            return b""
        text = self.obs.audit.to_text()
        return (text + "\n").encode() if text else b""
