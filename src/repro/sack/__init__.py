"""SACK: situation-aware access control in the (simulated) Linux kernel.

The paper's contribution: situation states as a security context
(:mod:`~repro.sack.states`), situation events (:mod:`~repro.sack.events`),
the situation state machine (:mod:`~repro.sack.ssm`), the policy language
and compiler (:mod:`~repro.sack.policy`), the adaptive policy enforcer
(:mod:`~repro.sack.ape`), the two prototypes — independent SACK
(:mod:`~repro.sack.module`) and SACK-enhanced AppArmor
(:mod:`~repro.sack.apparmor_bridge`) — and the SACKfs user/kernel channel
(:mod:`~repro.sack.sackfs`).
"""

from .ape import AdaptivePolicyEnforcer
from .apparmor_bridge import SACK_ORIGIN, SackAppArmorBridge, mac_rule_to_path_rule
from .events import (CRASH_DETECTED, DRIVER_LEFT, DRIVER_RETURNED,
                     EMERGENCY_CLEARED, EventParseError, HEARTBEAT,
                     SPEED_HIGH, SPEED_LOW, SituationEvent, VEHICLE_PARKED,
                     VEHICLE_STARTED, parse_event_buffer, parse_event_line)
from .module import SackLsm
from .policy import (CompiledPolicy, Diagnostic, MacRule, PolicyCompileError,
                     RuleDecision, RuleOp, SackPermission, SackPolicy,
                     SackPolicyParseError, Severity, check_policy,
                     compile_policy, format_policy, has_errors, parse_policy)
from .sackfs import EVENTS_PATH, SackFs
from .ssm import (ANY_STATE, SituationStateMachine, SsmError, Transition,
                  TransitionRule)
from .watchdog import StalenessWatchdog
from .states import (EMERGENCY, NORMAL_DRIVING, PARKING_WITH_DRIVER,
                     PARKING_WITHOUT_DRIVER, SituationState, StateSpace,
                     paper_state_space)

__all__ = [
    "AdaptivePolicyEnforcer", "SACK_ORIGIN", "SackAppArmorBridge",
    "mac_rule_to_path_rule", "CRASH_DETECTED", "DRIVER_LEFT",
    "DRIVER_RETURNED", "EMERGENCY_CLEARED", "EventParseError", "HEARTBEAT",
    "SPEED_HIGH",
    "SPEED_LOW", "SituationEvent", "VEHICLE_PARKED", "VEHICLE_STARTED",
    "parse_event_buffer", "parse_event_line", "SackLsm", "CompiledPolicy",
    "Diagnostic", "MacRule", "PolicyCompileError", "RuleDecision", "RuleOp",
    "SackPermission", "SackPolicy", "SackPolicyParseError", "Severity",
    "check_policy", "compile_policy", "format_policy", "has_errors",
    "parse_policy", "EVENTS_PATH", "SackFs", "ANY_STATE",
    "SituationStateMachine", "SsmError", "StalenessWatchdog", "Transition",
    "TransitionRule",
    "EMERGENCY", "NORMAL_DRIVING", "PARKING_WITH_DRIVER",
    "PARKING_WITHOUT_DRIVER", "SituationState", "StateSpace",
    "paper_state_space",
]
