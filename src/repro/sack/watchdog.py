"""The SSM staleness watchdog: fail-safe when the SDS goes dark.

The SSM only knows what the SDS tells it; if the SDS crashes (or the
SACKfs channel dies), the kernel would otherwise keep enforcing the last
state's permissions forever — stale, and possibly far too permissive for
the situation the vehicle is actually in.  The watchdog closes that hole:
the policy declares ``failsafe <state> after <deadline>ms`` and the kernel
degrades to that state when no event or heartbeat has arrived within the
deadline.

The SDS heartbeat (:data:`~repro.sack.events.HEARTBEAT`) is what lets the
kernel tell "quiet SDS" (world unchanged, heartbeats flowing) from "dead
SDS" (nothing at all): heartbeats feed the watchdog without ever touching
the state machine.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..kernel.clock import NSEC_PER_MSEC


class StalenessWatchdog:
    """Deadline supervisor over one SSM's event stream."""

    def __init__(self, ssm, deadline_ms: float, clock):
        if deadline_ms <= 0:
            raise ValueError("watchdog deadline must be positive")
        self.ssm = ssm
        self.deadline_ms = float(deadline_ms)
        self.deadline_ns = int(deadline_ms * NSEC_PER_MSEC)
        self.clock = clock
        self.last_seen_ns = clock.now_ns
        self.checks = 0
        self.engagements = 0

    # -- feeding -----------------------------------------------------------
    def feed(self, now_ns: Optional[int] = None) -> None:
        """Any accepted event write or heartbeat pets the watchdog."""
        self.last_seen_ns = (now_ns if now_ns is not None
                             else self.clock.now_ns)

    @property
    def stale_ns(self) -> int:
        return max(0, self.clock.now_ns - self.last_seen_ns)

    @property
    def expired(self) -> bool:
        return self.stale_ns > self.deadline_ns

    # -- supervision -------------------------------------------------------
    def check(self, now_ns: Optional[int] = None) -> bool:
        """Engage failsafe if the deadline has passed; True when it fired.

        Idempotent while degraded: once the SSM sits in failsafe the
        watchdog stays quiet until fresh events clear the flag (and feed
        the deadline again).
        """
        now = now_ns if now_ns is not None else self.clock.now_ns
        self.checks += 1
        if self.ssm.failsafe_engaged:
            return False
        if now - self.last_seen_ns <= self.deadline_ns:
            return False
        self.engagements += 1
        stale_ms = (now - self.last_seen_ns) / NSEC_PER_MSEC
        self.ssm.enter_failsafe(
            f"event stream stale for {stale_ms:.0f}ms "
            f"(deadline {self.deadline_ms:.0f}ms)", now_ns=now)
        return True

    def stats(self) -> Dict[str, object]:
        return {
            "deadline_ms": self.deadline_ms,
            "last_event_ns": self.last_seen_ns,
            "stale_ns": self.stale_ns,
            "checks": self.checks,
            "engagements": self.engagements,
            "engaged": int(self.ssm.failsafe_engaged),
        }
