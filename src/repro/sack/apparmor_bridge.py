"""SACK-enhanced AppArmor: the paper's second prototype (§III-E-3).

Here SACK does *not* sit on the per-access path at all — "the permission
check process for SACK-enhanced AppArmor is the same as that for the
original AppArmor" (§IV-B).  Instead, on every situation transition the
bridge rewrites the AppArmor profiles of the target services: SACK MAC
rules active in the new state are translated into AppArmor path rules
(tagged ``origin='sack'``) and the profiles are replaced in the live policy
store, the equivalent of ``apparmor_parser -r`` at transition time.

Fidelity note: AppArmor's file rules cannot filter individual ioctl
commands, so an ioctl rule with a ``cmd=`` list becomes plain write access
to the device node in this mode.  Independent SACK keeps the per-command
granularity; this asymmetry is inherent to the paper's design, and our
ablation E10 measures its cost side.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..apparmor.module import AppArmorLsm
from ..apparmor.profile import FilePerm, PathRule, Profile
from ..apparmor.globs import glob_match
from ..faults import points as fault_points
from ..faults.points import InjectedFault
from ..lsm.module import LsmModule
from .policy.compiler import compile_policy
from .policy.model import MacRule, RuleDecision, RuleOp, SackPolicy
from .ssm import SituationStateMachine, Transition

MODULE_NAME = "sack"

#: Provenance tag on every AppArmor rule the bridge injects.
SACK_ORIGIN = "sack"

_OP_TO_PERMS = {
    RuleOp.READ: FilePerm.READ,
    RuleOp.WRITE: FilePerm.WRITE,
    RuleOp.CREATE: FilePerm.WRITE,
    RuleOp.UNLINK: FilePerm.WRITE,
    RuleOp.EXEC: FilePerm.EXEC,
    RuleOp.MMAP: FilePerm.MMAP,
}


def _ioctl_rule_perms(rule: MacRule,
                      symbols) -> FilePerm:
    """AppArmor permission an ioctl rule needs.

    AppArmor cannot filter individual commands, but it distinguishes the
    _IOC direction: a rule covering only read-direction commands maps to
    read access; anything state-changing (or unrestricted) maps to write.
    """
    from ..kernel.devices import ioctl_is_write
    if not rule.ioctl_cmds:
        return FilePerm.WRITE
    resolved = []
    for token in rule.ioctl_cmds:
        if token in symbols:
            resolved.append(symbols[token])
        elif token.isdigit():
            resolved.append(int(token))
        else:
            return FilePerm.WRITE  # unknown command: be conservative
    if any(ioctl_is_write(cmd) for cmd in resolved):
        return FilePerm.WRITE
    return FilePerm.READ


def mac_rule_to_path_rule(rule: MacRule, symbols=None) -> PathRule:
    """Translate one SACK MAC rule into an AppArmor path rule."""
    if rule.op is RuleOp.IOCTL:
        perms = _ioctl_rule_perms(rule, symbols or {})
    else:
        perms = _OP_TO_PERMS[rule.op]
    return PathRule(rule.path_glob, perms,
                    deny=rule.decision is RuleDecision.DENY,
                    origin=SACK_ORIGIN)


class SackAppArmorBridge(LsmModule):
    """SACK as a policy *administrator* for AppArmor.

    Registers as the ``sack`` LSM (so ``CONFIG_LSM="sack,apparmor"`` holds)
    but implements no decision hooks — enforcement is AppArmor's.
    """

    name = MODULE_NAME

    def __init__(self, apparmor: AppArmorLsm, fault_plan=None):
        self.apparmor = apparmor
        self.policy: Optional[SackPolicy] = None
        self.ssm: Optional[SituationStateMachine] = None
        self.ioctl_symbols: dict = {}
        self.update_count = 0
        self.rules_injected = 0
        self.fault_plan = fault_plan

    def _on_transition_bump_avc(self, _transition) -> None:
        self.bump_avc("transition")

    # -- policy lifecycle -----------------------------------------------------
    def load_policy(self, policy: SackPolicy, ioctl_symbols=None
                    ) -> SituationStateMachine:
        """Validate, activate, and apply *policy*'s initial state."""
        started_ns = time.perf_counter_ns()
        # Compilation is for validation only in bridge mode; enforcement
        # data lives in AppArmor profiles.
        compiled = compile_policy(policy, ioctl_symbols=ioctl_symbols)
        self.policy = policy
        self.ioctl_symbols = dict(ioctl_symbols or {})
        self.ssm = policy.build_ssm()
        self.ssm.add_listener(self._on_transition)
        # Belt and braces with the PolicyDb subscription: even a
        # transition whose profile rewrite is a no-op moves the epoch.
        self.ssm.add_listener(self._on_transition_bump_avc)
        self._apply_state(policy.initial)
        self.bump_avc("policy-load")
        self.audit("sack_policy_loaded",
                   f"bridge policy {policy.name!r} -> AppArmor")
        obs = getattr(self.kernel, "obs", None)
        if obs is not None:
            obs.attach_ssm(self.ssm, provider=self)
            obs.policy_load(
                policy.name, "apparmor",
                len(compiled.rulesets), compiled.total_rules(),
                time.perf_counter_ns() - started_ns,
                state_rule_counts={name: rs.rule_count
                                   for name, rs in
                                   compiled.rulesets.items()})
        return self.ssm

    @property
    def current_state(self) -> Optional[str]:
        return self.ssm.current_name if self.ssm is not None else None

    # -- transition handling ------------------------------------------------------
    def _on_transition(self, transition: Transition) -> None:
        self._apply_state(transition.to_state)

    def _target_profiles(self) -> List[Profile]:
        db = self.apparmor.policy
        names = self.policy.targets or db.profile_names()
        return [db.get(n) for n in names if db.get(n) is not None]

    def _rule_applies_to(self, rule: MacRule, profile: Profile) -> bool:
        if rule.subject is None:
            return True
        return glob_match(rule.subject, profile.name)

    def _apply_state(self, state_name: str) -> None:
        """Rewrite every target profile for *state_name* and reload it.

        The apply is all-or-nothing: every updated profile is computed
        first, then the live policy store is swapped profile by profile.
        The injectable reload failure fires *before* any mutation, so an
        SSM rollback after a bridge failure always finds the profiles
        still consistent with the previous state.
        """
        plan = self.fault_plan
        if plan is not None and plan.should_fail(
                fault_points.BRIDGE_RELOAD_FAIL,
                getattr(self.kernel.clock, "now_ns", 0)):
            obs = getattr(self.kernel, "obs", None)
            if obs is not None:
                obs.fault_injected(fault_points.BRIDGE_RELOAD_FAIL)
            raise InjectedFault(fault_points.BRIDGE_RELOAD_FAIL,
                                f"profile reload failed entering "
                                f"{state_name!r}")
        obs = getattr(self.kernel, "obs", None)
        spans = obs.spans if obs is not None else None
        span = None
        if spans is not None:
            span = spans.start_span("apparmor.reload", stage="reload",
                                    attributes={"state": state_name})
        started_ns = time.perf_counter_ns() if obs is not None else 0
        try:
            rules = self.policy.rules_for_state(state_name)
            injected = 0
            staged: List[Profile] = []
            for profile in self._target_profiles():
                updated = profile.clone()
                updated.remove_rules_by_origin(SACK_ORIGIN)
                for rule in rules:
                    if self._rule_applies_to(rule, updated):
                        updated.add_rule(
                            mac_rule_to_path_rule(rule, self.ioctl_symbols))
                        injected += 1
                staged.append(updated)
            for updated in staged:
                self.apparmor.policy.replace_profile(updated)
        except Exception:
            if spans is not None:
                spans.end_span(span, status="error")
            raise
        self.update_count += 1
        self.rules_injected = injected
        if span is not None:
            span.attributes["profiles"] = len(staged)
            span.attributes["rules"] = injected
        if spans is not None:
            spans.end_span(span)
        if obs is not None:
            obs.metrics.histogram(
                "sack_bridge_apply_ns", {"backend": "apparmor"}).record(
                    time.perf_counter_ns() - started_ns,
                    trace_id=span.trace_id if span is not None else None)
        self.audit("sack_profiles_updated",
                   f"state={state_name} profiles="
                   f"{len(self._target_profiles())} rules={injected}")

    def verify_consistency(self) -> List[str]:
        """Cross-check live profiles against the SSM's current state.

        For every target profile, the sack-origin rules present in the
        live AppArmor store must be exactly the translation of the MAC
        rules active in the SSM's current state.  Returns a list of
        discrepancy descriptions (empty = consistent) — the chaos
        harness's strongest invariant: no injected failure may leave
        enforcement and situation tracking disagreeing.
        """
        problems: List[str] = []
        if self.policy is None or self.ssm is None:
            return problems
        def key(rule: PathRule):
            return (rule.glob, rule.perms.value, rule.deny)

        rules = self.policy.rules_for_state(self.ssm.current_name)
        for profile in self._target_profiles():
            expected = sorted(
                key(mac_rule_to_path_rule(r, self.ioctl_symbols))
                for r in rules if self._rule_applies_to(r, profile))
            live = sorted(key(r) for r in profile.path_rules
                          if r.origin == SACK_ORIGIN)
            if expected != live:
                problems.append(
                    f"profile {profile.name!r}: live sack rules disagree "
                    f"with state {self.ssm.current_name!r} "
                    f"({len(live)} live vs {len(expected)} expected)")
        return problems

    def stats(self) -> dict:
        return {
            "state": self.current_state,
            "profile_updates": self.update_count,
            "rules_injected": self.rules_injected,
            "apparmor_revision": self.apparmor.policy.revision,
        }
