"""Policy compilation: from the declarative model to per-state rulesets.

The adaptive policy enforcer must answer "may *task* do *op* on *path*" in
O(rules-for-this-op) at every hook invocation, and swap rulesets in O(1) at
every transition.  The compiler therefore precomputes, for every state, the
composed mapping ``MR = g(f(SS))`` of Algorithm 1 with globs compiled and
ioctl command names resolved to integers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ...apparmor.globs import compile_glob
from .checker import check_policy, has_errors
from .model import MacRule, RuleDecision, RuleOp, SackPolicy


class PolicyCompileError(ValueError):
    """Raised when a policy cannot be compiled (errors, bad symbols)."""


@dataclasses.dataclass
class CompiledRule:
    """A MacRule with matchers resolved for the hot path."""

    source: MacRule
    matcher: object            # compiled path regex
    cmds: FrozenSet[int]       # empty = any command
    subject_matcher: Optional[object]  # compiled comm glob, None = any

    def matches(self, path: str, comm: str, cmd: Optional[int]) -> bool:
        if self.matcher.match(path) is None:
            return False
        if self.subject_matcher is not None \
                and self.subject_matcher.match(comm) is None:
            return False
        if self.cmds and (cmd is None or cmd not in self.cmds):
            return False
        return True


class CompiledRuleset:
    """All rules active in one situation state, indexed by operation."""

    def __init__(self, state_name: str, guards: List[object],
                 guard_matcher: Optional[object] = None):
        self.state_name = state_name
        self.guards = guards
        # All guards combined into one automaton: the common case (access
        # to an ungoverned path) costs a single regex match.
        self._guard_matcher = guard_matcher
        self.deny_by_op: Dict[RuleOp, List[CompiledRule]] = {}
        self.allow_by_op: Dict[RuleOp, List[CompiledRule]] = {}
        self.rule_count = 0

    def add(self, rule: CompiledRule) -> None:
        table = (self.deny_by_op
                 if rule.source.decision is RuleDecision.DENY
                 else self.allow_by_op)
        table.setdefault(rule.source.op, []).append(rule)
        self.rule_count += 1

    def governs(self, path: str) -> bool:
        """Does any guard cover *path*?  Ungoverned paths are allowed."""
        if self._guard_matcher is not None:
            return self._guard_matcher.match(path) is not None
        return any(g.match(path) is not None for g in self.guards)

    def check(self, op: RuleOp, path: str, comm: str,
              cmd: Optional[int] = None) -> bool:
        """The access decision for this state (True = allow).

        Deny rules always win; governed paths default-deny; ungoverned
        paths are outside SACK's scope and allowed.
        """
        denies = self.deny_by_op.get(op)
        if denies:
            for rule in denies:
                if rule.matches(path, comm, cmd):
                    return False
        if not self.governs(path):
            return True
        for rule in self.allow_by_op.get(op, ()):
            if rule.matches(path, comm, cmd):
                return True
        return False


class CompiledPolicy:
    """Per-state compiled rulesets plus the source policy."""

    def __init__(self, policy: SackPolicy,
                 rulesets: Dict[str, CompiledRuleset]):
        self.policy = policy
        self.rulesets = rulesets

    def ruleset_for(self, state_name: str) -> CompiledRuleset:
        try:
            return self.rulesets[state_name]
        except KeyError:
            raise KeyError(f"no compiled ruleset for state "
                           f"{state_name!r}") from None

    def total_rules(self) -> int:
        return sum(rs.rule_count for rs in self.rulesets.values())


def _resolve_cmds(rule: MacRule,
                  symbols: Mapping[str, int]) -> FrozenSet[int]:
    resolved = set()
    for token in rule.ioctl_cmds:
        if token in symbols:
            resolved.add(symbols[token])
        elif token.isdigit():
            resolved.add(int(token))
        else:
            raise PolicyCompileError(
                f"rule '{rule.to_text()}' references unknown ioctl "
                f"command {token!r}; pass it in ioctl_symbols")
    return frozenset(resolved)


def compile_rule(rule: MacRule,
                 symbols: Mapping[str, int]) -> CompiledRule:
    subject_matcher = (compile_glob(rule.subject)
                       if rule.subject is not None else None)
    return CompiledRule(source=rule,
                        matcher=compile_glob(rule.path_glob),
                        cmds=_resolve_cmds(rule, symbols),
                        subject_matcher=subject_matcher)


def compile_policy(policy: SackPolicy,
                   ioctl_symbols: Optional[Mapping[str, int]] = None,
                   strict: bool = True) -> CompiledPolicy:
    """Compile *policy*; with ``strict`` the checker must find no errors."""
    diags = check_policy(policy)
    if strict and has_errors(diags):
        errors = "; ".join(str(d) for d in diags
                           if d.severity.value == "error")
        raise PolicyCompileError(f"policy {policy.name!r} has errors: "
                                 f"{errors}")
    symbols = dict(ioctl_symbols or {})
    guards = [compile_glob(g) for g in policy.guards]
    guard_matcher = None
    if len(policy.guards) == 1:
        guard_matcher = guards[0]
    elif policy.guards:
        # Brace alternation fuses all guards into a single automaton.
        guard_matcher = compile_glob("{" + ",".join(policy.guards) + "}")

    rulesets: Dict[str, CompiledRuleset] = {}
    # Compile each distinct rule once, then share across states.
    cache: Dict[Tuple[str, str], CompiledRule] = {}
    for state in policy.states:
        ruleset = CompiledRuleset(state.name, guards, guard_matcher)
        for perm in sorted(policy.permissions_for_state(state.name)):
            for rule in policy.rules_for_permission(perm):
                key = (perm, rule.to_text())
                compiled = cache.get(key)
                if compiled is None:
                    compiled = compile_rule(rule, symbols)
                    cache[key] = compiled
                ruleset.add(compiled)
        rulesets[state.name] = ruleset
    return CompiledPolicy(policy, rulesets)
