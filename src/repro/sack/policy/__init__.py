"""SACK policy language, model, checker, and compiler."""

from .checker import Diagnostic, Severity, check_policy, has_errors
from .compiler import (CompiledPolicy, CompiledRule, CompiledRuleset,
                       PolicyCompileError, compile_policy, compile_rule)
from .language import SackPolicyParseError, format_policy, parse_policy
from .model import (MacRule, RuleDecision, RuleOp, SackPermission,
                    SackPolicy)

__all__ = [
    "Diagnostic", "Severity", "check_policy", "has_errors",
    "CompiledPolicy", "CompiledRule", "CompiledRuleset",
    "PolicyCompileError", "compile_policy", "compile_rule",
    "SackPolicyParseError", "format_policy", "parse_policy",
    "MacRule", "RuleDecision", "RuleOp", "SackPermission", "SackPolicy",
]
