"""The SACK policy language (paper §III-D, Table I).

A single human-readable text configures all four policy interfaces.  The
grammar is line-oriented; ``#`` starts a comment; every statement ends with
``;``::

    policy door_control;
    initial normal;

    states {
      normal = 0 "parked or driving normally";
      emergency = 1;
    }

    transitions {
      normal -> emergency on crash_detected;
      emergency -> normal on emergency_cleared;
      * -> emergency on manual_override;
    }

    permissions {
      NORMAL "baseline vehicle telemetry";
      CONTROL_CAR_DOORS;
    }

    state_per {
      normal: NORMAL;
      emergency: NORMAL, CONTROL_CAR_DOORS;
    }

    per_rules {
      NORMAL {
        allow read /dev/car/**;
      }
      CONTROL_CAR_DOORS {
        allow ioctl /dev/car/door cmd=DOOR_UNLOCK,DOOR_LOCK subject=rescued;
        allow write /dev/car/door;
      }
    }

    guard /dev/car/** write,ioctl;
    targets { rescued; }

``guard`` declares what SACK governs: accesses that hit a guard glob (for
the guarded op classes; default all) are default-denied unless an active
rule allows them.  ``targets`` names the AppArmor profiles the
SACK-enhanced-AppArmor bridge rewrites.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from ..ssm import TransitionRule
from ..states import SituationState, StateSpace
from .model import (MacRule, RuleDecision, RuleOp, SackPermission,
                    SackPolicy)


class SackPolicyParseError(ValueError):
    """Raised for malformed policy text, with a line number."""

    def __init__(self, lineno: int, message: str):
        self.lineno = lineno
        super().__init__(f"line {lineno}: {message}")


_STATE_DEF_RE = re.compile(
    r'^(?P<name>\w+)\s*=\s*(?P<enc>\d+)\s*(?:"(?P<desc>[^"]*)")?$')
_TRANSITION_RE = re.compile(
    r'^(?P<from>\w+|\*)\s*->\s*(?P<to>\w+)\s+on\s+(?P<event>\w+)$')
_PERM_DEF_RE = re.compile(r'^(?P<name>\w+)\s*(?:"(?P<desc>[^"]*)")?$')
# An empty grant list ("locked: ;") is legal: the state grants nothing.
_STATE_PER_RE = re.compile(r'^(?P<state>\w+)\s*:\s*(?P<perms>.*)$')
_RULE_RE = re.compile(
    r'^(?P<decision>allow|deny)\s+(?P<op>\w+)\s+(?P<path>/\S+)'
    r'(?P<extras>(?:\s+\w+=\S+)*)$')
_FAILSAFE_RE = re.compile(
    r'^(?P<state>\w+)(?:\s+after\s+(?P<ms>\d+(?:\.\d+)?)\s*ms)?$')


def _strip(line: str) -> str:
    if "#" in line:
        line = line[:line.index("#")]
    return line.strip()


class _Parser:
    """Line-oriented recursive-descent parser."""

    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.pos = 0
        self.name = "sack-policy"
        self.initial: Optional[str] = None
        self.states: List[SituationState] = []
        self.transitions: List[TransitionRule] = []
        self.permissions: Dict[str, SackPermission] = {}
        self.state_per: Dict[str, Set[str]] = {}
        self.per_rules: Dict[str, List[MacRule]] = {}
        self.guards: List[str] = []
        self.targets: List[str] = []
        self.failsafe: Optional[str] = None
        self.failsafe_deadline_ms: Optional[float] = None

    def error(self, message: str) -> SackPolicyParseError:
        return SackPolicyParseError(self.pos, message)

    def next_line(self) -> Optional[Tuple[int, str]]:
        while self.pos < len(self.lines):
            self.pos += 1
            line = _strip(self.lines[self.pos - 1])
            if line:
                return self.pos, line
        return None

    def expect_statement(self, line: str) -> str:
        if not line.endswith(";"):
            raise self.error(f"statement must end with ';': {line!r}")
        return line[:-1].strip()

    # -- block dispatch -----------------------------------------------------
    def parse(self) -> SackPolicy:
        while True:
            item = self.next_line()
            if item is None:
                break
            _, line = item
            if line.endswith("{"):
                head = line[:-1].strip()
                if head == "states":
                    self.parse_states()
                elif head == "transitions":
                    self.parse_transitions()
                elif head == "permissions":
                    self.parse_permissions()
                elif head == "state_per":
                    self.parse_state_per()
                elif head == "per_rules":
                    self.parse_per_rules()
                elif head == "targets":
                    self.parse_targets()
                else:
                    raise self.error(f"unknown block {head!r}")
                continue
            stmt = self.expect_statement(line)
            if stmt.startswith("policy "):
                self.name = stmt.split(None, 1)[1]
            elif stmt.startswith("initial "):
                self.initial = stmt.split(None, 1)[1]
            elif stmt.startswith("guard "):
                self.guards.append(stmt.split(None, 1)[1].split()[0])
            elif stmt.startswith("failsafe "):
                self.parse_failsafe(stmt.split(None, 1)[1])
            else:
                raise self.error(f"unknown top-level statement {stmt!r}")
        return self.finish()

    def block_lines(self):
        """Yield statements inside a block until the closing brace."""
        while True:
            item = self.next_line()
            if item is None:
                raise self.error("unterminated block")
            _, line = item
            if line == "}":
                return
            yield line

    # -- sections ------------------------------------------------------------
    def parse_states(self) -> None:
        for line in self.block_lines():
            stmt = self.expect_statement(line)
            match = _STATE_DEF_RE.match(stmt)
            if match is None:
                raise self.error(f"bad state definition {stmt!r}")
            self.states.append(SituationState(
                match.group("name"), int(match.group("enc")),
                match.group("desc") or ""))

    def parse_transitions(self) -> None:
        for line in self.block_lines():
            stmt = self.expect_statement(line)
            match = _TRANSITION_RE.match(stmt)
            if match is None:
                raise self.error(f"bad transition {stmt!r}")
            self.transitions.append(TransitionRule(
                event=match.group("event"), from_state=match.group("from"),
                to_state=match.group("to")))

    def parse_permissions(self) -> None:
        for line in self.block_lines():
            stmt = self.expect_statement(line)
            match = _PERM_DEF_RE.match(stmt)
            if match is None:
                raise self.error(f"bad permission definition {stmt!r}")
            perm = SackPermission(match.group("name"),
                                  match.group("desc") or "")
            if perm.name in self.permissions:
                raise self.error(f"duplicate permission {perm.name!r}")
            self.permissions[perm.name] = perm

    def parse_state_per(self) -> None:
        for line in self.block_lines():
            stmt = self.expect_statement(line)
            match = _STATE_PER_RE.match(stmt)
            if match is None:
                raise self.error(f"bad state_per entry {stmt!r}")
            state = match.group("state")
            perms = {p.strip() for p in match.group("perms").split(",")
                     if p.strip()}
            if state in self.state_per:
                raise self.error(f"duplicate state_per entry for {state!r}")
            self.state_per[state] = perms

    def parse_per_rules(self) -> None:
        while True:
            item = self.next_line()
            if item is None:
                raise self.error("unterminated per_rules block")
            _, line = item
            if line == "}":
                return
            if not line.endswith("{"):
                raise self.error(f"expected 'PERMISSION {{', got {line!r}")
            perm_name = line[:-1].strip()
            rules: List[MacRule] = []
            for rule_line in self.block_lines():
                rules.append(self.parse_rule(rule_line))
            if perm_name in self.per_rules:
                raise self.error(f"duplicate per_rules for {perm_name!r}")
            self.per_rules[perm_name] = rules

    def parse_rule(self, line: str) -> MacRule:
        stmt = self.expect_statement(line)
        match = _RULE_RE.match(stmt)
        if match is None:
            raise self.error(f"bad MAC rule {stmt!r}")
        try:
            op = RuleOp(match.group("op"))
        except ValueError:
            raise self.error(f"unknown operation {match.group('op')!r}")
        cmds: Set[str] = set()
        subject: Optional[str] = None
        for token in match.group("extras").split():
            key, _, value = token.partition("=")
            if key == "cmd":
                cmds.update(c for c in value.split(",") if c)
            elif key == "subject":
                subject = value
            else:
                raise self.error(f"unknown rule qualifier {key!r}")
        try:
            return MacRule(decision=RuleDecision(match.group("decision")),
                           op=op, path_glob=match.group("path"),
                           ioctl_cmds=frozenset(cmds), subject=subject)
        except ValueError as exc:
            raise self.error(str(exc)) from exc

    def parse_failsafe(self, rest: str) -> None:
        """``failsafe <state> [after <deadline>ms]``."""
        if self.failsafe is not None:
            raise self.error("duplicate failsafe statement")
        match = _FAILSAFE_RE.match(rest.strip())
        if match is None:
            raise self.error(f"bad failsafe statement {rest!r}; expected "
                             f"'failsafe <state> [after <ms>ms]'")
        self.failsafe = match.group("state")
        if match.group("ms") is not None:
            deadline = float(match.group("ms"))
            if deadline <= 0:
                raise self.error("failsafe deadline must be positive")
            self.failsafe_deadline_ms = deadline

    def parse_targets(self) -> None:
        for line in self.block_lines():
            stmt = self.expect_statement(line)
            if not stmt or len(stmt.split()) != 1:
                raise self.error(f"bad target {stmt!r}")
            self.targets.append(stmt)

    # -- assembly ------------------------------------------------------------
    def finish(self) -> SackPolicy:
        if not self.states:
            raise self.error("policy defines no states")
        try:
            space = StateSpace(self.states)
        except ValueError as exc:
            raise self.error(str(exc)) from exc
        if self.initial is None:
            raise self.error("policy has no 'initial' statement")
        return SackPolicy(states=space, initial=self.initial,
                          transitions=self.transitions,
                          permissions=self.permissions,
                          state_per=self.state_per,
                          per_rules=self.per_rules,
                          guards=self.guards,
                          targets=self.targets,
                          name=self.name,
                          failsafe=self.failsafe,
                          failsafe_deadline_ms=self.failsafe_deadline_ms)


def parse_policy(text: str) -> SackPolicy:
    """Parse SACK policy text into a :class:`SackPolicy`."""
    return _Parser(text).parse()


def format_policy(policy: SackPolicy) -> str:
    """Render a policy back to canonical text (round-trips via parse)."""
    out: List[str] = [f"policy {policy.name};", f"initial {policy.initial};",
                      "", "states {"]
    for state in sorted(policy.states, key=lambda s: s.encoding):
        desc = f' "{state.description}"' if state.description else ""
        out.append(f"  {state.name} = {state.encoding}{desc};")
    out.append("}")
    out.append("")
    out.append("transitions {")
    for rule in policy.transitions:
        out.append(f"  {rule.from_state} -> {rule.to_state} on {rule.event};")
    out.append("}")
    out.append("")
    out.append("permissions {")
    for perm in sorted(policy.permissions.values(), key=lambda p: p.name):
        desc = f' "{perm.description}"' if perm.description else ""
        out.append(f"  {perm.name}{desc};")
    out.append("}")
    out.append("")
    out.append("state_per {")
    for state in sorted(policy.state_per):
        perms = ", ".join(sorted(policy.state_per[state]))
        out.append(f"  {state}: {perms};")
    out.append("}")
    out.append("")
    out.append("per_rules {")
    for perm in sorted(policy.per_rules):
        out.append(f"  {perm} {{")
        for rule in policy.per_rules[perm]:
            out.append(f"    {rule.to_text()};")
        out.append("  }")
    out.append("}")
    out.append("")
    for guard in policy.guards:
        out.append(f"guard {guard};")
    if policy.failsafe is not None:
        line = f"failsafe {policy.failsafe}"
        if policy.failsafe_deadline_ms is not None:
            line += f" after {policy.failsafe_deadline_ms:g}ms"
        out.append(line + ";")
    if policy.targets:
        out.append("targets {")
        for target in policy.targets:
            out.append(f"  {target};")
        out.append("}")
    return "\n".join(out) + "\n"
