"""Policy checking tools (paper §III-D: "our policy-checking tools also
handle errors and conflicts").

:func:`check_policy` returns a list of diagnostics; errors make a policy
unloadable, warnings flag probable authoring mistakes (unreachable states,
permissions that grant nothing, rules outside any guard).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Set, Tuple

from ...apparmor.globs import glob_match
from ..ssm import ANY_STATE
from .model import RuleDecision, SackPolicy


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity.value} {self.code}: {self.message}"


def _err(code: str, message: str) -> Diagnostic:
    return Diagnostic(Severity.ERROR, code, message)


def _warn(code: str, message: str) -> Diagnostic:
    return Diagnostic(Severity.WARNING, code, message)


def check_policy(policy: SackPolicy) -> List[Diagnostic]:
    """Validate *policy*; returns all diagnostics (possibly empty)."""
    diags: List[Diagnostic] = []
    state_names = {s.name for s in policy.states}

    # E001: initial state must exist.
    if policy.initial not in state_names:
        diags.append(_err("E001",
                          f"initial state {policy.initial!r} is not defined"))

    # E002: transitions must reference known states; E006: determinism.
    seen_edges: Dict[Tuple[str, str], str] = {}
    for rule in policy.transitions:
        if rule.from_state != ANY_STATE and rule.from_state not in state_names:
            diags.append(_err("E002",
                              f"transition from unknown state "
                              f"{rule.from_state!r}"))
        if rule.to_state not in state_names:
            diags.append(_err("E002",
                              f"transition to unknown state "
                              f"{rule.to_state!r}"))
        key = (rule.event, rule.from_state)
        if key in seen_edges and seen_edges[key] != rule.to_state:
            diags.append(_err(
                "E006",
                f"nondeterministic transitions: event {rule.event!r} from "
                f"{rule.from_state!r} targets both {seen_edges[key]!r} and "
                f"{rule.to_state!r}"))
        seen_edges[key] = rule.to_state

    # E007: failsafe must name a defined state.
    if policy.failsafe is not None and policy.failsafe not in state_names:
        diags.append(_err("E007",
                          f"failsafe state {policy.failsafe!r} is not "
                          f"defined"))

    # E003/E004: State_Per references.
    for state, perms in policy.state_per.items():
        if state not in state_names:
            diags.append(_err("E003",
                              f"state_per entry for unknown state {state!r}"))
        for perm in perms:
            if perm not in policy.permissions:
                diags.append(_err("E004",
                                  f"state {state!r} grants unknown "
                                  f"permission {perm!r}"))

    # E005: Per_Rules for undeclared permissions.
    for perm in policy.per_rules:
        if perm not in policy.permissions:
            diags.append(_err("E005",
                              f"per_rules for undeclared permission "
                              f"{perm!r}"))

    # W101: permission never granted by any state.
    granted: Set[str] = set()
    for perms in policy.state_per.values():
        granted |= perms
    for perm in policy.permissions:
        if perm not in granted:
            diags.append(_warn("W101",
                               f"permission {perm!r} is never granted by "
                               f"any state"))

    # W102: permission with no MAC rules grants nothing.
    for perm in policy.permissions:
        if not policy.per_rules.get(perm):
            diags.append(_warn("W102",
                               f"permission {perm!r} maps to no MAC rules"))

    # W103: unreachable states.  The failsafe state is exempt: it is
    # reachable through the degradation path even without a rule edge.
    if policy.initial in state_names:
        reachable = _reachable(policy, state_names)
        if policy.failsafe is not None:
            reachable = reachable | {policy.failsafe}
        for state in sorted(state_names - reachable):
            diags.append(_warn("W103",
                               f"state {state!r} is unreachable from "
                               f"{policy.initial!r}"))

    # W108: a failsafe state with no exit rule traps the machine until the
    # next policy load — legal, but worth flagging.
    if policy.failsafe in state_names:
        exits = any(rule.from_state in (policy.failsafe, ANY_STATE)
                    and rule.to_state != policy.failsafe
                    for rule in policy.transitions)
        if not exits:
            diags.append(_warn("W108",
                               f"failsafe state {policy.failsafe!r} has no "
                               f"outgoing transition; recovery requires a "
                               f"policy reload"))

    # W104: a situation-aware policy without transitions is static.
    if not policy.transitions:
        diags.append(_warn("W104", "policy defines no transitions; "
                                   "permissions can never adapt"))

    # W105: allow rules outside every guard are no-ops.
    for perm, rules in policy.per_rules.items():
        for rule in rules:
            if rule.decision is RuleDecision.ALLOW and policy.guards:
                if not _guard_covers(policy.guards, rule.path_glob):
                    diags.append(_warn(
                        "W105",
                        f"rule '{rule.to_text()}' of {perm!r} targets a "
                        f"path outside every guard; SACK already allows it"))

    # W106: same-state allow+deny conflicts (deny always wins).
    for state in sorted(policy.state_per):
        rules = policy.rules_for_state(state)
        allows = {(r.op, r.path_glob) for r in rules
                  if r.decision is RuleDecision.ALLOW}
        denies = {(r.op, r.path_glob) for r in rules
                  if r.decision is RuleDecision.DENY}
        for op, path in sorted(allows & denies,
                               key=lambda t: (t[0].value, t[1])):
            diags.append(_warn(
                "W106",
                f"state {state!r} both allows and denies {op.value} on "
                f"{path}; deny wins"))

    # W107: duplicate rules inside one permission.
    for perm, rules in policy.per_rules.items():
        seen: Set[str] = set()
        for rule in rules:
            text = rule.to_text()
            if text in seen:
                diags.append(_warn("W107",
                                   f"duplicate rule in {perm!r}: {text}"))
            seen.add(text)

    return diags


def _reachable(policy: SackPolicy, state_names: Set[str]) -> Set[str]:
    adj: Dict[str, Set[str]] = {s: set() for s in state_names}
    for rule in policy.transitions:
        if rule.to_state not in state_names:
            continue
        if rule.from_state == ANY_STATE:
            for s in adj:
                adj[s].add(rule.to_state)
        elif rule.from_state in adj:
            adj[rule.from_state].add(rule.to_state)
    seen = {policy.initial}
    frontier = [policy.initial]
    while frontier:
        node = frontier.pop()
        for nxt in adj.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def _guard_covers(guards: List[str], rule_glob: str) -> bool:
    """Heuristic: does any guard plausibly cover paths of *rule_glob*?

    Exact containment of glob languages is undecidable in general for this
    dialect; we use the practical test of matching the rule glob's literal
    prefix against each guard.
    """
    probe = rule_glob
    for wildcard in ("*", "?", "[", "{"):
        idx = probe.find(wildcard)
        if idx != -1:
            probe = probe[:idx]
    probe = probe.rstrip("/") or "/"
    return any(glob_match(g, probe) or glob_match(g, probe + "/x")
               or g.startswith(probe)
               for g in guards)


def has_errors(diags: List[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diags)
