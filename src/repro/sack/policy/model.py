"""The SACK policy model: the four Table-I interfaces as data.

A policy is the triple family the paper describes — ``(SS_i, P_i, MR_i)``:
situation states, SACK permissions, the ``State_Per`` mapping from states
to permissions, and the ``Per_Rules`` mapping from permissions to MAC
rules.  Guards declare which resources SACK governs at all; everything
outside the guards is none of SACK's business (that is what keeps the
hot-path overhead negligible).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, FrozenSet, List, Optional, Set

from ...apparmor.globs import compile_glob
from .. import ssm as ssm_mod
from ..states import SituationState, StateSpace


class RuleDecision(enum.Enum):
    ALLOW = "allow"
    DENY = "deny"


class RuleOp(enum.Enum):
    """Operations a MAC rule can mediate."""

    READ = "read"
    WRITE = "write"
    IOCTL = "ioctl"
    EXEC = "exec"
    CREATE = "create"
    UNLINK = "unlink"
    MMAP = "mmap"


@dataclasses.dataclass(frozen=True)
class SackPermission:
    """A user-space-comprehensible permission (``CONTROL_CAR_DOORS``...)."""

    name: str
    description: str = ""

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"invalid permission name: {self.name!r}")


@dataclasses.dataclass(frozen=True)
class MacRule:
    """One MAC rule: decision + operation + object (+ optional filters).

    ``ioctl_cmds`` restricts an ioctl rule to specific commands (names are
    resolved against a symbol table at compile time; integers are accepted
    directly).  ``subject`` restricts the rule to tasks whose ``comm``
    matches — the kernel-side anchor for the paper's per-service
    permissions (e.g. only the rescue daemon gets door control).
    """

    decision: RuleDecision
    op: RuleOp
    path_glob: str
    ioctl_cmds: FrozenSet[str] = frozenset()
    subject: Optional[str] = None

    def __post_init__(self):
        if not self.path_glob.startswith("/"):
            raise ValueError(f"rule path must be absolute: {self.path_glob!r}")
        if self.ioctl_cmds and self.op is not RuleOp.IOCTL:
            raise ValueError("ioctl_cmds only makes sense on ioctl rules")
        compile_glob(self.path_glob)  # fail fast on malformed globs

    def to_text(self) -> str:
        parts = [self.decision.value, self.op.value, self.path_glob]
        if self.ioctl_cmds:
            parts.append("cmd=" + ",".join(sorted(self.ioctl_cmds)))
        if self.subject is not None:
            parts.append(f"subject={self.subject}")
        return " ".join(parts)


class SackPolicy:
    """A complete SACK policy (States/Permissions/State_Per/Per_Rules)."""

    def __init__(self, states: StateSpace, initial: str,
                 transitions: List[ssm_mod.TransitionRule],
                 permissions: Dict[str, SackPermission],
                 state_per: Dict[str, Set[str]],
                 per_rules: Dict[str, List[MacRule]],
                 guards: List[str],
                 targets: Optional[List[str]] = None,
                 name: str = "sack-policy",
                 failsafe: Optional[str] = None,
                 failsafe_deadline_ms: Optional[float] = None):
        self.name = name
        self.states = states
        self.initial = initial
        self.transitions = list(transitions)
        self.permissions = dict(permissions)
        self.state_per = {k: set(v) for k, v in state_per.items()}
        self.per_rules = {k: list(v) for k, v in per_rules.items()}
        self.guards = list(guards)
        #: AppArmor profile names the bridge rewrites (empty = all).
        self.targets = list(targets or [])
        #: ``failsafe <state> [after <ms>ms]``: the state the SSM degrades
        #: to on unrecoverable listener failure or (with a deadline) event
        #: staleness.  Most-restrictive by convention.
        self.failsafe = failsafe
        self.failsafe_deadline_ms = failsafe_deadline_ms

    # -- Algorithm 1's mapping functions -----------------------------------
    def permissions_for_state(self, state_name: str) -> Set[str]:
        """``P_i = f(SS_i)``: permissions active in *state_name*."""
        return set(self.state_per.get(state_name, set()))

    def rules_for_permission(self, perm_name: str) -> List[MacRule]:
        """``MR_k = g(P_j)``: MAC rules granted by *perm_name*."""
        return list(self.per_rules.get(perm_name, []))

    def rules_for_state(self, state_name: str) -> List[MacRule]:
        """The composed mapping ``g(f(SS_i))``."""
        rules: List[MacRule] = []
        for perm in sorted(self.permissions_for_state(state_name)):
            rules.extend(self.rules_for_permission(perm))
        return rules

    def build_ssm(self, history_size: int = 256
                  ) -> ssm_mod.SituationStateMachine:
        """Instantiate the runtime state machine this policy describes."""
        return ssm_mod.SituationStateMachine(
            self.states, self.transitions, self.initial,
            history_size=history_size, failsafe=self.failsafe)

    def rule_count(self) -> int:
        return sum(len(rules) for rules in self.per_rules.values())

    def summary(self) -> str:
        """Administrator-facing one-screen summary (for SACKfs reads)."""
        lines = [f"policy {self.name}",
                 f"initial {self.initial}",
                 f"states {len(self.states)}",
                 f"transitions {len(self.transitions)}",
                 f"permissions {len(self.permissions)}",
                 f"mac_rules {self.rule_count()}",
                 f"guards {len(self.guards)}"]
        if self.failsafe is not None:
            line = f"failsafe {self.failsafe}"
            if self.failsafe_deadline_ms is not None:
                line += f" deadline_ms {self.failsafe_deadline_ms:g}"
            lines.append(line)
        return "\n".join(lines) + "\n"
