"""The situation state machine (SSM) — paper §III-E-1 and Algorithm 1.

The SSM lives in the kernel, holds the current situation state, and
consumes situation events forwarded by the SDS.  A transition rule is a
pair ``(event, from_state) -> to_state``; an event that matches no rule for
the current state is recorded and ignored (the environment changed in a way
this policy does not care about).

Listeners — the adaptive policy enforcer, the AppArmor bridge, audit — are
notified synchronously on every transition, which is what makes permission
updates atomic with respect to subsequent access checks.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from .events import SituationEvent
from .states import SituationState, StateSpace

#: ``from_state`` wildcard: the rule fires from any state.
ANY_STATE = "*"


@dataclasses.dataclass(frozen=True)
class TransitionRule:
    """``from_state --event--> to_state`` (from_state may be ``'*'``)."""

    event: str
    from_state: str
    to_state: str


@dataclasses.dataclass(frozen=True)
class Transition:
    """A transition that actually happened."""

    event: SituationEvent
    from_state: str
    to_state: str
    at_ns: int


class SsmError(ValueError):
    """Raised for ill-formed state machines."""


class SituationStateMachine:
    """Deterministic finite state machine over situation states."""

    def __init__(self, states: StateSpace, rules: Iterable[TransitionRule],
                 initial: str, history_size: int = 256):
        self.states = states
        if initial not in states:
            raise SsmError(f"initial state {initial!r} is not defined")
        self.initial = initial
        self._current = states.get(initial)
        # Index rules by (event, from_state); detect nondeterminism.
        self._rules: Dict[Tuple[str, str], str] = {}
        self.rules: List[TransitionRule] = []
        for rule in rules:
            self._add_rule(rule)
        self.history: Deque[Transition] = deque(maxlen=history_size)
        self._listeners: List[Callable[[Transition], None]] = []
        self.events_processed = 0
        self.events_ignored = 0
        self.transition_count = 0
        #: Observability hub (set via Observability.attach_ssm); when
        #: present, every transition is traced, audited, and timed.
        self.obs = None

    def _add_rule(self, rule: TransitionRule) -> None:
        if rule.from_state != ANY_STATE and rule.from_state not in self.states:
            raise SsmError(f"rule {rule} references unknown from-state")
        if rule.to_state not in self.states:
            raise SsmError(f"rule {rule} references unknown to-state")
        key = (rule.event, rule.from_state)
        existing = self._rules.get(key)
        if existing is not None and existing != rule.to_state:
            raise SsmError(
                f"nondeterministic rules: event {rule.event!r} from "
                f"{rule.from_state!r} goes to both {existing!r} and "
                f"{rule.to_state!r}")
        self._rules[key] = rule.to_state
        self.rules.append(rule)

    # -- observers ---------------------------------------------------------
    @property
    def current(self) -> SituationState:
        return self._current

    @property
    def current_name(self) -> str:
        return self._current.name

    def add_listener(self, callback: Callable[[Transition], None]) -> None:
        """Register a transition callback (called synchronously, in order)."""
        self._listeners.append(callback)

    # -- the transition core (Algorithm 1's loop body) ------------------------
    def lookup(self, event_name: str, from_state: str) -> Optional[str]:
        """Target state for (*event_name*, *from_state*), or None."""
        target = self._rules.get((event_name, from_state))
        if target is None:
            target = self._rules.get((event_name, ANY_STATE))
        return target

    def process_event(self, event: SituationEvent,
                      now_ns: int = 0) -> Optional[Transition]:
        """Feed one event; returns the transition or None when ignored."""
        self.events_processed += 1
        target = self.lookup(event.name, self._current.name)
        if target is None or target == self._current.name:
            self.events_ignored += 1
            return None
        transition = Transition(event=event, from_state=self._current.name,
                                to_state=target, at_ns=now_ns)
        obs = self.obs
        if obs is not None:
            t0 = time.perf_counter_ns()
        self._current = self.states.get(target)
        self.transition_count += 1
        self.history.append(transition)
        for listener in self._listeners:
            listener(transition)
        if obs is not None:
            # Latency covers the pointer swap plus every synchronous
            # listener (APE remap, bridge profile rewrite, audit) — the
            # window during which permissions are being updated.
            obs.transition(transition, time.perf_counter_ns() - t0)
        return transition

    def force_state(self, name: str) -> None:
        """Administrative override (used by tests and policy reload)."""
        self._current = self.states.get(name)

    # -- analysis ----------------------------------------------------------
    def reachable_states(self) -> set:
        """States reachable from the initial state via the rule graph."""
        adj: Dict[str, set] = {s.name: set() for s in self.states}
        for rule in self.rules:
            if rule.from_state == ANY_STATE:
                for s in adj:
                    adj[s].add(rule.to_state)
            else:
                adj[rule.from_state].add(rule.to_state)
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            node = frontier.pop()
            for nxt in adj[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def stats(self) -> Dict[str, int]:
        return {
            "events_processed": self.events_processed,
            "events_ignored": self.events_ignored,
            "transitions": self.transition_count,
            "states": len(self.states),
            "rules": len(self.rules),
        }

    def to_dot(self, title: str = "SSM") -> str:
        """Render the machine as Graphviz DOT (Fig. 2-style diagrams)."""
        lines = [f'digraph "{title}" {{',
                 "  rankdir=LR;",
                 "  node [shape=ellipse];",
                 f'  __start [shape=point, label=""];',
                 f'  __start -> "{self.initial}";']
        for state in sorted(self.states, key=lambda s: s.encoding):
            style = ', style=bold' if state.name == self.current_name \
                else ""
            lines.append(f'  "{state.name}" '
                         f'[label="{state.name}\\n({state.encoding})"'
                         f'{style}];')
        for rule in self.rules:
            sources = ([s.name for s in self.states]
                       if rule.from_state == ANY_STATE
                       else [rule.from_state])
            for source in sources:
                if source == rule.to_state:
                    continue
                lines.append(f'  "{source}" -> "{rule.to_state}" '
                             f'[label="{rule.event}"];')
        lines.append("}")
        return "\n".join(lines)
