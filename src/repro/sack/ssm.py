"""The situation state machine (SSM) — paper §III-E-1 and Algorithm 1.

The SSM lives in the kernel, holds the current situation state, and
consumes situation events forwarded by the SDS.  A transition rule is a
pair ``(event, from_state) -> to_state``; an event that matches no rule for
the current state is recorded and ignored (the environment changed in a way
this policy does not care about).

Listeners — the adaptive policy enforcer, the AppArmor bridge, audit — are
notified synchronously on every transition, which is what makes permission
updates atomic with respect to subsequent access checks.

Transitions are **transactional**: if any listener raises, the state
pointer is rolled back and every listener that already saw the new state is
re-notified with the old one, so the enforcement plane (APE ruleset, bridge
profiles) can never be left half-updated.  If even the rollback fails, the
machine degrades to the policy-declared ``failsafe`` state (most
restrictive by convention) rather than run with an inconsistent world —
fail-closed by construction.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from .events import SituationEvent
from .states import SituationState, StateSpace

#: ``from_state`` wildcard: the rule fires from any state.
ANY_STATE = "*"

#: Synthetic event names for transitions not driven by a situation event.
FORCE_EVENT = "__force_state__"
FAILSAFE_EVENT = "__failsafe__"

#: Attempts per listener when settling on a degraded state.  Bounded so a
#: deterministically broken listener cannot hang the kernel; fault plans
#: bound their enforcement-update faults accordingly.
SETTLE_RETRY_LIMIT = 8


@dataclasses.dataclass(frozen=True)
class TransitionRule:
    """``from_state --event--> to_state`` (from_state may be ``'*'``)."""

    event: str
    from_state: str
    to_state: str


@dataclasses.dataclass(frozen=True)
class Transition:
    """A transition that actually happened."""

    event: SituationEvent
    from_state: str
    to_state: str
    at_ns: int


class SsmError(ValueError):
    """Raised for ill-formed state machines."""


class SituationStateMachine:
    """Deterministic finite state machine over situation states."""

    def __init__(self, states: StateSpace, rules: Iterable[TransitionRule],
                 initial: str, history_size: int = 256,
                 failsafe: Optional[str] = None):
        self.states = states
        if initial not in states:
            raise SsmError(f"initial state {initial!r} is not defined")
        if failsafe is not None and failsafe not in states:
            raise SsmError(f"failsafe state {failsafe!r} is not defined")
        self.initial = initial
        self.failsafe_state = failsafe
        self._current = states.get(initial)
        # Index rules by (event, from_state); detect nondeterminism.
        self._rules: Dict[Tuple[str, str], str] = {}
        self.rules: List[TransitionRule] = []
        for rule in rules:
            self._add_rule(rule)
        self.history: Deque[Transition] = deque(maxlen=history_size)
        self._listeners: List[Callable[[Transition], None]] = []
        self.events_processed = 0
        self.events_ignored = 0
        self.transition_count = 0
        #: Transitions whose listener notification failed and was rolled
        #: back (every processed event lands in exactly one of
        #: transitions / ignored / failed).
        self.transitions_failed = 0
        self.rollback_count = 0
        self.forced_count = 0
        self.failsafe_entries = 0
        #: Listeners that could not be settled even with retries.
        self.listener_failures = 0
        #: True while degraded by the watchdog / a failed rollback; cleared
        #: by the next successful event-driven transition.
        self.failsafe_engaged = False
        #: Observability hub (set via Observability.attach_ssm); when
        #: present, every transition is traced, audited, and timed.
        self.obs = None

    def _add_rule(self, rule: TransitionRule) -> None:
        if rule.from_state != ANY_STATE and rule.from_state not in self.states:
            raise SsmError(f"rule {rule} references unknown from-state")
        if rule.to_state not in self.states:
            raise SsmError(f"rule {rule} references unknown to-state")
        key = (rule.event, rule.from_state)
        existing = self._rules.get(key)
        if existing is not None and existing != rule.to_state:
            raise SsmError(
                f"nondeterministic rules: event {rule.event!r} from "
                f"{rule.from_state!r} goes to both {existing!r} and "
                f"{rule.to_state!r}")
        self._rules[key] = rule.to_state
        self.rules.append(rule)

    # -- observers ---------------------------------------------------------
    @property
    def current(self) -> SituationState:
        return self._current

    @property
    def current_name(self) -> str:
        return self._current.name

    def add_listener(self, callback: Callable[[Transition], None]) -> None:
        """Register a transition callback (called synchronously, in order)."""
        self._listeners.append(callback)

    # -- the transition core (Algorithm 1's loop body) ------------------------
    def lookup(self, event_name: str, from_state: str) -> Optional[str]:
        """Target state for (*event_name*, *from_state*), or None."""
        target = self._rules.get((event_name, from_state))
        if target is None:
            target = self._rules.get((event_name, ANY_STATE))
        return target

    def process_event(self, event: SituationEvent,
                      now_ns: int = 0) -> Optional[Transition]:
        """Feed one event; returns the transition or None when ignored.

        Every processed event lands in exactly one bucket: a committed
        transition, ignored (no matching rule / self-transition), or
        failed (a listener raised and the transition was rolled back).
        """
        self.events_processed += 1
        target = self.lookup(event.name, self._current.name)
        if target is None or target == self._current.name:
            self.events_ignored += 1
            return None
        transition = Transition(event=event, from_state=self._current.name,
                                to_state=target, at_ns=now_ns)
        obs = self.obs
        spans = obs.spans if obs is not None else None
        span = None
        if spans is not None:
            span = spans.start_span(
                "ssm.transition", stage="transition",
                attributes={"event": event.name,
                            "from": transition.from_state,
                            "to": transition.to_state})
        if obs is not None:
            t0 = time.perf_counter_ns()
        if not self._apply(transition):
            self.transitions_failed += 1
            if spans is not None:
                spans.end_span(span, status="rollback")
            return None
        self.transition_count += 1
        self.history.append(transition)
        self.failsafe_engaged = False
        if obs is not None:
            # Latency covers the pointer swap plus every synchronous
            # listener (APE remap, bridge profile rewrite, audit) — the
            # window during which permissions are being updated.
            obs.transition(transition, time.perf_counter_ns() - t0,
                           trace_id=span.trace_id if span is not None
                           else None)
        if spans is not None:
            spans.end_span(span)
            if span is not None:
                # The next few hook decisions run under the state this
                # transition installed: link them back to this trace.
                spans.arm_links(span.context)
        return transition

    # -- the transactional notification core --------------------------------
    def _apply(self, transition: Transition) -> bool:
        """Swap the state pointer and notify listeners, transactionally.

        Returns True when every listener accepted the new state.  On a
        listener exception the pointer is rolled back and the listeners
        that already saw the new state are re-notified with the old one;
        if *that* fails too, the machine degrades to the failsafe state.
        """
        prev = self._current
        self._current = self.states.get(transition.to_state)
        notified: List[Callable[[Transition], None]] = []
        error: Optional[BaseException] = None
        for listener in self._listeners:
            try:
                listener(transition)
            except Exception as exc:
                error = exc
                break
            notified.append(listener)
        if error is None:
            return True
        # Roll back: restore the pointer, then re-apply the old state to
        # every listener that already switched.  The failing listener never
        # completed its update, so it still enforces the old state.
        self.rollback_count += 1
        self._current = prev
        rollback = Transition(
            event=transition.event, from_state=transition.to_state,
            to_state=prev.name, at_ns=transition.at_ns)
        if self.obs is not None:
            self.obs.transition_rollback(transition, error)
        try:
            for listener in notified:
                listener(rollback)
        except Exception as exc:
            # The world cannot be restored: degrade rather than diverge.
            self.enter_failsafe(
                f"rollback failed after listener error ({exc})",
                now_ns=transition.at_ns)
        return False

    def _settle(self, name: str, event_name: str, now_ns: int) -> int:
        """Drive *every* listener to state *name*, retrying per listener.

        The last-resort path: used only when normal transactional
        notification already failed.  Returns the number of listeners that
        still could not be settled after :data:`SETTLE_RETRY_LIMIT` tries.
        """
        from_state = self._current.name
        self._current = self.states.get(name)
        transition = Transition(
            event=SituationEvent(name=event_name, timestamp_ns=now_ns,
                                 seq=0),
            from_state=from_state, to_state=name, at_ns=now_ns)
        failures = 0
        for listener in self._listeners:
            for _ in range(SETTLE_RETRY_LIMIT):
                try:
                    listener(transition)
                    break
                except Exception:
                    continue
            else:
                failures += 1
        self.listener_failures += failures
        return failures

    def enter_failsafe(self, reason: str, now_ns: int = 0
                       ) -> Optional[str]:
        """Degrade to the policy-declared failsafe state.

        Used by the staleness watchdog and by the rollback path.  Without a
        declared failsafe the listeners are re-settled on the current state
        (still fail-closed: nothing ever moves forward inconsistently).
        Returns the state the machine settled on.
        """
        from_state = self._current.name
        target = self.failsafe_state if self.failsafe_state is not None \
            else from_state
        self.failsafe_entries += 1
        self.failsafe_engaged = True
        self._settle(target, FAILSAFE_EVENT, now_ns)
        if self.obs is not None:
            self.obs.failsafe(from_state, target, reason)
        return target

    def force_state(self, name: str, now_ns: int = 0
                    ) -> Optional[Transition]:
        """Administrative override (used by tests and policy reload).

        Routed through the transactional path so listeners — the APE, the
        AppArmor bridge — follow the override exactly like a real
        transition; an override that a listener rejects is rolled back.
        """
        target = self.states.get(name)   # raises KeyError for unknown
        if target.name == self._current.name:
            return None
        transition = Transition(
            event=SituationEvent(name=FORCE_EVENT, timestamp_ns=now_ns,
                                 seq=0),
            from_state=self._current.name, to_state=target.name,
            at_ns=now_ns)
        self.forced_count += 1
        if not self._apply(transition):
            return None
        if self.obs is not None:
            self.obs.transition(transition, 0)
        return transition

    # -- analysis ----------------------------------------------------------
    def reachable_states(self) -> set:
        """States reachable from the initial state via the rule graph."""
        adj: Dict[str, set] = {s.name: set() for s in self.states}
        for rule in self.rules:
            if rule.from_state == ANY_STATE:
                for s in adj:
                    adj[s].add(rule.to_state)
            else:
                adj[rule.from_state].add(rule.to_state)
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            node = frontier.pop()
            for nxt in adj[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def stats(self) -> Dict[str, int]:
        return {
            "events_processed": self.events_processed,
            "events_ignored": self.events_ignored,
            "transitions": self.transition_count,
            "transitions_failed": self.transitions_failed,
            "rollbacks": self.rollback_count,
            "forced": self.forced_count,
            "failsafe_entries": self.failsafe_entries,
            "listener_failures": self.listener_failures,
            "states": len(self.states),
            "rules": len(self.rules),
        }

    def to_dot(self, title: str = "SSM") -> str:
        """Render the machine as Graphviz DOT (Fig. 2-style diagrams)."""
        lines = [f'digraph "{title}" {{',
                 "  rankdir=LR;",
                 "  node [shape=ellipse];",
                 f'  __start [shape=point, label=""];',
                 f'  __start -> "{self.initial}";']
        for state in sorted(self.states, key=lambda s: s.encoding):
            style = ', style=bold' if state.name == self.current_name \
                else ""
            lines.append(f'  "{state.name}" '
                         f'[label="{state.name}\\n({state.encoding})"'
                         f'{style}];')
        for rule in self.rules:
            sources = ([s.name for s in self.states]
                       if rule.from_state == ANY_STATE
                       else [rule.from_state])
            for source in sources:
                if source == rule.to_state:
                    continue
                lines.append(f'  "{source}" -> "{rule.to_state}" '
                             f'[label="{rule.event}"];')
        lines.append("}")
        return "\n".join(lines)
