"""SACK-enhanced SELinux: the TE-backend counterpart of the AppArmor
bridge.

The paper's policy design explicitly "separates policy and implementation
to be compatible with different enforcement approaches" (§III-D).  This
bridge demonstrates that claim against a type-enforcement backend: on
every situation transition it rewrites the SELinux access-vector table —
SACK MAC rules active in the new state become ``allow`` rules (tagged and
retractable), and the AVC flush triggered by the policy-revision bump
makes the change take effect atomically for subsequent checks.

Translation notes (fidelity):

* a rule's object type comes from the SELinux policy's file contexts
  (the label its path would carry);
* ``subject=`` maps to a source *domain* through ``subject_domains``;
  subject-less rules apply to every listed target domain;
* TE is allow-only, so SACK ``deny`` rules cannot be translated; the
  bridge refuses policies that contain them (use independent SACK or the
  AppArmor bridge for deny semantics);
* per-ioctl-command filtering is lost (TE's ``ioctl`` permission is not
  command-granular) — same trade-off as the AppArmor bridge.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional

from ..lsm.module import LsmModule
from ..selinux.module import SelinuxLsm
from ..selinux.policy import AvRule
from .policy.compiler import compile_policy
from .policy.model import MacRule, RuleDecision, RuleOp, SackPolicy
from .ssm import SituationStateMachine, Transition

MODULE_NAME = "sack"

#: Provenance tag on every AV rule the bridge injects.
SACK_ORIGIN = "sack"

_OP_TO_PERM = {
    RuleOp.READ: "read",
    RuleOp.WRITE: "write",
    RuleOp.IOCTL: "ioctl",
    RuleOp.EXEC: "execute",
    RuleOp.CREATE: "create",
    RuleOp.UNLINK: "unlink",
    RuleOp.MMAP: "map",
}


class SackSelinuxBridgeError(ValueError):
    """Raised when a SACK policy cannot be mapped onto TE."""


def _probe_path(glob: str) -> str:
    """Literal prefix of a glob, for resolving its file-context type."""
    probe = glob
    for wildcard in ("*", "?", "[", "{"):
        idx = probe.find(wildcard)
        if idx != -1:
            probe = probe[:idx]
    return probe.rstrip("/") or "/"


class SackSelinuxBridge(LsmModule):
    """SACK as a policy administrator for SELinux."""

    name = MODULE_NAME

    def __init__(self, selinux: SelinuxLsm,
                 subject_domains: Optional[Mapping[str, str]] = None):
        """*subject_domains* maps SACK subject names (task comms) to the
        SELinux domains that confine them."""
        self.selinux = selinux
        self.subject_domains: Dict[str, str] = dict(subject_domains or {})
        self.policy: Optional[SackPolicy] = None
        self.ssm: Optional[SituationStateMachine] = None
        self.update_count = 0
        self.rules_injected = 0

    # -- policy lifecycle -------------------------------------------------------
    def load_policy(self, policy: SackPolicy, ioctl_symbols=None
                    ) -> SituationStateMachine:
        started_ns = time.perf_counter_ns()
        compiled = compile_policy(policy, ioctl_symbols=ioctl_symbols)
        for rules in policy.per_rules.values():
            for rule in rules:
                if rule.decision is RuleDecision.DENY:
                    raise SackSelinuxBridgeError(
                        f"TE is allow-only; cannot translate "
                        f"'{rule.to_text()}'")
                # Validate the subject->domain mapping for every rule up
                # front, not lazily at the first transition that needs it.
                self._domains_for(rule)
        self.policy = policy
        self.ssm = policy.build_ssm()
        self.ssm.add_listener(self._on_transition)
        self._apply_state(policy.initial)
        self.audit("sack_policy_loaded",
                   f"bridge policy {policy.name!r} -> SELinux")
        obs = getattr(self.kernel, "obs", None)
        if obs is not None:
            obs.attach_ssm(self.ssm, provider=self)
            obs.policy_load(
                policy.name, "selinux",
                len(compiled.rulesets), compiled.total_rules(),
                time.perf_counter_ns() - started_ns,
                state_rule_counts={name: rs.rule_count
                                   for name, rs in
                                   compiled.rulesets.items()})
        return self.ssm

    @property
    def current_state(self) -> Optional[str]:
        return self.ssm.current_name if self.ssm is not None else None

    # -- translation -------------------------------------------------------------
    def _domains_for(self, rule: MacRule) -> List[str]:
        if rule.subject is not None:
            domain = self.subject_domains.get(rule.subject)
            if domain is None:
                raise SackSelinuxBridgeError(
                    f"no SELinux domain mapped for subject "
                    f"{rule.subject!r}")
            return [domain]
        return sorted(set(self.subject_domains.values()))

    def translate(self, rule: MacRule) -> List[AvRule]:
        """One SACK MAC rule -> the TE allow rules implementing it.

        The object class depends on the node type behind the path, which
        the bridge cannot know from the glob alone — so it emits the rule
        for both file classes (their permission vocabularies coincide for
        every op SACK uses).
        """
        te_policy = self.selinux.policy
        target = te_policy.context_for_path(_probe_path(rule.path_glob))
        perm = _OP_TO_PERM[rule.op]
        return [AvRule(source=domain, target=target.type, tclass=tclass,
                       perms=frozenset({perm}), origin=SACK_ORIGIN)
                for domain in self._domains_for(rule)
                for tclass in ("file", "chr_file")]

    # -- transition handling ------------------------------------------------------
    def _on_transition(self, transition: Transition) -> None:
        self._apply_state(transition.to_state)

    def _apply_state(self, state_name: str) -> None:
        obs = getattr(self.kernel, "obs", None)
        started_ns = time.perf_counter_ns() if obs is not None else 0
        te_policy = self.selinux.policy
        te_policy.remove_rules_by_origin(SACK_ORIGIN)
        injected = 0
        for rule in self.policy.rules_for_state(state_name):
            for av_rule in self.translate(rule):
                te_policy.add_rule(av_rule)
                injected += 1
        self.update_count += 1
        self.rules_injected = injected
        if obs is not None:
            obs.metrics.histogram(
                "sack_bridge_apply_ns", {"backend": "selinux"}).record(
                    time.perf_counter_ns() - started_ns)
        self.audit("sack_av_table_updated",
                   f"state={state_name} av_rules={injected} "
                   f"revision={te_policy.revision}")

    def stats(self) -> dict:
        return {
            "state": self.current_state,
            "av_updates": self.update_count,
            "rules_injected": self.rules_injected,
            "selinux_revision": self.selinux.policy.revision,
            "avc": self.selinux.avc.stats(),
        }
