"""Situation states: the new security context SACK introduces.

A situation state abstracts "where the vehicle is, environmentally" —
driving, parking with/without driver, emergency — into a kernel-visible
label with a numeric encoding (paper Table I: the ``States`` interface
"specifies situation states and their encodings").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable


@dataclasses.dataclass(frozen=True)
class SituationState:
    """One situation state: name, wire encoding, human description."""

    name: str
    encoding: int
    description: str = ""

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"invalid state name: {self.name!r}")
        if self.encoding < 0:
            raise ValueError(f"state encoding must be >= 0: {self.encoding}")


class StateSpace:
    """The set of situation states a policy defines."""

    def __init__(self, states: Iterable[SituationState] = ()):
        self._by_name: Dict[str, SituationState] = {}
        self._by_encoding: Dict[int, SituationState] = {}
        for state in states:
            self.add(state)

    def add(self, state: SituationState) -> None:
        if state.name in self._by_name:
            raise ValueError(f"duplicate state name {state.name!r}")
        if state.encoding in self._by_encoding:
            other = self._by_encoding[state.encoding]
            raise ValueError(
                f"states {other.name!r} and {state.name!r} share "
                f"encoding {state.encoding}")
        self._by_name[state.name] = state
        self._by_encoding[state.encoding] = state

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self._by_name.values())

    def get(self, name: str) -> SituationState:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown situation state {name!r}") from None

    def by_encoding(self, encoding: int) -> SituationState:
        try:
            return self._by_encoding[encoding]
        except KeyError:
            raise KeyError(f"no state with encoding {encoding}") from None

    def names(self):
        return sorted(self._by_name)

    def encoding_of(self, name: str) -> int:
        """Wire encoding for *name* (``-1`` when unknown).

        Non-raising variant for annotation paths (span attributes, audit
        detail) where an unknown name must not break the caller.
        """
        state = self._by_name.get(name)
        return state.encoding if state is not None else -1


# The four states of the paper's running example (Fig. 2).
NORMAL_DRIVING = SituationState("driving", 0, "vehicle moving normally")
PARKING_WITH_DRIVER = SituationState(
    "parking_with_driver", 1, "parked, driver present")
PARKING_WITHOUT_DRIVER = SituationState(
    "parking_without_driver", 2, "parked, unattended")
EMERGENCY = SituationState("emergency", 3, "crash or other emergency")


def paper_state_space() -> StateSpace:
    """The 4-state space from the paper's Fig. 2 example."""
    return StateSpace([NORMAL_DRIVING, PARKING_WITH_DRIVER,
                       PARKING_WITHOUT_DRIVER, EMERGENCY])
