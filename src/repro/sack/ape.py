"""The adaptive policy enforcer (APE) — paper §III-E, Algorithm 1.

The APE owns the compiled per-state rulesets and a pointer to the ruleset
for the *current* situation state.  It subscribes to the SSM: on every
transition it swaps the pointer (``MR_current = g(f(SS_current))``), which
is O(1) because the compiler precomputed the composition.  Access checks
then consult only the current ruleset.
"""

from __future__ import annotations

from typing import List, Optional

from .policy.compiler import CompiledPolicy, CompiledRuleset
from .policy.model import RuleOp
from .ssm import SituationStateMachine, Transition


class AdaptivePolicyEnforcer:
    """Maps the current situation state to enforceable MAC rules."""

    def __init__(self, compiled: CompiledPolicy,
                 ssm: SituationStateMachine):
        self.compiled = compiled
        self.ssm = ssm
        self._current: CompiledRuleset = compiled.ruleset_for(
            ssm.current_name)
        self.remap_count = 0
        self.check_count = 0
        self.deny_count = 0
        #: (from_state, to_state, at_ns) of every remap, for the ablations.
        self.remap_log: List[tuple] = []
        ssm.add_listener(self._on_transition)

    # -- Algorithm 1: the mapping update -------------------------------------
    def _on_transition(self, transition: Transition) -> None:
        obs = self.ssm.obs
        spans = obs.spans if obs is not None else None
        span = None
        if spans is not None:
            span = spans.start_span(
                "ape.remap", stage="remap",
                attributes={
                    "to": transition.to_state,
                    "encoding": self.ssm.states.encoding_of(
                        transition.to_state)})
        try:
            self._current = self.compiled.ruleset_for(transition.to_state)
            if span is not None:
                # The State → Permission → MAC-rules expansion this swap
                # installed, as precomputed by the compiler.
                span.attributes["rules"] = self._current.rule_count
        finally:
            if spans is not None:
                spans.end_span(span)
        self.remap_count += 1
        self.remap_log.append((transition.from_state, transition.to_state,
                               transition.at_ns))

    @property
    def current_ruleset(self) -> CompiledRuleset:
        return self._current

    @property
    def current_state(self) -> str:
        return self._current.state_name

    # -- the enforcement query (hot path) -------------------------------------
    def check(self, op: RuleOp, path: str, comm: str,
              cmd: Optional[int] = None) -> bool:
        """May a task named *comm* perform *op* on *path* right now?"""
        self.check_count += 1
        allowed = self._current.check(op, path, comm, cmd)
        if not allowed:
            self.deny_count += 1
        return allowed

    def stats(self) -> dict:
        return {
            "state": self.current_state,
            "remaps": self.remap_count,
            "checks": self.check_count,
            "denials": self.deny_count,
        }
