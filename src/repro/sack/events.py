"""Situation events: the triggers that drive state transitions.

Events originate in the user-space SDS and cross into the kernel through
SACKfs as single text lines — ``name key=value key=value`` — chosen to be
trivially parseable at the securityfs write handler with no allocation
beyond the split (low latency is design challenge C1).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List

_seq = itertools.count(1)


class EventParseError(ValueError):
    """Raised for malformed event lines arriving at SACKfs."""


@dataclasses.dataclass(frozen=True)
class SituationEvent:
    """One detected environmental event."""

    name: str
    payload: Dict[str, str] = dataclasses.field(default_factory=dict)
    timestamp_ns: int = 0
    seq: int = dataclasses.field(default_factory=lambda: next(_seq))

    def to_line(self) -> str:
        """Serialise for the SACKfs events file."""
        parts = [self.name]
        parts.extend(f"{k}={v}" for k, v in sorted(self.payload.items()))
        return " ".join(parts)


def parse_event_line(line: str, timestamp_ns: int = 0) -> SituationEvent:
    """Parse one event line into a :class:`SituationEvent`."""
    line = line.strip()
    if not line:
        raise EventParseError("empty event line")
    parts = line.split()
    name = parts[0]
    if not name.replace("_", "").isalnum():
        raise EventParseError(f"invalid event name {name!r}")
    payload: Dict[str, str] = {}
    for token in parts[1:]:
        if "=" not in token:
            raise EventParseError(f"malformed payload token {token!r}")
        key, _, value = token.partition("=")
        if not key:
            raise EventParseError(f"empty payload key in {token!r}")
        payload[key] = value
    return SituationEvent(name=name, payload=payload,
                          timestamp_ns=timestamp_ns)


def parse_event_buffer(data: bytes, timestamp_ns: int = 0
                       ) -> List[SituationEvent]:
    """Parse a write buffer that may carry several newline-separated events."""
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise EventParseError(f"event buffer is not UTF-8: {exc}") from exc
    events = []
    for line in text.splitlines():
        if line.strip():
            events.append(parse_event_line(line, timestamp_ns))
    if not events:
        raise EventParseError("no events in buffer")
    return events


# Event names used throughout the reproduction (SDS detectors emit these).
CRASH_DETECTED = "crash_detected"
EMERGENCY_CLEARED = "emergency_cleared"
VEHICLE_STARTED = "vehicle_started"
VEHICLE_PARKED = "vehicle_parked"
DRIVER_LEFT = "driver_left"
DRIVER_RETURNED = "driver_returned"
SPEED_HIGH = "speed_high"
SPEED_LOW = "speed_low"
