"""Situation events: the triggers that drive state transitions.

Events originate in the user-space SDS and cross into the kernel through
SACKfs as single text lines — ``name key=value key=value`` — chosen to be
trivially parseable at the securityfs write handler with no allocation
beyond the split (low latency is design challenge C1).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional


class EventSequencer:
    """A resettable source of event sequence numbers.

    Sequence numbers order events within one kernel's event stream, so
    each kernel entry point (SACKfs) owns its own sequencer: two kernels
    fed identical writes assign identical numbers, keeping runs
    deterministic.  A process-global counter would leak ordering across
    kernels and tests.
    """

    def __init__(self, start: int = 1):
        self._next = start

    def __call__(self) -> int:
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        """The number the next event will receive."""
        return self._next

    def reset(self, start: int = 1) -> None:
        self._next = start


#: Fallback sequencer for events constructed outside any kernel (tests,
#: CLI simulations).  Reset with :func:`reset_event_sequence`.
_global_seq = EventSequencer()


def reset_event_sequence(start: int = 1) -> None:
    """Reset the module-global fallback sequence (test determinism)."""
    _global_seq.reset(start)


class EventParseError(ValueError):
    """Raised for malformed event lines arriving at SACKfs."""


@dataclasses.dataclass(frozen=True)
class SituationEvent:
    """One detected environmental event."""

    name: str
    payload: Dict[str, str] = dataclasses.field(default_factory=dict)
    timestamp_ns: int = 0
    seq: int = dataclasses.field(default_factory=lambda: _global_seq())

    def to_line(self) -> str:
        """Serialise for the SACKfs events file."""
        parts = [self.name]
        parts.extend(f"{k}={v}" for k, v in sorted(self.payload.items()))
        return " ".join(parts)


def parse_event_line(line: str, timestamp_ns: int = 0,
                     sequencer: Optional[Callable[[], int]] = None
                     ) -> SituationEvent:
    """Parse one event line into a :class:`SituationEvent`.

    *sequencer* supplies the sequence number (a per-kernel
    :class:`EventSequencer`); without one the module-global fallback is
    used.
    """
    line = line.strip()
    if not line:
        raise EventParseError("empty event line")
    parts = line.split()
    name = parts[0]
    if not name.replace("_", "").isalnum():
        raise EventParseError(f"invalid event name {name!r}")
    payload: Dict[str, str] = {}
    for token in parts[1:]:
        if "=" not in token:
            raise EventParseError(f"malformed payload token {token!r}")
        key, _, value = token.partition("=")
        if not key:
            raise EventParseError(f"empty payload key in {token!r}")
        payload[key] = value
    if sequencer is not None:
        return SituationEvent(name=name, payload=payload,
                              timestamp_ns=timestamp_ns, seq=sequencer())
    return SituationEvent(name=name, payload=payload,
                          timestamp_ns=timestamp_ns)


def parse_event_buffer(data: bytes, timestamp_ns: int = 0,
                       sequencer: Optional[Callable[[], int]] = None
                       ) -> List[SituationEvent]:
    """Parse a write buffer that may carry several newline-separated events."""
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise EventParseError(f"event buffer is not UTF-8: {exc}") from exc
    events = []
    for line in text.splitlines():
        if line.strip():
            events.append(parse_event_line(line, timestamp_ns,
                                           sequencer=sequencer))
    if not events:
        raise EventParseError("no events in buffer")
    return events


#: Channel-liveness heartbeat from the SDS.  Not a situation event: SACKfs
#: feeds it to the staleness watchdog and never forwards it to the SSM.
HEARTBEAT = "sds_heartbeat"

# Event names used throughout the reproduction (SDS detectors emit these).
CRASH_DETECTED = "crash_detected"
EMERGENCY_CLEARED = "emergency_cleared"
VEHICLE_STARTED = "vehicle_started"
VEHICLE_PARKED = "vehicle_parked"
DRIVER_LEFT = "driver_left"
DRIVER_RETURNED = "driver_returned"
SPEED_HIGH = "speed_high"
SPEED_LOW = "speed_low"
