"""Parser for the simplified SELinux TE policy language.

Statement forms::

    type media_app_t;
    allow media_app_t car_audio_t : chr_file { read ioctl };
    allow media_app_t media_file_t : file { read write };
    neverallow media_app_t car_door_t : chr_file { write ioctl };
    type_transition init_t media_app_exec_t : process media_app_t;
    filecon /dev/car/audio system_u:object_r:car_audio_t;
    filecon /var/media/** system_u:object_r:media_file_t;

``#`` starts a comment; statements end with ``;``.
"""

from __future__ import annotations

import re
from typing import List

from .context import parse_context
from .policy import (AvRule, FileContext, SelinuxPolicy, SelinuxPolicyError,
                     TypeTransition)


class SelinuxParseError(ValueError):
    """Raised on malformed TE policy text, with a line number."""

    def __init__(self, lineno: int, message: str):
        self.lineno = lineno
        super().__init__(f"line {lineno}: {message}")


_TYPE_RE = re.compile(r"^type\s+(?P<name>\w+)$")
_AV_RE = re.compile(
    r"^(?P<kind>allow|neverallow)\s+(?P<source>\w+)\s+(?P<target>\w+)\s*"
    r":\s*(?P<class>\w+)\s*\{(?P<perms>[^}]*)\}$")
_TRANSITION_RE = re.compile(
    r"^type_transition\s+(?P<source>\w+)\s+(?P<exec>\w+)\s*:\s*process\s+"
    r"(?P<new>\w+)$")
_FILECON_RE = re.compile(
    r"^filecon\s+(?P<glob>/\S+)\s+(?P<context>\S+)$")


def _strip(line: str) -> str:
    if "#" in line:
        line = line[:line.index("#")]
    return line.strip()


def parse_te_policy(text: str,
                    policy: SelinuxPolicy | None = None) -> SelinuxPolicy:
    """Parse *text* into (or onto) a :class:`SelinuxPolicy`."""
    policy = policy if policy is not None else SelinuxPolicy()
    pending: List[tuple] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        if not line.endswith(";"):
            raise SelinuxParseError(lineno,
                                    f"statement must end with ';': {raw!r}")
        stmt = line[:-1].strip()

        match = _TYPE_RE.match(stmt)
        if match:
            policy.declare_type(match.group("name"))
            continue

        match = _AV_RE.match(stmt)
        if match:
            perms = frozenset(match.group("perms").split())
            if not perms:
                raise SelinuxParseError(lineno, "empty permission set")
            pending.append((lineno, match.group("kind"), AvRule(
                source=match.group("source"), target=match.group("target"),
                tclass=match.group("class"), perms=perms)))
            continue

        match = _TRANSITION_RE.match(stmt)
        if match:
            pending.append((lineno, "transition", TypeTransition(
                source=match.group("source"),
                exec_type=match.group("exec"),
                new_type=match.group("new"))))
            continue

        match = _FILECON_RE.match(stmt)
        if match:
            try:
                context = parse_context(match.group("context"))
            except ValueError as exc:
                raise SelinuxParseError(lineno, str(exc)) from exc
            pending.append((lineno, "filecon", FileContext(
                glob=match.group("glob"), context=context)))
            continue

        raise SelinuxParseError(lineno, f"unrecognised statement {stmt!r}")

    # Apply after all type declarations so ordering inside the file is
    # free, but neverallow before allow so violations are caught.
    for lineno, kind, item in pending:
        try:
            if kind == "neverallow":
                policy.add_neverallow(item)
        except SelinuxPolicyError as exc:
            raise SelinuxParseError(lineno, str(exc)) from exc
    for lineno, kind, item in pending:
        try:
            if kind == "allow":
                policy.add_rule(item)
            elif kind == "transition":
                policy.add_transition(item)
            elif kind == "filecon":
                policy.add_file_context(item)
        except SelinuxPolicyError as exc:
            raise SelinuxParseError(lineno, str(exc)) from exc
    return policy
