"""The access vector cache (AVC).

Real SELinux answers most checks from a cache of recently computed access
vectors; policy reloads flush it.  The SACK-SELinux bridge relies on the
flush: after a situation transition rewrites the AV table, stale cached
decisions must not survive.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from .policy import SelinuxPolicy


class AccessVectorCache:
    """Memoises ``(source, target, class) -> allowed perms``."""

    def __init__(self, policy: SelinuxPolicy, capacity: int = 4096):
        self.policy = policy
        self.capacity = capacity
        self._cache: Dict[Tuple[str, str, str], Set[str]] = {}
        self._policy_revision = policy.revision
        self.hits = 0
        self.misses = 0
        self.flushes = 0

    def _maybe_flush(self) -> None:
        if self.policy.revision != self._policy_revision:
            self.flush()
            self._policy_revision = self.policy.revision

    def flush(self) -> None:
        self._cache.clear()
        self.flushes += 1

    def allowed(self, source: str, target: str, tclass: str,
                perm: str) -> bool:
        self._maybe_flush()
        key = (source, target, tclass)
        vector = self._cache.get(key)
        if vector is None:
            self.misses += 1
            vector = set(self.policy.allowed_perms(source, target, tclass))
            if len(self._cache) >= self.capacity:
                self._cache.clear()  # crude but bounded, like avc reclaim
            self._cache[key] = vector
        else:
            self.hits += 1
        return perm in vector

    def stats(self) -> Dict[str, int]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "flushes": self.flushes,
            "hit_rate_pct": (self.hits * 100 // total) if total else 0,
        }
