"""The SELinux access vector cache, refolded onto the stack AVC core.

Real SELinux answers most checks from a cache of recently computed access
vectors; policy reloads flush it.  The SACK-SELinux bridge relies on the
flush: after a situation transition rewrites the AV table, stale cached
decisions must not survive.

Since the LSM framework grew its own epoch-stamped cache
(:class:`repro.lsm.avc.AvcCore`), this module is a thin veneer over that
core: a policy-revision change becomes an epoch bump (O(1), no walk) and
capacity reclaim is the core's LRU instead of the old clear-everything
heuristic.  The public surface — ``allowed()``, ``flush()``, the
``hits``/``misses``/``flushes`` counters and ``stats()`` — is unchanged.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..lsm.avc import AvcCore
from .policy import SelinuxPolicy


class AccessVectorCache:
    """Memoises ``(source, target, class) -> allowed perms``."""

    def __init__(self, policy: SelinuxPolicy, capacity: int = 4096):
        self.policy = policy
        self.capacity = capacity
        self.core = AvcCore(capacity=capacity)
        self._policy_revision = policy.revision

    # Counter façade over the core, so callers keep their names.
    @property
    def hits(self) -> int:
        return self.core.hits

    @property
    def misses(self) -> int:
        return self.core.misses

    @property
    def flushes(self) -> int:
        return self.core.flushes

    @property
    def _cache(self) -> Dict[Tuple[str, str, str], Set[str]]:
        """Live (current-epoch) entries, for tests and introspection."""
        epoch = self.core.epoch
        return {key: value for key, (entry_epoch, value)
                in self.core._entries.items() if entry_epoch == epoch}

    def _maybe_flush(self) -> None:
        if self.policy.revision != self._policy_revision:
            self.flush()
            self._policy_revision = self.policy.revision

    def flush(self) -> None:
        self.core.bump_epoch("selinux-policy-reload")
        self.core.flush()

    def allowed(self, source: str, target: str, tclass: str,
                perm: str) -> bool:
        self._maybe_flush()
        key = (source, target, tclass)
        hit, vector = self.core.lookup(key)
        if not hit:
            vector = set(self.policy.allowed_perms(source, target, tclass))
            self.core.insert(key, vector)
        return perm in vector

    def stats(self) -> Dict[str, int]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "flushes": self.flushes,
            "hit_rate_pct": (self.hits * 100 // total) if total else 0,
        }
