"""SELinux-style type enforcement for the simulated kernel."""

from .avc import AccessVectorCache
from .context import (ContextError, DEFAULT_FILE_CONTEXT, INIT_CONTEXT,
                      KERNEL_CONTEXT, SecurityContext, UNLABELED,
                      parse_context)
from .module import DEFAULT_UNCONFINED, SelinuxLsm
from .parser import SelinuxParseError, parse_te_policy
from .policy import (AvRule, CLASS_PERMS, FileContext, SelinuxPolicy,
                     SelinuxPolicyError, TypeTransition)

__all__ = [
    "AccessVectorCache", "ContextError", "DEFAULT_FILE_CONTEXT",
    "INIT_CONTEXT", "KERNEL_CONTEXT", "SecurityContext", "UNLABELED",
    "parse_context", "DEFAULT_UNCONFINED", "SelinuxLsm",
    "SelinuxParseError", "parse_te_policy", "AvRule", "CLASS_PERMS",
    "FileContext", "SelinuxPolicy", "SelinuxPolicyError", "TypeTransition",
]
