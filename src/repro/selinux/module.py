"""SELinux-style type enforcement as an LSM module.

Labeling model:

* tasks carry a :class:`SecurityContext` blob; init starts as
  ``init_t`` and domains change at exec via ``type_transition`` rules;
* inodes are labeled lazily from the policy's file contexts (the
  simulator's ``restorecon`` moment is first access);
* unconfined domains (targeted-policy style) bypass TE checks — the
  simulator defaults ``kernel_t``/``init_t``/``unconfined_t`` so a base
  system works without a thousand-rule base policy, exactly like a
  distro's targeted policy.

Decisions come from the AVC; policy mutations bump the policy revision
which flushes the cache — the property the SACK bridge depends on.
"""

from __future__ import annotations

from typing import Optional, Set

from ..kernel.syscalls import MAY_READ, MAY_WRITE
from ..kernel.vfs.file import OpenFile
from ..lsm.blob import get_blob, set_blob
from ..lsm.module import LsmModule
from .avc import AccessVectorCache
from .context import INIT_CONTEXT, SecurityContext, UNLABELED
from .policy import SelinuxPolicy

MODULE_NAME = "selinux"

#: Domains that bypass TE (targeted-policy unconfined set).
DEFAULT_UNCONFINED = frozenset({"kernel_t", "init_t", "unconfined_t"})


class SelinuxLsm(LsmModule):
    """The type-enforcement security module."""

    name = MODULE_NAME

    #: Folding the policy revision into the subject key makes every
    #: policy mutation a new cache line — the stack AVC needs no flush
    #: feed from SELinux.  Permissive mode vetoes caching per dispatch
    #: (allows there carry an audit record per access).
    avc_cacheable = True

    def avc_subject_key(self, task):
        if not self.enforcing:
            return None
        return (self.context_of(task).type, self.policy.revision)

    def __init__(self, policy: Optional[SelinuxPolicy] = None,
                 enforcing: bool = True,
                 unconfined_types: Set[str] = DEFAULT_UNCONFINED):
        self.policy = policy or SelinuxPolicy()
        self.avc = AccessVectorCache(self.policy)
        self.enforcing = enforcing
        self.unconfined_types = set(unconfined_types)
        self.denial_count = 0

    # -- labeling --------------------------------------------------------------
    def context_of(self, task) -> SecurityContext:
        context = get_blob(task, MODULE_NAME)
        return context if context is not None else INIT_CONTEXT

    def set_context(self, task, context: SecurityContext) -> None:
        set_blob(task, MODULE_NAME, context)

    def label_of_inode(self, inode, path: str) -> SecurityContext:
        """Lazy restorecon: label the inode on first security use."""
        label = inode.security.get(MODULE_NAME)
        if label is None:
            label = self.policy.context_for_path(path)
            inode.security[MODULE_NAME] = label
        return label

    def relabel_tree(self, kernel) -> int:
        """Eager restorecon over already-labeled inodes (after policy
        changes); returns how many labels changed."""
        changed = 0

        def walk(dentry):
            nonlocal changed
            inode = dentry.inode
            if MODULE_NAME in inode.security:
                fresh = self.policy.context_for_path(dentry.path())
                if inode.security[MODULE_NAME] != fresh:
                    inode.security[MODULE_NAME] = fresh
                    changed += 1
            for child in dentry.iter_children():
                walk(child)

        walk(kernel.vfs.root)
        return changed

    @staticmethod
    def _class_of(inode) -> str:
        if inode.is_chardev:
            return "chr_file"
        if inode.is_dir:
            return "dir"
        return "file"

    # -- the decision core -----------------------------------------------------
    def _check(self, task, target_type: str, tclass: str, perm: str,
               detail: str) -> int:
        source = self.context_of(task).type
        if source in self.unconfined_types:
            return 0
        if self.avc.allowed(source, target_type, tclass, perm):
            return 0
        if not self.enforcing:
            self.audit("selinux_permissive",
                       f"{source} -> {target_type}:{tclass} {perm} "
                       f"({detail})", task)
            return 0
        self.denial_count += 1
        self.audit("selinux_denied",
                   f"{source} -> {target_type}:{tclass} {perm} ({detail})",
                   task)
        return self.EACCES

    def _check_file(self, task, file_or_inode, path: str,
                    perm: str) -> int:
        inode = getattr(file_or_inode, "inode", file_or_inode)
        label = self.label_of_inode(inode, path)
        return self._check(task, label.type, self._class_of(inode), perm,
                           path)

    # -- exec & domain transitions ------------------------------------------------
    def bprm_check_security(self, task, exe_path: str) -> int:
        dentry = self.kernel.vfs.try_resolve(exe_path) \
            if self.kernel else None
        if dentry is None:
            return 0
        label = self.label_of_inode(dentry.inode, exe_path)
        return self._check_file(task, dentry.inode, exe_path, "execute")

    def bprm_committed_creds(self, task, exe_path: str) -> None:
        if self.kernel is None:
            return
        dentry = self.kernel.vfs.try_resolve(exe_path)
        if dentry is None:
            return
        exe_type = self.label_of_inode(dentry.inode, exe_path).type
        source = self.context_of(task)
        new_type = self.policy.transition_for(source.type, exe_type)
        if new_type is not None:
            self.set_context(task, source.with_type(new_type))

    # -- file hooks ------------------------------------------------------------
    def file_open(self, task, file: OpenFile) -> int:
        if file.wants_read:
            rc = self._check_file(task, file, file.path, "read")
            if rc != 0:
                return rc
        if file.wants_write:
            return self._check_file(task, file, file.path, "write")
        return 0

    def file_permission(self, task, file: OpenFile, mask: int) -> int:
        if mask & MAY_READ:
            rc = self._check_file(task, file, file.path, "read")
            if rc != 0:
                return rc
        if mask & MAY_WRITE:
            return self._check_file(task, file, file.path, "write")
        return 0

    def file_ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        return self._check_file(task, file, file.path, "ioctl")

    def mmap_file(self, task, file, prot: int) -> int:
        if file is None:
            return 0
        return self._check_file(task, file, file.path, "map")

    def inode_create(self, task, parent_inode, path: str,
                     mode: int) -> int:
        # The new object gets the policy label for its path; creation
        # needs 'create' on that type (simplified from SELinux's
        # dir add_name + file create pair).
        target = self.policy.context_for_path(path)
        return self._check(task, target.type, "file", "create", path)

    def inode_unlink(self, task, inode, path: str) -> int:
        return self._check_file(task, inode, path, "unlink")

    # -- sockets ---------------------------------------------------------------
    def socket_create(self, task, family) -> int:
        source = self.context_of(task).type
        return self._check(task, source, "socket", "create",
                           str(family))

    def socket_connect(self, task, sock, addr) -> int:
        source = self.context_of(task).type
        return self._check(task, source, "socket", "connect", str(addr))
