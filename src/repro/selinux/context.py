"""SELinux security contexts: ``user:role:type`` labels.

The paper grounds SACK in the type-enforcement (TE) model "where access
decisions are based on the types of subjects and objects" (§II-A-4,
citing Badger et al.).  This package provides a TE implementation so the
SACK bridge can be demonstrated against a second, differently-shaped
enforcement backend (DESIGN.md: "SACK separates policy and implementation
to ensure compatibility with different enforcement approaches").

We model the classic three-field context (MLS levels omitted, as in the
paper's discussion).
"""

from __future__ import annotations

import dataclasses
import re

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.-]*$")


class ContextError(ValueError):
    """Raised for malformed security contexts."""


@dataclasses.dataclass(frozen=True)
class SecurityContext:
    """An SELinux-style security context."""

    user: str
    role: str
    type: str

    def __post_init__(self):
        for field in (self.user, self.role, self.type):
            if not _IDENT_RE.match(field):
                raise ContextError(f"bad context field {field!r}")

    def __str__(self) -> str:
        return f"{self.user}:{self.role}:{self.type}"

    def with_type(self, new_type: str) -> "SecurityContext":
        return dataclasses.replace(self, type=new_type)


def parse_context(text: str) -> SecurityContext:
    """Parse ``user:role:type`` into a :class:`SecurityContext`."""
    parts = text.strip().split(":")
    if len(parts) != 3:
        raise ContextError(f"context needs 3 fields: {text!r}")
    return SecurityContext(*parts)


# Well-known contexts used by the simulator's base policy.
KERNEL_CONTEXT = SecurityContext("system_u", "system_r", "kernel_t")
INIT_CONTEXT = SecurityContext("system_u", "system_r", "init_t")
UNLABELED = SecurityContext("system_u", "object_r", "unlabeled_t")
DEFAULT_FILE_CONTEXT = SecurityContext("system_u", "object_r", "file_t")
