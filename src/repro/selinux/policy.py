"""The type-enforcement policy store: types, AV rules, transitions,
file contexts.

Decision model (classic TE): an access ``(source_type, target_type,
class, perm)`` is allowed iff some ``allow`` rule grants it and no
``neverallow`` forbids it (we enforce neverallow at load time, as
checkpolicy does).  Domain transitions happen at exec via
``type_transition`` rules keyed on the executable's type.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..apparmor.globs import compile_glob, literal_prefix_len
from .context import (DEFAULT_FILE_CONTEXT, SecurityContext, parse_context)

# Object classes and their permission vocabularies.
CLASS_PERMS: Dict[str, FrozenSet[str]] = {
    "file": frozenset({"read", "write", "append", "execute", "create",
                       "unlink", "getattr", "setattr", "ioctl", "map"}),
    "chr_file": frozenset({"read", "write", "append", "execute", "create",
                           "unlink", "getattr", "setattr", "ioctl", "map"}),
    "dir": frozenset({"read", "write", "search", "add_name", "remove_name",
                      "getattr"}),
    "process": frozenset({"fork", "transition", "signal", "setcap"}),
    "socket": frozenset({"create", "bind", "connect", "listen", "accept",
                         "send", "recv"}),
    "capability": frozenset({"use"}),
}


class SelinuxPolicyError(ValueError):
    """Raised for ill-formed TE policies."""


@dataclasses.dataclass(frozen=True)
class AvRule:
    """An access-vector rule: allow source target:class { perms }."""

    source: str
    target: str
    tclass: str
    perms: FrozenSet[str]
    #: Provenance: 'static' or the SACK bridge's tag.
    origin: str = "static"

    def __post_init__(self):
        if self.tclass not in CLASS_PERMS:
            raise SelinuxPolicyError(f"unknown class {self.tclass!r}")
        unknown = self.perms - CLASS_PERMS[self.tclass]
        if unknown:
            raise SelinuxPolicyError(
                f"perms {sorted(unknown)} invalid for class {self.tclass}")


@dataclasses.dataclass(frozen=True)
class TypeTransition:
    """``type_transition source exec_type : process new_type``."""

    source: str
    exec_type: str
    new_type: str


@dataclasses.dataclass(frozen=True)
class FileContext:
    """A file-context spec: glob -> context (restorecon's input)."""

    glob: str
    context: SecurityContext


class SelinuxPolicy:
    """A loaded TE policy with an indexed access-vector table."""

    def __init__(self):
        self.types: Set[str] = {"kernel_t", "init_t", "unlabeled_t",
                                "file_t"}
        self._av: Dict[Tuple[str, str, str], Set[str]] = {}
        self._neverallow: List[AvRule] = []
        self._transitions: Dict[Tuple[str, str], str] = {}
        self.file_contexts: List[FileContext] = []
        self._fc_matchers: List[Tuple[object, FileContext]] = []
        self.revision = 0

    # -- loading ------------------------------------------------------------
    def declare_type(self, name: str) -> None:
        self.types.add(name)
        self.revision += 1

    def add_rule(self, rule: AvRule) -> None:
        for t in (rule.source, rule.target):
            if t not in self.types:
                raise SelinuxPolicyError(f"undeclared type {t!r}")
        for never in self._neverallow:
            if (never.source == rule.source and never.target == rule.target
                    and never.tclass == rule.tclass
                    and never.perms & rule.perms):
                raise SelinuxPolicyError(
                    f"rule {rule} violates neverallow {never}")
        key = (rule.source, rule.target, rule.tclass)
        self._av.setdefault(key, set()).update(rule.perms)
        self._av_origins.setdefault(key, {}).setdefault(
            rule.origin, set()).update(rule.perms)
        self.revision += 1

    #: per-key, per-origin permission sets, so bridge rules are retractable.
    @property
    def _av_origins(self) -> Dict:
        if not hasattr(self, "_av_origins_store"):
            self._av_origins_store = {}
        return self._av_origins_store

    def add_neverallow(self, rule: AvRule) -> None:
        existing = self._av.get((rule.source, rule.target, rule.tclass),
                                set())
        if existing & rule.perms:
            raise SelinuxPolicyError(
                f"neverallow {rule} conflicts with existing allow rules")
        self._neverallow.append(rule)
        self.revision += 1

    def remove_rules_by_origin(self, origin: str) -> int:
        """Retract every AV rule tagged *origin*; returns perms removed."""
        removed = 0
        for key, origins in list(self._av_origins.items()):
            perms = origins.pop(origin, None)
            if not perms:
                continue
            # Rebuild the effective vector from the surviving origins.
            survivors = set()
            for other in origins.values():
                survivors |= other
            dropped = self._av.get(key, set()) - survivors
            removed += len(dropped)
            if survivors:
                self._av[key] = survivors
            else:
                self._av.pop(key, None)
        if removed:
            self.revision += 1
        return removed

    def add_transition(self, transition: TypeTransition) -> None:
        key = (transition.source, transition.exec_type)
        existing = self._transitions.get(key)
        if existing is not None and existing != transition.new_type:
            raise SelinuxPolicyError(
                f"conflicting type_transition for {key}")
        self._transitions[key] = transition.new_type
        self.revision += 1

    def add_file_context(self, spec: FileContext) -> None:
        self.file_contexts.append(spec)
        self._fc_matchers.append((compile_glob(spec.glob), spec))
        self.revision += 1

    # -- queries -----------------------------------------------------------
    def allowed_perms(self, source: str, target: str,
                      tclass: str) -> Set[str]:
        return self._av.get((source, target, tclass), set())

    def allows(self, source: str, target: str, tclass: str,
               perm: str) -> bool:
        return perm in self._av.get((source, target, tclass), ())

    def transition_for(self, source: str,
                       exec_type: str) -> Optional[str]:
        return self._transitions.get((source, exec_type))

    def context_for_path(self, path: str) -> SecurityContext:
        """restorecon: most specific file-context match wins."""
        best: Optional[FileContext] = None
        best_key = (-1, -1)
        for matcher, spec in self._fc_matchers:
            if matcher.match(path) is not None:
                key = (literal_prefix_len(spec.glob), len(spec.glob))
                if key > best_key:
                    best, best_key = spec, key
        return best.context if best is not None else DEFAULT_FILE_CONTEXT

    def rule_count(self) -> int:
        return sum(len(v) for v in self._av.values())
