"""Named fault points threaded through the SDS → SACKfs → SSM pipeline.

Modeled on Linux's ``CONFIG_FAULT_INJECTION`` fault attributes (failslab,
fail_page_alloc, fail_make_request): a fault point is a *name* baked into a
code path; whether a given call actually fails is decided by the active
:class:`~repro.faults.plan.FaultPlan`.  A point with no matching rule costs
one dictionary lookup — the production path stays hot.

The catalogue below declares every point the simulator can trigger, its
layer, and what failing there means, so tooling (``sackctl chaos``, docs,
random plan generation) can enumerate them without firing anything.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

# -- SDS (user space): sensing faults --------------------------------------
#: A sensor returns nothing this poll (wiring glitch, bus timeout).
SDS_SENSOR_DROPOUT = "sds:sensor_dropout"
#: A sensor repeats its previous value regardless of the world (stuck-at).
SDS_SENSOR_STUCK = "sds:sensor_stuck"
#: A numeric sensor reports a wildly perturbed value (EMI spike / noise).
SDS_SENSOR_SPIKE = "sds:sensor_spike"

# -- SACKfs (the user→kernel channel): transport faults --------------------
#: The events write fails with EIO before any byte is processed.
SACKFS_WRITE_EIO = "sackfs:write_eio"
#: The events write fails with EAGAIN (transient backpressure).
SACKFS_WRITE_EAGAIN = "sackfs:write_eagain"
#: Only a prefix of the buffer reaches the parser (short write).
SACKFS_SHORT_WRITE = "sackfs:short_write"
#: One byte of the buffer is flipped in flight (corruption).
SACKFS_CORRUPT = "sackfs:corrupt"

# -- SSM / listeners (kernel): enforcement-update faults -------------------
#: A generic SSM transition listener raises mid-notification.
SSM_LISTENER_FAIL = "ssm:listener_fail"
#: The AppArmor bridge's profile reload fails (apparmor_parser -r error).
BRIDGE_RELOAD_FAIL = "bridge:profile_reload_fail"

# -- policy lifecycle ------------------------------------------------------
#: A policy write fails with EIO before the new policy replaces the old.
POLICY_LOAD_FAIL = "sack:policy_load_fail"

# -- V2X bus (fleet): network faults ---------------------------------------
#: A published message is lost before the bus sees it (radio shadow).
V2X_PUBLISH_DROP = "v2x:publish_drop"
#: One subscriber's copy of a message is lost in flight (per-link loss).
V2X_DELIVERY_DROP = "v2x:delivery_drop"
#: One subscriber's copy is held for an extra seeded delay (congestion).
V2X_DELAY = "v2x:delay"

# -- fleet control plane: orchestration faults -----------------------------
#: A vehicle drops off the control network (no commands, no acks, no bus).
FLEET_VEHICLE_OFFLINE = "fleet:vehicle_offline"
#: A vehicle-side bundle apply fails after verification (flash error).
FLEET_BUNDLE_APPLY_FAIL = "fleet:bundle_apply_fail"
#: A vehicle's rollout ack is lost on the way back to the control plane.
FLEET_ACK_DROP = "fleet:ack_drop"
#: A vehicle's kernel dies at the epoch barrier (panic / ECU brownout);
#: the supervisor must restore it from a checkpoint or quarantine it.
FLEET_VEHICLE_CRASH = "fleet:vehicle_crash"
#: A vehicle's shard worker stalls past the barrier deadline; the vehicle
#: misses its tick phase this epoch but keeps its barrier interactions.
FLEET_SHARD_STALL = "fleet:shard_stall"
#: A control-plane call (bus delivery, rollout step, health poll) blows
#: its per-call deadline; the supervisor retries with backoff.
FLEET_CONTROL_TIMEOUT = "fleet:control_timeout"


@dataclasses.dataclass(frozen=True)
class FaultPoint:
    """One declared fault point: name, pipeline layer, failure meaning."""

    name: str
    layer: str
    description: str


#: Every fault point the pipeline can trigger, keyed by name.
CATALOGUE: Dict[str, FaultPoint] = {
    point.name: point for point in (
        FaultPoint(SDS_SENSOR_DROPOUT, "sds",
                   "sensor sample missing for one poll"),
        FaultPoint(SDS_SENSOR_STUCK, "sds",
                   "sensor repeats its last value (stuck-at)"),
        FaultPoint(SDS_SENSOR_SPIKE, "sds",
                   "numeric sensor value perturbed by seeded noise"),
        FaultPoint(SACKFS_WRITE_EIO, "sackfs",
                   "events write fails with EIO"),
        FaultPoint(SACKFS_WRITE_EAGAIN, "sackfs",
                   "events write fails with EAGAIN"),
        FaultPoint(SACKFS_SHORT_WRITE, "sackfs",
                   "events write truncated to a seeded prefix"),
        FaultPoint(SACKFS_CORRUPT, "sackfs",
                   "one buffer byte flipped in flight"),
        FaultPoint(SSM_LISTENER_FAIL, "ssm",
                   "a transition listener raises mid-notification"),
        FaultPoint(BRIDGE_RELOAD_FAIL, "ssm",
                   "AppArmor bridge profile reload fails"),
        FaultPoint(POLICY_LOAD_FAIL, "policy",
                   "policy activation fails with EIO"),
        FaultPoint(V2X_PUBLISH_DROP, "v2x",
                   "published message lost before reaching the bus"),
        FaultPoint(V2X_DELIVERY_DROP, "v2x",
                   "one subscriber's copy lost in flight"),
        FaultPoint(V2X_DELAY, "v2x",
                   "one subscriber's copy held for an extra seeded delay"),
        FaultPoint(FLEET_VEHICLE_OFFLINE, "fleet",
                   "vehicle loses control-plane and bus connectivity"),
        FaultPoint(FLEET_BUNDLE_APPLY_FAIL, "fleet",
                   "verified bundle fails to apply on the vehicle"),
        FaultPoint(FLEET_ACK_DROP, "fleet",
                   "rollout ack lost on the way to the control plane"),
        FaultPoint(FLEET_VEHICLE_CRASH, "fleet",
                   "vehicle kernel dies at the barrier; needs restore"),
        FaultPoint(FLEET_SHARD_STALL, "fleet",
                   "shard worker stalls; vehicle misses one tick phase"),
        FaultPoint(FLEET_CONTROL_TIMEOUT, "fleet",
                   "control-plane call exceeds its per-call deadline"),
    )
}


def point_names() -> Tuple[str, ...]:
    """All declared fault point names, sorted."""
    return tuple(sorted(CATALOGUE))


class InjectedFault(RuntimeError):
    """Raised by fault points that model a component crash (not an errno).

    Kernel-channel faults surface as :class:`~repro.kernel.errors.KernelError`
    with a real errno; *this* exception is for in-kernel listener failures
    (a bridge reload blowing up mid-transition), which have no errno of
    their own and must be caught by the SSM's transactional core.
    """

    def __init__(self, point: str, detail: str = ""):
        self.point = point
        super().__init__(f"injected fault at {point}"
                         + (f": {detail}" if detail else ""))
