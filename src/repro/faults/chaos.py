"""The chaos harness: seeded fault scenarios with fail-closed invariants.

``run_chaos(seed, ticks)`` assembles a full IVI world, arms a seeded
:func:`~repro.faults.plan.random_plan` across every fault point, and drives
a seeded scenario — drives, parks, crashes, driver comings and goings, SDS
kill/revive windows, policy reloads — while checking the fail-closed
invariants **every tick** (definitions shared with the static model
checker via :mod:`repro.verify.properties`):

I1  the SSM's current state is always one the policy defines;
I2  SSM accounting holds: every processed event is exactly one of
    transitioned / ignored / failed;
I3  SACKfs counters are monotone and every received write is accounted
    for (accepted, rejected, or a heartbeat);
I4  guarded resources never open up: an unprivileged app's door-control
    attempt is denied in *every* situation state, no matter which faults
    fired;
I5  enforcement follows tracking: the APE's active ruleset (independent
    mode) or the live AppArmor profiles (bridge mode) agree with the
    SSM's current state;
I6  when the failsafe is engaged, the machine actually sits in the
    policy-declared failsafe state.

Everything — fault decisions, scenario actions, event timing — runs on
seeded RNGs and the virtual clock, so one seed replays bit-for-bit:
:meth:`ChaosReport.fingerprint` hashes the transition history, the final
counters, and the audit trail (minus policy-load records, whose durations
come from the host's performance counter) and must be identical across
runs of the same seed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from typing import Dict, List, Optional, Tuple

from . import points as fault_points
from ..verify.properties import runtime_checks
from .plan import FaultPlan, random_plan
from .points import InjectedFault

#: Scenario-RNG domain separator (keeps action draws independent of the
#: fault plan's draws for the same seed).
_SCENARIO_SALT = 0xC4A05

#: Audit kinds excluded from the fingerprint: their detail embeds
#: perf-counter durations, which vary run to run.
_NONDETERMINISTIC_AUDIT_KINDS = ("policy_load",)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant breach observed by the harness."""

    tick: int
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"tick {self.tick}: {self.invariant}: {self.detail}"


@dataclasses.dataclass
class ChaosReport:
    """Everything one chaos run produced, ready to compare or render."""

    seed: int
    ticks: int
    mode: str
    final_state: str
    transitions: List[Tuple[str, str, str, int]]
    stats: Dict[str, object]
    fault_report: Dict[str, Dict[str, int]]
    audit_text: str
    violations: List[Violation]
    actions: List[str]
    #: Per-trace (trace_id, root span name, span count) from the span
    #: tracer — fingerprinted, so a tracing regression (missing spans,
    #: nondeterministic IDs) breaks the determinism checks loudly.
    spans: List[Tuple[str, str, int]] = dataclasses.field(
        default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def fingerprint(self) -> str:
        """Deterministic digest of the run (same seed ⇒ same value)."""
        payload = json.dumps({
            "seed": self.seed,
            "ticks": self.ticks,
            "mode": self.mode,
            "final_state": self.final_state,
            "transitions": self.transitions,
            "stats": self.stats,
            "faults": self.fault_report,
            "audit": self.audit_text,
            "spans": self.spans,
        }, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "ticks": self.ticks,
            "mode": self.mode,
            "final_state": self.final_state,
            "transitions": len(self.transitions),
            "faults_injected": sum(v["injected"]
                                   for v in self.fault_report.values()),
            "violations": [str(v) for v in self.violations],
            "fingerprint": self.fingerprint(),
            "stats": self.stats,
            "traces": len(self.spans),
        }

    def summary_lines(self) -> List[str]:
        lines = [f"seed {self.seed} mode {self.mode} ticks {self.ticks}: "
                 f"{len(self.transitions)} transitions, "
                 f"{sum(v['injected'] for v in self.fault_report.values())} "
                 f"faults injected, final state {self.final_state}"]
        for point, counts in sorted(self.fault_report.items()):
            if counts["injected"]:
                lines.append(f"  fault {point}: {counts['injected']}/"
                             f"{counts['calls']} calls")
        if self.violations:
            lines.append(f"  INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    {v}" for v in self.violations)
        else:
            lines.append("  all fail-closed invariants held")
        lines.append(f"  fingerprint {self.fingerprint()}")
        return lines


class _InvariantChecker:
    """Per-tick fail-closed checks over one world.

    The check functions themselves live in the shared registry
    (:mod:`repro.verify.properties`) — the same definitions the static
    model checker cross-references — so the runtime and static layers
    can never drift.  This class only binds them to one world and
    timestamps whatever they find.
    """

    def __init__(self, world):
        self.world = world
        #: Cross-tick state for the checks (previous counter snapshot).
        self._ctx: Dict[str, object] = {}
        self._checks = runtime_checks("chaos")
        self.violations: List[Violation] = []

    def check(self, tick: int) -> None:
        for check in self._checks:
            for invariant, detail in check(self.world, self._ctx):
                self.violations.append(Violation(tick, invariant, detail))


def _install_listener_fault(world, plan: FaultPlan) -> None:
    """Arm the generic in-kernel listener fault on the live SSM."""
    module = world.sack or world.bridge
    ssm = module.ssm if module is not None else None
    if ssm is None:
        return
    clock = world.kernel.clock

    def chaos_listener(transition) -> None:
        if plan.should_fail(fault_points.SSM_LISTENER_FAIL, clock.now_ns):
            obs = getattr(world.kernel, "obs", None)
            if obs is not None:
                obs.fault_injected(fault_points.SSM_LISTENER_FAIL)
            raise InjectedFault(fault_points.SSM_LISTENER_FAIL,
                                f"listener refused "
                                f"{transition.to_state!r}")

    ssm.add_listener(chaos_listener)


def run_chaos(seed: int, ticks: int = 200, mode: str = "independent",
              intensity: float = 0.05,
              plan: Optional[FaultPlan] = None,
              dtable: bool = False) -> ChaosReport:
    """One seeded chaos scenario; returns the full report.

    *mode* selects the enforcement backend: ``independent`` (SACK's own
    LSM + APE) or ``apparmor`` (the SACK-enhanced-AppArmor bridge).
    With *dtable* the precompiled decision table is enabled for the
    whole run, so invariant I11 (no stale-table hit) is exercised under
    every fault interleaving; default off, keeping baseline chaos
    fingerprints untouched.
    """
    from ..vehicle.ivi import EnforcementConfig, DEFAULT_SACK_POLICY, \
        build_ivi_world
    config = {
        "independent": EnforcementConfig.SACK_INDEPENDENT,
        "apparmor": EnforcementConfig.SACK_APPARMOR,
    }.get(mode)
    if config is None:
        raise ValueError(f"unknown chaos mode {mode!r}; "
                         f"use 'independent' or 'apparmor'")
    if plan is None:
        plan = random_plan(seed, intensity=intensity)
    scenario = random.Random(seed ^ _SCENARIO_SALT)

    world = build_ivi_world(config, fault_plan=plan)
    # Chaos always runs with span tracing on: span-ID sequences are part
    # of the fingerprint, so a nondeterministic tracer fails loudly here.
    world.kernel.obs.spans.enable()
    if dtable:
        world.framework.dtable.enabled = True
        world.framework.rebuild_dtable()
    _install_listener_fault(world, plan)
    checker = _InvariantChecker(world)
    live_sds = world.sds
    actions: List[str] = []

    def act(name: str) -> None:
        actions.append(name)

    for tick in range(ticks):
        roll = scenario.random()
        dyn = world.dynamics
        if roll < 0.02 and not dyn.crashed:
            dyn.crash()
            act("crash")
        elif roll < 0.04 and dyn.crashed:
            dyn.clear_emergency()
            act("clear_emergency")
        elif roll < 0.08:
            dyn.set_driver_present(not dyn.driver_present)
            act("toggle_driver")
        elif roll < 0.12:
            if dyn.engine_on:
                dyn.accelerate(-4.0) if dyn.is_moving else dyn.stop_engine()
                act("slow_or_stop")
            else:
                dyn.start_engine()
                dyn.accelerate(3.0)
                act("start_and_go")
        elif roll < 0.15:
            # SDS kill/revive window: the channel goes silent.
            if world.sds is None:
                world.sds = live_sds
                act("revive_sds")
            else:
                world.sds = None
                act("kill_sds")
        elif roll < 0.16:
            # Administrative policy reload mid-drive.
            from ..kernel.errors import KernelError
            try:
                world.kernel.write_file(
                    world.kernel.procs.init,
                    "/sys/kernel/security/SACK/policy",
                    DEFAULT_SACK_POLICY.encode(), create=False)
            except KernelError:
                act("policy_reload_failed")
            else:
                _install_listener_fault(world, plan)
                act("policy_reload")
        else:
            act("cruise")
        world.run_sds(1)
        world.check_watchdog()
        checker.check(tick)

    module = world.sack or world.bridge
    ssm = module.ssm if module is not None else None
    stats: Dict[str, object] = {}
    if world.sackfs is not None:
        fs = world.sackfs
        stats["sackfs"] = {
            "events_received": fs.events_received,
            "events_accepted": fs.events_accepted,
            "events_rejected": fs.events_rejected,
            "heartbeats_received": fs.heartbeats_received,
        }
        if fs.watchdog is not None:
            wd = fs.watchdog.stats()
            stats["watchdog"] = {
                "engagements": wd["engagements"],
                "engaged": wd["engaged"],
                "checks": wd["checks"],
            }
    if ssm is not None:
        stats["ssm"] = ssm.stats()
    avc = getattr(world.framework, "avc", None)
    if avc is not None:
        core = avc.core
        # Deterministic counters only (no host timing feeds them), so
        # they are safe inside the fingerprinted report.
        stats["avc"] = {
            "hits": core.hits,
            "misses": core.misses,
            "epoch": core.epoch,
            "epoch_bumps": core.epoch_bumps,
            "stale_drops": core.stale_drops,
            "stale_served": core.stale_served,
            "evictions": core.evictions,
        }
    dtable_obj = getattr(world.framework, "dtable", None)
    if dtable_obj is not None and dtable_obj.used:
        # Conditional: an untouched table exports nothing, keeping
        # default-config chaos fingerprints byte-identical.
        stats["dtable"] = {
            "hits": dtable_obj.hits,
            "misses": dtable_obj.misses,
            "builds": dtable_obj.builds,
            "invalidations": dtable_obj.invalidations,
            "entries": len(dtable_obj),
            "built_epoch": dtable_obj.built_epoch,
            "stale_served": dtable_obj.stale_served,
        }
    sds = live_sds
    if sds is not None:
        summary = sds.stats.summary()
        # Latencies come from the host's perf counter — keep them out of
        # the (fingerprinted) report.
        stats["sds"] = {k: v for k, v in summary.items()
                        if not k.endswith("latency_us")}

    transitions = []
    if ssm is not None:
        transitions = [(t.event.name, t.from_state, t.to_state, t.at_ns)
                       for t in ssm.history]

    audit_text = ""
    span_summaries: List[Tuple[str, str, int]] = []
    obs = getattr(world.kernel, "obs", None)
    if obs is not None:
        records = [r for r in obs.audit.records()
                   if r.kind not in _NONDETERMINISTIC_AUDIT_KINDS]
        audit_text = obs.audit.to_text(records)
        span_summaries = obs.spans.span_summaries()

    return ChaosReport(
        seed=seed, ticks=ticks, mode=mode,
        final_state=ssm.current_name if ssm is not None else "",
        transitions=transitions, stats=stats,
        fault_report=plan.report(), audit_text=audit_text,
        violations=checker.violations, actions=actions,
        spans=span_summaries)


def run_soak(seeds, ticks: int = 200, mode: str = "independent",
             intensity: float = 0.05,
             dtable: bool = False) -> List[ChaosReport]:
    """Run a chaos scenario per seed; returns every report."""
    return [run_chaos(seed, ticks=ticks, mode=mode, intensity=intensity,
                      dtable=dtable)
            for seed in seeds]
