"""repro.faults — deterministic fault injection for the SACK pipeline.

Modeled on Linux ``CONFIG_FAULT_INJECTION``: named fault points baked into
the SDS → SACKfs → SSM code paths (:mod:`~repro.faults.points`), armed by a
seeded :class:`~repro.faults.plan.FaultPlan` with failslab-style knobs
(probability, interval, times, nth-call), evaluated on the virtual clock so
every run is bit-for-bit reproducible.

The chaos harness (:mod:`~repro.faults.chaos`) drives seeded fault
scenarios against a full vehicle world and checks fail-closed invariants
every tick; it is imported explicitly (``from repro.faults import chaos``)
to keep this package importable from the kernel layers it instruments.

See ``docs/fault-injection.md``.
"""

from .plan import FaultPlan, FaultRule, random_plan
from .points import (BRIDGE_RELOAD_FAIL, CATALOGUE, FaultPoint,
                     InjectedFault, POLICY_LOAD_FAIL, SACKFS_CORRUPT,
                     SACKFS_SHORT_WRITE, SACKFS_WRITE_EAGAIN,
                     SACKFS_WRITE_EIO, SDS_SENSOR_DROPOUT, SDS_SENSOR_SPIKE,
                     SDS_SENSOR_STUCK, SSM_LISTENER_FAIL, point_names)

__all__ = [
    "FaultPlan", "FaultRule", "random_plan",
    "BRIDGE_RELOAD_FAIL", "CATALOGUE", "FaultPoint", "InjectedFault",
    "POLICY_LOAD_FAIL", "SACKFS_CORRUPT", "SACKFS_SHORT_WRITE",
    "SACKFS_WRITE_EAGAIN", "SACKFS_WRITE_EIO", "SDS_SENSOR_DROPOUT",
    "SDS_SENSOR_SPIKE", "SDS_SENSOR_STUCK", "SSM_LISTENER_FAIL",
    "point_names",
]
