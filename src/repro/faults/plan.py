"""Deterministic fault plans: *when* each fault point fires.

A :class:`FaultPlan` is the simulator's ``fault-attr``: every fault point
call asks the plan ``should_fail(point, now_ns)`` and the plan answers from
its rules.  Rule semantics mirror Linux's fault injection knobs:

``probability``
    Chance (0..1) that a call fails, drawn from the plan's seeded RNG
    (failslab's ``probability`` percent knob).
``interval``
    Every Nth call to the point fails (failslab's ``interval``).
``nth_calls``
    Explicit call numbers that fail (the ``fail_nth`` per-task knob).
``times``
    Maximum number of failures this rule may inject (failslab ``times``;
    ``-1`` = unlimited).
``start_ns`` / ``end_ns``
    Active window on the **virtual clock**, so faults can be scripted to a
    scenario phase ("kill the channel between t=2s and t=4s").

All randomness comes from one ``random.Random(seed)``; call order in the
simulator is deterministic (virtual clock, no threads), so a plan replays
bit-for-bit: same seed, same workload ⇒ same faults at the same calls.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, FrozenSet, List, Optional, Tuple

from .points import CATALOGUE, point_names


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One arming of a fault point (failslab-style knobs)."""

    point: str
    probability: float = 0.0
    interval: int = 0
    nth_calls: FrozenSet[int] = frozenset()
    times: int = -1
    start_ns: int = 0
    end_ns: Optional[int] = None
    arg: Optional[str] = None     # optional per-instance filter (sensor name)

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1]: "
                             f"{self.probability}")
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0: {self.interval}")
        if self.times < -1:
            raise ValueError(f"times must be >= -1: {self.times}")

    def describe(self) -> str:
        parts = [self.point]
        if self.arg:
            parts.append(f"arg={self.arg}")
        if self.probability:
            parts.append(f"p={self.probability:g}")
        if self.interval:
            parts.append(f"interval={self.interval}")
        if self.nth_calls:
            parts.append(f"nth={sorted(self.nth_calls)}")
        if self.times >= 0:
            parts.append(f"times={self.times}")
        if self.start_ns or self.end_ns is not None:
            parts.append(f"window=[{self.start_ns},{self.end_ns}]ns")
        return " ".join(parts)


class FaultPlan:
    """A seeded set of fault rules plus per-point call/hit accounting."""

    def __init__(self, seed: int = 0,
                 rules: Tuple[FaultRule, ...] = ()):
        self.seed = seed
        self.rng = random.Random(seed)
        self.rules: List[FaultRule] = []
        self._hits_left: Dict[int, int] = {}
        self.calls: Dict[str, int] = {}
        self.injected: Dict[str, int] = {}
        for rule in rules:
            self.add_rule(rule)

    # -- configuration -----------------------------------------------------
    def add_rule(self, rule: FaultRule) -> FaultRule:
        if rule.point not in CATALOGUE:
            raise ValueError(f"unknown fault point {rule.point!r}; "
                             f"declared points: {', '.join(point_names())}")
        index = len(self.rules)
        self.rules.append(rule)
        self._hits_left[index] = rule.times
        return rule

    def arm(self, point: str, **knobs) -> FaultRule:
        """Convenience: build and add a rule for *point*."""
        return self.add_rule(FaultRule(point=point, **knobs))

    # -- the decision ------------------------------------------------------
    def should_fail(self, point: str, now_ns: int = 0,
                    arg: Optional[str] = None) -> bool:
        """Does this call to *point* fail?  Counts the call either way."""
        call_no = self.calls.get(point, 0) + 1
        self.calls[point] = call_no
        fail = False
        for index, rule in enumerate(self.rules):
            if rule.point != point:
                continue
            if rule.arg is not None and rule.arg != arg:
                continue
            if now_ns < rule.start_ns:
                continue
            if rule.end_ns is not None and now_ns >= rule.end_ns:
                continue
            if self._hits_left[index] == 0:
                continue
            hit = (call_no in rule.nth_calls
                   or (rule.interval and call_no % rule.interval == 0)
                   or (rule.probability
                       and self.rng.random() < rule.probability))
            if hit:
                if self._hits_left[index] > 0:
                    self._hits_left[index] -= 1
                fail = True
                # Keep evaluating so RNG consumption (and therefore replay)
                # does not depend on which rule fired first.
        if fail:
            self.injected[point] = self.injected.get(point, 0) + 1
        return fail

    # -- seeded value mutators (for corruption/noise faults) ---------------
    def corrupt(self, data: bytes) -> bytes:
        """Flip one seeded-random byte of *data* (no-op when empty)."""
        if not data:
            return data
        index = self.rng.randrange(len(data))
        mask = self.rng.randrange(1, 256)
        return data[:index] + bytes([data[index] ^ mask]) + data[index + 1:]

    def truncate(self, data: bytes) -> bytes:
        """A short write: keep a seeded-random proper prefix of *data*."""
        if not data:
            return data
        return data[:self.rng.randrange(len(data))]

    def spike(self, value: float, magnitude: float = 4.0) -> float:
        """Perturb a numeric sample by up to ±*magnitude*× its scale."""
        scale = abs(value) if value else 1.0
        return value + self.rng.uniform(-magnitude, magnitude) * scale

    # -- reporting ---------------------------------------------------------
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def report(self) -> Dict[str, Dict[str, int]]:
        """Per-point call/injection counts (stable key order)."""
        return {point: {"calls": self.calls.get(point, 0),
                        "injected": self.injected.get(point, 0)}
                for point in sorted(set(self.calls) | set(self.injected))}

    def describe(self) -> List[str]:
        return [rule.describe() for rule in self.rules]


def random_plan(seed: int, intensity: float = 0.05,
                window_ns: Optional[Tuple[int, int]] = None) -> FaultPlan:
    """A randomized-but-seeded plan over the whole fault catalogue.

    Each declared point is armed with probability drawn from the seed, at
    most ``intensity`` — low enough that the pipeline keeps making forward
    progress, high enough that every resilience path gets exercised over a
    few hundred ticks.  Listener/bridge faults get a bounded ``times`` so
    rollback-then-failsafe recovery always converges.
    """
    from . import points as fp
    maker = random.Random(seed ^ 0x5ACC)
    plan = FaultPlan(seed)
    start_ns, end_ns = window_ns if window_ns else (0, None)
    for point in point_names():
        if maker.random() < 0.5:
            continue                      # this point stays healthy
        probability = maker.uniform(0.2, 1.0) * intensity
        times = -1
        if point in (fp.SSM_LISTENER_FAIL, fp.BRIDGE_RELOAD_FAIL,
                     fp.POLICY_LOAD_FAIL):
            # Enforcement-update faults are bounded so the transactional
            # recovery (rollback, then failsafe) is guaranteed to settle.
            times = maker.randrange(1, 6)
        plan.add_rule(FaultRule(point=point, probability=probability,
                                times=times, start_ns=start_ns,
                                end_ns=end_ns))
    return plan
