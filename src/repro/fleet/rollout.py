"""The staged OTA rollout state machine.

The control plane pushes a signed bundle in **waves** — canary →
percentage stages → full fleet — gating each wave on vehicle health
(denial-rate spikes, watchdog/failsafe engagements, apply failures).
A wave that blows its error budget triggers an automatic **fleet-wide
rollback** to the last committed bundle.

The controller is deliberately *pure*: it holds no vehicle references
and draws no randomness.  Each epoch the orchestrator feeds it acks,
health deltas, and connectivity, and it returns the commands to send.
That makes the machine property-testable on its own (see
``tests/fleet/test_rollout.py``):

* from any reachable in-progress state, a rollback completes;
* no vehicle is ever told to run a bundle newer than the newest version
  the control plane has offered, and every converged vehicle runs either
  the committed or the staged version — never anything else;
* a vehicle that disappears mid-rollout is re-offered the fleet's
  current target when it reconnects (chaos invariant I8).
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Dict, List, Optional, Sequence, Tuple

from .bundle import PolicyBundle


class ProofRefusedError(RuntimeError):
    """The proof gate refused a staged bundle before the canary wave.

    Carries the gate's :class:`~repro.verify.gate.GateDecision` so the
    caller (and ``sackctl fleet rollout``) can show which properties the
    bundle's policy violates and the first counterexample.
    """

    def __init__(self, message: str, decision=None):
        super().__init__(message)
        self.decision = decision


class RolloutState(enum.Enum):
    IDLE = "idle"
    IN_PROGRESS = "in_progress"
    COMPLETE = "complete"
    ROLLING_BACK = "rolling_back"
    ROLLED_BACK = "rolled_back"


class VehiclePhase(enum.Enum):
    UNTOUCHED = "untouched"
    OFFERED = "offered"
    APPLIED = "applied"
    FAILED = "failed"
    REVERT_OFFERED = "revert_offered"
    REVERTED = "reverted"


@dataclasses.dataclass(frozen=True)
class Wave:
    """One rollout stage: the *cumulative* fleet fraction it reaches."""

    name: str
    fraction: float
    soak_epochs: int = 1
    error_budget: int = 0

    def __post_init__(self):
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"wave fraction must be in (0, 1]: "
                             f"{self.fraction}")
        if self.soak_epochs < 0 or self.error_budget < 0:
            raise ValueError("soak_epochs/error_budget must be >= 0")


@dataclasses.dataclass(frozen=True)
class RolloutPlan:
    """Wave schedule plus the health gate thresholds."""

    waves: Tuple[Wave, ...]
    #: Per-vehicle denial-count increase per epoch above which an applied
    #: vehicle counts against the wave's error budget.
    max_denial_delta: int = 25
    gate_on_watchdog: bool = True
    gate_on_failsafe: bool = True
    #: Count SLO burn-rate alerts (``slo_alerts`` in the health deltas,
    #: fed by the fleet telemetry pipeline) as gate breaches.
    gate_on_slo: bool = True

    def __post_init__(self):
        if not self.waves:
            raise ValueError("a rollout plan needs at least one wave")
        last = 0.0
        for wave in self.waves:
            if wave.fraction <= last:
                raise ValueError("wave fractions must strictly increase")
            last = wave.fraction
        if last != 1.0:
            raise ValueError("the final wave must reach the full fleet "
                             "(fraction 1.0)")


def default_rollout_plan() -> RolloutPlan:
    """Canary (one vehicle's worth) → 25% → full fleet."""
    return RolloutPlan(waves=(
        Wave("canary", 0.01, soak_epochs=2, error_budget=0),
        Wave("early", 0.25, soak_epochs=1, error_budget=1),
        Wave("full", 1.0, soak_epochs=1, error_budget=2),
    ))


@dataclasses.dataclass(frozen=True)
class VehicleAck:
    """A vehicle's response to an apply/revert command."""

    vehicle_id: str
    version: int
    ok: bool
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class Command:
    """One control-plane instruction for one vehicle."""

    vehicle_id: str
    action: str                 # "apply" | "revert"
    bundle: PolicyBundle


class RolloutController:
    """Drives one staged rollout across a fixed fleet roster."""

    def __init__(self, plan: RolloutPlan, fleet_ids: Sequence[str],
                 committed: Optional[PolicyBundle] = None,
                 proof_gate=None):
        self.plan = plan
        self.fleet_ids: List[str] = sorted(fleet_ids)
        if not self.fleet_ids:
            raise ValueError("fleet roster is empty")
        self.committed = committed
        #: Optional :class:`~repro.verify.gate.ProofGate`: when set,
        #: :meth:`stage` refuses any bundle whose policy fails the
        #: static safety proofs — fleet-wide, before the canary wave.
        self.proof_gate = proof_gate
        #: ``(version, reason)`` for every bundle the gate refused.
        self.refusals: List[Tuple[int, str]] = []
        self.target: Optional[PolicyBundle] = None
        self.state = RolloutState.IDLE
        self.wave_index = 0
        self.phase: Dict[str, VehiclePhase] = {
            vid: VehiclePhase.UNTOUCHED for vid in self.fleet_ids}
        #: Epochs the current wave has been fully applied and healthy.
        self._wave_soaked = 0
        #: Cumulative gate failures charged to the current wave.
        self._wave_failures = 0
        self.history: List[Tuple[int, str]] = []
        self._epoch = 0
        self._max_offered = committed.version if committed else -1

    # -- introspection -----------------------------------------------------
    @property
    def committed_version(self) -> Optional[int]:
        return self.committed.version if self.committed else None

    @property
    def target_version(self) -> Optional[int]:
        return self.target.version if self.target else None

    @property
    def max_offered_version(self) -> int:
        """The newest version this control plane has *ever* offered.

        An ever-max, not the current target: after a rollback, an
        offline straggler may legitimately still hold the withdrawn
        version until it reconnects and reverts — what it must never
        hold is a version the control plane never published.
        """
        return self._max_offered

    def wave_members(self, index: Optional[int] = None) -> List[str]:
        """Cumulative membership of wave *index* (sorted, deterministic)."""
        if self.target is None:
            return []
        idx = self.wave_index if index is None else index
        idx = min(idx, len(self.plan.waves) - 1)
        count = max(1, math.ceil(self.plan.waves[idx].fraction
                                 * len(self.fleet_ids)))
        return self.fleet_ids[:count]

    def expected_version(self, vehicle_id: str) -> Optional[int]:
        """What a *converged, connected* vehicle should be running now."""
        if self.state in (RolloutState.ROLLING_BACK,
                          RolloutState.ROLLED_BACK):
            return self.committed_version
        if self.state is RolloutState.COMPLETE:
            return self.committed_version
        if self.state is RolloutState.IN_PROGRESS:
            if self.phase[vehicle_id] is VehiclePhase.APPLIED:
                return self.target_version
            return self.committed_version
        return self.committed_version

    def _log(self, message: str) -> None:
        self.history.append((self._epoch, message))

    # -- lifecycle ---------------------------------------------------------
    def stage(self, bundle: PolicyBundle) -> None:
        """Begin rolling *bundle* out."""
        if self.state in (RolloutState.IN_PROGRESS,
                          RolloutState.ROLLING_BACK):
            raise RuntimeError(f"rollout already {self.state.value}")
        if (self.committed is not None
                and bundle.version <= self.committed.version):
            raise ValueError(
                f"staged version {bundle.version} must be newer than "
                f"committed {self.committed.version}")
        if self.proof_gate is not None:
            decision = self.proof_gate.evaluate_bundle(bundle)
            if not decision.passed:
                self.refusals.append((bundle.version, decision.summary))
                self._log(f"REFUSED v{bundle.version} before canary: "
                          f"{decision.summary}")
                raise ProofRefusedError(
                    f"bundle v{bundle.version} refused by the proof "
                    f"gate: {decision.summary}", decision=decision)
        self.target = bundle
        self._max_offered = max(self._max_offered, bundle.version)
        self.state = RolloutState.IN_PROGRESS
        self.wave_index = 0
        self._wave_soaked = 0
        self._wave_failures = 0
        self.phase = {vid: VehiclePhase.UNTOUCHED
                      for vid in self.fleet_ids}
        self._log(f"staged v{bundle.version} "
                  f"({len(self.plan.waves)} wave(s))")

    def exclude(self, vehicle_id: str) -> None:
        """Drop *vehicle_id* from the roster (quarantine).

        The vehicle stops counting toward wave membership, health
        gating, and resync — a quarantined canary must not pin a wave in
        IN_PROGRESS forever.  Unknown ids are ignored (idempotent).
        """
        if vehicle_id not in self.phase:
            return
        self.fleet_ids.remove(vehicle_id)
        del self.phase[vehicle_id]
        self._log(f"{vehicle_id} excluded from rollout (quarantined)")

    def abort(self) -> None:
        """Operator-initiated rollback (same path as a blown budget)."""
        if self.state in (RolloutState.IN_PROGRESS,
                          RolloutState.COMPLETE):
            self._start_rollback("operator abort")

    def _start_rollback(self, reason: str) -> None:
        self.state = RolloutState.ROLLING_BACK
        self._log(f"ROLLBACK: {reason}")

    # -- the per-epoch step ------------------------------------------------
    def step(self, acks: Sequence[VehicleAck],
             health: Optional[Dict[str, Dict[str, object]]] = None,
             online: Optional[Dict[str, bool]] = None,
             epoch: Optional[int] = None) -> List[Command]:
        """Consume this epoch's acks/health; return commands to dispatch.

        *health* maps vehicle id → per-epoch deltas (``denial_delta``,
        ``watchdog_engaged``, ``failsafe_delta``); *online* maps vehicle
        id → connectivity.  Both default to healthy/connected.
        """
        self._epoch = self._epoch + 1 if epoch is None else epoch
        health = health or {}
        online = online if online is not None else {}
        self._absorb_acks(acks)
        if self.state is RolloutState.IN_PROGRESS:
            return self._step_wave(health, online)
        if self.state is RolloutState.ROLLING_BACK:
            return self._step_rollback(online)
        if self.state in (RolloutState.ROLLED_BACK,
                          RolloutState.COMPLETE):
            # Straggler convergence (I8): reconnecting vehicles are
            # brought to the fleet's settled bundle.
            return self._resync_commands(online)
        return []

    def _is_online(self, vid: str, online: Dict[str, bool]) -> bool:
        return online.get(vid, True)

    def _absorb_acks(self, acks: Sequence[VehicleAck]) -> None:
        for ack in sorted(acks, key=lambda a: a.vehicle_id):
            if ack.vehicle_id not in self.phase:
                continue
            if self.state in (RolloutState.ROLLING_BACK,
                              RolloutState.ROLLED_BACK):
                if ack.version == self.committed_version and ack.ok:
                    self.phase[ack.vehicle_id] = VehiclePhase.REVERTED
                    self._log(f"{ack.vehicle_id} reverted to "
                              f"v{ack.version}")
                elif not ack.ok:
                    # A failed revert stays outstanding; keep offering.
                    self.phase[ack.vehicle_id] = VehiclePhase.APPLIED
                    self._log(f"{ack.vehicle_id} revert failed: "
                              f"{ack.detail}")
                continue
            if self.state is RolloutState.COMPLETE:
                # Straggler catch-up acks after the rollout settled.
                if ack.ok and ack.version == self.committed_version:
                    self.phase[ack.vehicle_id] = VehiclePhase.APPLIED
                    self._log(f"{ack.vehicle_id} caught up to "
                              f"v{ack.version}")
                continue
            if self.target is None or ack.version != self.target.version:
                continue
            if ack.ok:
                self.phase[ack.vehicle_id] = VehiclePhase.APPLIED
                self._log(f"{ack.vehicle_id} applied v{ack.version}")
            else:
                self.phase[ack.vehicle_id] = VehiclePhase.FAILED
                self._wave_failures += 1
                self._log(f"{ack.vehicle_id} failed v{ack.version}: "
                          f"{ack.detail}")

    def _gate_failures(self, health: Dict[str, Dict[str, object]]) -> int:
        """Health-gate breaches among this wave's applied vehicles."""
        breaches = 0
        for vid in self.wave_members():
            if self.phase[vid] is not VehiclePhase.APPLIED:
                continue
            h = health.get(vid)
            if not h:
                continue
            if int(h.get("denial_delta", 0)) > self.plan.max_denial_delta:
                breaches += 1
                self._log(f"{vid} denial-rate breach "
                          f"({h.get('denial_delta')} > "
                          f"{self.plan.max_denial_delta})")
            elif self.plan.gate_on_watchdog and h.get("watchdog_engaged"):
                breaches += 1
                self._log(f"{vid} watchdog engaged under v"
                          f"{self.target_version}")
            elif self.plan.gate_on_failsafe and \
                    int(h.get("failsafe_delta", 0)) > 0:
                breaches += 1
                self._log(f"{vid} failsafe engaged under v"
                          f"{self.target_version}")
            elif self.plan.gate_on_slo and \
                    int(h.get("slo_alerts", 0)) > 0:
                breaches += 1
                self._log(f"{vid} SLO burn-rate breach under v"
                          f"{self.target_version} "
                          f"({h.get('slo_alerts')} alert(s))")
        return breaches

    def _step_wave(self, health: Dict[str, Dict[str, object]],
                   online: Dict[str, bool]) -> List[Command]:
        assert self.target is not None
        wave = self.plan.waves[self.wave_index]
        members = self.wave_members()
        self._wave_failures += self._gate_failures(health)
        if self._wave_failures > wave.error_budget:
            self._start_rollback(
                f"wave '{wave.name}' blew its error budget "
                f"({self._wave_failures} > {wave.error_budget})")
            return self._step_rollback(online)

        commands: List[Command] = []
        for vid in members:
            phase = self.phase[vid]
            if not self._is_online(vid, online):
                continue
            if phase in (VehiclePhase.UNTOUCHED, VehiclePhase.FAILED):
                # First offer, or a retry after a nack (each nack has
                # already been charged to the wave's error budget).
                self.phase[vid] = VehiclePhase.OFFERED
                commands.append(Command(vid, "apply", self.target))
            elif phase is VehiclePhase.OFFERED:
                # Offer outstanding (ack lost, or the vehicle was
                # offline between offer and ack): re-offer (I8).
                commands.append(Command(vid, "apply", self.target))

        # The wave is done once every member has ACKED the apply; a
        # member that applied and then dropped offline does not stall
        # the wave, but an unreachable member that never applied does.
        applied = [vid for vid in members
                   if self.phase[vid] is VehiclePhase.APPLIED]
        if len(applied) == len(members) and not commands:
            self._wave_soaked += 1
            if self._wave_soaked > wave.soak_epochs:
                self._advance_wave(online)
        return commands

    def _advance_wave(self, online: Dict[str, bool]) -> None:
        assert self.target is not None
        wave = self.plan.waves[self.wave_index]
        self._log(f"wave '{wave.name}' complete "
                  f"({len(self.wave_members())} vehicle(s))")
        if self.wave_index + 1 < len(self.plan.waves):
            self.wave_index += 1
            self._wave_soaked = 0
            self._wave_failures = 0
            return
        self.committed = self.target
        self.target = None
        self.state = RolloutState.COMPLETE
        self._log(f"rollout complete: committed v"
                  f"{self.committed.version}")

    def _step_rollback(self, online: Dict[str, bool]) -> List[Command]:
        commands: List[Command] = []
        if self.committed is None:
            # Nothing to revert to; vehicles keep their boot policy and
            # the rollout simply ends.
            self.target = None
            self.state = RolloutState.ROLLED_BACK
            self._log("rolled back to boot policy (no committed bundle)")
            return commands
        outstanding = []
        for vid in self.fleet_ids:
            phase = self.phase[vid]
            if phase in (VehiclePhase.APPLIED, VehiclePhase.OFFERED,
                         VehiclePhase.FAILED,
                         VehiclePhase.REVERT_OFFERED):
                if self._is_online(vid, online):
                    outstanding.append(vid)
                    self.phase[vid] = VehiclePhase.REVERT_OFFERED
                    commands.append(Command(vid, "revert", self.committed))
                # An offline vehicle does not pin the fleet in
                # ROLLING_BACK; once settled, the resync path (I8)
                # reverts it on reconnect.
        if not outstanding:
            self.target = None
            self.state = RolloutState.ROLLED_BACK
            self._log(f"fleet rolled back to v{self.committed.version}")
        return commands

    def _resync_commands(self, online: Dict[str, bool]) -> List[Command]:
        """Bring reconnecting stragglers to the settled bundle (I8)."""
        if self.committed is None:
            return []
        commands: List[Command] = []
        rolled_back = self.state is RolloutState.ROLLED_BACK
        for vid in self.fleet_ids:
            phase = self.phase[vid]
            if not self._is_online(vid, online):
                continue
            outstanding = phase in (VehiclePhase.OFFERED,
                                    VehiclePhase.FAILED,
                                    VehiclePhase.REVERT_OFFERED)
            if rolled_back:
                # APPLIED means the vehicle still runs the withdrawn
                # target — it must revert too.
                outstanding = outstanding or phase is VehiclePhase.APPLIED
            else:
                # COMPLETE: a vehicle that was offline for the whole
                # rollout (never offered) still needs the new bundle.
                outstanding = outstanding or phase is VehiclePhase.UNTOUCHED
            if outstanding:
                commands.append(Command(
                    vid, "revert" if rolled_back else "apply",
                    self.committed))
        return commands

    # -- reporting ---------------------------------------------------------
    def status_lines(self) -> List[str]:
        lines = [f"rollout: {self.state.value}"
                 + (f" (wave {self.wave_index + 1}/"
                    f"{len(self.plan.waves)} "
                    f"'{self.plan.waves[self.wave_index].name}')"
                    if self.state is RolloutState.IN_PROGRESS else ""),
                 f"committed: "
                 f"{'v%d' % self.committed.version if self.committed else 'none'}"
                 f"  target: "
                 f"{'v%d' % self.target.version if self.target else 'none'}"]
        counts: Dict[str, int] = {}
        for phase in self.phase.values():
            counts[phase.value] = counts.get(phase.value, 0) + 1
        lines.append("vehicles: " + ", ".join(
            f"{k}={v}" for k, v in sorted(counts.items())))
        for version, reason in self.refusals:
            lines.append(f"refused: v{version} — {reason}")
        return lines

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "state": self.state.value,
            "wave_index": self.wave_index,
            "committed_version": self.committed_version,
            "target_version": self.target_version,
            "phases": {vid: phase.value
                       for vid, phase in sorted(self.phase.items())},
            "history": [f"e{epoch}: {msg}"
                        for epoch, msg in self.history],
        }
        if self.refusals:
            # Key is conditional: a gate-free rollout serialises (and
            # fingerprints) byte-identically to pre-gate builds.
            doc["refusals"] = [{"version": version, "reason": reason}
                               for version, reason in self.refusals]
        return doc
