"""The fleet scheduler: N vehicle kernels on one deterministic clock.

The fleet advances in **epochs**.  Within an epoch every vehicle is
independent — its kernel, LSM stack, and SDS tick with no cross-vehicle
interaction — so the per-vehicle work shards freely across a worker
pool.  Every cross-vehicle effect happens at the **epoch barrier**, in
sorted vehicle order, on the fleet's own virtual clock:

* connectivity decisions (the ``fleet:vehicle_offline`` fault point),
* V2X bus deliveries into vehicles' SDS sensor streams,
* rollout commands, bundle applies, and ack collection,
* scenario driver actions (crashes, recoveries, driver changes).

Because nothing a vehicle does mid-epoch can observe another vehicle,
and every barrier resolution is ordered and seeded, a run's outcome is
**independent of worker count**: `workers=1` and `workers=8` produce
bit-identical :meth:`~repro.fleet.report.FleetReport.fingerprint`\\ s.

Three pool backends exist, all routed through a **host**
(:mod:`repro.fleet.backend`).  ``serial`` executes shards inline;
``threads`` uses a real :class:`~concurrent.futures.ThreadPoolExecutor`
(proves shard independence, but the GIL serializes the tick hot path);
``process`` shards vehicles across persistent worker processes, with
only canonical barrier messages crossing the pipe.  Throughput scaling
is *modelled* on the virtual clock with a backend-aware cost model:

* ``serial`` — the idealized Amdahl split (the pre-backend model,
  unchanged): the largest shard ticks in parallel, the barrier is
  serial per-vehicle cost;
* ``threads`` — honest about the GIL: every tickable vehicle's ticks
  are serialized onto one clock;
* ``process`` — the largest *owner* shard ticks in true parallel, and
  every barrier payload crossing a process boundary adds
  :data:`~repro.fleet.backend.IPC_COST_PER_CROSSING_NS`.

``benchmarks/test_fleet.py`` measures vehicles/sec vs worker count on
the serial model; the suite's ``fleet_mp_speedup`` metric gates the
process-vs-threads ratio.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import points as fault_points
from ..faults.plan import FaultPlan
from .backend import IPC_COST_PER_CROSSING_NS, create_host
from .bundle import PolicyBundle
from .bus import V2xBus
from .report import FleetReport, aggregate_metrics
from .resilience import RestartPolicy, VehicleSupervisor
from .telemetry import FleetTelemetry, SloSpec
from .rollout import (RolloutController, RolloutPlan, RolloutState,
                      VehicleAck, default_rollout_plan)
from .vehicle import (DEFAULT_TOPICS, MODE_CONFIGS, FleetVehicle,
                      apply_driver_action)

#: Modelled compute cost of one vehicle-tick on a worker (2 ms — the
#: order of one simulated kernel's SDS sweep + LSM checks).
TICK_COST_NS = 2_000_000

#: Modelled serial control-plane cost per vehicle per barrier (bus
#: fan-out, rollout bookkeeping, health roll-up — does not parallelise).
BARRIER_COST_PER_VEHICLE_NS = 50_000

#: Scenario-driver RNG domain separator.
_DRIVER_SALT = 0xD21FE

#: How many consecutive settled barriers a connected vehicle may diverge
#: from the committed bundle before I8 flags it (apply/ack needs one
#: round-trip; reconnection catch-up needs two).
_I8_GRACE_BARRIERS = 3


class ScriptedDriver:
    """Replays an explicit scenario: ``(epoch, vehicle_id, action)``.

    Actions: ``start``, ``cruise``, ``brake``, ``crash``, ``clear``,
    ``stop_engine``, ``driver_leaves``, ``driver_returns``.
    """

    def __init__(self, script: Sequence[Tuple[int, str, str]] = ()):
        self._by_epoch: Dict[int, List[Tuple[str, str]]] = {}
        for epoch, vid, action in script:
            self._by_epoch.setdefault(epoch, []).append((vid, action))

    def at(self, epoch: int, vehicle_id: str,
           action: str) -> "ScriptedDriver":
        self._by_epoch.setdefault(epoch, []).append((vehicle_id, action))
        return self

    def actions(self, epoch: int,
                vehicle_ids: Sequence[str]) -> List[Tuple[str, str]]:
        return sorted(self._by_epoch.get(epoch, []))


class TrafficDriver:
    """Seeded random traffic: rare crashes, eventual recoveries.

    One RNG, advanced in sorted vehicle order at each barrier — the
    draw sequence never depends on worker count or dict order.
    """

    def __init__(self, seed: int, crash_probability: float = 0.004,
                 clear_probability: float = 0.15,
                 driver_change_probability: float = 0.0):
        self.rng = random.Random(seed ^ _DRIVER_SALT)
        self.crash_probability = crash_probability
        self.clear_probability = clear_probability
        self.driver_change_probability = driver_change_probability
        self._crashed: Dict[str, bool] = {}

    def actions(self, epoch: int,
                vehicle_ids: Sequence[str]) -> List[Tuple[str, str]]:
        acts: List[Tuple[str, str]] = []
        for vid in sorted(vehicle_ids):
            roll = self.rng.random()
            if self._crashed.get(vid):
                if roll < self.clear_probability:
                    self._crashed[vid] = False
                    acts.append((vid, "clear"))
                continue
            if roll < self.crash_probability:
                self._crashed[vid] = True
                acts.append((vid, "crash"))
            elif self.driver_change_probability and \
                    roll < (self.crash_probability
                            + self.driver_change_probability):
                acts.append((vid, "driver_leaves" if roll * 1e6 % 2 < 1
                             else "driver_returns"))
        return acts


@dataclasses.dataclass
class FleetConfig:
    """Everything that shapes one fleet run (all seeded, no wall time)."""

    n_vehicles: int = 10
    seed: int = 0
    workers: int = 1
    epoch_ticks: int = 10
    dt_s: float = 0.1
    mode: str = "independent"          # enforcement backend per vehicle
    spacing_km: float = 0.15           # platoon gap at boot
    cruise_accel_ms2: float = 3.0
    start_moving: bool = True
    topics: Tuple[str, ...] = DEFAULT_TOPICS
    bus_range_km: float = 0.5
    bus_latency_ms: Tuple[float, float] = (20.0, 80.0)
    #: Max overdue V2X copies held per offline subscriber (drop-oldest).
    v2x_offline_queue_limit: int = 64
    vehicle_fault_intensity: float = 0.0
    policy_text: Optional[str] = None  # None = DEFAULT_SACK_POLICY
    rollout_plan: Optional[RolloutPlan] = None
    fleet_key: bytes = b"sack-fleet-signing-key"
    #: Run every staged bundle's policy through the static model checker
    #: (:class:`repro.verify.gate.ProofGate`) before the canary wave; a
    #: violating bundle is refused fleet-wide with the failing properties
    #: recorded in the rollout history.  Decisions are digest-cached, so
    #: re-staging the same policy costs nothing.
    proof_gate: bool = True
    backend: str = "serial"            # "serial" | "threads" | "process"
    # -- crash resilience (see repro.fleet.resilience) ----------------------
    #: Completed epochs between copy-on-write vehicle checkpoints.
    checkpoint_interval_epochs: int = 4
    #: Restarts before a crashing vehicle is quarantined.
    max_restarts: int = 3
    #: Virtual-clock backoff before restart attempt N: base * 2^(N-1).
    restart_backoff_epochs: int = 1
    restart_backoff_cap_epochs: int = 8
    #: Epoch records retained for restore replay.
    journal_capacity_epochs: int = 64
    #: Control-plane call deadline/retry knobs (virtual ns).
    control_retries: int = 2
    control_deadline_ns: int = 20_000_000
    #: Checkpoint even with no crash faults armed (``sackctl fleet
    #: checkpoint`` uses this; it does not change the fingerprint).
    always_checkpoint: bool = False
    # -- streaming telemetry (see repro.fleet.telemetry) --------------------
    #: Snapshot every vehicle kernel at each barrier and run the SLO
    #: engine.  Off by default: disabled runs fingerprint byte-identically
    #: to pre-telemetry builds.
    telemetry: bool = False
    telemetry_short_window_epochs: int = 3
    telemetry_long_window_epochs: int = 12
    #: Aggregator cardinality budget: max (vehicle, series) pairs
    #: tracked fleet-wide; beyond it, drop-and-count.
    telemetry_max_series: int = 4096
    #: Armed objectives; empty = :func:`repro.fleet.telemetry.default_slos`.
    slos: Tuple[SloSpec, ...] = ()
    #: Consecutive alerted epochs before a per-vehicle SLO breach
    #: quarantines the vehicle (0 = never quarantine on SLO).
    slo_quarantine_epochs: int = 0

    ACCEPTED_BACKENDS = ("serial", "threads", "process")

    def __post_init__(self):
        if self.n_vehicles < 1:
            raise ValueError("n_vehicles must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.backend not in self.ACCEPTED_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; accepted backends: "
                f"{', '.join(self.ACCEPTED_BACKENDS)}")
        if self.mode not in MODE_CONFIGS:
            raise ValueError(
                f"unknown fleet mode {self.mode!r}; accepted modes: "
                f"{', '.join(sorted(MODE_CONFIGS))}")
        if self.checkpoint_interval_epochs < 1:
            raise ValueError("checkpoint_interval_epochs must be >= 1")
        if self.journal_capacity_epochs < 1:
            raise ValueError("journal_capacity_epochs must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.telemetry_short_window_epochs < 1 or \
                self.telemetry_long_window_epochs \
                < self.telemetry_short_window_epochs:
            raise ValueError(
                "need 1 <= telemetry_short_window_epochs "
                "<= telemetry_long_window_epochs")
        if self.telemetry_max_series < 1:
            raise ValueError("telemetry_max_series must be >= 1")
        if self.slo_quarantine_epochs < 0:
            raise ValueError("slo_quarantine_epochs must be >= 0")


@dataclasses.dataclass
class FleetRunResult:
    """What :meth:`Fleet.run` hands back."""

    epochs_run: int
    report: FleetReport

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def fingerprint(self) -> str:
        return self.report.fingerprint()


class Fleet:
    """N vehicle kernels + bus + control plane on one virtual clock."""

    def __init__(self, config: FleetConfig, driver=None):
        self.config = config
        self.driver = driver if driver is not None \
            else TrafficDriver(config.seed)
        #: Fleet-level fault plan: connectivity, ack loss, V2X drops.
        self.fleet_plan = FaultPlan(config.seed ^ 0xF1EE7)
        self.bus = V2xBus(seed=config.seed,
                          range_km=config.bus_range_km,
                          latency_bounds_ms=config.bus_latency_ms,
                          fault_plan=self.fleet_plan,
                          offline_queue_limit=
                          config.v2x_offline_queue_limit)
        #: Deterministic constructor specs; the host builds the actual
        #: vehicle objects (in this process, or in its workers).
        self.vehicles: Dict[str, FleetVehicle] = {}
        self._vehicle_specs: List[Dict[str, object]] = []
        for index in range(config.n_vehicles):
            vid = f"veh{index:03d}"
            self._vehicle_specs.append(dict(
                vehicle_id=vid, index=index,
                seed=(config.seed * 1_000_003) ^ (index + 1),
                mode=config.mode,
                start_km=index * config.spacing_km,
                fault_intensity=config.vehicle_fault_intensity,
                policy_text=config.policy_text))
            self.bus.subscribe(vid, config.topics)
        self.ids: List[str] = [str(spec["vehicle_id"])
                               for spec in self._vehicle_specs]
        plan = config.rollout_plan or default_rollout_plan()
        #: Proof gate for OTA admission (None when disabled).  Imported
        #: lazily: a gate-free fleet never pulls in the checker stack.
        self.proof_gate = None
        if config.proof_gate:
            from ..verify.gate import ProofGate
            self.proof_gate = ProofGate()
        self.controller = RolloutController(plan, self.ids,
                                            proof_gate=self.proof_gate)
        self.sim_now_ns = 0
        self.compute_makespan_ns = 0
        self.epoch_index = 0
        self.violations: List[str] = []
        self.offline_epochs: Dict[str, int] = {vid: 0 for vid in self.ids}
        self._forced_offline: Dict[str, int] = {}    # vid -> until epoch
        self._pending_acks: List[VehicleAck] = []
        self._health_deltas: Dict[str, Dict[str, object]] = {}
        #: Execution backend: owns the vehicles (and, for ``process``,
        #: the worker pool + per-vehicle read mirrors).
        self.host = create_host(self)
        self._last_health: Dict[str, Dict[str, object]] = self.host.boot()
        self._i8_strikes: Dict[str, int] = {vid: 0 for vid in self.ids}
        #: Crash supervisor: checkpoints, restores, quarantine, and the
        #: control-plane deadline guard (idle until faults are armed).
        self.supervisor = VehicleSupervisor(
            self,
            policy=RestartPolicy(
                max_restarts=config.max_restarts,
                backoff_base_epochs=config.restart_backoff_epochs,
                backoff_cap_epochs=config.restart_backoff_cap_epochs),
            checkpoint_interval_epochs=config.checkpoint_interval_epochs,
            journal_capacity=config.journal_capacity_epochs,
            control_retries=config.control_retries,
            control_deadline_ns=config.control_deadline_ns)
        #: Streaming telemetry pipeline (None unless enabled, so a
        #: disabled fleet is byte-identical to pre-telemetry builds).
        self.telemetry: Optional[FleetTelemetry] = \
            FleetTelemetry(self) if config.telemetry else None

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (the process backend's workers).

        Idempotent; a no-op for the in-process backends.  Daemon workers
        die with the interpreter anyway, so a missed close leaks nothing
        past process exit — but a long-lived caller should close (or use
        the fleet as a context manager)."""
        self.host.close()

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- scenario hooks ----------------------------------------------------
    def stage_rollout(self, bundle: PolicyBundle) -> None:
        """Begin rolling *bundle* out.

        With the proof gate enabled (the default), a bundle whose policy
        violates any static safety property raises
        :class:`~repro.fleet.rollout.ProofRefusedError` here — before
        any vehicle, canary included, is offered it.
        """
        self.controller.stage(bundle)

    def force_offline(self, vehicle_id: str, epochs: int) -> None:
        """Drop *vehicle_id*'s connectivity for the next *epochs* epochs."""
        self._forced_offline[vehicle_id] = self.epoch_index + epochs

    def force_crash(self, vehicle_id: str,
                    epoch: Optional[int] = None) -> None:
        """Kill *vehicle_id*'s kernel at the given (default: next)
        barrier; the supervisor restores or quarantines it."""
        self.supervisor.schedule_crash(vehicle_id, epoch)

    def arm_vehicle_fault(self, vehicle_id: str, point: str,
                          **knobs) -> None:
        """Arm a fault rule on one vehicle's own plan (creating one)."""
        if vehicle_id not in self.offline_epochs:
            raise KeyError(vehicle_id)
        self.host.arm_fault(vehicle_id, point, knobs)

    # -- barrier pieces ----------------------------------------------------
    def _connectivity(self) -> Dict[str, bool]:
        online: Dict[str, bool] = {}
        for vid in self.ids:
            if self.supervisor.is_dead(vid):
                # Crashed/quarantined: off the air, and no offline-fault
                # draw (a dead radio cannot also flake).
                online[vid] = False
                self.offline_epochs[vid] += 1
                continue
            down = False
            until = self._forced_offline.get(vid)
            if until is not None:
                if self.epoch_index < until:
                    down = True
                else:
                    del self._forced_offline[vid]
            if not down and self.fleet_plan.rules:
                down = self.fleet_plan.should_fail(
                    fault_points.FLEET_VEHICLE_OFFLINE,
                    self.sim_now_ns, arg=vid)
            online[vid] = not down
            if down:
                self.offline_epochs[vid] += 1
        self.host.set_online(online)
        return online

    def _apply_action(self, vehicle: FleetVehicle, action: str) -> None:
        apply_driver_action(vehicle, action, self.config.cruise_accel_ms2)

    def _positions(self) -> Dict[str, float]:
        return self.host.positions()

    def _deliver_bus(self, online: Dict[str, bool],
                     record=None) -> None:
        ok, due = self.supervisor.guard.call(
            "v2x_delivery", self.sim_now_ns,
            lambda: self.bus.deliver_due(self.sim_now_ns, online))
        if not ok:
            due = {}      # copies stay queued; the radio retries next epoch
        positions = self._positions()
        if record is not None:
            for vid, messages in due.items():
                if messages:
                    record.deliveries[vid] = list(messages)
        # Always call the host, even with nothing due: the process
        # backend's barrier_a RPC also flushes the pending online flags
        # and driver actions.  Delivery itself draws no RNG, so emitting
        # the follow-on publishes after the host returns is bit-identical
        # to the old interleaved loop.
        for vid, message, reaction in self.host.deliver(due):
            if reaction == "braked":
                # Follow-on event: hard braking is itself a situation
                # neighbours may care about.
                self.bus.publish("emergency_brake", vid,
                                 positions[vid], self.sim_now_ns,
                                 payload={"cause": message.topic},
                                 positions=positions)

    def _dispatch_rollout(self, online: Dict[str, bool],
                          record=None) -> None:
        acks = self._pending_acks
        ok, commands = self.supervisor.guard.call(
            "rollout_step", self.sim_now_ns,
            lambda: self.controller.step(
                acks, health=self._health_deltas,
                online=online, epoch=self.epoch_index))
        if not ok:
            return        # acks stay pending and are re-fed next epoch
        self._pending_acks = []
        applicable = [command for command in commands
                      if online.get(command.vehicle_id, True)]
        # All applies go to the host in one batch; the ack-drop draws
        # come from the fleet plan's RNG *after* the applies, in command
        # order — the applies themselves draw nothing from it, so the
        # fleet-plan draw sequence matches the old interleaved loop.
        applied = self.host.apply_commands(applicable, self.sim_now_ns)
        for command, ack in zip(applicable, applied):
            if record is not None:
                record.commands.setdefault(
                    command.vehicle_id, []).append(
                        (command.bundle, self.sim_now_ns))
            if self.fleet_plan.rules and self.fleet_plan.should_fail(
                    fault_points.FLEET_ACK_DROP, self.sim_now_ns,
                    arg=command.vehicle_id):
                continue                  # controller re-offers (I8)
            self._pending_acks.append(ack)

    def _tick_vehicles(self) -> None:
        cfg = self.config
        sup = self.supervisor
        # Dead vehicles don't tick; stalled ones miss this phase only.
        # The shard split covers *tickable* vehicles — keyed by sorted
        # vehicle id, never by shard index, so crash/stall outcomes are
        # identical at any worker count.
        tickable = [vid for vid in self.ids
                    if not sup.is_dead(vid)
                    and vid not in sup.stalled_this_epoch]
        frame_spec = None
        if self.telemetry is not None:
            # The frame the collector will want *after* the clock
            # advances: this epoch's index, end-of-epoch timestamp.
            frame_spec = (self.epoch_index,
                          self.sim_now_ns
                          + int(cfg.epoch_ticks * cfg.dt_s * 1e9))
        self.host.tick(tickable, frame_spec)
        sup.absorb_tick_crashes()
        # Cost model (see module docstring): tick parallelism per
        # backend; the barrier is serial per-vehicle cost; control-plane
        # timeout penalties (deadline + backoff) are serial barrier time;
        # the process backend pays per barrier payload crossing a pipe.
        if cfg.backend == "process":
            index_of = {vid: i for i, vid in enumerate(self.ids)}
            owner_load = [0] * cfg.workers
            for vid in tickable:
                owner_load[index_of[vid] % cfg.workers] += 1
            shard_cost = max(owner_load) * cfg.epoch_ticks * TICK_COST_NS
            ipc_cost = self.host.drain_crossings() \
                * IPC_COST_PER_CROSSING_NS
        elif cfg.backend == "threads" and cfg.workers > 1:
            # Honest about the GIL: shards prove independence but the
            # tick hot path serializes onto one clock.
            shard_cost = len(tickable) * cfg.epoch_ticks * TICK_COST_NS
            ipc_cost = 0
        else:
            shards = [tickable[i::cfg.workers]
                      for i in range(cfg.workers)]
            shard_cost = max((len(shard) for shard in shards),
                             default=0) * cfg.epoch_ticks * TICK_COST_NS
            ipc_cost = 0
        barrier_cost = cfg.n_vehicles * BARRIER_COST_PER_VEHICLE_NS
        self.compute_makespan_ns += shard_cost + barrier_cost \
            + ipc_cost + sup.guard.drain_penalty()

    def _publish_transitions(self) -> None:
        positions = self._positions()
        for vid in self.ids:
            if self.supervisor.is_dead(vid):
                continue        # a wreck publishes nothing
            for event, from_state, to_state in [
                    (t[0], t[1], t[2])
                    for t in self.host.drain_transitions(vid)]:
                if to_state == "emergency" and from_state != "emergency":
                    self.bus.publish("crash", vid, positions[vid],
                                     self.sim_now_ns,
                                     payload={"event": event},
                                     positions=positions)
                elif from_state == "emergency" and to_state != "emergency":
                    self.bus.publish("crash_cleared", vid,
                                     positions[vid], self.sim_now_ns,
                                     payload={"event": event},
                                     positions=positions)

    def _collect_health(self) -> None:
        def poll() -> Dict[str, Dict[str, object]]:
            deltas: Dict[str, Dict[str, object]] = {}
            for vid in self.ids:
                if self.supervisor.is_dead(vid):
                    continue    # can't poll a dead kernel
                snap = self.host.health_snapshot(vid)
                last = self._last_health[vid]
                deltas[vid] = {
                    "denial_delta": int(snap["denials"])
                    - int(last["denials"]),
                    "failsafe_delta": int(snap["failsafe_engagements"])
                    - int(last["failsafe_engagements"]),
                    "watchdog_engaged": bool(snap["watchdog_engaged"]),
                }
                self._last_health[vid] = snap
            return deltas

        ok, deltas = self.supervisor.guard.call(
            "health_poll", self.sim_now_ns, poll)
        # Exhausted poll: gate on nothing this epoch (deltas unknown).
        self._health_deltas = deltas if ok else {}

    def _telemetry_step(self) -> None:
        """Barrier telemetry: snapshot kernels, run SLOs, feed gating.

        Runs after :meth:`_collect_health` so SLO alerts ride the same
        health deltas the next epoch's rollout step consumes; the
        modelled scrape cost is serial barrier time.
        """
        tel = self.telemetry
        if tel is None:
            return
        alerts = tel.collect(self.epoch_index)
        self.compute_makespan_ns += tel.virtual_cost_ns(tel.last_frames)
        per_vehicle = set()
        for alert in alerts:
            if alert.vehicle_id:
                per_vehicle.add(alert.vehicle_id)
                targets = [alert.vehicle_id]
            else:
                # Fleet-scope breach: charge every polled vehicle so a
                # canary wave in flight sees the burn.
                targets = list(self._health_deltas)
            for vid in targets:
                health = self._health_deltas.get(vid)
                if health is not None:
                    health["slo_alerts"] = \
                        int(health.get("slo_alerts", 0)) + 1
        self.supervisor.note_slo_alerts(per_vehicle, self.epoch_index)

    def _check_invariants(self, online: Dict[str, bool]) -> None:
        ctl = self.controller
        for vid in self.ids:
            if self.supervisor.is_dead(vid):
                continue        # I8 applies to live vehicles; I9 covers
            version = self.host.bundle_version(vid)
            if version is not None and version > ctl.max_offered_version:
                self.violations.append(
                    f"epoch {self.epoch_index}: I8:version-ahead: {vid} "
                    f"runs v{version} but control plane never offered "
                    f"past v{ctl.max_offered_version}")
            settled = ctl.state in (RolloutState.COMPLETE,
                                    RolloutState.ROLLED_BACK)
            diverged = (settled and online.get(vid, True)
                        and ctl.committed is not None
                        and version != ctl.committed.version)
            if diverged:
                self._i8_strikes[vid] += 1
                if self._i8_strikes[vid] == _I8_GRACE_BARRIERS:
                    self.violations.append(
                        f"epoch {self.epoch_index}: I8:diverged: {vid} "
                        f"online but stuck on "
                        f"{'v%s' % version if version is not None else 'boot policy'} "
                        f"!= committed v{ctl.committed.version}")
            else:
                self._i8_strikes[vid] = 0

    # -- the epoch loop ----------------------------------------------------
    def run_epoch(self) -> None:
        sup = self.supervisor
        # Barrier start: due restores, forced crashes, crash/stall draws.
        sup.begin_epoch()
        record = None
        if sup.active:
            record = sup.journal.begin(self.epoch_index, self.sim_now_ns)
            record.stalled = set(sup.stalled_this_epoch)
        online = self._connectivity()
        actions = [(vid, action) for vid, action
                   in self.driver.actions(self.epoch_index, self.ids)
                   if not sup.is_dead(vid)]  # the wreck takes no input
        self.host.apply_actions(actions)
        if record is not None:
            record.actions.extend(actions)
        self._deliver_bus(online, record)
        self._dispatch_rollout(online, record)
        self._tick_vehicles()
        self.sim_now_ns += int(self.config.epoch_ticks
                               * self.config.dt_s * 1e9)
        self._publish_transitions()
        self._collect_health()
        self._telemetry_step()
        self._check_invariants(online)
        sup.check_invariants()
        sup.end_epoch()
        self.epoch_index += 1

    def run(self, epochs: int) -> FleetRunResult:
        for _ in range(epochs):
            self.run_epoch()
        return FleetRunResult(epochs_run=self.epoch_index,
                              report=self.report())

    # -- roll-up -----------------------------------------------------------
    def report(self) -> FleetReport:
        rows = self.host.report_rows()
        transitions: Dict[str, List[Tuple[str, str, str, int]]] = {
            vid: list(rows[vid]["transitions"]) for vid in self.ids}
        metrics = aggregate_metrics(rows[vid]["metrics"]
                                    for vid in self.ids)
        return FleetReport(
            seed=self.config.seed,
            n_vehicles=self.config.n_vehicles,
            epochs=self.epoch_index,
            workers=self.config.workers,
            mode=self.config.mode,
            sim_duration_ns=self.sim_now_ns,
            compute_makespan_ns=self.compute_makespan_ns,
            final_situations={vid: str(rows[vid]["situation"])
                              for vid in self.ids},
            transitions=transitions,
            bundle_versions={vid: rows[vid]["bundle_version"]
                             for vid in self.ids},
            apply_logs={vid: list(rows[vid]["apply_log"])
                        for vid in self.ids},
            health={vid: self._last_health[vid] for vid in self.ids},
            counters=metrics["counters"],
            bus_stats=self.bus.stats_dict(),
            bus_tail=[r.to_line() for r in self.bus.tail(200)],
            rollout=self.controller.to_dict(),
            violations=list(self.violations),
            offline_epochs=dict(self.offline_epochs),
            resilience=self.supervisor.summary(),
            gauges=metrics["gauges"],
            histograms=metrics["histograms"],
            telemetry=self.telemetry.summary()
            if self.telemetry is not None else {},
        )
