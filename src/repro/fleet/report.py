"""Fleet-wide aggregation: one roll-up over every vehicle's kernel.

Each vehicle carries its own :mod:`repro.obs` hub (metrics, audit ring,
spans).  The fleet report folds those per-kernel views into one place —
summed counters, per-vehicle transition histories, bus and rollout
outcomes, chaos-style violations — and exposes the same
:meth:`FleetReport.fingerprint` discipline as the single-vehicle chaos
harness: a seeded run hashes to the same value every time, at any worker
count, or the scheduler is broken.

Host-timing values (latency histograms, policy-load durations) never
enter the fingerprint; only virtual-clock timestamps and counters do.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Tuple


def _series_key(row) -> str:
    labels = row.get("labels") or {}
    if labels:
        rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        return f"{row['name']}{{{rendered}}}"
    return row["name"]


def aggregate_counters(metric_dicts) -> Dict[str, int]:
    """Sum ``repro.obs`` counter values across kernels.

    *metric_dicts* is an iterable of ``MetricsRegistry.to_dict()``
    results; the return maps ``name{label=value,...}`` (or bare ``name``)
    to the fleet-wide total.  Only counters are folded here — see
    :func:`aggregate_metrics` for the full-instrument roll-up.
    """
    totals: Dict[str, int] = {}
    for doc in metric_dicts:
        for row in doc.get("counters", []):
            key = _series_key(row)
            totals[key] = totals.get(key, 0) + int(row["value"])
    return dict(sorted(totals.items()))


def aggregate_metrics(metric_dicts) -> Dict[str, Dict[str, object]]:
    """Fold every instrument kind across kernels, not just counters.

    Returns ``{"counters": {key: sum}, "gauges": {key: {last,min,max}},
    "histograms": {key: merged-summary}}``.  Gauges are point-in-time,
    so the fold keeps the last value seen (iteration order) plus the
    min/max envelope across vehicles; histograms bucket-merge via
    :func:`repro.obs.telemetry.merge_histograms` (host-timing — callers
    must keep them out of fingerprints).
    """
    from ..obs.telemetry import merge_histograms

    counters: Dict[str, int] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    hist_rows: Dict[str, List[Dict[str, object]]] = {}
    for doc in metric_dicts:
        for row in doc.get("counters", []):
            key = _series_key(row)
            counters[key] = counters.get(key, 0) + int(row["value"])
        for row in doc.get("gauges", []):
            key = _series_key(row)
            value = float(row["value"])
            agg = gauges.get(key)
            if agg is None:
                gauges[key] = {"last": value, "min": value, "max": value}
            else:
                agg["last"] = value
                agg["min"] = min(agg["min"], value)
                agg["max"] = max(agg["max"], value)
        for row in doc.get("histograms", []):
            hist_rows.setdefault(_series_key(row), []).append(row)
    histograms: Dict[str, Dict[str, object]] = {}
    for key, rows in hist_rows.items():
        merged = merge_histograms(rows)
        if merged is not None:
            histograms[key] = merged
    return {"counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items()))}


@dataclasses.dataclass
class FleetReport:
    """Everything one fleet run produced, ready to compare or render."""

    seed: int
    n_vehicles: int
    epochs: int
    workers: int
    mode: str
    #: Virtual wall-clock the fleet simulated (physical seconds × 1e9).
    sim_duration_ns: int
    #: Virtual compute makespan across the worker pool — the scaling
    #: denominator for vehicles/sec (see docs/fleet.md).
    compute_makespan_ns: int
    final_situations: Dict[str, str]
    transitions: Dict[str, List[Tuple[str, str, str, int]]]
    bundle_versions: Dict[str, object]
    apply_logs: Dict[str, List[Tuple[int, str]]]
    health: Dict[str, Dict[str, object]]
    counters: Dict[str, int]
    bus_stats: Dict[str, int]
    bus_tail: List[str]
    rollout: Dict[str, object]
    violations: List[str]
    offline_epochs: Dict[str, int]
    #: Supervisor roll-up (crashes/restores/quarantines); empty unless
    #: the resilience layer actually fired — keeps legacy fingerprints.
    resilience: Dict[str, object] = dataclasses.field(
        default_factory=dict)
    #: Fleet-wide gauge fold (last/min/max per series) — point-in-time,
    #: never fingerprinted.
    gauges: Dict[str, Dict[str, float]] = dataclasses.field(
        default_factory=dict)
    #: Fleet-wide bucket-merged histograms — host timing, never
    #: fingerprinted.
    histograms: Dict[str, Dict[str, object]] = dataclasses.field(
        default_factory=dict)
    #: Telemetry pipeline summary (rollups, SLO alerts, overhead);
    #: empty unless telemetry was enabled — keeps legacy fingerprints.
    #: The ``overhead`` subkey carries host CPU timings and is stripped
    #: before fingerprinting.
    telemetry: Dict[str, object] = dataclasses.field(
        default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_transitions(self) -> int:
        return sum(len(t) for t in self.transitions.values())

    def vehicles_per_second(self) -> float:
        """Simulated vehicle-epochs per second of virtual compute."""
        if self.compute_makespan_ns <= 0:
            return 0.0
        return (self.n_vehicles * self.epochs
                / (self.compute_makespan_ns / 1e9))

    def fingerprint(self) -> str:
        """Deterministic digest: same seed ⇒ same value, any workers."""
        doc = {
            "seed": self.seed,
            "n_vehicles": self.n_vehicles,
            "epochs": self.epochs,
            "mode": self.mode,
            "sim_duration_ns": self.sim_duration_ns,
            "final_situations": self.final_situations,
            "transitions": self.transitions,
            "bundle_versions": self.bundle_versions,
            "apply_logs": self.apply_logs,
            "health": self.health,
            "counters": self.counters,
            "bus_stats": self.bus_stats,
            "bus_tail": self.bus_tail,
            "rollout": self.rollout,
            "violations": self.violations,
            "offline_epochs": self.offline_epochs,
        }
        if self.resilience:
            doc["resilience"] = self.resilience
        if self.telemetry:
            doc["telemetry"] = {k: v for k, v in self.telemetry.items()
                                if k != "overhead"}
        payload = json.dumps(doc, sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "vehicles": self.n_vehicles,
            "epochs": self.epochs,
            "workers": self.workers,
            "mode": self.mode,
            "sim_duration_ms": self.sim_duration_ns // 1_000_000,
            "compute_makespan_ms":
                self.compute_makespan_ns // 1_000_000,
            "vehicles_per_second": round(self.vehicles_per_second(), 3),
            "transitions": self.total_transitions,
            "bus": self.bus_stats,
            "rollout_state": self.rollout.get("state"),
            "committed_version": self.rollout.get("committed_version"),
            "violations": list(self.violations),
            "resilience": dict(self.resilience),
            "telemetry": dict(self.telemetry),
            "fingerprint": self.fingerprint(),
        }

    def summary_lines(self) -> List[str]:
        lines = [
            f"fleet seed {self.seed}: {self.n_vehicles} vehicle(s), "
            f"{self.epochs} epoch(s), {self.workers} worker(s), "
            f"mode {self.mode}",
            f"  virtual time {self.sim_duration_ns / 1e9:.1f}s, "
            f"compute makespan {self.compute_makespan_ns / 1e9:.3f}s "
            f"({self.vehicles_per_second():.0f} vehicle-epochs/s)",
            f"  {self.total_transitions} situation transition(s); "
            f"bus: {self.bus_stats.get('published', 0)} published, "
            f"{self.bus_stats.get('copies_delivered', 0)} delivered, "
            f"{self.bus_stats.get('copies_dropped', 0)} dropped",
            f"  rollout: {self.rollout.get('state')} "
            f"(committed v{self.rollout.get('committed_version')})",
        ]
        situations: Dict[str, int] = {}
        for name in self.final_situations.values():
            situations[name] = situations.get(name, 0) + 1
        lines.append("  final situations: " + ", ".join(
            f"{k}={v}" for k, v in sorted(situations.items())))
        if self.resilience:
            lines.append(
                f"  resilience: {self.resilience.get('crashes', 0)} "
                f"crash(es), {self.resilience.get('restores', 0)} "
                f"restore(s), {self.resilience.get('quarantined', 0)} "
                f"quarantined, "
                f"{self.resilience.get('checkpoints', 0)} checkpoint(s)")
            quarantined = self.resilience.get("quarantined_ids") or []
            if quarantined:
                lines.append("    quarantined: "
                             + ", ".join(sorted(quarantined)))
        if self.telemetry:
            slo = self.telemetry.get("slo", {})
            lines.append(
                f"  telemetry: {self.telemetry.get('frames', 0)} "
                f"frame(s), {self.telemetry.get('series_tracked', 0)} "
                f"series, {slo.get('alerts_total', 0)} SLO alert(s)")
            for alert in (slo.get("alerts") or [])[-3:]:
                lines.append(
                    f"    SLO {alert.get('slo')} "
                    f"[{alert.get('vehicle') or 'fleet'}] burn "
                    f"{alert.get('burn_short')}/{alert.get('burn_long')}"
                    f" at epoch {alert.get('epoch')}")
        if self.violations:
            lines.append(f"  INVARIANT VIOLATIONS "
                         f"({len(self.violations)}):")
            lines.extend(f"    {v}" for v in self.violations)
        else:
            lines.append("  all fleet invariants held")
        lines.append(f"  fingerprint {self.fingerprint()}")
        return lines
