"""The V2X event bus: situation events between vehicles.

Vehicles publish situation events (``crash``, ``emergency_brake``); the
bus delivers each message to every *other* vehicle that subscribes to the
topic and sits within radio range of the sender's position at publish
time.  Delivery is not instantaneous or reliable: each copy gets a
deterministic seeded latency, and the fleet's fault plan can drop whole
publishes (:data:`~repro.faults.points.V2X_PUBLISH_DROP`), individual
copies (:data:`~repro.faults.points.V2X_DELIVERY_DROP`), or hold copies
for an extra delay (:data:`~repro.faults.points.V2X_DELAY`).

Everything runs on the fleet's virtual clock and seeded RNGs derived from
``(seed, msg_id, subscriber)`` — never from wall time or dict order — so
a seeded run delivers bit-identical messages at bit-identical times
regardless of worker count.
"""

from __future__ import annotations

import dataclasses
import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..faults import points as fault_points

#: Mixer for per-(message, subscriber) latency RNGs; domain-separates the
#: bus's draws from the fault plan's for the same fleet seed.
_BUS_SALT = 0xB05


@dataclasses.dataclass(frozen=True)
class V2xMessage:
    """One published situation event."""

    msg_id: int
    topic: str                  # e.g. "crash", "emergency_brake"
    origin: str                 # publishing vehicle id
    position_km: float          # sender position at publish time
    sent_ns: int                # fleet virtual clock
    payload: Dict[str, str] = dataclasses.field(default_factory=dict)

    def describe(self) -> str:
        return (f"#{self.msg_id} {self.topic} from {self.origin} "
                f"@{self.position_km:.3f}km t={self.sent_ns}ns")


@dataclasses.dataclass(frozen=True)
class BusRecord:
    """One bus decision, kept in the tail ring for ``sackctl fleet bus``."""

    when_ns: int
    action: str                 # published | delivered | dropped | filtered
    message: V2xMessage
    subscriber: str = ""        # empty for publish-side records
    detail: str = ""

    def to_line(self) -> str:
        sub = f" -> {self.subscriber}" if self.subscriber else ""
        det = f" ({self.detail})" if self.detail else ""
        return f"[{self.when_ns:>12d}] {self.action:<9}{sub} " \
               f"{self.message.describe()}{det}"


@dataclasses.dataclass(frozen=True)
class _PendingDelivery:
    due_ns: int
    subscriber: str
    message: V2xMessage


class V2xBus:
    """Topic- and geo-filtered pub/sub over the fleet virtual clock."""

    def __init__(self, seed: int = 0, range_km: float = 0.5,
                 latency_bounds_ms: Tuple[float, float] = (20.0, 80.0),
                 extra_delay_ms: float = 250.0,
                 fault_plan=None, tail_capacity: int = 512,
                 offline_queue_limit: int = 64):
        if range_km <= 0:
            raise ValueError(f"range_km must be positive: {range_km}")
        if offline_queue_limit < 1:
            raise ValueError(f"offline_queue_limit must be >= 1: "
                             f"{offline_queue_limit}")
        lo, hi = latency_bounds_ms
        if lo < 0 or hi < lo:
            raise ValueError(f"bad latency bounds {latency_bounds_ms}")
        self.seed = seed
        self.range_km = range_km
        self.latency_bounds_ms = (lo, hi)
        self.extra_delay_ms = extra_delay_ms
        self.offline_queue_limit = offline_queue_limit
        self.fault_plan = fault_plan
        #: topic -> ordered list of subscriber vehicle ids.
        self._subscribers: Dict[str, List[str]] = {}
        self._pending: List[_PendingDelivery] = []
        self._msg_ids = 0
        self.tail_ring: Deque[BusRecord] = deque(maxlen=tail_capacity)
        self.stats: Dict[str, int] = {
            "published": 0,
            "publish_dropped": 0,
            "copies_enqueued": 0,
            "copies_delivered": 0,
            "copies_dropped": 0,
            "copies_filtered_range": 0,
            "copies_delayed": 0,
        }

    # -- membership --------------------------------------------------------
    def subscribe(self, vehicle_id: str, topics) -> None:
        for topic in topics:
            subs = self._subscribers.setdefault(topic, [])
            if vehicle_id not in subs:
                subs.append(vehicle_id)

    def unsubscribe(self, vehicle_id: str) -> None:
        for subs in self._subscribers.values():
            if vehicle_id in subs:
                subs.remove(vehicle_id)

    # -- publish -----------------------------------------------------------
    def publish(self, topic: str, origin: str, position_km: float,
                now_ns: int, payload: Optional[Dict[str, str]] = None,
                positions: Optional[Dict[str, float]] = None) -> Optional[V2xMessage]:
        """Publish one event; fans copies out to in-range subscribers.

        *positions* maps subscriber id → position (km) at publish time;
        geo filtering happens here, at send time, as a real DSRC/C-V2X
        radio's reach would.  Returns the message, or ``None`` when the
        publish itself was dropped.
        """
        self._msg_ids += 1
        message = V2xMessage(msg_id=self._msg_ids, topic=topic,
                             origin=origin, position_km=position_km,
                             sent_ns=now_ns, payload=dict(payload or {}))
        self.stats["published"] += 1
        plan = self.fault_plan
        if plan is not None and plan.should_fail(
                fault_points.V2X_PUBLISH_DROP, now_ns, arg=origin):
            self.stats["publish_dropped"] += 1
            self._record(now_ns, "dropped", message,
                         detail="publish lost (radio shadow)")
            return None
        self._record(now_ns, "published", message)
        for subscriber in self._subscribers.get(topic, ()):
            if subscriber == origin:
                continue
            sub_pos = (positions or {}).get(subscriber)
            if sub_pos is None or abs(sub_pos - position_km) > self.range_km:
                self.stats["copies_filtered_range"] += 1
                self._record(now_ns, "filtered", message, subscriber,
                             detail="out of radio range")
                continue
            self._enqueue_copy(message, subscriber, now_ns)
        return message

    def _enqueue_copy(self, message: V2xMessage, subscriber: str,
                      now_ns: int) -> None:
        plan = self.fault_plan
        if plan is not None and plan.should_fail(
                fault_points.V2X_DELIVERY_DROP, now_ns, arg=subscriber):
            self.stats["copies_dropped"] += 1
            self._record(now_ns, "dropped", message, subscriber,
                         detail="copy lost in flight")
            return
        latency_ns = self._latency_ns(message.msg_id, subscriber)
        detail = ""
        if plan is not None and plan.should_fail(
                fault_points.V2X_DELAY, now_ns, arg=subscriber):
            latency_ns += int(self.extra_delay_ms * 1e6)
            self.stats["copies_delayed"] += 1
            detail = "congestion delay"
        self.stats["copies_enqueued"] += 1
        self._pending.append(_PendingDelivery(
            due_ns=now_ns + latency_ns, subscriber=subscriber,
            message=message))
        if detail:
            self._record(now_ns, "delayed", message, subscriber,
                         detail=detail)

    def _latency_ns(self, msg_id: int, subscriber: str) -> int:
        """Deterministic per-copy latency: seeded by (fleet, msg, sub)."""
        mix = (self.seed * 1_000_003) ^ (msg_id << 20) ^ _BUS_SALT
        for ch in subscriber:
            mix = (mix * 131) ^ ord(ch)
        rng = random.Random(mix & 0xFFFFFFFFFFFF)
        lo, hi = self.latency_bounds_ms
        return int(rng.uniform(lo, hi) * 1e6)

    # -- delivery ----------------------------------------------------------
    def deliver_due(self, now_ns: int,
                    online: Optional[Dict[str, bool]] = None
                    ) -> Dict[str, List[V2xMessage]]:
        """Pop every copy due by *now_ns*; returns subscriber → messages.

        Copies addressed to offline vehicles stay queued (the radio keeps
        retrying) — they arrive once the vehicle is back, which is what
        lets a reconnecting vehicle catch up instead of silently missing
        the platoon's situation history.  The store-and-forward buffer is
        finite though: at most ``offline_queue_limit`` overdue copies per
        subscriber are held; beyond that the oldest fall off first and
        are counted under ``v2x_offline_dropped``.
        """
        due: Dict[str, List[V2xMessage]] = {}
        still_pending: List[_PendingDelivery] = []
        held: Dict[str, List[_PendingDelivery]] = {}
        for entry in self._pending:
            if entry.due_ns > now_ns:
                still_pending.append(entry)
                continue
            if online is not None and not online.get(entry.subscriber, True):
                held.setdefault(entry.subscriber, []).append(entry)
                continue
            due.setdefault(entry.subscriber, []).append(entry.message)
            self.stats["copies_delivered"] += 1
            self._record(now_ns, "delivered", entry.message,
                         entry.subscriber)
        for subscriber in sorted(held):
            # Oldest = earliest published (msg ids are monotonic), not
            # earliest due — latency jitter must not pick the victims.
            backlog = sorted(held[subscriber],
                             key=lambda e: e.message.msg_id)
            overflow = len(backlog) - self.offline_queue_limit
            if overflow > 0:
                for entry in backlog[:overflow]:
                    # Keyed lazily so an untouched run's stats dict (and
                    # with it the fleet fingerprint) stays byte-for-byte
                    # what it was before the bound existed.
                    self.stats["v2x_offline_dropped"] = \
                        self.stats.get("v2x_offline_dropped", 0) + 1
                    self._record(now_ns, "dropped", entry.message,
                                 entry.subscriber,
                                 detail="offline queue overflow")
                backlog = backlog[overflow:]
            still_pending.extend(backlog)
        self._pending = still_pending
        # Deterministic arrival order: by (msg id) within a subscriber,
        # independent of queue insertion interleavings.
        for messages in due.values():
            messages.sort(key=lambda m: m.msg_id)
        return dict(sorted(due.items()))

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- observability -----------------------------------------------------
    def _record(self, now_ns: int, action: str, message: V2xMessage,
                subscriber: str = "", detail: str = "") -> None:
        self.tail_ring.append(BusRecord(when_ns=now_ns, action=action,
                                        message=message,
                                        subscriber=subscriber,
                                        detail=detail))

    def tail(self, n: int = 50) -> List[BusRecord]:
        """The last *n* bus decisions (publish/deliver/drop/filter)."""
        return list(self.tail_ring)[-n:]

    def stats_dict(self) -> Dict[str, int]:
        return dict(self.stats, pending=len(self._pending))
