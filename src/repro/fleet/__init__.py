"""repro.fleet: multi-vehicle orchestration for the SACK reproduction.

The paper evaluates SACK on one vehicle; this package opens the
fleet-scale workload its deployment story implies.  It runs **N
independent vehicle kernels** (each a full ``repro.kernel`` + LSM stack +
SDS/SSM/APE pipeline) concurrently, sharded across a worker pool, under a
fleet-side control plane:

* :mod:`repro.fleet.bundle` — signed OTA policy bundles (SACK policy +
  bridged AppArmor profiles under one signature).
* :mod:`repro.fleet.rollout` — the staged rollout state machine: canary →
  percentage waves → full, with per-vehicle apply/ack, health gating and
  automatic fleet-wide rollback on a blown error budget.  Staging runs
  the bundle's policy through the :mod:`repro.verify` proof gate first —
  a policy that fails any static safety property never reaches a canary.
* :mod:`repro.fleet.bus` — the V2X event bus: topic- and geo-filtered
  situation events with seeded latency and loss, injected into
  neighbouring vehicles' SDS sensor streams.
* :mod:`repro.fleet.vehicle` — one fleet member: an IVI world plus its
  V2X receiver, connectivity state, and bundle lifecycle.
* :mod:`repro.fleet.orchestrator` — the deterministic virtual-clock
  scheduler and worker pool; a seeded 100-vehicle run is bit-for-bit
  reproducible at any worker count.
* :mod:`repro.fleet.report` — fleet-wide aggregation of ``repro.obs``
  metrics, audit records, and per-vehicle fingerprints.
* :mod:`repro.fleet.resilience` — the vehicle supervisor: checkpoint /
  restore recovery for crashed vehicle kernels, restart backoff and
  quarantine, and control-plane deadline/retry guards.

See ``docs/fleet.md``.
"""

from .bundle import (BundleCheck, BundleError, BundleSigner,
                     BundleVerificationError, PolicyBundle,
                     SIGNED_FIELDS_ALL, run_bundle_checks, verify_bundle)
from .bus import BusRecord, V2xBus, V2xMessage
from .orchestrator import (Fleet, FleetConfig, FleetRunResult,
                           ScriptedDriver, TrafficDriver)
from .report import FleetReport, aggregate_counters, aggregate_metrics
from .resilience import (CheckpointStore, ControlPlaneGuard, EpochJournal,
                         RestartPolicy, VehicleSupervisor,
                         CRASHED, QUARANTINED, RUNNING)
from .telemetry import (FleetTelemetry, SloAlert, SloEngine, SloSpec,
                        TelemetryAggregator, default_slos, parse_slo)
from .rollout import (ProofRefusedError, RolloutController, RolloutPlan,
                      RolloutState, VehicleAck, VehiclePhase, Wave,
                      default_rollout_plan)
from .vehicle import FleetVehicle, V2xAlertDetector

__all__ = [
    "BundleCheck", "BundleError", "BundleSigner",
    "BundleVerificationError", "PolicyBundle", "SIGNED_FIELDS_ALL",
    "run_bundle_checks", "verify_bundle",
    "BusRecord", "V2xBus", "V2xMessage",
    "Fleet", "FleetConfig", "FleetRunResult", "ScriptedDriver",
    "TrafficDriver",
    "FleetReport", "aggregate_counters", "aggregate_metrics",
    "FleetTelemetry", "SloAlert", "SloEngine", "SloSpec",
    "TelemetryAggregator", "default_slos", "parse_slo",
    "CheckpointStore", "ControlPlaneGuard", "EpochJournal",
    "RestartPolicy", "VehicleSupervisor",
    "CRASHED", "QUARANTINED", "RUNNING",
    "ProofRefusedError", "RolloutController", "RolloutPlan",
    "RolloutState", "VehicleAck", "VehiclePhase", "Wave",
    "default_rollout_plan",
    "FleetVehicle", "V2xAlertDetector",
]
