"""Fleet crash resilience: supervisor, checkpoint/restore, quarantine.

One vehicle kernel dying must not kill a 100-vehicle run.  This module
layers a **vehicle supervisor** on the epoch-barrier scheduler:

* **Crash detection** — the deterministic fault points
  :data:`~repro.faults.points.FLEET_VEHICLE_CRASH` and
  :data:`~repro.faults.points.FLEET_SHARD_STALL` are decided at the
  barrier in sorted vehicle order (never by shard index, so the outcome
  is worker-count independent), and any unhandled exception a vehicle
  tick raises is caught by the shard runner and converted into a crash
  instead of aborting :meth:`~repro.fleet.orchestrator.Fleet.run`.

* **Checkpoint/restore** — while armed, the supervisor snapshots each
  vehicle (kernel + SSM + AVC epoch + SDS state, one ``deepcopy`` of the
  whole object graph) every :attr:`FleetConfig.checkpoint_interval_epochs`
  completed epochs.  A restore deep-copies the stored checkpoint and
  **replays** the journaled epochs between checkpoint and crash — driver
  actions, delivered V2X copies, rollout commands at their journaled
  timestamps, tick phases, transition drains — so the restored vehicle is
  bit-identical to the wreck it replaces (runtime-verified: invariant
  I10).  Epochs spent dead are *not* replayed: the vehicle was offline,
  so queued bus copies and the rollout resync path (I8) catch it up
  through the same mechanics a reconnecting straggler uses.

* **Restart policy** — exponential backoff in virtual-clock epochs with
  a cap, then **quarantine**: the vehicle is permanently offline,
  excluded from rollout wave membership and health math
  (:meth:`~repro.fleet.rollout.RolloutController.exclude`), and its
  bundle version is frozen — invariant I9 checks it never regresses.

* **Control-plane deadlines** — bus delivery, the rollout step, and the
  health poll run through :class:`ControlPlaneGuard`: a per-call virtual
  deadline, bounded retries with exponential backoff (charged to the
  serial barrier makespan), and a deterministic skip-this-epoch
  degradation when retries are exhausted.

Everything here runs on the fleet virtual clock and the fleet fault
plan's seeded RNG; with no ``fleet:*`` crash rules armed the supervisor
draws nothing, records nothing into the report, and the fleet
fingerprint is byte-identical to a build without this module.
"""

from __future__ import annotations

import copy
import dataclasses
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..faults import points as fault_points
from ..obs.hub import Observability
from ..obs.tracepoints import (FLEET_CHECKPOINT_TP, FLEET_CONTROL_TIMEOUT_TP,
                               FLEET_CRASH_TP, FLEET_QUARANTINE_TP,
                               FLEET_RESTORE_TP)

#: Supervisor states of one vehicle.
RUNNING = "running"
CRASHED = "crashed"
QUARANTINED = "quarantined"


# -- epoch journal -------------------------------------------------------------

@dataclasses.dataclass
class EpochRecord:
    """Everything one epoch barrier handed the vehicles (for replay)."""

    epoch: int
    start_ns: int
    #: Driver actions applied, in application order: (vehicle_id, action).
    actions: List[Tuple[str, str]] = dataclasses.field(default_factory=list)
    #: Bus copies delivered: vehicle_id -> messages in delivery order.
    deliveries: Dict[str, list] = dataclasses.field(default_factory=dict)
    #: Rollout commands applied: vehicle_id -> [(bundle, now_ns), ...].
    commands: Dict[str, list] = dataclasses.field(default_factory=dict)
    #: Vehicles whose tick phase was skipped (shard stall) this epoch.
    stalled: Set[str] = dataclasses.field(default_factory=set)


def replay_epoch(vehicle, record: Optional[EpochRecord],
                 epoch_ticks: int, dt_s: float, fleet_key: bytes,
                 cruise_accel_ms2: float, with_ticks: bool) -> None:
    """Re-execute one journaled epoch against *vehicle*.

    Mirrors the barrier order in ``Fleet.run_epoch`` exactly — actions,
    deliveries, commands, ticks, drain — but publishes nothing back to
    the bus: the original run already published the fleet-visible side
    of these epochs.  Module-level so a process-backend worker replays
    restores with the same code the in-process host uses.
    """
    if record is None:
        return
    from .vehicle import apply_driver_action
    for vid, action in record.actions:
        if vid == vehicle.vehicle_id:
            apply_driver_action(vehicle, action, cruise_accel_ms2)
    for message in record.deliveries.get(vehicle.vehicle_id, ()):
        vehicle.deliver(message)
    for bundle, now_ns in record.commands.get(vehicle.vehicle_id, ()):
        vehicle.apply_bundle(bundle, fleet_key, now_ns=now_ns)
    if with_ticks and vehicle.vehicle_id not in record.stalled:
        for _ in range(epoch_ticks):
            vehicle.tick(dt_s=dt_s)
    vehicle.drain_transitions()


class EpochJournal:
    """Bounded ring of :class:`EpochRecord`, keyed by epoch index.

    The journal only needs to span from a vehicle's newest checkpoint to
    its crash epoch; anything older ages out.  A crash whose replay range
    fell off the ring cannot be restored faithfully — the supervisor
    quarantines instead of guessing.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"journal capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._records: Dict[int, EpochRecord] = {}

    def begin(self, epoch: int, start_ns: int) -> EpochRecord:
        record = EpochRecord(epoch=epoch, start_ns=start_ns)
        self._records[epoch] = record
        while len(self._records) > self.capacity:
            del self._records[min(self._records)]
        return record

    def get(self, epoch: int) -> Optional[EpochRecord]:
        return self._records.get(epoch)

    def covers(self, first_epoch: int, last_epoch: int) -> bool:
        """Are all records in [first_epoch, last_epoch] present?"""
        return all(e in self._records
                   for e in range(first_epoch, last_epoch + 1))

    def __len__(self) -> int:
        return len(self._records)


# -- checkpoints ---------------------------------------------------------------

@dataclasses.dataclass
class VehicleCheckpoint:
    """One copy-on-write snapshot: state after ``epoch`` completed."""

    vehicle_id: str
    epoch: int                  # last fully completed epoch (-1 = boot)
    vehicle: object             # deep copy of the FleetVehicle
    digest: str                 # state digest at snapshot time


class CheckpointStore:
    """Latest checkpoint per vehicle (one generation is enough: the
    journal is what bridges checkpoint to crash)."""

    def __init__(self):
        self._latest: Dict[str, VehicleCheckpoint] = {}
        self.taken = 0

    def take(self, vehicle, epoch: int) -> VehicleCheckpoint:
        ckpt = VehicleCheckpoint(
            vehicle_id=vehicle.vehicle_id, epoch=epoch,
            vehicle=copy.deepcopy(vehicle),
            digest=vehicle.state_digest())
        self._latest[vehicle.vehicle_id] = ckpt
        self.taken += 1
        return ckpt

    def get(self, vehicle_id: str) -> Optional[VehicleCheckpoint]:
        return self._latest.get(vehicle_id)

    def materialize(self, vehicle_id: str):
        """A fresh working copy of the stored checkpoint (the stored
        snapshot stays pristine for the next restore attempt)."""
        ckpt = self._latest[vehicle_id]
        return copy.deepcopy(ckpt.vehicle)

    def to_rows(self) -> List[Dict[str, object]]:
        return [{"vehicle": vid, "epoch": ckpt.epoch,
                 "digest": ckpt.digest}
                for vid, ckpt in sorted(self._latest.items())]


# -- restart policy ------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class RestartPolicy:
    """Backoff/quarantine knobs, all in virtual-clock epochs."""

    max_restarts: int = 3
    backoff_base_epochs: int = 1
    backoff_cap_epochs: int = 8

    def __post_init__(self):
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_base_epochs < 1:
            raise ValueError("backoff_base_epochs must be >= 1")

    def backoff_epochs(self, crash_count: int) -> int:
        """Epochs to wait before restart attempt *crash_count* (1-based):
        base, 2*base, 4*base, ... capped."""
        exp = self.backoff_base_epochs << max(0, crash_count - 1)
        return min(self.backoff_cap_epochs, exp)

    def exhausted(self, crash_count: int) -> bool:
        return crash_count > self.max_restarts


# -- control-plane guard -------------------------------------------------------

class ControlPlaneGuard:
    """Timeout/retry/backoff around serial control-plane calls.

    Each call gets a virtual deadline; the ``fleet:control_timeout``
    fault point (arg = call name) decides deterministically whether an
    attempt blows it.  A timed-out attempt charges deadline + backoff to
    the serial barrier makespan and retries; when retries are exhausted
    the call is *skipped* for this epoch — deliveries stay queued on the
    bus, rollout acks stay pending, health gating reuses nothing — and
    the fleet degrades instead of wedging.
    """

    def __init__(self, plan, obs: Optional[Observability] = None,
                 retries: int = 2, deadline_ns: int = 20_000_000,
                 backoff_base_ns: int = 5_000_000):
        self.plan = plan
        self.obs = obs
        self.retries = retries
        self.deadline_ns = deadline_ns
        self.backoff_base_ns = backoff_base_ns
        #: Virtual ns of deadline+backoff charged to the barrier.
        self.penalty_ns = 0
        self._undrained_penalty_ns = 0
        self.stats: Dict[str, int] = {
            "calls": 0, "timeouts": 0, "retries": 0, "exhausted": 0}

    def drain_penalty(self) -> int:
        """Penalty virtual-ns accrued since the last drain (the
        orchestrator folds this into the serial barrier makespan)."""
        pending = self._undrained_penalty_ns
        self._undrained_penalty_ns = 0
        return pending

    def call(self, name: str, now_ns: int, func: Callable[[], object],
             ) -> Tuple[bool, object]:
        """Run *func* under the deadline; returns ``(ok, result)``.

        ``ok`` is False only when every attempt timed out; the caller
        must then skip this control-plane step for the epoch.
        """
        if not self.plan.rules:
            return True, func()       # nothing armed: zero-overhead path
        self.stats["calls"] += 1
        for attempt in range(1, self.retries + 2):
            timed_out = self.plan.should_fail(
                fault_points.FLEET_CONTROL_TIMEOUT, now_ns, arg=name)
            if not timed_out:
                return True, func()
            self.stats["timeouts"] += 1
            penalty = self.deadline_ns \
                + self.backoff_base_ns * (1 << (attempt - 1))
            self.penalty_ns += penalty
            self._undrained_penalty_ns += penalty
            if self.obs is not None:
                self.obs.metrics.counter("fleet_control_timeouts",
                                         {"call": name}).inc()
                tp = self.obs.tracepoints.get(FLEET_CONTROL_TIMEOUT_TP)
                if tp.callbacks:
                    tp.emit(call=name, attempt=attempt)
            if attempt <= self.retries:
                self.stats["retries"] += 1
        self.stats["exhausted"] += 1
        return False, None

    def summary(self) -> Dict[str, int]:
        return dict(self.stats, penalty_ns=self.penalty_ns)


# -- per-vehicle supervisor record ---------------------------------------------

@dataclasses.dataclass
class VehicleStatus:
    """What the supervisor knows about one vehicle."""

    vehicle_id: str
    state: str = RUNNING
    crashes: int = 0
    stalls: int = 0
    crash_epoch: Optional[int] = None
    crash_reason: str = ""
    #: True when the crash hit mid-tick (wreck partially mutated, so the
    #: I10 wreck-vs-restored comparison is skipped for this incident).
    mid_tick: bool = False
    restore_due_epoch: Optional[int] = None
    #: Completed recoveries: (crash_epoch, restore_epoch).
    restores: List[Tuple[int, int]] = dataclasses.field(default_factory=list)
    quarantine_epoch: Optional[int] = None
    quarantine_reason: str = ""
    #: Bundle version frozen at quarantine time (I9 reference value).
    frozen_version: object = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"state": self.state,
                                  "crashes": self.crashes}
        if self.stalls:
            out["stalls"] = self.stalls
        if self.restores:
            out["restores"] = list(self.restores)
        if self.state == CRASHED:
            out["crash_epoch"] = self.crash_epoch
            out["restore_due_epoch"] = self.restore_due_epoch
        if self.state == QUARANTINED:
            out["quarantine_epoch"] = self.quarantine_epoch
            out["quarantine_reason"] = self.quarantine_reason
            out["frozen_version"] = self.frozen_version
        return out


class _FleetClock:
    """Adapter so the fleet-level obs hub reads the fleet virtual clock."""

    def __init__(self):
        self.now_ns = 0


class VehicleSupervisor:
    """Crash detection, checkpoint/restore, backoff, and quarantine.

    Owned by :class:`~repro.fleet.orchestrator.Fleet`; every decision is
    made at the epoch barrier in sorted vehicle order, from the fleet
    fault plan's seeded RNG — nothing here depends on worker count or
    wall time.
    """

    def __init__(self, fleet, policy: Optional[RestartPolicy] = None,
                 checkpoint_interval_epochs: int = 4,
                 journal_capacity: int = 64,
                 control_retries: int = 2,
                 control_deadline_ns: int = 20_000_000):
        if checkpoint_interval_epochs < 1:
            raise ValueError("checkpoint_interval_epochs must be >= 1")
        self.fleet = fleet
        self.policy = policy or RestartPolicy()
        self.checkpoint_interval = checkpoint_interval_epochs
        self.journal = EpochJournal(journal_capacity)
        self.status: Dict[str, VehicleStatus] = {
            vid: VehicleStatus(vid) for vid in fleet.ids}
        #: Scenario-forced crashes: vehicle_id -> epoch to crash at.
        self._forced_crash: Dict[str, int] = {}
        self._tick_exceptions: Dict[str, str] = {}
        self.stalled_this_epoch: Set[str] = set()
        self._ever_active = False
        #: Fleet-level observability (metrics/spans/tracepoints); kept
        #: out of the per-vehicle kernels so per-kernel counter roll-ups
        #: (and therefore pre-existing fingerprints) are untouched.
        self.clock = _FleetClock()
        self.obs = Observability(clock=self.clock)
        self.obs.spans.enable()
        self.guard = ControlPlaneGuard(fleet.fleet_plan, obs=self.obs,
                                       retries=control_retries,
                                       deadline_ns=control_deadline_ns)
        #: I10 skips incidents whose wreck is partially mutated; count
        #: them so a soak can prove the check actually ran.
        self.i10_checked = 0
        self.i10_skipped = 0
        #: Consecutive epochs each vehicle has carried a per-vehicle SLO
        #: burn-rate alert (telemetry pipeline feeds this).
        self._slo_strikes: Dict[str, int] = {}

    # -- enablement --------------------------------------------------------
    def _has_crash_rules(self) -> bool:
        for rule in self.fleet.fleet_plan.rules:
            if rule.point in (fault_points.FLEET_VEHICLE_CRASH,
                              fault_points.FLEET_SHARD_STALL):
                return True
        return False

    @property
    def active(self) -> bool:
        """Checkpoints/journal replay only run when something can crash
        (crash/stall rules armed, a forced crash pending, or the config
        asks for always-on checkpointing) — an idle supervisor costs one
        attribute check per epoch and leaves the fingerprint untouched."""
        return (self._ever_active or self._forced_crash
                or getattr(self.fleet.config, "always_checkpoint", False)
                or self._has_crash_rules())

    # -- state queries -----------------------------------------------------
    def is_dead(self, vehicle_id: str) -> bool:
        return self.status[vehicle_id].state != RUNNING

    def is_quarantined(self, vehicle_id: str) -> bool:
        return self.status[vehicle_id].state == QUARANTINED

    def quarantined_ids(self) -> List[str]:
        return sorted(vid for vid, st in self.status.items()
                      if st.state == QUARANTINED)

    def crashed_ids(self) -> List[str]:
        return sorted(vid for vid, st in self.status.items()
                      if st.state == CRASHED)

    # -- scenario hooks ----------------------------------------------------
    def schedule_crash(self, vehicle_id: str,
                       epoch: Optional[int] = None) -> None:
        if vehicle_id not in self.status:
            raise KeyError(vehicle_id)
        self._forced_crash[vehicle_id] = \
            self.fleet.epoch_index if epoch is None else epoch

    # -- the barrier-start step --------------------------------------------
    def begin_epoch(self) -> None:
        """Restores due, forced crashes, crash/stall draws — in that
        order, each in sorted vehicle order."""
        self.stalled_this_epoch = set()
        if not self.active:
            return
        self._ever_active = True
        fleet = self.fleet
        epoch = fleet.epoch_index
        self.clock.now_ns = fleet.sim_now_ns
        # Late arming: a vehicle that has never been checkpointed gets a
        # baseline snapshot before anything can kill it this epoch.
        for vid in fleet.ids:
            if self.status[vid].state == RUNNING \
                    and fleet.host.checkpoint_meta(vid) is None:
                self._checkpoint(vid, epoch - 1)
        for vid in self.crashed_ids():
            st = self.status[vid]
            if st.restore_due_epoch is not None \
                    and epoch >= st.restore_due_epoch:
                self._restore(vid, epoch)
        for vid, at_epoch in sorted(self._forced_crash.items()):
            if epoch >= at_epoch and self.status[vid].state == RUNNING:
                del self._forced_crash[vid]
                self._crash(vid, epoch, reason="forced", mid_tick=False)
        if fleet.fleet_plan.rules:
            for vid in fleet.ids:
                if self.status[vid].state != RUNNING:
                    continue
                if fleet.fleet_plan.should_fail(
                        fault_points.FLEET_VEHICLE_CRASH,
                        fleet.sim_now_ns, arg=vid):
                    self._crash(vid, epoch, reason="fault injection",
                                mid_tick=False)
            for vid in fleet.ids:
                if self.status[vid].state != RUNNING:
                    continue
                if fleet.fleet_plan.should_fail(
                        fault_points.FLEET_SHARD_STALL,
                        fleet.sim_now_ns, arg=vid):
                    self.stalled_this_epoch.add(vid)
                    self.status[vid].stalls += 1
                    self.obs.metrics.counter("fleet_shard_stalls").inc()

    # -- mid-tick exceptions -----------------------------------------------
    def note_tick_exception(self, vehicle_id: str, exc: Exception) -> None:
        """Called from inside a shard runner (any thread): record the
        failure; the crash is absorbed at the barrier."""
        self.note_tick_failure(vehicle_id,
                               f"{type(exc).__name__}: {exc}")

    def note_tick_failure(self, vehicle_id: str, detail: str) -> None:
        """Pre-formatted variant for the process backend, whose workers
        ship the exception detail as a string across the pipe."""
        self._tick_exceptions[vehicle_id] = detail

    def absorb_tick_crashes(self) -> None:
        """Convert tick-phase exceptions into crashes (sorted order)."""
        if not self._tick_exceptions:
            return
        self._ever_active = True
        for vid in sorted(self._tick_exceptions):
            detail = self._tick_exceptions[vid]
            if self.status[vid].state == RUNNING:
                self._crash(vid, self.fleet.epoch_index,
                            reason=f"tick exception ({detail})",
                            mid_tick=True)
        self._tick_exceptions = {}

    # -- the barrier-end step ----------------------------------------------
    def end_epoch(self) -> None:
        """Periodic checkpoints after the epoch completed."""
        if not self.active:
            return
        epoch = self.fleet.epoch_index     # just-completed epoch
        if (epoch + 1) % self.checkpoint_interval != 0:
            return
        for vid in self.fleet.ids:
            if self.status[vid].state == RUNNING:
                self._checkpoint(vid, epoch)

    # -- crash / checkpoint / restore / quarantine -------------------------
    def _checkpoint(self, vehicle_id: str, epoch: int) -> None:
        span = self.obs.spans.start_span("fleet.checkpoint", stage="fleet",
                                         attributes={"vehicle": vehicle_id,
                                                     "epoch": epoch})
        t0 = time.perf_counter_ns()
        self.fleet.host.checkpoint_take(vehicle_id, epoch)
        self.obs.metrics.histogram("fleet_checkpoint_cpu_ns").record(
            time.perf_counter_ns() - t0)
        self.obs.metrics.counter("fleet_checkpoints").inc()
        tp = self.obs.tracepoints.get(FLEET_CHECKPOINT_TP)
        if tp.callbacks:
            tp.emit(vehicle=vehicle_id, epoch=epoch)
        self.obs.spans.end_span(span)

    def _crash(self, vehicle_id: str, epoch: int, reason: str,
               mid_tick: bool) -> None:
        st = self.status[vehicle_id]
        st.crashes += 1
        st.state = CRASHED
        st.crash_epoch = epoch
        st.crash_reason = reason
        st.mid_tick = mid_tick
        self.obs.metrics.counter("fleet_vehicle_crashes").inc()
        tp = self.obs.tracepoints.get(FLEET_CRASH_TP)
        if tp.callbacks:
            tp.emit(vehicle=vehicle_id, epoch=epoch, reason=reason)
        if self.policy.exhausted(st.crashes):
            self._quarantine(vehicle_id, epoch,
                             f"max restarts exceeded "
                             f"({st.crashes - 1} of "
                             f"{self.policy.max_restarts} used)")
            return
        st.restore_due_epoch = epoch \
            + self.policy.backoff_epochs(st.crashes)

    def _restore(self, vehicle_id: str, epoch: int) -> None:
        st = self.status[vehicle_id]
        meta = self.fleet.host.checkpoint_meta(vehicle_id)
        if meta is None:
            self._quarantine(vehicle_id, epoch, "no checkpoint available")
            return
        ckpt_epoch = meta[0]
        assert st.crash_epoch is not None
        # Full replay: every complete epoch after the checkpoint and
        # before the crash.  A mid-tick crash additionally replays the
        # crash epoch's barrier work (delivered V2X copies, commands)
        # without its tick phase — that work already left the bus and
        # must not be lost.
        last_full = st.crash_epoch - 1
        first = ckpt_epoch + 1
        barrier_only = st.crash_epoch if st.mid_tick else None
        journal_last = barrier_only if barrier_only is not None \
            else last_full
        if first <= journal_last \
                and not self.journal.covers(first, journal_last):
            self._quarantine(vehicle_id, epoch,
                             f"journal gap (need epochs "
                             f"{first}..{journal_last})")
            return
        span = self.obs.spans.start_span(
            "fleet.restore", stage="fleet",
            attributes={"vehicle": vehicle_id,
                        "crash_epoch": st.crash_epoch,
                        "restore_epoch": epoch})
        t0 = time.perf_counter_ns()
        # The host materializes the checkpoint, replays the journaled
        # window, swaps the restored vehicle in, and re-baselines with a
        # fresh checkpoint at epoch-1: the dead window [crash, epoch-1]
        # was never executed, so a later replay must not span it.
        result = self.fleet.host.restore_vehicle(
            vehicle_id,
            [self.journal.get(e) for e in range(first, last_full + 1)],
            self.journal.get(barrier_only)
            if barrier_only is not None else None,
            baseline_epoch=epoch - 1)
        replayed = result["replayed"]
        if st.mid_tick:
            self.i10_skipped += 1
        else:
            self.i10_checked += 1
            if result["restored_digest"] != result["wreck_digest"]:
                self.fleet.violations.append(
                    f"epoch {epoch}: I10:restore-divergence: "
                    f"{vehicle_id} restored from checkpoint e{ckpt_epoch} "
                    f"+ {replayed} replayed epoch(s) digests to "
                    f"{result['restored_digest'][:16]} but the wreck "
                    f"digests to {result['wreck_digest'][:16]}")
        self.fleet._last_health[vehicle_id] = result["health"]
        epoch_duration_ns = int(self.fleet.config.epoch_ticks
                                * self.fleet.config.dt_s * 1e9)
        downtime_ns = (epoch - st.crash_epoch) * epoch_duration_ns
        self.obs.metrics.histogram("fleet_restore_latency_ns").record(
            downtime_ns)
        self.obs.metrics.histogram("fleet_restore_cpu_ns").record(
            time.perf_counter_ns() - t0)
        self.obs.metrics.counter("fleet_restores").inc()
        tp = self.obs.tracepoints.get(FLEET_RESTORE_TP)
        if tp.callbacks:
            tp.emit(vehicle=vehicle_id, crash_epoch=st.crash_epoch,
                    restore_epoch=epoch, attempt=st.crashes,
                    replayed_epochs=replayed)
        self.obs.spans.end_span(span)
        st.restores.append((st.crash_epoch, epoch))
        st.state = RUNNING
        st.crash_epoch = None
        st.crash_reason = ""
        st.mid_tick = False
        st.restore_due_epoch = None

    def note_slo_alerts(self, alerted_ids, epoch: int) -> None:
        """Telemetry feed: vehicles carrying a per-vehicle SLO alert at
        this barrier.  After ``config.slo_quarantine_epochs`` consecutive
        alerted epochs a vehicle is quarantined through the same path as
        a crash-loop (0 = SLO breaches never quarantine)."""
        threshold = getattr(self.fleet.config, "slo_quarantine_epochs", 0)
        alerted = set(alerted_ids)
        for vid in list(self._slo_strikes):
            if vid not in alerted:
                del self._slo_strikes[vid]
        if not threshold:
            return
        for vid in sorted(alerted):
            if self.status[vid].state != RUNNING:
                continue
            self._slo_strikes[vid] = self._slo_strikes.get(vid, 0) + 1
            if self._slo_strikes[vid] >= threshold:
                self._ever_active = True
                self._quarantine(
                    vid, epoch,
                    reason=f"slo burn-rate breach for "
                    f"{self._slo_strikes[vid]} consecutive epoch(s)")
                del self._slo_strikes[vid]

    def _quarantine(self, vehicle_id: str, epoch: int,
                    reason: str) -> None:
        st = self.status[vehicle_id]
        st.state = QUARANTINED
        st.quarantine_epoch = epoch
        st.quarantine_reason = reason
        st.frozen_version = self.fleet.host.bundle_version(vehicle_id)
        st.restore_due_epoch = None
        self.fleet.controller.exclude(vehicle_id)
        self.obs.metrics.counter("fleet_quarantined").inc()
        tp = self.obs.tracepoints.get(FLEET_QUARANTINE_TP)
        if tp.callbacks:
            tp.emit(vehicle=vehicle_id, epoch=epoch, reason=reason)

    # -- invariants --------------------------------------------------------
    def check_invariants(self) -> None:
        """I9: a quarantined vehicle's policy version is frozen and the
        control plane no longer addresses it."""
        fleet = self.fleet
        for vid in self.quarantined_ids():
            st = self.status[vid]
            version = fleet.host.bundle_version(vid)
            if version != st.frozen_version:
                fleet.violations.append(
                    f"epoch {fleet.epoch_index}: I9:quarantine-regressed: "
                    f"{vid} moved from v{st.frozen_version} to "
                    f"v{version} while quarantined")
            if vid in fleet.controller.fleet_ids:
                fleet.violations.append(
                    f"epoch {fleet.epoch_index}: I9:quarantine-addressed: "
                    f"{vid} still in the rollout roster")

    # -- reporting ---------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        return {
            "crashes": sum(st.crashes for st in self.status.values()),
            "restores": sum(len(st.restores)
                            for st in self.status.values()),
            "stalls": sum(st.stalls for st in self.status.values()),
            "quarantined": len(self.quarantined_ids()),
        }

    def mean_restore_latency_ns(self) -> float:
        """Mean crash-to-restore downtime on the virtual clock."""
        epoch_duration_ns = int(self.fleet.config.epoch_ticks
                                * self.fleet.config.dt_s * 1e9)
        latencies = [(restore - crash) * epoch_duration_ns
                     for st in self.status.values()
                     for crash, restore in st.restores]
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    def summary(self) -> Dict[str, object]:
        """Fingerprint-safe roll-up; empty when nothing ever happened,
        so a fault-free run's report payload is unchanged."""
        counts = self.counts()
        control = self.guard.summary()
        if not any(counts.values()) and not control["timeouts"]:
            return {}
        out: Dict[str, object] = dict(counts)
        out["quarantined_ids"] = self.quarantined_ids()
        out["checkpoints"] = self.fleet.host.checkpoints_taken
        out["i10_checked"] = self.i10_checked
        out["i10_skipped"] = self.i10_skipped
        out["mean_restore_latency_ns"] = int(
            self.mean_restore_latency_ns())
        if control["timeouts"]:
            out["control"] = {k: control[k]
                              for k in ("calls", "timeouts", "retries",
                                        "exhausted", "penalty_ns")}
        out["per_vehicle"] = {
            vid: st.to_dict() for vid, st in sorted(self.status.items())
            if st.crashes or st.stalls or st.state != RUNNING}
        return out
