"""Fleet streaming telemetry: aggregation, SLO burn-rate engine, export.

Every epoch barrier, each live vehicle kernel's metrics are snapshotted
into a :class:`~repro.obs.telemetry.TelemetryFrame` and streamed — in
sorted vehicle order, on the fleet virtual clock — into the
:class:`TelemetryAggregator`:

* **Windowed rollups.**  Per-metric fleet rates and cross-vehicle
  p50/p99 over sliding virtual-time windows (a short and a long window,
  in epochs).  Rollups are computed from counter deltas and gauges
  only — deterministic, seed-stable, identical at any worker count —
  and hash into :meth:`TelemetryAggregator.rollup_digest`.

* **Cardinality budget.**  The aggregator tracks at most
  ``max_series`` per-vehicle series; beyond that, new series are
  dropped and counted (``telemetry_series_dropped``), never unbounded.

* **OpenMetrics exposition.**  :meth:`TelemetryAggregator.to_openmetrics`
  renders the whole fleet: per-vehicle series (``vehicle=<id>`` label,
  escaped), fleet-summed ``fleet_*`` series, bucket-merged latency
  histograms, and the pipeline's own meta-series.  Vehicles that stop
  reporting (crashed, quarantined) retain their last-seen series.

The :class:`SloEngine` evaluates declarative :class:`SloSpec`
objectives with **multi-window burn-rate alerting**: an alert fires
only when the burn rate (measured pressure against the objective's
threshold) exceeds the spec's burn factor in *both* the short and the
long window — fast to catch a real burn, hard to trip on a one-epoch
spike.  Alerts feed rollout health gating (``slo_alerts`` in the
health deltas; see :class:`~repro.fleet.rollout.RolloutPlan.gate_on_slo`)
and the supervisor's quarantine decisions.

:class:`FleetTelemetry` is the orchestrator-facing facade: it owns the
aggregator, the engine, and its own fleet-level observability hub for
self-accounting (``telemetry_overhead`` span, CPU-cost histogram) —
kept out of the per-vehicle kernels so per-kernel roll-ups and
pre-existing fingerprints are untouched.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..obs.hub import Observability
from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import (TelemetryFrame, histogram_percentile,
                             merge_histograms, split_series_key)

#: Modelled serial control-plane cost of scraping one vehicle frame at
#: the barrier (virtual ns) — the deterministic denominator the
#: telemetry-overhead benchmark gates on.
TELEMETRY_COST_PER_FRAME_NS = 100_000

#: Burn rates are clamped here so a `== 0` objective (any breach is an
#: infinite burn) still serializes to JSON.
BURN_CLAMP = 1e6


# -- SLO specs -----------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class SloSpec:
    """One declarative objective over the aggregated telemetry.

    *kind* selects the measurement: ``rate`` (counter deltas per
    virtual second over the window), ``gauge`` (latest values summed),
    ``ratio`` (numerator/denominator counter deltas over the window),
    or ``p99_ms`` (bucket-merged histogram p99, in milliseconds —
    host-timing, so alerts from it are not worker-count deterministic;
    the built-in defaults avoid it).

    *op* ``max`` means the measurement must stay <= *threshold*;
    ``min`` means >= *threshold*.  The burn rate is the measured
    pressure against the threshold (1.0 = exactly at the objective);
    an alert needs burn > *burn_factor* in both windows.
    """

    name: str
    kind: str                    # "rate" | "gauge" | "ratio" | "p99_ms"
    op: str                      # "max" | "min"
    threshold: float
    series: str = ""             # rate/gauge/p99_ms matcher
    numerator: str = ""          # ratio only
    denominator: str = ""        # ratio only
    per_vehicle: bool = False
    burn_factor: float = 1.0

    def __post_init__(self):
        if self.kind not in ("rate", "gauge", "ratio", "p99_ms"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.op not in ("max", "min"):
            raise ValueError(f"unknown SLO op {self.op!r}")
        if self.kind == "ratio" and not (self.numerator
                                         and self.denominator):
            raise ValueError("ratio SLOs need numerator and denominator")
        if self.kind != "ratio" and not self.series:
            raise ValueError(f"{self.kind} SLOs need a series matcher")
        if self.burn_factor <= 0:
            raise ValueError("burn_factor must be > 0")

    def describe(self) -> str:
        cmp = "<=" if self.op == "max" else ">="
        return f"{self.name} {cmp} {self.threshold:g}"

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "kind": self.kind, "op": self.op,
                "threshold": self.threshold,
                "per_vehicle": self.per_vehicle,
                "burn_factor": self.burn_factor}


#: CLI-facing objective aliases: ``sackctl fleet top --slo
#: "denial_rate<=5"`` resolves through this table.
SLO_ALIASES: Dict[str, Dict[str, object]] = {
    "denial_rate": {"kind": "rate", "series": "lsm_denials_total"},
    "vehicle_denial_rate": {"kind": "rate",
                            "series": "lsm_denials_total",
                            "per_vehicle": True},
    "failsafe_entries": {"kind": "rate",
                         "series": "sack_failsafe_engagements_total"},
    "avc_hit_ratio": {"kind": "ratio",
                      "numerator": "lsm_avc_lookups_total{result=hit}",
                      "denominator": "lsm_avc_lookups_total"},
    "event_rate": {"kind": "rate",
                   "series": "sackfs_events_received_total"},
    "heartbeat_rate": {"kind": "rate",
                       "series": "sackfs_heartbeats_received_total"},
    "hook_p99_ms": {"kind": "p99_ms",
                    "series": "lsm_hook_latency_ns"},
}


def parse_slo(spec: str) -> SloSpec:
    """``"denial_rate<=5"`` / ``"avc_hit_ratio>=0.2"`` -> SloSpec."""
    for token, op in (("<=", "max"), (">=", "min")):
        if token in spec:
            alias, _, raw = spec.partition(token)
            alias = alias.strip()
            base = SLO_ALIASES.get(alias)
            if base is None:
                raise ValueError(
                    f"unknown SLO alias {alias!r}; known: "
                    f"{', '.join(sorted(SLO_ALIASES))}")
            try:
                threshold = float(raw.strip())
            except ValueError:
                raise ValueError(f"bad SLO threshold in {spec!r}")
            return SloSpec(name=alias, op=op, threshold=threshold,
                           **base)
    raise ValueError(f"bad SLO spec {spec!r}; use alias<=X or alias>=X")


def default_slos() -> Tuple[SloSpec, ...]:
    """The armed-by-default objective set — deterministic measurements
    only, with thresholds lenient enough that a healthy seeded fleet
    never alerts."""
    return (
        SloSpec("denial_rate", "rate", "max", 200.0,
                series="lsm_denials_total"),
        SloSpec("vehicle_denial_rate", "rate", "max", 150.0,
                series="lsm_denials_total", per_vehicle=True),
        SloSpec("failsafe_entries", "rate", "max", 0.0,
                series="sack_failsafe_engagements_total"),
        SloSpec("avc_hit_ratio", "ratio", "min", 0.05,
                numerator="lsm_avc_lookups_total{result=hit}",
                denominator="lsm_avc_lookups_total"),
    )


@dataclasses.dataclass(frozen=True)
class SloAlert:
    """One multi-window burn-rate breach at one epoch."""

    slo: str
    epoch: int
    vehicle_id: str              # "" = fleet-scope
    threshold: float
    op: str
    measured_short: float
    measured_long: float
    burn_short: float
    burn_long: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo": self.slo, "epoch": self.epoch,
            "vehicle": self.vehicle_id,
            "threshold": self.threshold, "op": self.op,
            "measured_short": round(self.measured_short, 6),
            "measured_long": round(self.measured_long, 6),
            "burn_short": round(self.burn_short, 4),
            "burn_long": round(self.burn_long, 4),
        }

    def describe(self) -> str:
        scope = self.vehicle_id or "fleet"
        cmp = "<=" if self.op == "max" else ">="
        return (f"SLO {self.slo} [{scope}]: measured "
                f"{self.measured_short:g} (short) / "
                f"{self.measured_long:g} (long) vs {cmp} "
                f"{self.threshold:g}; burn "
                f"{self.burn_short:g}/{self.burn_long:g}")


def _series_matches(key: str, matcher: str) -> bool:
    """A series key matches a bare name, an exact key, or a name with a
    label subset (``lsm_avc_lookups_total{result=hit}``)."""
    if key == matcher:
        return True
    name, labels = split_series_key(key)
    m_name, m_labels = split_series_key(matcher)
    if name != m_name:
        return False
    return all(labels.get(k) == v for k, v in m_labels.items())


# -- the aggregator ------------------------------------------------------------

class TelemetryAggregator:
    """Fleet-level windowed rollups under a cardinality budget."""

    def __init__(self, epoch_duration_ns: int,
                 short_window_epochs: int = 3,
                 long_window_epochs: int = 12,
                 max_series: int = 4096):
        if epoch_duration_ns <= 0:
            raise ValueError("epoch_duration_ns must be > 0")
        if short_window_epochs < 1 or \
                long_window_epochs < short_window_epochs:
            raise ValueError("need 1 <= short window <= long window")
        if max_series < 1:
            raise ValueError("max_series must be >= 1")
        self.epoch_duration_ns = epoch_duration_ns
        self.short_window = short_window_epochs
        self.long_window = long_window_epochs
        self.max_series = max_series
        self.frames_total = 0
        self.last_epoch = -1
        #: (vehicle, series key) -> cumulative counter value.
        self._counter_last: Dict[Tuple[str, str], float] = {}
        #: (vehicle, series key) -> recent (epoch, delta) pairs.
        self._counter_hist: Dict[Tuple[str, str],
                                 Deque[Tuple[int, float]]] = {}
        self._gauge_last: Dict[Tuple[str, str], float] = {}
        #: (vehicle, series key) -> latest histogram summary (host-timing).
        self._hist_last: Dict[Tuple[str, str], Dict[str, object]] = {}
        #: metric name -> tracked (vehicle, key) pairs, insertion order.
        self._by_name: Dict[str, List[Tuple[str, str]]] = {}
        #: Dropped observations per metric name (budget exceeded).
        self.series_dropped: Dict[str, int] = {}
        #: Last epoch each vehicle reported (retention bookkeeping).
        self.last_seen: Dict[str, int] = {}

    # -- ingest ------------------------------------------------------------
    @property
    def series_tracked(self) -> int:
        return (len(self._counter_last) + len(self._gauge_last)
                + len(self._hist_last))

    def _admit(self, vid: str, key: str, store: Dict) -> bool:
        if (vid, key) in store:
            return True
        if self.series_tracked >= self.max_series:
            name, _ = split_series_key(key)
            self.series_dropped[name] = \
                self.series_dropped.get(name, 0) + 1
            return False
        self._by_name.setdefault(split_series_key(key)[0],
                                 []).append((vid, key))
        return True

    def ingest(self, frame: TelemetryFrame) -> None:
        """Fold one frame in.  Callers must ingest frames of one epoch
        in sorted vehicle order — that, plus sorted series iteration,
        is what makes budget drops and rollups order-deterministic."""
        self.frames_total += 1
        self.last_epoch = max(self.last_epoch, frame.epoch)
        vid = frame.vehicle_id
        self.last_seen[vid] = frame.epoch
        for key in sorted(frame.counters):
            value = frame.counters[key]
            if not self._admit(vid, key, self._counter_last):
                continue
            prev = self._counter_last.get((vid, key), 0.0)
            self._counter_last[(vid, key)] = value
            hist = self._counter_hist.get((vid, key))
            if hist is None:
                hist = self._counter_hist[(vid, key)] = deque(
                    maxlen=self.long_window)
            hist.append((frame.epoch, max(0.0, value - prev)))
        for key in sorted(frame.gauges):
            if self._admit(vid, key, self._gauge_last):
                self._gauge_last[(vid, key)] = frame.gauges[key]
        for key in sorted(frame.histograms):
            if self._admit(vid, key, self._hist_last):
                self._hist_last[(vid, key)] = frame.histograms[key]

    # -- window measurement ------------------------------------------------
    def _window_seconds(self, window_epochs: int) -> float:
        return window_epochs * self.epoch_duration_ns / 1e9

    def window_deltas(self, matcher: str, epoch: int,
                      window_epochs: int) -> Dict[str, float]:
        """Per-vehicle summed counter deltas of matching series over
        epochs ``(epoch - window, epoch]``."""
        lo = epoch - window_epochs + 1
        out: Dict[str, float] = {}
        name, _ = split_series_key(matcher)
        for vid, key in self._by_name.get(name, ()):
            hist = self._counter_hist.get((vid, key))
            if hist is None or not _series_matches(key, matcher):
                continue
            total = sum(delta for e, delta in hist if lo <= e <= epoch)
            out[vid] = out.get(vid, 0.0) + total
        return out

    def fleet_rate(self, matcher: str, epoch: int,
                   window_epochs: int) -> float:
        """Fleet-summed rate per virtual second over the window."""
        deltas = self.window_deltas(matcher, epoch, window_epochs)
        return sum(deltas.values()) / self._window_seconds(window_epochs)

    def per_vehicle_rates(self, matcher: str, epoch: int,
                          window_epochs: int) -> Dict[str, float]:
        seconds = self._window_seconds(window_epochs)
        return {vid: total / seconds for vid, total in
                sorted(self.window_deltas(matcher, epoch,
                                          window_epochs).items())}

    def rate_percentile(self, matcher: str, epoch: int,
                        window_epochs: int, q: float) -> float:
        """Nearest-rank percentile of per-vehicle window rates."""
        rates = sorted(self.per_vehicle_rates(matcher, epoch,
                                              window_epochs).values())
        if not rates:
            return 0.0
        rank = max(1, int(round(len(rates) * q / 100.0)))
        return rates[min(rank, len(rates)) - 1]

    def fleet_ratio(self, numerator: str, denominator: str, epoch: int,
                    window_epochs: int) -> Optional[float]:
        """Windowed delta ratio; None when there was no traffic."""
        num = sum(self.window_deltas(numerator, epoch,
                                     window_epochs).values())
        den = sum(self.window_deltas(denominator, epoch,
                                     window_epochs).values())
        if den <= 0:
            return None
        return num / den

    def gauge_total(self, matcher: str) -> float:
        name, _ = split_series_key(matcher)
        return sum(value for (vid, key), value in
                   sorted(self._gauge_last.items())
                   if split_series_key(key)[0] == name
                   and _series_matches(key, matcher))

    def merged_histogram(self, matcher: str
                         ) -> Optional[Dict[str, object]]:
        """Bucket-merge matching latest histograms fleet-wide."""
        name, _ = split_series_key(matcher)
        rows = [summary for (vid, key), summary in
                sorted(self._hist_last.items())
                if split_series_key(key)[0] == name
                and _series_matches(key, matcher)]
        return merge_histograms(rows) if rows else None

    def hist_percentile(self, matcher: str, q: float) -> Optional[float]:
        merged = self.merged_histogram(matcher)
        if merged is None or not int(merged.get("count", 0)):
            return None
        return histogram_percentile(merged, q)

    def top_series(self, matcher: str, epoch: int, window_epochs: int,
                   n: int = 5) -> List[Tuple[str, float]]:
        """Top-N *series keys* (not vehicles) by windowed delta —
        e.g. the denial subjects dominating the fleet right now."""
        lo = epoch - window_epochs + 1
        name, _ = split_series_key(matcher)
        totals: Dict[str, float] = {}
        for vid, key in self._by_name.get(name, ()):
            hist = self._counter_hist.get((vid, key))
            if hist is None or not _series_matches(key, matcher):
                continue
            total = sum(delta for e, delta in hist if lo <= e <= epoch)
            if total > 0:
                totals[key] = totals.get(key, 0.0) + total
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    # -- deterministic rollups ---------------------------------------------
    def counter_names(self) -> List[str]:
        return sorted(name for name in self._by_name
                      if any((vid, key) in self._counter_hist
                             for vid, key in self._by_name[name]))

    def rollups(self, epoch: Optional[int] = None) -> Dict[str, object]:
        """Windowed rate/p50/p99 per counter metric — deterministic
        (counters only, sorted iteration, virtual-clock denominators)."""
        at = self.last_epoch if epoch is None else epoch
        windows: Dict[str, object] = {}
        for label, span in (("short", self.short_window),
                            ("long", self.long_window)):
            series: Dict[str, object] = {}
            for name in self.counter_names():
                rate = self.fleet_rate(name, at, span)
                if rate <= 0:
                    continue
                series[name] = {
                    "fleet_per_s": round(rate, 6),
                    "p50_per_s": round(
                        self.rate_percentile(name, at, span, 50), 6),
                    "p99_per_s": round(
                        self.rate_percentile(name, at, span, 99), 6),
                }
            windows[label] = {"epochs": span, "series": series}
        return {"epoch": at, "windows": windows}

    def rollup_digest(self, epoch: Optional[int] = None) -> str:
        payload = json.dumps(self.rollups(epoch), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- OpenMetrics exposition --------------------------------------------
    def to_openmetrics(self) -> str:
        """Whole-fleet Prometheus text exposition.

        Per-vehicle series carry a ``vehicle`` label (values escaped by
        the exposition layer); fleet sums are prefixed ``fleet_``.
        Vehicles that stopped reporting retain their last-seen series.
        """
        reg = MetricsRegistry(max_series_per_metric=2 ** 31)
        fleet_counters: Dict[str, float] = {}
        for (vid, key), value in sorted(self._counter_last.items()):
            name, labels = split_series_key(key)
            labels["vehicle"] = vid
            reg.counter(name, labels).inc(int(value))
            fleet_counters[key] = fleet_counters.get(key, 0.0) + value
        for key, value in sorted(fleet_counters.items()):
            name, labels = split_series_key(key)
            reg.counter(f"fleet_{name}", labels).inc(int(value))
        fleet_gauges: Dict[str, float] = {}
        for (vid, key), value in sorted(self._gauge_last.items()):
            name, labels = split_series_key(key)
            labels["vehicle"] = vid
            reg.gauge(name, labels).set(value)
            fleet_gauges[key] = fleet_gauges.get(key, 0.0) + value
        for key, value in sorted(fleet_gauges.items()):
            name, labels = split_series_key(key)
            reg.gauge(f"fleet_{name}", labels).set(value)
        hist_names = sorted({split_series_key(key)[0]
                             for _, key in self._hist_last})
        for name in hist_names:
            merged = self.merged_histogram(name)
            if merged is None or not merged.get("bounds"):
                continue
            hist = reg.histogram(f"fleet_{name}",
                                 bounds=merged["bounds"])
            hist.bucket_counts = list(merged["buckets"])
            hist.count = int(merged["count"])
            hist.total = float(merged["sum"])
            hist.min = float(merged["min"])
            hist.max = float(merged["max"])
        reg.counter("telemetry_frames_total").inc(self.frames_total)
        reg.gauge("telemetry_series_tracked").set(self.series_tracked)
        for name in sorted(self.series_dropped):
            reg.counter("telemetry_series_dropped",
                        {"metric": name}).inc(self.series_dropped[name])
        return reg.to_prometheus()


# -- the SLO engine ------------------------------------------------------------

class SloEngine:
    """Multi-window burn-rate evaluation over the aggregator."""

    #: Alert history kept for reporting (evaluation is stateless).
    HISTORY_LIMIT = 256

    def __init__(self, slos: Tuple[SloSpec, ...],
                 aggregator: TelemetryAggregator):
        self.slos = tuple(slos)
        self.agg = aggregator
        self.alerts_total = 0
        self.alerts: List[SloAlert] = []
        #: Objective name (+vehicle) -> consecutive alerted epochs.
        self.burning: Dict[str, int] = {}

    def _measure(self, slo: SloSpec, epoch: int, window: int,
                 vehicle: Optional[str] = None) -> Optional[float]:
        if slo.kind == "rate":
            if vehicle is not None:
                return self.agg.per_vehicle_rates(
                    slo.series, epoch, window).get(vehicle, 0.0)
            return self.agg.fleet_rate(slo.series, epoch, window)
        if slo.kind == "gauge":
            return self.agg.gauge_total(slo.series)
        if slo.kind == "ratio":
            return self.agg.fleet_ratio(slo.numerator, slo.denominator,
                                        epoch, window)
        if slo.kind == "p99_ms":
            p99_ns = self.agg.hist_percentile(slo.series, 99)
            return None if p99_ns is None else p99_ns / 1e6
        return None

    @staticmethod
    def burn_rate(slo: SloSpec, measured: float) -> float:
        """Pressure against the objective; 1.0 = exactly at threshold."""
        if slo.op == "max":
            if slo.threshold <= 0:
                return BURN_CLAMP if measured > 0 else 0.0
            return min(BURN_CLAMP, measured / slo.threshold)
        if measured <= 0:
            return BURN_CLAMP if slo.threshold > 0 else 0.0
        return min(BURN_CLAMP, slo.threshold / measured)

    def _evaluate_one(self, slo: SloSpec, epoch: int,
                      vehicle: Optional[str]) -> Optional[SloAlert]:
        short = self._measure(slo, epoch, self.agg.short_window, vehicle)
        long_ = self._measure(slo, epoch, self.agg.long_window, vehicle)
        scope = vehicle or ""
        key = f"{slo.name}:{scope}" if scope else slo.name
        if short is None or long_ is None:
            self.burning.pop(key, None)
            return None             # no data: an SLO can't burn on silence
        burn_short = self.burn_rate(slo, short)
        burn_long = self.burn_rate(slo, long_)
        if burn_short > slo.burn_factor and \
                burn_long > slo.burn_factor:
            self.burning[key] = self.burning.get(key, 0) + 1
            return SloAlert(slo=slo.name, epoch=epoch, vehicle_id=scope,
                            threshold=slo.threshold, op=slo.op,
                            measured_short=short, measured_long=long_,
                            burn_short=burn_short, burn_long=burn_long)
        self.burning.pop(key, None)
        return None

    def evaluate(self, epoch: int,
                 vehicle_ids: Tuple[str, ...]) -> List[SloAlert]:
        """All objectives at one barrier; per-vehicle specs fan out over
        *vehicle_ids* in sorted order.

        Burn-rate alerting needs a full long window of history — before
        that, cold-start artifacts (an empty AVC, zero traffic) would
        read as infinite burns — so evaluation warms up silently.
        """
        if epoch + 1 < self.agg.long_window:
            return []
        fired: List[SloAlert] = []
        for slo in self.slos:
            if slo.per_vehicle:
                for vid in sorted(vehicle_ids):
                    alert = self._evaluate_one(slo, epoch, vid)
                    if alert is not None:
                        fired.append(alert)
            else:
                alert = self._evaluate_one(slo, epoch, None)
                if alert is not None:
                    fired.append(alert)
        self.alerts_total += len(fired)
        self.alerts.extend(fired)
        del self.alerts[:-self.HISTORY_LIMIT]
        return fired

    def status_rows(self, epoch: int,
                    vehicle_ids: Tuple[str, ...] = ()
                    ) -> List[Dict[str, object]]:
        """One display row per objective (worst vehicle for per-vehicle
        specs) — what ``sackctl fleet top`` renders."""
        rows: List[Dict[str, object]] = []
        for slo in self.slos:
            scopes = sorted(vehicle_ids) if slo.per_vehicle else [None]
            worst: Optional[Dict[str, object]] = None
            for vid in scopes:
                short = self._measure(slo, epoch,
                                      self.agg.short_window, vid)
                long_ = self._measure(slo, epoch,
                                      self.agg.long_window, vid)
                if short is None or long_ is None:
                    continue
                burn_short = self.burn_rate(slo, short)
                burn_long = self.burn_rate(slo, long_)
                key = f"{slo.name}:{vid}" if vid else slo.name
                row = {"objective": slo.describe(),
                       "scope": vid or "fleet",
                       "measured_short": round(short, 4),
                       "burn_short": round(burn_short, 4),
                       "burn_long": round(burn_long, 4),
                       "state": "ALERT" if key in self.burning
                       else "ok"}
                if worst is None or row["burn_short"] > \
                        worst["burn_short"]:
                    worst = row
            rows.append(worst if worst is not None else
                        {"objective": slo.describe(), "scope": "-",
                         "measured_short": None, "burn_short": 0.0,
                         "burn_long": 0.0, "state": "no data"})
        return rows

    def summary(self) -> Dict[str, object]:
        return {
            "objectives": [slo.describe() for slo in self.slos],
            "alerts_total": self.alerts_total,
            "burning": dict(sorted(self.burning.items())),
            "alerts": [a.to_dict() for a in self.alerts[-32:]],
        }


# -- the orchestrator-facing facade --------------------------------------------

class _FleetClock:
    """Adapter so the telemetry obs hub reads the fleet virtual clock."""

    def __init__(self):
        self.now_ns = 0


class FleetTelemetry:
    """Owns the pipeline for one :class:`~repro.fleet.orchestrator.Fleet`."""

    def __init__(self, fleet):
        self.fleet = fleet
        cfg = fleet.config
        epoch_duration_ns = int(cfg.epoch_ticks * cfg.dt_s * 1e9)
        self.aggregator = TelemetryAggregator(
            epoch_duration_ns=epoch_duration_ns,
            short_window_epochs=cfg.telemetry_short_window_epochs,
            long_window_epochs=cfg.telemetry_long_window_epochs,
            max_series=cfg.telemetry_max_series)
        slos = tuple(cfg.slos) if cfg.slos else default_slos()
        self.engine = SloEngine(slos, self.aggregator)
        self.epochs_collected = 0
        self.last_frames = 0
        #: Self-accounting hub — separate from the vehicle kernels so
        #: per-kernel counter roll-ups (and fingerprints) never move.
        self.clock = _FleetClock()
        self.obs = Observability(clock=self.clock)
        self.obs.spans.enable()
        self.last_alerts: List[SloAlert] = []

    def collect(self, epoch: int) -> List[SloAlert]:
        """Snapshot every live vehicle, ingest, evaluate SLOs.

        Returns this barrier's alerts; the modelled serial cost
        (frames x :data:`TELEMETRY_COST_PER_FRAME_NS`) is charged by
        the orchestrator into the barrier makespan.
        """
        fleet = self.fleet
        self.clock.now_ns = fleet.sim_now_ns
        span = self.obs.spans.start_span("telemetry_overhead",
                                         stage="fleet",
                                         attributes={"epoch": epoch})
        t0 = time.perf_counter_ns()
        frames = 0
        live = []
        for vid in fleet.ids:
            if fleet.supervisor.is_dead(vid):
                continue            # retention: last series stay exported
            frame = fleet.host.telemetry_frame(vid, epoch,
                                               fleet.sim_now_ns)
            self.aggregator.ingest(frame)
            frames += 1
            live.append(vid)
        alerts = self.engine.evaluate(epoch, tuple(live))
        self.epochs_collected += 1
        self.last_frames = frames
        self.last_alerts = alerts
        self.obs.metrics.counter("telemetry_frames_total").inc(frames)
        self.obs.metrics.counter("telemetry_epochs_total").inc()
        if alerts:
            self.obs.metrics.counter("telemetry_slo_alerts_total").inc(
                len(alerts))
        self.obs.metrics.histogram("telemetry_overhead_cpu_ns").record(
            time.perf_counter_ns() - t0)
        self.obs.spans.end_span(span)
        return alerts

    def virtual_cost_ns(self, frames: int) -> int:
        return frames * TELEMETRY_COST_PER_FRAME_NS

    def summary(self) -> Dict[str, object]:
        """The report's ``telemetry`` section.  Everything here is
        deterministic except the ``overhead`` key, which carries host
        CPU timings — :meth:`FleetReport.fingerprint` strips it."""
        agg = self.aggregator
        overhead_hist = self.obs.metrics.histogram(
            "telemetry_overhead_cpu_ns")
        return {
            "epochs": self.epochs_collected,
            "frames": agg.frames_total,
            "series_tracked": agg.series_tracked,
            "series_dropped": dict(sorted(agg.series_dropped.items())),
            "rollups": agg.rollups(),
            "rollup_digest": agg.rollup_digest(),
            "slo": self.engine.summary(),
            "virtual_cost_ns": self.virtual_cost_ns(agg.frames_total),
            "overhead": {
                "cpu_ns_total": int(overhead_hist.total),
                "cpu_ns_mean": int(overhead_hist.mean),
            },
        }
