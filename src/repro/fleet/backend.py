"""Fleet execution backends: where the vehicle kernels actually live.

The epoch-barrier scheduler (:class:`~repro.fleet.orchestrator.Fleet`)
never touches a vehicle object directly any more — every per-vehicle
effect goes through a **host**:

* :class:`InProcessHost` — the vehicles live in the coordinator's own
  process (the ``serial`` and ``threads`` backends).  Every method is
  the exact loop the orchestrator used to run inline, so serial runs
  are byte-identical to pre-backend builds.

* :class:`ProcessHost` — the ``process`` backend.  Vehicles are
  sharded across persistent worker processes (static ownership:
  ``index % workers``) connected by duplex pipes.  Within an epoch a
  vehicle is share-nothing; only canonical barrier messages (see
  :mod:`repro.fleet.wire`) cross the process boundary:

  - ``barrier_a``: online flags, driver actions, V2X deliveries →
    per-message reactions,
  - ``barrier_b``: rollout commands → acks + bundle versions,
  - ``tick``: the tick phase → exceptions, drained transitions,
    positions, health snapshots, optional telemetry frames,
  - ``checkpoint`` / ``restore`` / ``arm_fault`` / ``report`` / ``stop``.

  All seeded randomness stays where its RNG lives: the fleet plan and
  bus draw in the coordinator, each vehicle's own fault plan draws in
  its worker — so the global draw order of every RNG stream matches the
  serial backend and fleet fingerprints are bit-for-bit identical at
  any worker count (proven by ``tests/fleet/test_backend_conformance``).

The coordinator keeps per-vehicle mirrors (position, health, bundle
version, fresh transitions, telemetry frames) refreshed by each RPC, so
barrier logic — rollout gating, invariants I8/I9/I10, reporting — reads
local state and never blocks mid-phase.
"""

from __future__ import annotations

import multiprocessing
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..obs.telemetry import snapshot_frame
from . import wire
from .resilience import CheckpointStore, EpochRecord, replay_epoch
from .vehicle import FleetVehicle, apply_driver_action

#: Modelled virtual cost of one payload crossing a process boundary
#: (a delivered V2X copy, a rollout command, a telemetry frame).  The
#: process backend's barrier pays this on top of the per-vehicle serial
#: barrier cost — real parallel ticks are bought with real IPC.
IPC_COST_PER_CROSSING_NS = 100_000


class InProcessHost:
    """Vehicles in the coordinator process (serial / threads backends)."""

    def __init__(self, fleet):
        self.fleet = fleet
        self._checkpoints = CheckpointStore()

    # -- lifecycle ---------------------------------------------------------
    def boot(self) -> Dict[str, Dict[str, object]]:
        fleet = self.fleet
        cfg = fleet.config
        for spec in fleet._vehicle_specs:
            vehicle = FleetVehicle(**spec)
            if cfg.start_moving:
                dyn = vehicle.world.dynamics
                dyn.start_engine()
                dyn.accelerate(cfg.cruise_accel_ms2)
            fleet.vehicles[vehicle.vehicle_id] = vehicle
        return {vid: fleet.vehicles[vid].health_snapshot()
                for vid in fleet.ids}

    def close(self) -> None:
        pass

    # -- barrier phases ----------------------------------------------------
    def set_online(self, flags: Dict[str, bool]) -> None:
        for vid, on in flags.items():
            self.fleet.vehicles[vid].online = on

    def apply_actions(self, actions: List[Tuple[str, str]]) -> None:
        cfg = self.fleet.config
        for vid, action in actions:
            apply_driver_action(self.fleet.vehicles[vid], action,
                                cfg.cruise_accel_ms2)

    def deliver(self, due: Dict[str, list]
                ) -> List[Tuple[str, object, str]]:
        out: List[Tuple[str, object, str]] = []
        for vid, messages in due.items():
            vehicle = self.fleet.vehicles.get(vid)
            if vehicle is None:
                continue
            for message in messages:
                out.append((vid, message, vehicle.deliver(message)))
        return out

    def apply_commands(self, commands: list, now_ns: int) -> list:
        fleet = self.fleet
        return [fleet.vehicles[c.vehicle_id].apply_bundle(
                    c.bundle, fleet.config.fleet_key, now_ns=now_ns)
                for c in commands]

    def tick(self, tickable: List[str],
             frame_spec: Optional[Tuple[int, int]] = None) -> None:
        fleet = self.fleet
        cfg = fleet.config
        sup = fleet.supervisor
        shards = [tickable[i::cfg.workers] for i in range(cfg.workers)]

        def run_shard(shard: List[str]) -> None:
            for vid in shard:
                vehicle = fleet.vehicles[vid]
                try:
                    for _ in range(cfg.epoch_ticks):
                        vehicle.tick(dt_s=cfg.dt_s)
                except Exception as exc:   # a vehicle kernel died mid-tick
                    sup.note_tick_exception(vid, exc)

        if cfg.backend == "threads" and cfg.workers > 1:
            with ThreadPoolExecutor(max_workers=cfg.workers) as pool:
                list(pool.map(run_shard, shards))
        else:
            for shard in shards:
                run_shard(shard)

    # -- per-vehicle reads -------------------------------------------------
    def positions(self) -> Dict[str, float]:
        return {vid: self.fleet.vehicles[vid].position_km
                for vid in self.fleet.ids}

    def drain_transitions(self, vid: str) -> list:
        return self.fleet.vehicles[vid].drain_transitions()

    def health_snapshot(self, vid: str) -> Dict[str, object]:
        return self.fleet.vehicles[vid].health_snapshot()

    def bundle_version(self, vid: str):
        return self.fleet.vehicles[vid].bundle_version

    def telemetry_frame(self, vid: str, epoch: int, at_ns: int):
        return snapshot_frame(self.fleet.vehicles[vid].world.kernel.obs,
                              vid, epoch, at_ns)

    def report_rows(self) -> Dict[str, Dict[str, object]]:
        rows: Dict[str, Dict[str, object]] = {}
        for vid in self.fleet.ids:
            vehicle = self.fleet.vehicles[vid]
            vehicle.drain_transitions()     # flush stragglers
            rows[vid] = {
                "transitions": list(vehicle.transition_log),
                "metrics": vehicle.world.kernel.obs.metrics.to_dict(),
                "situation": vehicle.situation or "",
                "bundle_version": vehicle.bundle_version,
                "apply_log": list(vehicle.apply_log),
            }
        return rows

    # -- faults ------------------------------------------------------------
    def arm_fault(self, vid: str, point: str,
                  knobs: Dict[str, object]) -> None:
        from ..faults.plan import FaultPlan
        vehicle = self.fleet.vehicles[vid]
        if vehicle.fault_plan is None:
            vehicle.fault_plan = FaultPlan(vehicle.seed)
        vehicle.fault_plan.arm(point, **knobs)

    # -- checkpoint custody ------------------------------------------------
    @property
    def checkpoints_taken(self) -> int:
        return self._checkpoints.taken

    def checkpoint_take(self, vid: str, epoch: int) -> str:
        return self._checkpoints.take(self.fleet.vehicles[vid],
                                      epoch).digest

    def checkpoint_meta(self, vid: str) -> Optional[Tuple[int, str]]:
        ckpt = self._checkpoints.get(vid)
        if ckpt is None:
            return None
        return ckpt.epoch, ckpt.digest

    def checkpoint_rows(self) -> List[Dict[str, object]]:
        return self._checkpoints.to_rows()

    def restore_vehicle(self, vid: str, full_records: List[EpochRecord],
                        barrier_record: Optional[EpochRecord],
                        baseline_epoch: int) -> Dict[str, object]:
        fleet = self.fleet
        cfg = fleet.config
        restored = self._checkpoints.materialize(vid)
        replayed = 0
        for record in full_records:
            replay_epoch(restored, record, cfg.epoch_ticks, cfg.dt_s,
                         cfg.fleet_key, cfg.cruise_accel_ms2,
                         with_ticks=True)
            replayed += 1
        if barrier_record is not None:
            replay_epoch(restored, barrier_record, cfg.epoch_ticks,
                         cfg.dt_s, cfg.fleet_key, cfg.cruise_accel_ms2,
                         with_ticks=False)
            replayed += 1
        wreck_digest = fleet.vehicles[vid].state_digest()
        restored_digest = restored.state_digest()
        fleet.vehicles[vid] = restored
        restored.online = True
        self._checkpoints.take(restored, baseline_epoch)
        return {
            "wreck_digest": wreck_digest,
            "restored_digest": restored_digest,
            "replayed": replayed,
            "health": restored.health_snapshot(),
            "position": restored.position_km,
            "situation": restored.situation or "",
            "bundle_version": restored.bundle_version,
        }

    def drain_crossings(self) -> int:
        return 0


# -- the process backend -------------------------------------------------------

def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:          # non-POSIX fallback; still correct
        return multiprocessing.get_context()


class ProcessHost:
    """Vehicles sharded across persistent worker processes.

    Static ownership — vehicle ``index % workers`` — so a vehicle's
    whole life (build, ticks, bundle applies, checkpoints, restores)
    happens in one worker and nothing ever migrates.  The coordinator
    ships only wire-canonical barrier payloads and keeps read mirrors;
    each mirror is refreshed by the RPC whose phase could change it.
    """

    def __init__(self, fleet):
        self.fleet = fleet
        self._workers: List[multiprocessing.Process] = []
        self._conns: List[Any] = []
        self._owner: Dict[str, int] = {}
        self._pending_flags: Dict[str, bool] = {}
        self._pending_actions: List[Tuple[str, str]] = []
        # Coordinator mirrors (refreshed per RPC).
        self._positions: Dict[str, float] = {}
        self._health: Dict[str, Dict[str, object]] = {}
        self._versions: Dict[str, object] = {}
        self._fresh_transitions: Dict[str, list] = {}
        self._frames: Dict[str, object] = {}
        self._ckpt_meta: Dict[str, Tuple[int, str]] = {}
        self.checkpoints_taken = 0
        self._crossings = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def boot(self) -> Dict[str, Dict[str, object]]:
        fleet = self.fleet
        cfg = fleet.config
        ctx = _fork_context()
        owned: List[List[Dict[str, object]]] = \
            [[] for _ in range(cfg.workers)]
        for index, spec in enumerate(fleet._vehicle_specs):
            owner = index % cfg.workers
            owned[owner].append(spec)
            self._owner[spec["vehicle_id"]] = owner
        init_config = {
            "start_moving": cfg.start_moving,
            "cruise_accel_ms2": cfg.cruise_accel_ms2,
            "epoch_ticks": cfg.epoch_ticks,
            "dt_s": cfg.dt_s,
            "fleet_key": cfg.fleet_key,
        }
        for w in range(cfg.workers):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_worker_main, args=(child,),
                               daemon=True, name=f"fleet-worker-{w}")
            proc.start()
            child.close()
            self._conns.append(parent)
            self._workers.append(proc)
        replies = self._rpc_all("init", {
            w: {"specs": owned[w], "config": init_config}
            for w in range(cfg.workers)})
        health: Dict[str, Dict[str, object]] = {}
        for reply in replies.values():
            for vid, snap in reply["health"].items():
                health[vid] = wire.decode_health(snap)
            self._positions.update(reply["positions"])
        for vid in fleet.ids:
            self._versions[vid] = None
            self._health[vid] = health[vid]
        return {vid: health[vid] for vid in fleet.ids}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._workers:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()

    # -- RPC plumbing ------------------------------------------------------
    def _rpc_all(self, op: str, payloads: Dict[int, object]
                 ) -> Dict[int, Any]:
        if self._closed:
            raise RuntimeError("fleet process backend already closed")
        for w, payload in payloads.items():
            self._conns[w].send((op, payload))
        replies: Dict[int, Any] = {}
        for w in payloads:
            status, data = self._conns[w].recv()
            if status != "ok":
                raise RuntimeError(
                    f"fleet worker {w} failed during {op!r}:\n{data}")
            replies[w] = data
        return replies

    def _rpc_one(self, vid: str, op: str, payload: object) -> Any:
        w = self._owner[vid]
        return self._rpc_all(op, {w: payload})[w]

    # -- barrier phases ----------------------------------------------------
    def set_online(self, flags: Dict[str, bool]) -> None:
        self._pending_flags.update(flags)

    def apply_actions(self, actions: List[Tuple[str, str]]) -> None:
        self._pending_actions.extend(actions)

    def deliver(self, due: Dict[str, list]
                ) -> List[Tuple[str, object, str]]:
        workers = range(self.fleet.config.workers)
        per: Dict[int, Dict[str, object]] = {
            w: {"flags": {}, "actions": [], "deliveries": []}
            for w in workers}
        for vid, on in self._pending_flags.items():
            per[self._owner[vid]]["flags"][vid] = on
        for vid, action in self._pending_actions:
            per[self._owner[vid]]["actions"].append([vid, action])
        for vid, messages in due.items():
            owner = self._owner.get(vid)
            if owner is None:
                continue
            per[owner]["deliveries"].append(
                [vid, [wire.encode_message(m) for m in messages]])
            self._crossings += len(messages)
        self._pending_flags = {}
        self._pending_actions = []
        replies = self._rpc_all("barrier_a", per)
        reactions: Dict[str, List[str]] = {}
        for reply in replies.values():
            for vid, rs in reply["reactions"]:
                reactions[vid] = rs
        out: List[Tuple[str, object, str]] = []
        for vid, messages in due.items():
            for message, reaction in zip(messages,
                                         reactions.get(vid, ())):
                out.append((vid, message, reaction))
        return out

    def apply_commands(self, commands: list, now_ns: int) -> list:
        if not commands:
            return []
        workers = range(self.fleet.config.workers)
        per: Dict[int, Dict[str, object]] = {
            w: {"commands": [], "now_ns": now_ns} for w in workers}
        for idx, command in enumerate(commands):
            per[self._owner[command.vehicle_id]]["commands"].append(
                [idx, command.vehicle_id,
                 wire.encode_bundle(command.bundle)])
            self._crossings += 1
        replies = self._rpc_all(
            "barrier_b",
            {w: payload for w, payload in per.items()
             if payload["commands"]})
        acks_by_idx: Dict[int, object] = {}
        for reply in replies.values():
            for idx, ackdoc in reply["acks"]:
                acks_by_idx[idx] = wire.decode_ack(ackdoc)
            self._versions.update(reply["bundle_versions"])
        return [acks_by_idx[idx] for idx in range(len(commands))]

    def tick(self, tickable: List[str],
             frame_spec: Optional[Tuple[int, int]] = None) -> None:
        fleet = self.fleet
        cfg = fleet.config
        sup = fleet.supervisor
        drain = [vid for vid in fleet.ids if not sup.is_dead(vid)]
        per: Dict[int, Dict[str, object]] = {
            w: {"tickable": [], "drain": [],
                "epoch_ticks": cfg.epoch_ticks, "dt_s": cfg.dt_s,
                "frame": list(frame_spec) if frame_spec else None}
            for w in range(cfg.workers)}
        for vid in tickable:
            per[self._owner[vid]]["tickable"].append(vid)
        for vid in drain:
            per[self._owner[vid]]["drain"].append(vid)
        self._fresh_transitions = {}
        self._frames = {}
        replies = self._rpc_all("tick", per)
        failures: Dict[str, str] = {}
        for reply in replies.values():
            failures.update(reply["exceptions"])
            self._positions.update(reply["positions"])
            for vid, doc in reply["transitions"].items():
                self._fresh_transitions[vid] = \
                    wire.decode_transitions(doc)
            for vid, snap in reply["health"].items():
                self._health[vid] = wire.decode_health(snap)
            for framedoc in reply["frames"]:
                frame = wire.decode_frame(framedoc)
                self._frames[frame.vehicle_id] = frame
                self._crossings += 1
        for vid in sorted(failures):
            sup.note_tick_failure(vid, failures[vid])

    # -- per-vehicle reads (mirrors) ---------------------------------------
    def positions(self) -> Dict[str, float]:
        return {vid: self._positions[vid] for vid in self.fleet.ids}

    def drain_transitions(self, vid: str) -> list:
        return self._fresh_transitions.pop(vid, [])

    def health_snapshot(self, vid: str) -> Dict[str, object]:
        return self._health[vid]

    def bundle_version(self, vid: str):
        return self._versions[vid]

    def telemetry_frame(self, vid: str, epoch: int, at_ns: int):
        return self._frames.get(vid)

    def report_rows(self) -> Dict[str, Dict[str, object]]:
        replies = self._rpc_all(
            "report", {w: None for w in range(self.fleet.config.workers)})
        rows: Dict[str, Dict[str, object]] = {}
        for reply in replies.values():
            for vid, row in reply.items():
                rows[vid] = {
                    "transitions": wire.decode_transitions(
                        row["transitions"]),
                    "metrics": row["metrics"],
                    "situation": row["situation"],
                    "bundle_version": row["bundle_version"],
                    "apply_log": [tuple(entry)
                                  for entry in row["apply_log"]],
                }
        return rows

    # -- faults ------------------------------------------------------------
    def arm_fault(self, vid: str, point: str,
                  knobs: Dict[str, object]) -> None:
        self._rpc_one(vid, "arm_fault",
                      {"vid": vid, "point": point, "knobs": knobs})

    # -- checkpoint custody ------------------------------------------------
    def checkpoint_take(self, vid: str, epoch: int) -> str:
        reply = self._rpc_one(vid, "checkpoint",
                              {"vid": vid, "epoch": epoch})
        self._ckpt_meta[vid] = (epoch, reply["digest"])
        self.checkpoints_taken += 1
        return reply["digest"]

    def checkpoint_meta(self, vid: str) -> Optional[Tuple[int, str]]:
        return self._ckpt_meta.get(vid)

    def checkpoint_rows(self) -> List[Dict[str, object]]:
        return [{"vehicle": vid, "epoch": meta[0], "digest": meta[1]}
                for vid, meta in sorted(self._ckpt_meta.items())]

    def restore_vehicle(self, vid: str, full_records: List[EpochRecord],
                        barrier_record: Optional[EpochRecord],
                        baseline_epoch: int) -> Dict[str, object]:
        reply = self._rpc_one(vid, "restore", {
            "vid": vid,
            "full": [wire.encode_record(r) for r in full_records],
            "barrier": wire.encode_record(barrier_record)
            if barrier_record is not None else None,
            "baseline_epoch": baseline_epoch,
        })
        result = {
            "wreck_digest": reply["wreck_digest"],
            "restored_digest": reply["restored_digest"],
            "replayed": reply["replayed"],
            "health": wire.decode_health(reply["health"]),
            "position": reply["position"],
            "situation": reply["situation"],
            "bundle_version": reply["bundle_version"],
        }
        self._positions[vid] = result["position"]
        self._health[vid] = result["health"]
        self._versions[vid] = result["bundle_version"]
        self._ckpt_meta[vid] = (baseline_epoch, reply["baseline_digest"])
        self.checkpoints_taken += 1
        return result

    # -- cost model --------------------------------------------------------
    def drain_crossings(self) -> int:
        crossings = self._crossings
        self._crossings = 0
        return crossings


# -- the worker process --------------------------------------------------------

def _worker_main(conn) -> None:
    """One fleet worker: builds its vehicles from deterministic ctor
    specs and serves barrier RPCs until told to stop.  Everything it
    sends back is wire-canonical (or raw metric primitives); everything
    nondeterministic it could touch — wall clock, pids — never enters a
    reply payload."""
    vehicles: Dict[str, FleetVehicle] = {}
    checkpoints = CheckpointStore()
    config: Dict[str, Any] = {}
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        try:
            if op == "stop":
                conn.send(("ok", None))
                return
            conn.send(("ok", _worker_dispatch(
                op, payload, vehicles, checkpoints, config)))
        except Exception:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                return


def _worker_dispatch(op: str, payload, vehicles: Dict[str, FleetVehicle],
                     checkpoints: CheckpointStore,
                     config: Dict[str, Any]):
    if op == "init":
        config.update(payload["config"])
        health: Dict[str, object] = {}
        positions: Dict[str, float] = {}
        for spec in payload["specs"]:
            vehicle = FleetVehicle(**spec)
            if config["start_moving"]:
                dyn = vehicle.world.dynamics
                dyn.start_engine()
                dyn.accelerate(config["cruise_accel_ms2"])
            vehicles[vehicle.vehicle_id] = vehicle
            health[vehicle.vehicle_id] = \
                wire.encode_health(vehicle.health_snapshot())
            positions[vehicle.vehicle_id] = vehicle.position_km
        return {"health": health, "positions": positions}

    if op == "barrier_a":
        for vid in sorted(payload["flags"]):
            vehicles[vid].online = payload["flags"][vid]
        for vid, action in payload["actions"]:
            apply_driver_action(vehicles[vid], action,
                                config["cruise_accel_ms2"])
        reactions: List[list] = []
        for vid, msgdocs in payload["deliveries"]:
            vehicle = vehicles[vid]
            reactions.append([vid, [
                vehicle.deliver(wire.decode_message(doc))
                for doc in msgdocs]])
        return {"reactions": reactions}

    if op == "barrier_b":
        acks: List[list] = []
        versions: Dict[str, object] = {}
        for idx, vid, bundledoc in payload["commands"]:
            ack = vehicles[vid].apply_bundle(
                wire.decode_bundle(bundledoc), config["fleet_key"],
                now_ns=payload["now_ns"])
            acks.append([idx, wire.encode_ack(ack)])
            versions[vid] = vehicles[vid].bundle_version
        return {"acks": acks, "bundle_versions": versions}

    if op == "tick":
        exceptions: Dict[str, str] = {}
        for vid in payload["tickable"]:
            vehicle = vehicles[vid]
            try:
                for _ in range(payload["epoch_ticks"]):
                    vehicle.tick(dt_s=payload["dt_s"])
            except Exception as exc:
                exceptions[vid] = f"{type(exc).__name__}: {exc}"
        transitions: Dict[str, object] = {}
        health: Dict[str, object] = {}
        positions: Dict[str, float] = {}
        frames: List[object] = []
        frame_spec = payload["frame"]
        for vid in payload["drain"]:
            if vid in exceptions:
                continue        # serial leaves a wreck undrained too
            vehicle = vehicles[vid]
            fresh = vehicle.drain_transitions()
            if fresh:
                transitions[vid] = wire.encode_transitions(fresh)
            health[vid] = wire.encode_health(vehicle.health_snapshot())
            positions[vid] = vehicle.position_km
            if frame_spec is not None:
                frames.append(wire.encode_frame(snapshot_frame(
                    vehicle.world.kernel.obs, vid,
                    frame_spec[0], frame_spec[1])))
        return {"exceptions": exceptions, "transitions": transitions,
                "health": health, "positions": positions,
                "frames": frames}

    if op == "checkpoint":
        vid = payload["vid"]
        return {"digest": checkpoints.take(vehicles[vid],
                                           payload["epoch"]).digest}

    if op == "restore":
        vid = payload["vid"]
        restored = checkpoints.materialize(vid)
        replayed = 0
        for doc in payload["full"]:
            replay_epoch(restored, wire.decode_record(doc),
                         config["epoch_ticks"], config["dt_s"],
                         config["fleet_key"],
                         config["cruise_accel_ms2"], with_ticks=True)
            replayed += 1
        if payload["barrier"] is not None:
            replay_epoch(restored, wire.decode_record(payload["barrier"]),
                         config["epoch_ticks"], config["dt_s"],
                         config["fleet_key"],
                         config["cruise_accel_ms2"], with_ticks=False)
            replayed += 1
        wreck_digest = vehicles[vid].state_digest()
        restored_digest = restored.state_digest()
        vehicles[vid] = restored
        restored.online = True
        baseline = checkpoints.take(restored, payload["baseline_epoch"])
        return {
            "wreck_digest": wreck_digest,
            "restored_digest": restored_digest,
            "replayed": replayed,
            "health": wire.encode_health(restored.health_snapshot()),
            "position": restored.position_km,
            "situation": restored.situation or "",
            "bundle_version": restored.bundle_version,
            "baseline_digest": baseline.digest,
        }

    if op == "arm_fault":
        from ..faults.plan import FaultPlan
        vehicle = vehicles[payload["vid"]]
        if vehicle.fault_plan is None:
            vehicle.fault_plan = FaultPlan(vehicle.seed)
        vehicle.fault_plan.arm(payload["point"], **payload["knobs"])
        return None

    if op == "report":
        rows: Dict[str, Dict[str, object]] = {}
        for vid in sorted(vehicles):
            vehicle = vehicles[vid]
            vehicle.drain_transitions()     # flush stragglers
            rows[vid] = {
                "transitions": wire.encode_transitions(
                    vehicle.transition_log),
                "metrics": vehicle.world.kernel.obs.metrics.to_dict(),
                "situation": vehicle.situation or "",
                "bundle_version": vehicle.bundle_version,
                "apply_log": [list(entry)
                              for entry in vehicle.apply_log],
            }
        return rows

    raise ValueError(f"unknown fleet worker op {op!r}")


def create_host(fleet):
    """The host for ``fleet.config.backend``."""
    if fleet.config.backend == "process":
        return ProcessHost(fleet)
    return InProcessHost(fleet)
