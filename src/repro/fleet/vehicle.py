"""One fleet member: a full IVI world plus its fleet-side adapters.

A :class:`FleetVehicle` owns an independent simulated kernel (VFS, LSM
stack, SACKfs, SDS — everything :func:`~repro.vehicle.ivi.build_ivi_world`
assembles) and adds what fleet membership requires:

* a **V2X receiver**: delivered bus messages surface as a ``v2x_alert``
  *sensor* in the vehicle's own SDS sweep, so neighbour situations enter
  the pipeline exactly where local sensors do — detected, written through
  SACKfs, enforced by the SSM;
* **connectivity**: an offline vehicle receives no bus copies, no rollout
  commands, and sends no acks (the radio queues for it);
* the **bundle lifecycle**: verify → apply (through the real SACKfs
  policy-load path) → ack, with the last committed bundle retained for
  rollback.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from ..faults import points as fault_points
from ..faults.plan import FaultPlan, random_plan
from ..kernel.errors import KernelError
from ..sack import events as ev
from ..sds.detectors import Detector
from ..sds.sensors import Sensor
from ..sds.service import SensorHealth
from ..vehicle.ivi import EnforcementConfig, build_ivi_world
from .bundle import BundleVerificationError, PolicyBundle, verify_bundle
from .rollout import VehicleAck

#: Default V2X topics every vehicle listens on.
DEFAULT_TOPICS: Tuple[str, ...] = ("crash", "crash_cleared")

#: Ticks an unconfirmed alert persists before self-clearing (a lost
#: ``crash_cleared`` must not leave followers in emergency forever).
ALERT_TTL_TICKS = 80

#: Braking applied on a crash alert from the platoon ahead (m/s²).
ALERT_BRAKE_MS2 = -6.0

#: Enforcement backend per fleet mode name.
MODE_CONFIGS: Dict[str, EnforcementConfig] = {
    "independent": EnforcementConfig.SACK_INDEPENDENT,
    "apparmor": EnforcementConfig.SACK_APPARMOR,
}


def apply_driver_action(vehicle: "FleetVehicle", action: str,
                        cruise_accel_ms2: float = 3.0) -> None:
    """Apply one scenario-driver action to a vehicle's dynamics.

    Module-level (not a ``Fleet`` method) so both the orchestrator and a
    process-backend worker replaying a journaled epoch execute the exact
    same code path.
    """
    dyn = vehicle.world.dynamics
    if action == "start":
        dyn.start_engine()
        dyn.accelerate(cruise_accel_ms2)
    elif action == "cruise":
        dyn.cruise()
    elif action == "brake":
        dyn.accelerate(-4.0)
    elif action == "crash":
        dyn.crash()
    elif action == "clear":
        dyn.clear_emergency()
        vehicle.clear_alert()
    elif action == "stop_engine":
        dyn.stop_engine()
    elif action == "driver_leaves":
        dyn.set_driver_present(False)
    elif action == "driver_returns":
        dyn.set_driver_present(True)
    else:
        raise ValueError(f"unknown driver action {action!r}")


class _V2xReceiverSensor(Sensor):
    """Surfaces the active V2X alert topic in the SDS sample sweep."""

    name = "v2x_alert"

    def __init__(self):
        self.active_topic = ""

    def sample(self, dynamics) -> str:
        return self.active_topic


class V2xAlertDetector(Detector):
    """Edge-triggered mapping from V2X alerts to situation events.

    A rising ``crash`` alert emits ``crash_detected`` — the follower's
    SSM transitions to *emergency* because of a neighbour's crash, the
    paper's situation-awareness story at platoon scale.  The falling
    edge emits ``emergency_cleared`` only if this detector raised the
    alarm (a vehicle in emergency from its *own* crash must not be
    cleared by a neighbour's recovery).
    """

    name = "v2x_alert"

    #: topic -> situation event emitted on the rising edge.
    RISING = {"crash": ev.CRASH_DETECTED}

    def __init__(self):
        self._active = ""
        self._raised = False

    def update(self, samples, now_ns: int) -> List[str]:
        topic = str(samples.get("v2x_alert", "") or "")
        if topic == self._active:
            return []
        previous, self._active = self._active, topic
        if topic and topic in self.RISING and not previous:
            self._raised = True
            return [self.RISING[topic]]
        if not topic and self._raised:
            self._raised = False
            return [ev.EMERGENCY_CLEARED]
        return []

    def resync(self) -> None:
        # A live alert must re-edge into the freshly loaded SSM.
        self._active = ""
        self._raised = False


class FleetVehicle:
    """One vehicle in the fleet: world + V2X + connectivity + bundles."""

    def __init__(self, vehicle_id: str, index: int, seed: int,
                 mode: str = "independent",
                 start_km: float = 0.0,
                 fault_intensity: float = 0.0,
                 policy_text: Optional[str] = None,
                 alert_ttl_ticks: int = ALERT_TTL_TICKS):
        config = MODE_CONFIGS.get(mode)
        if config is None:
            raise ValueError(
                f"unknown fleet mode {mode!r}; accepted modes: "
                f"{', '.join(sorted(MODE_CONFIGS))}")
        self.vehicle_id = vehicle_id
        self.index = index
        self.seed = seed
        self.mode = mode
        self.start_km = start_km
        self.alert_ttl_ticks = alert_ttl_ticks
        #: Per-vehicle fault plan, seeded from the fleet seed and the
        #: vehicle index so every vehicle draws an independent stream.
        self.fault_plan: Optional[FaultPlan] = None
        if fault_intensity > 0:
            self.fault_plan = random_plan(seed, intensity=fault_intensity)
        kwargs = {}
        if policy_text is not None:
            kwargs["policy_text"] = policy_text
        self.world = build_ivi_world(config, fault_plan=self.fault_plan,
                                     **kwargs)
        self.receiver = _V2xReceiverSensor()
        self.world.sds.sensors.append(self.receiver)
        self.world.sds.health[self.receiver.name] = SensorHealth()
        self.world.sds.detectors.append(V2xAlertDetector())

        self.online = True
        self.tick_count = 0
        self._alert_expires_at: Optional[int] = None
        #: Transitions observed since fleet start, surviving the SSM
        #: replacement a policy (bundle) load performs.
        self.transition_log: List[Tuple[str, str, str, int]] = []
        self._seen_ssm = self._ssm()
        self._seen_transitions = self._seen_ssm.transition_count
        #: Bundle lifecycle: committed = last known-good, applied version.
        self.bundle_version: Optional[int] = None
        self.committed_bundle: Optional[PolicyBundle] = None
        self.apply_log: List[Tuple[int, str]] = []   # (version, outcome)
        self.rejected_bundles = 0

    # -- basic accessors ---------------------------------------------------
    def _ssm(self):
        module = self.world.sack or self.world.bridge
        return module.ssm

    @property
    def situation(self) -> Optional[str]:
        return self.world.situation

    @property
    def position_km(self) -> float:
        return self.start_km + self.world.dynamics.position_km

    # -- time --------------------------------------------------------------
    def tick(self, dt_s: float = 0.1) -> List[str]:
        """One vehicle tick: dynamics + SDS + watchdog + alert TTL."""
        self.tick_count += 1
        if (self._alert_expires_at is not None
                and self.tick_count >= self._alert_expires_at):
            self.clear_alert()
        sent = self.world.run_sds(1, dt_s=dt_s)
        self.world.check_watchdog()
        return sent

    def drain_transitions(self) -> List[Tuple[str, str, str, int]]:
        """SSM transitions since the last drain (event, from, to, at_ns).

        The SSM's history is a bounded ring and a policy load swaps the
        SSM out entirely, so draining keys off ``transition_count`` and
        resets when the machine was replaced; everything drained is also
        appended to :attr:`transition_log`."""
        ssm = self._ssm()
        if ssm is not self._seen_ssm:
            self._seen_ssm = ssm
            self._seen_transitions = 0
        total = ssm.transition_count
        fresh_count = total - self._seen_transitions
        self._seen_transitions = total
        if fresh_count <= 0:
            return []
        history = list(ssm.history)
        fresh = [(t.event.name, t.from_state, t.to_state, t.at_ns)
                 for t in history[-min(fresh_count, len(history)):]]
        self.transition_log.extend(fresh)
        return fresh

    # -- V2X ---------------------------------------------------------------
    def deliver(self, message) -> str:
        """A bus copy arrives: inject into the SDS's sensor stream.

        Returns what the vehicle did about it (``"braked"``,
        ``"alerted"``, ``"cleared"``, or ``""``) so the fleet can
        publish follow-on events like ``emergency_brake``."""
        if message.topic == "crash":
            self.receiver.active_topic = "crash"
            self._alert_expires_at = self.tick_count + self.alert_ttl_ticks
            dyn = self.world.dynamics
            if dyn.engine_on and dyn.is_moving and not dyn.crashed:
                dyn.accelerate(ALERT_BRAKE_MS2)
                return "braked"
            return "alerted"
        if message.topic == "crash_cleared":
            self.clear_alert()
            return "cleared"
        return ""

    def clear_alert(self) -> None:
        self.receiver.active_topic = ""
        self._alert_expires_at = None

    # -- bundles -----------------------------------------------------------
    def apply_bundle(self, bundle: PolicyBundle, key: bytes,
                     now_ns: int = 0) -> VehicleAck:
        """Verify and apply *bundle*; returns the ack for the control
        plane.  A verification failure is a refusal (the bundle never
        touches the kernel); an apply failure after verification leaves
        the previous policy enforcing (SACKfs loads transactionally)."""
        try:
            verify_bundle(bundle, key)
        except BundleVerificationError as exc:
            self.rejected_bundles += 1
            self.apply_log.append((bundle.version, "refused"))
            return VehicleAck(vehicle_id=self.vehicle_id,
                              version=bundle.version, ok=False,
                              detail=f"verification failed: {exc}")
        plan = self.fault_plan
        if plan is not None and plan.should_fail(
                fault_points.FLEET_BUNDLE_APPLY_FAIL, now_ns,
                arg=self.vehicle_id):
            self.apply_log.append((bundle.version, "apply_failed"))
            return VehicleAck(vehicle_id=self.vehicle_id,
                              version=bundle.version, ok=False,
                              detail="injected apply failure")
        kernel = self.world.kernel
        try:
            if bundle.apparmor_profiles and self.world.apparmor is not None:
                for text in bundle.apparmor_profiles.values():
                    self.world.apparmor.policy.load_text(text)
            kernel.write_file(kernel.procs.init,
                              "/sys/kernel/security/SACK/policy",
                              bundle.policy_text.encode(), create=False)
        except (KernelError, ValueError,
                fault_points.InjectedFault) as exc:
            # InjectedFault covers a bridge profile reload dying mid
            # policy load; the bridge applies all-or-nothing, so the
            # previous profiles are still enforcing and the control
            # plane just sees a failed ack to re-offer.
            self.apply_log.append((bundle.version, "apply_failed"))
            return VehicleAck(vehicle_id=self.vehicle_id,
                              version=bundle.version, ok=False,
                              detail=f"apply failed: {exc}")
        # The policy load replaced the SSM (it restarts in the policy's
        # initial state); resync the detectors so the next SDS sweep
        # re-emits the situation the vehicle is physically in.
        if self.world.sds is not None:
            for detector in self.world.sds.detectors:
                detector.resync()
        self.bundle_version = bundle.version
        self.committed_bundle = bundle
        self.apply_log.append((bundle.version, "applied"))
        return VehicleAck(vehicle_id=self.vehicle_id,
                          version=bundle.version, ok=True,
                          detail="applied")

    # -- recovery ----------------------------------------------------------
    def state_digest(self) -> str:
        """Deterministic digest of everything access control decided on.

        Used by the supervisor's I10 check: a vehicle restored from a
        checkpoint plus journal replay must digest identically to the
        wreck it replaces.  Covers situation, dynamics, V2X alert state,
        bundle lifecycle, and the SSM/SACKfs counters; deliberately
        excludes :attr:`online` (a fleet-side flag the supervisor flips)
        and host-timing data.
        """
        dyn = self.world.dynamics
        fs = self.world.sackfs
        ssm = self._ssm()
        payload = json.dumps({
            "vehicle": self.vehicle_id,
            "tick_count": self.tick_count,
            "situation": self.situation or "",
            "alert_topic": self.receiver.active_topic,
            "alert_expires_at": self._alert_expires_at,
            "dyn": [repr(dyn.speed_kmh), repr(dyn.position_km),
                    repr(dyn.commanded_accel_ms2), dyn.engine_on,
                    dyn.driver_present, dyn.crashed,
                    repr(dyn.elapsed_s)],
            "transitions": self.transition_log,
            "bundle_version": self.bundle_version,
            "apply_log": self.apply_log,
            "rejected_bundles": self.rejected_bundles,
            "ssm": [ssm.events_processed, ssm.events_ignored,
                    ssm.transition_count],
            "sackfs": [fs.events_received, fs.events_accepted,
                       fs.events_rejected],
            "now_ns": self.world.kernel.obs.now_ns,
        }, sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- health ------------------------------------------------------------
    def _counter_total(self, name: str) -> int:
        total = 0
        for row in self.world.kernel.obs.metrics.to_dict()["counters"]:
            if row["name"] == name:
                total += int(row["value"])
        return total

    def health_snapshot(self) -> Dict[str, object]:
        """Deterministic health counters for rollout gating and roll-up."""
        fs = self.world.sackfs
        wd = fs.watchdog.stats() if fs.watchdog is not None else {}
        return {
            "vehicle": self.vehicle_id,
            "online": self.online,
            "situation": self.situation or "",
            "bundle_version": self.bundle_version,
            "denials": self._counter_total("lsm_denials_total"),
            "failsafe_engagements":
                self._counter_total("sack_failsafe_engagements_total"),
            "rollbacks":
                self._counter_total("sack_transition_rollbacks_total"),
            "watchdog_engaged": bool(wd.get("engaged", False)),
            "events_accepted": fs.events_accepted,
            "events_rejected": fs.events_rejected,
            "rejected_bundles": self.rejected_bundles,
        }
