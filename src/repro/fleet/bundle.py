"""Signed OTA policy bundles.

A :class:`PolicyBundle` is what the control plane stages and the fleet
applies: one SACK policy text plus the bridged AppArmor profiles that the
SACK-enhanced-AppArmor configuration loads alongside it.  Bundles are
signed with an HMAC-SHA256 over a canonical manifest.

The manifest **must cover every enforcement artifact**.  The SEAndroid
policy-evolution study showed fleets accumulate auxiliary policy files
around the core policy; a signer that covers only the SACK policy leaves
the bridged AppArmor profiles writable by whoever holds the transport —
a tampered profile would then ride a valid signature onto every vehicle.
:func:`verify_bundle` therefore rejects any bundle whose ``signed_fields``
does not include both the policy text and the profile set, even when the
signature itself checks out over the fields it does cover.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import json
from typing import Dict, Optional, Tuple

#: Every field a bundle signature must cover to be accepted.
SIGNED_FIELDS_ALL: Tuple[str, ...] = ("policy_text", "apparmor_profiles")

#: Legacy/broken signers sign only the SACK policy — kept as a named
#: constant so tests (and the fleet-wide refusal path) can exercise it.
SIGNED_FIELDS_POLICY_ONLY: Tuple[str, ...] = ("policy_text",)


class BundleError(ValueError):
    """Malformed bundle (bad version, missing artifacts)."""


class BundleVerificationError(BundleError):
    """Signature missing, incomplete in coverage, or not matching."""


@dataclasses.dataclass(frozen=True)
class PolicyBundle:
    """One versioned, signed set of enforcement artifacts.

    ``apparmor_profiles`` maps profile name → profile text; it is empty
    for fleets running independent SACK, but stays inside the signature
    either way (an absent set and an emptied set must not hash alike).
    """

    version: int
    name: str
    policy_text: str
    apparmor_profiles: Dict[str, str] = dataclasses.field(
        default_factory=dict)
    signature: str = ""
    signed_fields: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.version < 0:
            raise BundleError(f"bundle version must be >= 0: {self.version}")
        if not self.policy_text.strip():
            raise BundleError("bundle carries no policy text")

    def manifest(self, fields: Tuple[str, ...]) -> bytes:
        """Canonical byte serialisation of the covered fields."""
        doc = {"version": self.version, "name": self.name}
        for field in sorted(fields):
            if field not in ("policy_text", "apparmor_profiles"):
                raise BundleError(f"unknown signed field {field!r}")
            doc[field] = getattr(self, field)
        return json.dumps(doc, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def with_profiles(self, profiles: Dict[str, str]) -> "PolicyBundle":
        """A copy with *profiles* swapped in (signature left as-is —
        exactly what a tampering transport would produce)."""
        return dataclasses.replace(self, apparmor_profiles=dict(profiles))

    def describe(self) -> str:
        return (f"bundle {self.name} v{self.version} "
                f"({len(self.apparmor_profiles)} profile(s), "
                f"{'signed' if self.signature else 'unsigned'})")


class BundleSigner:
    """Signs bundles with a fleet key (HMAC-SHA256)."""

    def __init__(self, key: bytes):
        if not key:
            raise BundleError("signing key must be non-empty")
        self.key = key

    def digest(self, bundle: PolicyBundle,
               fields: Tuple[str, ...]) -> str:
        return hmac.new(self.key, bundle.manifest(fields),
                        hashlib.sha256).hexdigest()

    def sign(self, bundle: PolicyBundle,
             fields: Tuple[str, ...] = SIGNED_FIELDS_ALL) -> PolicyBundle:
        """Return a signed copy covering *fields*.

        Signing with ``SIGNED_FIELDS_POLICY_ONLY`` reproduces the broken
        legacy signer; :func:`verify_bundle` refuses its output.
        """
        return dataclasses.replace(
            bundle, signature=self.digest(bundle, fields),
            signed_fields=tuple(fields))


def verify_bundle(bundle: PolicyBundle, key: bytes) -> None:
    """Raise :class:`BundleVerificationError` unless *bundle* is
    fully signed — coverage first, then the MAC itself."""
    if not bundle.signature:
        raise BundleVerificationError(
            f"{bundle.describe()}: unsigned bundle")
    missing = [f for f in SIGNED_FIELDS_ALL if f not in bundle.signed_fields]
    if missing:
        raise BundleVerificationError(
            f"{bundle.describe()}: signature does not cover "
            f"{', '.join(missing)} — a tampered artifact would ride a "
            f"valid signature; refusing")
    expected = hmac.new(key, bundle.manifest(bundle.signed_fields),
                        hashlib.sha256).hexdigest()
    if not hmac.compare_digest(expected, bundle.signature):
        raise BundleVerificationError(
            f"{bundle.describe()}: signature mismatch (artifact tampered "
            f"or wrong fleet key)")


def make_bundle(version: int, policy_text: str,
                apparmor_profiles: Optional[Dict[str, str]] = None,
                name: str = "fleet-policy",
                signer: Optional[BundleSigner] = None,
                fields: Tuple[str, ...] = SIGNED_FIELDS_ALL) -> PolicyBundle:
    """Convenience: build (and, given a signer, sign) a bundle."""
    bundle = PolicyBundle(version=version, name=name,
                          policy_text=policy_text,
                          apparmor_profiles=dict(apparmor_profiles or {}))
    if signer is not None:
        bundle = signer.sign(bundle, fields=fields)
    return bundle
