"""Signed OTA policy bundles.

A :class:`PolicyBundle` is what the control plane stages and the fleet
applies: one SACK policy text plus the bridged AppArmor profiles that the
SACK-enhanced-AppArmor configuration loads alongside it.  Bundles are
signed with an HMAC-SHA256 over a canonical manifest.

The manifest **must cover every enforcement artifact**.  The SEAndroid
policy-evolution study showed fleets accumulate auxiliary policy files
around the core policy; a signer that covers only the SACK policy leaves
the bridged AppArmor profiles writable by whoever holds the transport —
a tampered profile would then ride a valid signature onto every vehicle.
:func:`verify_bundle` therefore rejects any bundle whose ``signed_fields``
does not include both the policy text and the profile set, even when the
signature itself checks out over the fields it does cover.

Verification is structured: :func:`run_bundle_checks` evaluates every
admission check — signature present, coverage complete, MAC valid, and
(when a :class:`~repro.verify.gate.ProofGate` is supplied) the static
safety proofs — and returns per-check :class:`BundleCheck` results.
:func:`verify_bundle` folds failures into a
:class:`BundleVerificationError` that still carries the individual check
rows, so rollout health and ``sackctl`` can show *why* a bundle was
refused instead of one generic error.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import json
from typing import Dict, List, Optional, Tuple

#: Every field a bundle signature must cover to be accepted.
SIGNED_FIELDS_ALL: Tuple[str, ...] = ("policy_text", "apparmor_profiles")

#: Legacy/broken signers sign only the SACK policy — kept as a named
#: constant so tests (and the fleet-wide refusal path) can exercise it.
SIGNED_FIELDS_POLICY_ONLY: Tuple[str, ...] = ("policy_text",)


class BundleError(ValueError):
    """Malformed bundle (bad version, missing artifacts)."""


#: Admission check identifiers, in evaluation order.
CHECK_SIGNATURE = "signature"
CHECK_COVERAGE = "coverage"
CHECK_MAC = "mac"
CHECK_PROOF = "proof"


@dataclasses.dataclass(frozen=True)
class BundleCheck:
    """One admission check's outcome for one bundle."""

    check: str       # CHECK_SIGNATURE | CHECK_COVERAGE | CHECK_MAC | CHECK_PROOF
    ok: bool
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class BundleVerificationError(BundleError):
    """Signature missing, incomplete in coverage, not matching — or the
    proof gate refusing the policy.  Carries the structured per-check
    results so callers can surface *which* check failed."""

    def __init__(self, message: str, checks: Tuple[BundleCheck, ...] = ()):
        super().__init__(message)
        self.checks: Tuple[BundleCheck, ...] = tuple(checks)

    @property
    def failures(self) -> List[BundleCheck]:
        return [c for c in self.checks if not c.ok]


@dataclasses.dataclass(frozen=True)
class PolicyBundle:
    """One versioned, signed set of enforcement artifacts.

    ``apparmor_profiles`` maps profile name → profile text; it is empty
    for fleets running independent SACK, but stays inside the signature
    either way (an absent set and an emptied set must not hash alike).
    """

    version: int
    name: str
    policy_text: str
    apparmor_profiles: Dict[str, str] = dataclasses.field(
        default_factory=dict)
    signature: str = ""
    signed_fields: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.version < 0:
            raise BundleError(f"bundle version must be >= 0: {self.version}")
        if not self.policy_text.strip():
            raise BundleError("bundle carries no policy text")

    def manifest(self, fields: Tuple[str, ...]) -> bytes:
        """Canonical byte serialisation of the covered fields."""
        doc = {"version": self.version, "name": self.name}
        for field in sorted(fields):
            if field not in ("policy_text", "apparmor_profiles"):
                raise BundleError(f"unknown signed field {field!r}")
            doc[field] = getattr(self, field)
        return json.dumps(doc, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def with_profiles(self, profiles: Dict[str, str]) -> "PolicyBundle":
        """A copy with *profiles* swapped in (signature left as-is —
        exactly what a tampering transport would produce)."""
        return dataclasses.replace(self, apparmor_profiles=dict(profiles))

    def describe(self) -> str:
        return (f"bundle {self.name} v{self.version} "
                f"({len(self.apparmor_profiles)} profile(s), "
                f"{'signed' if self.signature else 'unsigned'})")


class BundleSigner:
    """Signs bundles with a fleet key (HMAC-SHA256)."""

    def __init__(self, key: bytes):
        if not key:
            raise BundleError("signing key must be non-empty")
        self.key = key

    def digest(self, bundle: PolicyBundle,
               fields: Tuple[str, ...]) -> str:
        return hmac.new(self.key, bundle.manifest(fields),
                        hashlib.sha256).hexdigest()

    def sign(self, bundle: PolicyBundle,
             fields: Tuple[str, ...] = SIGNED_FIELDS_ALL) -> PolicyBundle:
        """Return a signed copy covering *fields*.

        Signing with ``SIGNED_FIELDS_POLICY_ONLY`` reproduces the broken
        legacy signer; :func:`verify_bundle` refuses its output.
        """
        return dataclasses.replace(
            bundle, signature=self.digest(bundle, fields),
            signed_fields=tuple(fields))


def run_bundle_checks(bundle: PolicyBundle, key: bytes,
                      proof_gate=None) -> List[BundleCheck]:
    """Evaluate every admission check; returns per-check results.

    Checks run in gate order — signature presence, manifest coverage,
    the MAC itself, then (with a *proof_gate*) the static safety
    proofs — and later checks are skipped once an earlier one fails:
    an unverifiable manifest makes the downstream answers meaningless,
    and proofs are not free.
    """
    checks: List[BundleCheck] = []
    if not bundle.signature:
        checks.append(BundleCheck(CHECK_SIGNATURE, False,
                                  "unsigned bundle"))
        return checks
    checks.append(BundleCheck(CHECK_SIGNATURE, True, "signature present"))
    missing = [f for f in SIGNED_FIELDS_ALL
               if f not in bundle.signed_fields]
    if missing:
        checks.append(BundleCheck(
            CHECK_COVERAGE, False,
            f"signature does not cover {', '.join(missing)} — a "
            f"tampered artifact would ride a valid signature; refusing"))
        return checks
    checks.append(BundleCheck(CHECK_COVERAGE, True,
                              "signature covers every enforcement "
                              "artifact"))
    expected = hmac.new(key, bundle.manifest(bundle.signed_fields),
                        hashlib.sha256).hexdigest()
    if not hmac.compare_digest(expected, bundle.signature):
        checks.append(BundleCheck(
            CHECK_MAC, False,
            "signature mismatch (artifact tampered or wrong fleet key)"))
        return checks
    checks.append(BundleCheck(CHECK_MAC, True, "HMAC valid"))
    if proof_gate is not None:
        decision = proof_gate.evaluate_bundle(bundle)
        checks.append(BundleCheck(CHECK_PROOF, decision.passed,
                                  decision.summary))
    return checks


def verify_bundle(bundle: PolicyBundle, key: bytes,
                  proof_gate=None) -> List[BundleCheck]:
    """Raise :class:`BundleVerificationError` unless *bundle* passes
    every admission check; returns the per-check results when it does.

    The error message is ``"<bundle>: <failed check details>"`` and the
    exception carries the structured rows in ``.checks``.
    """
    checks = run_bundle_checks(bundle, key, proof_gate=proof_gate)
    failed = [c for c in checks if not c.ok]
    if failed:
        raise BundleVerificationError(
            f"{bundle.describe()}: "
            + "; ".join(c.detail for c in failed),
            checks=tuple(checks))
    return checks


def make_bundle(version: int, policy_text: str,
                apparmor_profiles: Optional[Dict[str, str]] = None,
                name: str = "fleet-policy",
                signer: Optional[BundleSigner] = None,
                fields: Tuple[str, ...] = SIGNED_FIELDS_ALL) -> PolicyBundle:
    """Convenience: build (and, given a signer, sign) a bundle."""
    bundle = PolicyBundle(version=version, name=name,
                          policy_text=policy_text,
                          apparmor_profiles=dict(apparmor_profiles or {}))
    if signer is not None:
        bundle = signer.sign(bundle, fields=fields)
    return bundle
