"""Canonical (de)serialization for everything that crosses a barrier.

The process backend ships barrier messages — driver actions, V2X
deliveries, rollout commands/acks, journal records, telemetry frames,
health snapshots — between the coordinator and its worker processes.
Fingerprints must stay bit-identical across backends and worker counts,
so nothing nondeterministic may leak into these payloads:

* every encoded document is built from **primitives only** (str, int,
  float, bool, None, lists, string-keyed dicts) — no pickled objects
  whose reprs or memo layouts could drift between interpreters;
* every dict is emitted with **sorted keys**, so iteration order on the
  receiving side never depends on the sender's insertion history;
* sets are encoded as sorted lists;
* decoding reconstructs the exact dataclasses the serial backend passes
  by reference, field for field.

:func:`wire_digest` hashes a canonical document; the round-trip
regression suite (``tests/fleet/test_wire.py``) proves
``digest(encode(x)) == digest(encode(decode(encode(x))))`` for every
barrier message type.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from .bundle import PolicyBundle
from .bus import V2xMessage
from .resilience import EpochRecord
from .rollout import VehicleAck

_PRIMITIVES = (str, int, float, bool, type(None))


def canon(value: Any) -> Any:
    """Canonicalize *value*: sorted-key dicts, lists, primitives only.

    Raises ``TypeError`` on anything else — an object sneaking into a
    barrier payload is a determinism bug, and it must fail loudly at the
    sender, not as a fingerprint mismatch three layers later.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(
                    f"wire dicts must be string-keyed, got {key!r}")
            out[key] = canon(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [canon(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canon(item) for item in value)
    raise TypeError(f"not wire-serializable: {type(value).__name__} "
                    f"({value!r})")


def wire_digest(doc: Any) -> str:
    """Stable digest of a canonical document."""
    payload = json.dumps(canon(doc), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# -- V2X messages --------------------------------------------------------------

def encode_message(message: V2xMessage) -> Dict[str, Any]:
    return canon({
        "kind": "v2x_message",
        "msg_id": message.msg_id,
        "topic": message.topic,
        "origin": message.origin,
        "position_km": message.position_km,
        "sent_ns": message.sent_ns,
        "payload": dict(message.payload),
    })


def decode_message(doc: Dict[str, Any]) -> V2xMessage:
    _expect(doc, "v2x_message")
    return V2xMessage(msg_id=int(doc["msg_id"]),
                      topic=str(doc["topic"]),
                      origin=str(doc["origin"]),
                      position_km=float(doc["position_km"]),
                      sent_ns=int(doc["sent_ns"]),
                      payload={str(k): str(v)
                               for k, v in doc["payload"].items()})


# -- policy bundles ------------------------------------------------------------

def encode_bundle(bundle: PolicyBundle) -> Dict[str, Any]:
    return canon({
        "kind": "policy_bundle",
        "version": bundle.version,
        "name": bundle.name,
        "policy_text": bundle.policy_text,
        "apparmor_profiles": dict(bundle.apparmor_profiles),
        "signature": bundle.signature,
        "signed_fields": list(bundle.signed_fields),
    })


def decode_bundle(doc: Dict[str, Any]) -> PolicyBundle:
    _expect(doc, "policy_bundle")
    return PolicyBundle(
        version=int(doc["version"]),
        name=str(doc["name"]),
        policy_text=str(doc["policy_text"]),
        apparmor_profiles={str(k): str(v)
                           for k, v in doc["apparmor_profiles"].items()},
        signature=str(doc["signature"]),
        signed_fields=tuple(doc["signed_fields"]))


# -- rollout acks --------------------------------------------------------------

def encode_ack(ack: VehicleAck) -> Dict[str, Any]:
    return canon({
        "kind": "vehicle_ack",
        "vehicle_id": ack.vehicle_id,
        "version": ack.version,
        "ok": ack.ok,
        "detail": ack.detail,
    })


def decode_ack(doc: Dict[str, Any]) -> VehicleAck:
    _expect(doc, "vehicle_ack")
    return VehicleAck(vehicle_id=str(doc["vehicle_id"]),
                      version=int(doc["version"]),
                      ok=bool(doc["ok"]),
                      detail=str(doc["detail"]))


# -- journal records (checkpoint-restore replay) -------------------------------

def encode_record(record: EpochRecord) -> Dict[str, Any]:
    return canon({
        "kind": "epoch_record",
        "epoch": record.epoch,
        "start_ns": record.start_ns,
        "actions": [[vid, action] for vid, action in record.actions],
        "deliveries": {vid: [encode_message(m) for m in messages]
                       for vid, messages in record.deliveries.items()},
        "commands": {vid: [[encode_bundle(bundle), now_ns]
                           for bundle, now_ns in commands]
                     for vid, commands in record.commands.items()},
        "stalled": sorted(record.stalled),
    })


def decode_record(doc: Dict[str, Any]) -> EpochRecord:
    _expect(doc, "epoch_record")
    record = EpochRecord(epoch=int(doc["epoch"]),
                         start_ns=int(doc["start_ns"]))
    record.actions = [(str(vid), str(action))
                      for vid, action in doc["actions"]]
    record.deliveries = {
        str(vid): [decode_message(m) for m in messages]
        for vid, messages in doc["deliveries"].items()}
    record.commands = {
        str(vid): [(decode_bundle(b), int(now_ns))
                   for b, now_ns in commands]
        for vid, commands in doc["commands"].items()}
    record.stalled = set(doc["stalled"])
    return record


# -- telemetry frames ----------------------------------------------------------

def encode_frame(frame) -> Dict[str, Any]:
    doc = frame.to_dict()
    doc["kind"] = "telemetry_frame"
    return canon(doc)


def decode_frame(doc: Dict[str, Any]):
    from ..obs.telemetry import TelemetryFrame
    _expect(doc, "telemetry_frame")
    return TelemetryFrame(
        schema=str(doc["schema"]),
        vehicle_id=str(doc["vehicle_id"]),
        epoch=int(doc["epoch"]),
        at_ns=int(doc["at_ns"]),
        counters={str(k): float(v)
                  for k, v in sorted(doc["counters"].items())},
        gauges={str(k): float(v)
                for k, v in sorted(doc["gauges"].items())},
        histograms={str(k): v
                    for k, v in sorted(doc["histograms"].items())})


# -- health snapshots / transitions (already primitive) ------------------------

def encode_health(snapshot: Dict[str, object]) -> Dict[str, Any]:
    doc = dict(snapshot)
    doc["kind"] = "health_snapshot"
    return canon(doc)


def decode_health(doc: Dict[str, Any]) -> Dict[str, object]:
    _expect(doc, "health_snapshot")
    # health_snapshot() key order is part of its construction, not its
    # meaning; downstream report code sorts where order matters.
    return {k: v for k, v in doc.items() if k != "kind"}


def encode_transitions(
        transitions: List[Tuple[str, str, str, int]]) -> List[List[Any]]:
    return canon([[event, from_state, to_state, at_ns]
                  for event, from_state, to_state, at_ns in transitions])


def decode_transitions(doc) -> List[Tuple[str, str, str, int]]:
    return [(str(event), str(frm), str(to), int(at_ns))
            for event, frm, to, at_ns in doc]


def _expect(doc: Dict[str, Any], kind: str) -> None:
    got = doc.get("kind")
    if got != kind:
        raise ValueError(f"expected wire kind {kind!r}, got {got!r}")


#: kind -> decoder, for generic round-trip testing.
DECODERS = {
    "v2x_message": decode_message,
    "policy_bundle": decode_bundle,
    "vehicle_ack": decode_ack,
    "epoch_record": decode_record,
    "telemetry_frame": decode_frame,
    "health_snapshot": decode_health,
}
