"""Paper-style table rendering for benchmark results.

Deltas are annotated the way the paper's tables are: for latency rows an
increase is a performance drop (``↓``), for bandwidth rows an increase is
a gain (``↑``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .lmbench import BenchResult
from .stats import pct_delta

#: Display metadata: (bench key, paper row label, section).
TABLE2_ROWS = [
    ("syscall", "syscall", "Processes (ns/op - smaller is better)"),
    ("fork", "fork", "Processes (ns/op - smaller is better)"),
    ("stat", "stat", "Processes (ns/op - smaller is better)"),
    ("open_close", "open/close file",
     "Processes (ns/op - smaller is better)"),
    ("exec", "exec", "Processes (ns/op - smaller is better)"),
    ("file_create_0k", "file create (0K)",
     "File Access (ns/op - smaller is better)"),
    ("file_delete_0k", "file delete (0K)",
     "File Access (ns/op - smaller is better)"),
    ("file_create_10k", "file create (10K)",
     "File Access (ns/op - smaller is better)"),
    ("file_delete_10k", "file delete (10K)",
     "File Access (ns/op - smaller is better)"),
    ("mmap_latency", "mmap latency",
     "File Access (ns/op - smaller is better)"),
    ("pipe_bw", "pipe",
     "Local Communication Bandwidths (MB/s - bigger is better)"),
    ("af_unix_bw", "AF_UNIX",
     "Local Communication Bandwidths (MB/s - bigger is better)"),
    ("tcp_bw", "TCP",
     "Local Communication Bandwidths (MB/s - bigger is better)"),
    ("file_reread_bw", "File reread",
     "Local Communication Bandwidths (MB/s - bigger is better)"),
    ("mmap_reread_bw", "Mmap reread",
     "Local Communication Bandwidths (MB/s - bigger is better)"),
    ("ctxsw_2p_0k", "2p/0K ctxsw",
     "Context Switching (ns/op - smaller is better)"),
    ("ctxsw_2p_16k", "2p/16K ctxsw",
     "Context Switching (ns/op - smaller is better)"),
]


def format_delta(baseline: float, value: float,
                 smaller_is_better: bool) -> str:
    """Render a delta the way the paper does: arrow = performance change."""
    delta = pct_delta(baseline, value)
    if abs(delta) < 0.005:
        return "(=)"
    got_slower = delta > 0 if smaller_is_better else delta < 0
    arrow = "v" if got_slower else "^"
    return f"({arrow}{abs(delta):.2f}%)"


def format_value(result: BenchResult) -> str:
    if result.unit == "MB/s":
        return f"{result.value:,.0f} MB/s"
    if result.value >= 1e6:
        return f"{result.value / 1e6:,.3f} ms"
    if result.value >= 1e3:
        return f"{result.value / 1e3:,.2f} us"
    return f"{result.value:,.0f} ns"


def render_comparison_table(
        results: Dict[str, Dict[str, BenchResult]],
        baseline_config: str,
        title: str,
        rows: Optional[Sequence] = None) -> str:
    """Render a Table-II-style comparison across configurations."""
    rows = rows or TABLE2_ROWS
    configs = list(results)
    widths = [max(18, max(len(r[1]) for r in rows) + 2)]
    widths += [max(26, len(c) + 2) for c in configs]

    def fmt_row(cells: List[str]) -> str:
        return " | ".join(cell.ljust(w) for cell, w in zip(cells, widths))

    lines = [title, "=" * len(title)]
    header = fmt_row(["operation"] + [
        c + (" (baseline)" if c == baseline_config else "")
        for c in configs])
    lines.append(header)
    lines.append("-" * len(header))
    current_section = None
    for key, label, section in rows:
        if any(key not in results[c] for c in configs):
            continue
        if section != current_section:
            lines.append(f"-- {section}")
            current_section = section
        base = results[baseline_config][key]
        cells = [label]
        for config in configs:
            res = results[config][key]
            text = format_value(res)
            if config != baseline_config:
                text += " " + format_delta(base.value, res.value,
                                           res.smaller_is_better)
            cells.append(text)
        lines.append(fmt_row(cells))
    return "\n".join(lines)


def render_sweep_table(sweep: Dict[object, Dict[str, BenchResult]],
                       baseline_key: object, title: str) -> str:
    """Render a Table-III-style sweep (columns = sweep points)."""
    keys = list(sweep)
    bench_names = list(sweep[keys[0]])
    col_w = 24
    lines = [title, "=" * len(title)]
    header = "operation".ljust(20) + "".join(
        (f"{k}" + (" (baseline)" if k == baseline_key else "")).ljust(col_w)
        for k in keys)
    lines.append(header)
    lines.append("-" * len(header))
    for bench in bench_names:
        base = sweep[baseline_key][bench]
        row = bench.ljust(20)
        for key in keys:
            res = sweep[key][bench]
            text = format_value(res)
            if key != baseline_key:
                text += " " + format_delta(base.value, res.value,
                                           res.smaller_is_better)
            row += text.ljust(col_w)
        lines.append(row)
    return "\n".join(lines)


def mean_abs_overhead_pct(results: Dict[str, Dict[str, BenchResult]],
                          baseline_config: str, config: str) -> float:
    """Mean |delta%| across all benches — the paper's 'average below 3%'."""
    base = results[baseline_config]
    other = results[config]
    deltas = [abs(pct_delta(base[name].value, other[name].value))
              for name in base if name in other]
    return sum(deltas) / len(deltas) if deltas else 0.0
