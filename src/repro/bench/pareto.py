"""Pareto frontiers and trend tables over the perf trajectory.

Two renderings of the longitudinal record:

* **Trend tables** — one markdown table per metric set (``BENCH_avc``,
  ``BENCH_fleet``, ...), rows = committed records oldest-first, columns
  = the set's gate-worthy metrics, with a delta-vs-previous column so a
  slow drift is as visible as a cliff.

* **Pareto frontier** — across one suite run's sweep cells, the
  non-dominated set in (vehicles/sec ↑, per-hook p99 latency ↓, peak
  memory ↓).  A config on the frontier cannot be improved on one axis
  without paying on another; everything else is strictly dominated and
  the table says by whom.

Both are plain data transforms over dicts so the CLI, the tests, and
the committed ``docs/perf-trajectory.md`` report share one code path.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from .trajectory import Trajectory, direction_of

#: The Pareto axes: (metric key in a cell's gate metrics, direction).
PARETO_AXES: Tuple[Tuple[str, str], ...] = (
    ("fleet_vehicles_per_second", "higher"),
    ("hook_p99_ns", "lower"),
    ("peak_mem_kb", "lower"),
)


@dataclasses.dataclass
class ParetoPoint:
    """One sweep cell projected onto the Pareto axes."""

    label: str
    values: Dict[str, float]
    dominated_by: Optional[str] = None

    @property
    def on_frontier(self) -> bool:
        return self.dominated_by is None


def _dominates(a: Dict[str, float], b: Dict[str, float],
               axes: Sequence[Tuple[str, str]]) -> bool:
    """True if *a* is at least as good on every axis and better on one."""
    strictly_better = False
    for metric, direction in axes:
        av, bv = a[metric], b[metric]
        if direction == "higher":
            if av < bv:
                return False
            strictly_better = strictly_better or av > bv
        else:
            if av > bv:
                return False
            strictly_better = strictly_better or av < bv
    return strictly_better


def pareto_points(cells: Sequence[Dict[str, object]],
                  axes: Sequence[Tuple[str, str]] = PARETO_AXES,
                  ) -> List[ParetoPoint]:
    """Project suite cells onto *axes* and mark the dominated ones.

    *cells* are summary rows (``{"cell": id, "metrics": {...}}``); cells
    missing any axis metric are skipped — only configurations measured
    on every axis can be compared.
    """
    points: List[ParetoPoint] = []
    for cell in cells:
        metrics = cell.get("metrics") or {}
        if all(metric in metrics for metric, _ in axes):
            points.append(ParetoPoint(
                label=str(cell.get("cell", "?")),
                values={metric: float(metrics[metric])
                        for metric, _ in axes}))
    for point in points:
        for other in points:
            if other is not point and \
                    _dominates(other.values, point.values, axes):
                point.dominated_by = other.label
                break
    return points


def render_pareto_table(points: Sequence[ParetoPoint],
                        axes: Sequence[Tuple[str, str]] = PARETO_AXES,
                        ) -> List[str]:
    """Markdown table of frontier and dominated points."""
    if not points:
        return ["*(no cells carried all three Pareto axes — enable "
                "`hook_latency` and `measure_memory` on a fleet "
                "scenario)*"]
    arrow = {"higher": "↑", "lower": "↓"}
    header = "| cell | " + " | ".join(
        f"{metric} {arrow[direction]}" for metric, direction in axes) \
        + " | frontier |"
    rule = "|---" * (len(axes) + 2) + "|"
    lines = [header, rule]
    ordered = sorted(points, key=lambda p: (not p.on_frontier, p.label))
    for point in ordered:
        cols = " | ".join(f"{point.values[m]:g}" for m, _ in axes)
        status = "**yes**" if point.on_frontier \
            else f"no (dominated by `{point.dominated_by}`)"
        lines.append(f"| `{point.label}` | {cols} | {status} |")
    return lines


def render_trend_table(trajectory: Trajectory,
                       max_metrics: int = 8) -> List[str]:
    """Markdown trend table: one row per committed record."""
    # Ratio/throughput metrics first (the headline gates), then the
    # shortest latency names — flattened per-hook breakdown metrics are
    # long, so they fall off the end of the column budget.
    candidates = [n for n in trajectory.metric_names()
                  if direction_of(n) is not None]
    names = sorted(candidates,
                   key=lambda n: (direction_of(n) != "higher",
                                  len(n), n))[:max_metrics]
    if not names or not trajectory.records:
        return ["*(empty trajectory)*"]
    header = "| commit | when | " + " | ".join(names) + " |"
    rule = "|---" * (len(names) + 2) + "|"
    lines = [header, rule]
    previous: Dict[str, float] = {}
    for record in trajectory.records:
        metrics = record.get("metrics") or {}
        cols = []
        for name in names:
            if name not in metrics:
                cols.append("—")
                continue
            value = float(metrics[name])
            cell = f"{value:g}"
            if name in previous and previous[name]:
                delta = (value - previous[name]) / abs(previous[name]) \
                    * 100.0
                cell += f" ({delta:+.1f}%)"
            previous[name] = value
            cols.append(cell)
        sha = str(record.get("git_sha", "?"))[:10]
        when = str(record.get("timestamp", "?"))[:10]
        lines.append(f"| `{sha}` | {when} | " + " | ".join(cols) + " |")
    return lines


def render_report(trajectories: Sequence[Trajectory],
                  run_summary: Optional[Dict[str, object]] = None,
                  ) -> str:
    """The full markdown report committed under ``docs/``."""
    lines = [
        "# Performance trajectory",
        "",
        "Generated by `sack-bench suite report` from the committed",
        "`benchmarks/trajectory/BENCH_*.json` history — do not edit by",
        "hand.  See [benchmarking.md](benchmarking.md) for how records",
        "are appended and gated.",
        "",
    ]
    for trajectory in trajectories:
        lines.append(f"## Trend — `{trajectory.metric_set}`")
        lines.append("")
        lines.extend(render_trend_table(trajectory))
        lines.append("")
    if run_summary is not None:
        cells = run_summary.get("cells") or []
        lines.append("## Pareto frontier — latest suite run")
        lines.append("")
        lines.append("Non-dominated sweep configurations in "
                     "(vehicles/sec ↑, per-hook p99 ↓, peak memory ↓):")
        lines.append("")
        lines.extend(render_pareto_table(pareto_points(cells)))
        lines.append("")
    return "\n".join(lines)
