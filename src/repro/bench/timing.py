"""Shared timing and percentile helpers for every benchmark path.

Before this module each benchmark file carried its own copy of the same
three idioms — a best-of-N wall-clock loop, nearest-rank percentiles
over a sorted sample, and a ``{mean, p50, p99}`` summary dict.  They
now live here so the pytest benchmarks (``benchmarks/test_*.py``), the
harness sweeps (:mod:`repro.bench.harness`), and the declarative suite
runner (:mod:`repro.bench.suite`) all agree on the arithmetic.

Noise discipline (see docs/benchmarking.md): interference on a shared
host is additive, so *best-of-N* — the minimum over repetitions — is
the noise-robust estimator for latencies.  Percentiles use the
nearest-rank method on the sorted sample, matching what the LSM
framework's histogram summaries report.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Sequence


def best_of(fn: Callable[[], object], reps: int = 3) -> float:
    """Minimum wall-clock seconds of *fn* over *reps* runs."""
    if reps < 1:
        raise ValueError("need at least one repetition")
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def best_of_ns(fn: Callable[[], object], reps: int = 3) -> int:
    """Minimum wall-clock nanoseconds of *fn* over *reps* runs."""
    if reps < 1:
        raise ValueError("need at least one repetition")
    best = None
    for _ in range(reps):
        start = time.perf_counter_ns()
        fn()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``0 <= q <= 1``) of an unsorted sample."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(len(ordered) * q))
    return ordered[rank]


def summarize_ns(values: Sequence[float]) -> Dict[str, float]:
    """``{count, mean_ns, p50_ns, p99_ns, max_ns}`` of a latency sample."""
    if not values:
        raise ValueError("summarize_ns of empty sequence")
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "mean_ns": sum(ordered) / len(ordered),
        "p50_ns": ordered[min(len(ordered) - 1, len(ordered) // 2)],
        "p99_ns": ordered[min(len(ordered) - 1,
                              int(len(ordered) * 0.99))],
        "max_ns": ordered[-1],
    }


def latency_summary_us(latencies_ns: Sequence[float],
                       ) -> Dict[str, float]:
    """``{mean_us, p50_us, p99_us}`` from a nanosecond sample."""
    summary = summarize_ns(latencies_ns)
    return {
        "mean_us": summary["mean_ns"] / 1e3,
        "p50_us": summary["p50_ns"] / 1e3,
        "p99_us": summary["p99_ns"] / 1e3,
    }
