"""Benchmark harness: world builders and the paper's parameter sweeps.

Builds the four kernel configurations the evaluation compares and drives
the sweeps behind Table II, Table III, Fig. 3(a), Fig. 3(b), the situation
awareness latency measurement, and our two ablations (E9/E10).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..apparmor import AppArmorLsm, load_ubuntu_defaults
from ..kernel import Kernel, OpenFlags, SocketFamily
from ..lsm import boot_kernel
from ..sack import (SackAppArmorBridge, SackFs, SackLsm, SituationEvent,
                    parse_policy)
from ..sack.policy.model import (MacRule, RuleDecision, RuleOp,
                                 SackPermission, SackPolicy)
from ..sack.ssm import TransitionRule
from ..sack.states import SituationState, StateSpace
from ..vehicle.devices import IOCTL_SYMBOLS
from ..vehicle.ivi import DEFAULT_SACK_POLICY, IVI_APPARMOR_PROFILES
from .lmbench import BenchResult, LmbenchSuite
from .timing import latency_summary_us

# Configuration names used across benches and reports.
CONFIG_NO_LSM = "no-lsm"
CONFIG_APPARMOR = "apparmor"
CONFIG_SACK_APPARMOR = "sack-apparmor"
CONFIG_SACK_INDEPENDENT = "sack-independent"

TABLE2_CONFIGS = [CONFIG_APPARMOR, CONFIG_SACK_APPARMOR,
                  CONFIG_SACK_INDEPENDENT]


@dataclasses.dataclass
class World:
    """A booted kernel plus handles to its security machinery."""

    name: str
    kernel: Kernel
    apparmor: Optional[AppArmorLsm] = None
    sack: Optional[SackLsm] = None
    bridge: Optional[SackAppArmorBridge] = None
    sackfs: Optional[SackFs] = None


def build_world(config: str,
                policy_text: str = DEFAULT_SACK_POLICY,
                with_ubuntu_profiles: bool = True,
                collect_stats: bool = False) -> World:
    """Boot a kernel in one of the four evaluation configurations."""
    if config == CONFIG_NO_LSM:
        return World(config, Kernel())

    apparmor = None
    sack = None
    bridge = None
    if config in (CONFIG_APPARMOR, CONFIG_SACK_APPARMOR):
        apparmor = AppArmorLsm()
        if with_ubuntu_profiles:
            load_ubuntu_defaults(apparmor.policy)
        apparmor.policy.load_text(IVI_APPARMOR_PROFILES)
    if config == CONFIG_APPARMOR:
        modules = [apparmor]
    elif config == CONFIG_SACK_APPARMOR:
        bridge = SackAppArmorBridge(apparmor)
        modules = [bridge, apparmor]
    elif config == CONFIG_SACK_INDEPENDENT:
        sack = SackLsm()
        modules = [sack]
    else:
        raise ValueError(f"unknown configuration {config!r}")

    kernel, _ = boot_kernel(modules, collect_stats=collect_stats)
    sackfs = None
    module = sack or bridge
    if module is not None:
        sackfs = SackFs(kernel, module, authorized_event_uids={990},
                        ioctl_symbols=IOCTL_SYMBOLS)
        kernel.write_file(kernel.procs.init,
                          "/sys/kernel/security/SACK/policy",
                          policy_text.encode(), create=False)
    return World(config, kernel, apparmor=apparmor, sack=sack,
                 bridge=bridge, sackfs=sackfs)


# -- Table II -------------------------------------------------------------------

def run_lmbench(configs: Sequence[str] = TABLE2_CONFIGS,
                benches: Optional[List[str]] = None,
                scale: float = 1.0, repetitions: int = 5
                ) -> Dict[str, Dict[str, BenchResult]]:
    """LMBench across configurations (Table II's data).

    Repetitions are *interleaved* across configurations and reduced with
    the per-bench median, so drift (frequency scaling, GC, page cache)
    hits every configuration equally instead of biasing whichever ran
    last — the same discipline LMBench itself applies.
    """
    from .lmbench import TABLE2_BENCHES
    benches = benches or TABLE2_BENCHES
    samples: Dict[str, Dict[str, List[BenchResult]]] = {
        c: {b: [] for b in benches} for c in configs}
    reps = max(1, repetitions)
    for rep in range(reps):
        # Fresh worlds every repetition: a kernel instance's memory layout
        # is fixed at build time, so reusing one would bake its allocation
        # luck into every sample.  Rotate the config order so no
        # configuration systematically runs first (cold) or last (warm).
        suites = {config: LmbenchSuite(build_world(config).kernel,
                                       scale=scale)
                  for config in configs}
        order = list(configs[rep % len(configs):]) + \
            list(configs[:rep % len(configs)])
        for bench in benches:
            for config in order:
                result = getattr(suites[config], f"bench_{bench}")()
                samples[config][bench].append(result)
    # Interference on a shared host is strictly additive, so best-of-N is
    # the noise-robust estimator: min for latencies, max for bandwidths
    # (the classic microbenchmark discipline; LMBench itself reports
    # minima for latencies).
    merged: Dict[str, Dict[str, BenchResult]] = {c: {} for c in configs}
    for config in configs:
        for bench in benches:
            runs = samples[config][bench]
            values = [r.value for r in runs]
            best = min(values) if runs[0].smaller_is_better else max(values)
            merged[config][bench] = BenchResult(
                name=bench, value=best, unit=runs[0].unit,
                iterations=runs[0].iterations,
                smaller_is_better=runs[0].smaller_is_better)
    return merged


def run_hook_latency_breakdown(configs: Sequence[str] = TABLE2_CONFIGS,
                               benches: Optional[List[str]] = None,
                               scale: float = 0.1
                               ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-hook latency histograms under the LMBench workload.

    Runs the suite once per configuration with hook-latency collection
    enabled and reports, per configuration and per LSM hook, the merged
    ``{count, mean_ns, p50_ns, p99_ns, max_ns}`` summary from the
    framework's latency histograms.  This is the observability
    counterpart of :func:`run_hook_census`: the census says how often
    each hook runs, this says how long it takes when it does.
    """
    breakdown: Dict[str, Dict[str, Dict[str, float]]] = {}
    for config in configs:
        world = build_world(config)
        security = world.kernel.security
        if not hasattr(security, "enable_hook_latency"):
            breakdown[config] = {}
            continue
        security.enable_hook_latency()
        LmbenchSuite(world.kernel, scale=scale).run(benches)
        breakdown[config] = security.hook_latency_summary()
    return breakdown


def run_hook_census(configs: Sequence[str] = TABLE2_CONFIGS,
                    benches: Optional[List[str]] = None,
                    scale: float = 0.1) -> Dict[str, Dict[str, int]]:
    """Deterministic complement to the wall-clock tables.

    Runs the suite once per configuration with hook statistics enabled and
    reports, per configuration: total syscalls issued, total LSM hook
    invocations, and hook invocations attributable to the SACK module.
    These counts are exact and noise-free — they explain *why* the
    wall-clock deltas are small (how much extra code actually runs).
    """
    census: Dict[str, Dict[str, int]] = {}
    for config in configs:
        world = build_world(config, collect_stats=True)
        suite = LmbenchSuite(world.kernel, scale=scale)
        suite.run(benches)
        stats = world.kernel.security.stats \
            if hasattr(world.kernel.security, "stats") else None
        syscalls = sum(world.kernel.syscall_counts.values())
        hook_calls = stats.total_calls() if stats else 0
        sack_calls = sum(v for k, v in (stats.calls if stats else {}).items()
                         if k.startswith("sack."))
        census[config] = {
            "syscalls": syscalls,
            "hook_calls": hook_calls,
            "sack_hook_calls": sack_calls,
            "hooks_per_syscall_x100": (hook_calls * 100 // syscalls
                                       if syscalls else 0),
        }
    return census


# -- Table III: rule-count sweep ---------------------------------------------------

def make_synthetic_policy(n_rules: int, n_states: int = 2,
                          name: str = "synthetic") -> SackPolicy:
    """A policy with *n_rules* MAC rules spread over *n_states* states.

    Mirrors the paper's Table III setup: the test policies follow the
    Fig. 1 template (device-path rules under a /dev/car guard), scaled up.
    """
    if n_states < 1:
        raise ValueError("need at least one state")
    states = StateSpace([SituationState(f"s{i}", i)
                         for i in range(n_states)])
    transitions = [TransitionRule(event=f"go_s{(i + 1) % n_states}",
                                  from_state=f"s{i}",
                                  to_state=f"s{(i + 1) % n_states}")
                   for i in range(n_states)]
    permissions = {}
    per_rules = {}
    state_per: Dict[str, set] = {f"s{i}": set() for i in range(n_states)}
    ops = [RuleOp.READ, RuleOp.WRITE, RuleOp.IOCTL]
    for i in range(n_rules):
        perm_name = f"P{i}"
        permissions[perm_name] = SackPermission(perm_name)
        rule = MacRule(decision=RuleDecision.ALLOW, op=ops[i % len(ops)],
                       path_glob=f"/dev/car/unit{i}")
        per_rules[perm_name] = [rule]
        state_per[f"s{i % n_states}"].add(perm_name)
    return SackPolicy(states=states, initial="s0", transitions=transitions,
                      permissions=permissions, state_per=state_per,
                      per_rules=per_rules, guards=["/dev/car/**"],
                      name=name)


def build_rule_count_world(n_rules: int) -> World:
    """SACK-enhanced-AppArmor world carrying *n_rules* SACK rules.

    ``n_rules == 0`` is the baseline: AppArmor with no SACK module at all
    (Table III's '0' column)."""
    if n_rules == 0:
        return build_world(CONFIG_APPARMOR)
    apparmor = AppArmorLsm()
    load_ubuntu_defaults(apparmor.policy)
    apparmor.policy.load_text(IVI_APPARMOR_PROFILES)
    bridge = SackAppArmorBridge(apparmor)
    kernel, _ = boot_kernel([bridge, apparmor])
    policy = make_synthetic_policy(n_rules)
    bridge.load_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)
    return World(f"sack-apparmor-{n_rules}-rules", kernel,
                 apparmor=apparmor, bridge=bridge)


def run_rule_sweep(rule_counts: Sequence[int] = (0, 10, 100, 500, 1000),
                   benches: Optional[List[str]] = None,
                   repetitions: int = 3, scale: float = 1.0
                   ) -> Dict[int, Dict[str, BenchResult]]:
    """Table III: LMBench at several SACK policy sizes.

    Each cell is the median over *repetitions* fresh-world runs (the
    paper averages 30 runs; the median resists the load bursts a shared
    host injects into small samples).
    """
    from .stats import median_results
    sweep: Dict[int, Dict[str, BenchResult]] = {}
    for count in rule_counts:
        runs = []
        for _ in range(repetitions):
            world = build_rule_count_world(count)
            suite = LmbenchSuite(world.kernel, scale=scale)
            runs.append(suite.run(benches))
        sweep[count] = median_results(runs)
    return sweep


# -- Fig. 3(a): situation-state count sweep ------------------------------------------

def build_state_count_world(n_states: int, n_rules_per_state: int = 2
                            ) -> World:
    """Independent SACK with an *n_states* policy (Fig. 3(a) setup)."""
    sack = SackLsm()
    kernel, _ = boot_kernel([sack])
    policy = make_synthetic_policy(n_states * n_rules_per_state,
                                   n_states=n_states,
                                   name=f"states-{n_states}")
    sack.load_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)
    return World(f"sack-independent-{n_states}-states", kernel, sack=sack)


def run_state_sweep(state_counts: Sequence[int] = (2, 5, 10, 25, 50, 100),
                    scale: float = 1.0, repetitions: int = 3
                    ) -> Dict[object, Dict[str, BenchResult]]:
    """Fig. 3(a): file-operation overhead vs number of situation states.

    Returns results for the no-LSM baseline (key ``"baseline"``) and each
    state count.  Repetitions use fresh worlds with best-of reduction,
    matching :func:`run_lmbench`'s noise discipline.
    """
    from .lmbench import FILE_OP_BENCHES
    keys: List[object] = ["baseline", *state_counts]
    samples: Dict[object, List[Dict[str, BenchResult]]] = \
        {k: [] for k in keys}
    for _ in range(max(1, repetitions)):
        for key in keys:
            if key == "baseline":
                world = build_world(CONFIG_NO_LSM)
            else:
                world = build_state_count_world(key)
            samples[key].append(LmbenchSuite(world.kernel,
                                             scale=scale).run(FILE_OP_BENCHES))
    results: Dict[object, Dict[str, BenchResult]] = {}
    for key in keys:
        merged: Dict[str, BenchResult] = {}
        for bench in samples[key][0]:
            runs = [r[bench] for r in samples[key]]
            values = [r.value for r in runs]
            best = min(values) if runs[0].smaller_is_better else max(values)
            merged[bench] = BenchResult(
                name=bench, value=best, unit=runs[0].unit,
                iterations=runs[0].iterations,
                smaller_is_better=runs[0].smaller_is_better)
        results[key] = merged
    return results


# -- Fig. 3(b): transition-frequency sweep ---------------------------------------------

SPEED_POLICY = """
policy speed_gate;
initial low_speed;

states {
  low_speed = 0;
  high_speed = 1;
}

transitions {
  low_speed -> high_speed on speed_high;
  high_speed -> low_speed on speed_low;
}

permissions {
  CRITICAL_FILE "critical-file access, low speed only";
  TELEMETRY;
}

state_per {
  low_speed: CRITICAL_FILE, TELEMETRY;
  high_speed: TELEMETRY;
}

per_rules {
  CRITICAL_FILE {
    allow read /etc/vehicle/critical.conf;
    allow write /etc/vehicle/critical.conf;
  }
  TELEMETRY {
    allow read /dev/car/**;
  }
}

guard /etc/vehicle/critical.conf;
guard /dev/car/**;
"""


def run_frequency_sweep(periods_ms: Sequence[float] = (1, 10, 100, 1000),
                        accesses: int = 20000, repetitions: int = 3
                        ) -> Dict[object, Dict[str, float]]:
    """Fig. 3(b): overhead of transitioning at millisecond granularity.

    The workload reads a critical file that only the low-speed state may
    touch; the SSM flips between high/low speed every *period_ms* of
    virtual time (events injected through SACKfs, as the SDS would).
    Accesses that land in the high-speed state are denied — that is the
    semantics — so the workload alternates between the critical file and a
    telemetry file to keep every access legal while state flips.

    Returns per-period dict with ``ns_per_access``, ``transitions``, and
    ``overhead_pct`` relative to a never-transitioning run.
    """
    results: Dict[object, Dict[str, float]] = {}

    def build():
        sack = SackLsm()
        kernel, _ = boot_kernel([sack])
        sackfs = SackFs(kernel, sack, authorized_event_uids={990},
                        ioctl_symbols=IOCTL_SYMBOLS)
        kernel.write_file(kernel.procs.init,
                          "/sys/kernel/security/SACK/policy",
                          SPEED_POLICY.encode(), create=False)
        kernel.vfs.makedirs("/etc/vehicle")
        kernel.vfs.create_file("/etc/vehicle/critical.conf")
        kernel.write_file(kernel.procs.init, "/etc/vehicle/critical.conf",
                          b"threshold=1\n")
        kernel.vfs.makedirs("/dev/car")
        kernel.vfs.create_file("/dev/car/telemetry")
        return kernel, sack

    def run(kernel, sack, period_ms: Optional[float]) -> Tuple[float, int]:
        task = kernel.procs.init
        crit_fd = kernel.sys_open(task, "/etc/vehicle/critical.conf",
                                  OpenFlags.O_RDONLY)
        telem_fd = kernel.sys_open(task, "/dev/car/telemetry",
                                   OpenFlags.O_RDONLY)
        # Each access advances virtual time by 100 µs (a 10 kHz access
        # rate), so the default 20000 accesses span 2 s of virtual time —
        # enough for transitions even at the 1000 ms period.
        access_cost_ns = 100_000
        period_ns = None if period_ms is None else int(period_ms * 1e6)
        next_flip = kernel.clock.now_ns + period_ns if period_ns else None
        high = False
        transitions = 0
        start = time.perf_counter_ns()
        for i in range(accesses):
            kernel.clock.advance_ns(access_cost_ns)
            if next_flip is not None and kernel.clock.now_ns >= next_flip:
                event = "speed_low" if high else "speed_high"
                kernel.write_file(task,
                                  "/sys/kernel/security/SACK/events",
                                  f"{event}\n".encode(), create=False)
                high = not high
                transitions += 1
                next_flip += period_ns
            fd = telem_fd if high else crit_fd
            kernel.sys_lseek(task, fd, 0)
            kernel.sys_read(task, fd, 16)
        elapsed = time.perf_counter_ns() - start
        kernel.sys_close(task, crit_fd)
        kernel.sys_close(task, telem_fd)
        return elapsed / accesses, transitions

    # Interleave the baseline and every period within each repetition so
    # all of them sample the same load windows; reduce with best-of
    # (fresh world per measurement).
    keys: List[Optional[float]] = [None, *periods_ms]
    best: Dict[Optional[float], float] = {}
    transitions_of: Dict[Optional[float], int] = {}
    for _ in range(max(1, repetitions)):
        for key in keys:
            kernel, sack = build()
            ns, transitions = run(kernel, sack, key)
            if key not in best or ns < best[key]:
                best[key] = ns
            transitions_of[key] = transitions
    base_ns = best[None]
    results["baseline"] = {"ns_per_access": base_ns, "transitions": 0,
                           "overhead_pct": 0.0}
    for period in periods_ms:
        results[period] = {
            "ns_per_access": best[period],
            "transitions": transitions_of[period],
            "overhead_pct": (best[period] - base_ns) / base_ns * 100.0,
        }
    return results


# -- E5: situation awareness latency ---------------------------------------------------

LATENCY_EVENTS = ["crash_detected", "emergency_cleared", "vehicle_started",
                  "vehicle_parked"]


def run_event_latency(samples_per_event: int = 200
                      ) -> Dict[str, Dict[str, float]]:
    """Per-event-type user→kernel latency through SACKfs + accuracy."""
    world = build_world(CONFIG_SACK_INDEPENDENT)
    kernel = world.kernel
    task = kernel.procs.init
    ssm = world.sack.ssm
    out: Dict[str, Dict[str, float]] = {}
    for event_name in LATENCY_EVENTS:
        latencies = []
        delivered = 0
        for _ in range(samples_per_event):
            before = ssm.events_processed
            start = time.perf_counter_ns()
            kernel.write_file(task, "/sys/kernel/security/SACK/events",
                              f"{event_name}\n".encode(), create=False)
            latencies.append(time.perf_counter_ns() - start)
            if ssm.events_processed == before + 1:
                delivered += 1
        out[event_name] = {
            **latency_summary_us(latencies),
            "accuracy_pct": delivered / samples_per_event * 100.0,
        }
    return out


# -- E9 ablation: event transport channels ----------------------------------------------

def run_transport_ablation(samples: int = 500) -> Dict[str, float]:
    """Mean per-event latency (µs): SACKfs vs AF_UNIX vs TCP relay.

    The socket channels model the alternative the paper rejects for C1: a
    user-space relay daemon receives the event over a socket and then
    still has to inject it into the kernel — an extra hop and two extra
    copies per event.
    """
    world = build_world(CONFIG_SACK_INDEPENDENT)
    kernel = world.kernel
    task = kernel.procs.init
    event_line = b"speed_high\n"
    results: Dict[str, float] = {}

    # Channel 1: direct SACKfs write (the paper's design).
    start = time.perf_counter_ns()
    for _ in range(samples):
        kernel.write_file(task, "/sys/kernel/security/SACK/events",
                          event_line, create=False)
    results["sackfs_us"] = (time.perf_counter_ns() - start) / samples / 1e3

    def relay_channel(family: SocketFamily, addr) -> float:
        server = kernel.sys_socket(task, family)
        kernel.sys_bind(task, server, addr)
        kernel.sys_listen(task, server)
        client = kernel.sys_socket(task, family)
        kernel.sys_connect(task, client, addr)
        conn = kernel.sys_accept(task, server)
        start = time.perf_counter_ns()
        for _ in range(samples):
            kernel.sys_send(task, client, event_line)
            data = kernel.sys_recv(task, conn, 64)
            kernel.write_file(task, "/sys/kernel/security/SACK/events",
                              data, create=False)
        elapsed = time.perf_counter_ns() - start
        for fd in (client, conn, server):
            kernel.sys_close(task, fd)
        return elapsed / samples / 1e3

    results["af_unix_relay_us"] = relay_channel(SocketFamily.AF_UNIX,
                                                "/tmp/relay.sock")
    results["tcp_relay_us"] = relay_channel(SocketFamily.AF_INET,
                                            ("127.0.0.1", 48000))
    return results


# -- E11: ABAC baseline comparison (Varshith et al.) -------------------------------------

def run_baseline_comparison(rule_counts: Sequence[int] = (10, 100, 500),
                            accesses: int = 10000
                            ) -> Dict[int, Dict[str, float]]:
    """Per-access check cost: ABAC baseline vs independent SACK.

    Both worlds guard ``/dev/car/**`` with *n* rules and the workload
    reads one governed file.  ABAC evaluates subject + environment
    attributes against the rule list per access; SACK consults the
    precompiled current-state ruleset.  Returns ns/access per approach,
    measured best-of-3.
    """
    from ..abac import AbacEffect, AbacLsm, AbacPolicy, AbacRule
    from ..sack.policy.model import RuleOp

    def measure(build) -> float:
        best = None
        for _ in range(3):
            kernel, task, path = build()
            fd = kernel.sys_open(task, path)
            for _ in range(accesses // 10):
                kernel.sys_read(task, fd, 8)  # warmup
            start = time.perf_counter_ns()
            for _ in range(accesses):
                kernel.sys_read(task, fd, 8)
            elapsed = (time.perf_counter_ns() - start) / accesses
            kernel.sys_close(task, fd)
            if best is None or elapsed < best:
                best = elapsed
        return best

    out: Dict[int, Dict[str, float]] = {}
    for count in rule_counts:
        def build_abac(count=count):
            abac = AbacLsm()
            kernel, _ = boot_kernel([abac])
            rules = [AbacRule(AbacEffect.PERMIT,
                              frozenset({RuleOp.READ}),
                              f"/dev/car/unit{i}",
                              hour_range=(0, 24))
                     for i in range(count - 1)]
            rules.append(AbacRule(AbacEffect.PERMIT,
                                  frozenset({RuleOp.READ}),
                                  "/dev/car/probe"))
            abac.load_policy(AbacPolicy(rules, guards=["/dev/car/**"]))
            kernel.vfs.makedirs("/dev/car")
            kernel.vfs.create_file("/dev/car/probe", mode=0o666)
            return kernel, kernel.procs.init, "/dev/car/probe"

        def build_sack(count=count):
            sack = SackLsm()
            kernel, _ = boot_kernel([sack])
            policy = make_synthetic_policy(count, n_states=2)
            # Ensure the probe path is readable in the initial state.
            from ..sack.policy.model import (MacRule, RuleDecision,
                                             SackPermission)
            policy.permissions["PROBE"] = SackPermission("PROBE")
            policy.per_rules["PROBE"] = [MacRule(
                RuleDecision.ALLOW, RuleOp.READ, "/dev/car/probe")]
            policy.state_per["s0"].add("PROBE")
            sack.load_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)
            kernel.vfs.makedirs("/dev/car")
            kernel.vfs.create_file("/dev/car/probe", mode=0o666)
            return kernel, kernel.procs.init, "/dev/car/probe"

        out[count] = {
            "abac_ns": measure(build_abac),
            "sack_ns": measure(build_sack),
        }
        out[count]["ratio"] = out[count]["abac_ns"] / out[count]["sack_ns"]
    return out


# -- E10 ablation: transition cost, independent vs bridge ------------------------------

def run_transition_cost_ablation(rule_counts: Sequence[int] = (10, 100, 500,
                                                               1000),
                                 transitions: int = 200
                                 ) -> Dict[int, Dict[str, float]]:
    """Per-transition cost (µs) of the two enforcement prototypes.

    Independent SACK swaps a precompiled ruleset pointer; the bridge
    rewrites and reloads AppArmor profiles.  The crossover against check
    frequency is the design trade-off discussed in DESIGN.md §5.
    """
    out: Dict[int, Dict[str, float]] = {}
    for count in rule_counts:
        policy = make_synthetic_policy(count)

        # Independent: APE pointer swap.
        sack = SackLsm()
        kernel, _ = boot_kernel([sack])
        sack.load_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)
        ssm = sack.ssm
        start = time.perf_counter_ns()
        for i in range(transitions):
            target = f"s{(i + 1) % 2}"
            ssm.process_event(SituationEvent(name=f"go_{target}"),
                              now_ns=kernel.clock.now_ns)
        independent_us = (time.perf_counter_ns() - start) / transitions / 1e3

        # Bridge: profile rewrite + reload.
        apparmor = AppArmorLsm()
        apparmor.policy.load_text(IVI_APPARMOR_PROFILES)
        bridge = SackAppArmorBridge(apparmor)
        kernel, _ = boot_kernel([bridge, apparmor])
        bridge.load_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)
        ssm = bridge.ssm
        start = time.perf_counter_ns()
        for i in range(transitions):
            target = f"s{(i + 1) % 2}"
            ssm.process_event(SituationEvent(name=f"go_{target}"),
                              now_ns=kernel.clock.now_ns)
        bridge_us = (time.perf_counter_ns() - start) / transitions / 1e3

        out[count] = {"independent_us": independent_us,
                      "bridge_us": bridge_us,
                      "ratio": bridge_us / independent_us
                      if independent_us else float("inf")}
    return out
