"""Benchmark substrate: LMBench-style suite, harness, stats, reporting.

The declarative scenario runner, trajectory store, and Pareto reports
live in :mod:`repro.bench.suite`, :mod:`repro.bench.trajectory`, and
:mod:`repro.bench.pareto`; they are imported lazily (not re-exported
here) so ``import repro.bench`` stays light.
"""

from .harness import (CONFIG_APPARMOR, CONFIG_NO_LSM, CONFIG_SACK_APPARMOR,
                      CONFIG_SACK_INDEPENDENT, LATENCY_EVENTS, SPEED_POLICY,
                      TABLE2_CONFIGS, World, build_rule_count_world,
                      build_state_count_world, build_world,
                      make_synthetic_policy, run_baseline_comparison,
                      run_event_latency, run_frequency_sweep,
                      run_hook_census, run_hook_latency_breakdown,
                      run_lmbench, run_rule_sweep, run_state_sweep,
                      run_transition_cost_ablation, run_transport_ablation)
from .lmbench import (BenchResult, FILE_OP_BENCHES, LmbenchSuite,
                      TABLE2_BENCHES)
from .reporting import (TABLE2_ROWS, format_delta, format_value,
                        mean_abs_overhead_pct, render_comparison_table,
                        render_sweep_table)
from .stats import mean, mean_results, median, pct_delta, stdev
from .timing import (best_of, best_of_ns, latency_summary_us, percentile,
                     summarize_ns)

__all__ = [
    "CONFIG_APPARMOR", "CONFIG_NO_LSM", "CONFIG_SACK_APPARMOR",
    "CONFIG_SACK_INDEPENDENT", "LATENCY_EVENTS", "SPEED_POLICY",
    "TABLE2_CONFIGS", "World", "build_rule_count_world",
    "build_state_count_world", "build_world", "make_synthetic_policy",
    "run_baseline_comparison", "run_event_latency", "run_frequency_sweep",
    "run_hook_census", "run_hook_latency_breakdown", "run_lmbench",
    "run_rule_sweep", "run_state_sweep",
    "run_transition_cost_ablation", "run_transport_ablation",
    "BenchResult", "FILE_OP_BENCHES",
    "LmbenchSuite", "TABLE2_BENCHES", "TABLE2_ROWS", "format_delta",
    "format_value", "mean_abs_overhead_pct", "render_comparison_table",
    "render_sweep_table", "mean", "mean_results", "median", "pct_delta",
    "stdev", "best_of", "best_of_ns", "latency_summary_us", "percentile",
    "summarize_ns",
]
