"""The uniform JSON envelope every ``sack-bench`` subcommand emits.

Before the envelope, ``--json`` output shapes differed per subcommand
(a bare dict from ``census``, a nested breakdown from ``hooks``), which
blocked trajectory ingestion — downstream tooling had to know which
subcommand produced a file.  Every machine-readable artifact now shares
one top-level shape::

    {
      "schema": "sack-bench/v1",
      "kind": "census" | "hooks" | "suite-run" | ...,
      "generated_at": "2026-01-01T00:00:00+00:00",
      "git_sha": "<40 hex or 'unknown'>",
      "seed": 7 | null,
      "data": { ...subcommand-specific payload... }
    }

``data`` stays subcommand-specific; everything the trajectory store
needs to version a record (schema, provenance, seed, time) is uniform.
"""

from __future__ import annotations

import datetime
import os
import subprocess
from typing import Dict, Optional

#: Envelope schema identifier; bump on incompatible top-level changes.
ENVELOPE_SCHEMA = "sack-bench/v1"


def git_sha(cwd: Optional[str] = None) -> str:
    """The current commit, or ``"unknown"`` outside a git checkout.

    ``SACK_BENCH_GIT_SHA`` overrides the lookup so tests and detached
    CI tarballs can pin provenance without a ``.git`` directory.
    """
    override = os.environ.get("SACK_BENCH_GIT_SHA")
    if override:
        return override
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10,
                             cwd=cwd)
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def utc_now_iso() -> str:
    return datetime.datetime.now(datetime.timezone.utc) \
        .isoformat(timespec="seconds")


def make_envelope(kind: str, data, seed: Optional[int] = None,
                  sha: Optional[str] = None) -> Dict[str, object]:
    """Wrap *data* in the uniform ``sack-bench/v1`` envelope."""
    return {
        "schema": ENVELOPE_SCHEMA,
        "kind": kind,
        "generated_at": utc_now_iso(),
        "git_sha": sha if sha is not None else git_sha(),
        "seed": seed,
        "data": data,
    }


def check_envelope(doc) -> Dict[str, object]:
    """Validate an envelope's shape; returns it or raises ValueError."""
    if not isinstance(doc, dict):
        raise ValueError("envelope must be a JSON object")
    missing = [k for k in ("schema", "kind", "generated_at", "git_sha",
                           "seed", "data") if k not in doc]
    if missing:
        raise ValueError(f"envelope missing keys: {', '.join(missing)}")
    if doc["schema"] != ENVELOPE_SCHEMA:
        raise ValueError(f"unsupported envelope schema {doc['schema']!r} "
                         f"(expected {ENVELOPE_SCHEMA})")
    return doc
