"""An LMBench-style micro-benchmark suite over the simulated kernel.

Reproduces the operation set of the paper's Tables II/III: process
latencies (syscall, fork, exec, stat, open/close), file-access latencies
(create/delete at 0K and 10K, mmap), local-communication bandwidths (pipe,
AF_UNIX, TCP, file reread, mmap reread) and context switching (2p/0K,
2p/16K).

Measurements are wall-clock (``time.perf_counter_ns``) over many simulated
syscalls.  Because every syscall funnels through the LSM hook layer, the
relative overhead between security configurations is an emergent property
of how much hook code actually runs — exactly the quantity the paper's
tables report — not a modelled constant.
"""

from __future__ import annotations

import dataclasses
import gc
import time
from typing import Callable, Dict, List, Optional

from ..kernel import Kernel, MapProt, OpenFlags, SocketFamily
from ..kernel.process import Task

NS_PER_MS = 1_000_000


def _warmup_count(iters: int) -> int:
    """Warmup iterations run before the timed window."""
    return max(1, iters // 20)


@dataclasses.dataclass
class BenchResult:
    """One measurement: latency (ns/op) or bandwidth (MB/s)."""

    name: str
    value: float
    unit: str                 # "ns/op" or "MB/s"
    iterations: int
    smaller_is_better: bool

    @property
    def ms_per_op(self) -> float:
        return self.value / NS_PER_MS


#: Benchmark names in paper Table II order.
TABLE2_BENCHES = [
    "syscall", "fork", "stat", "open_close", "exec",
    "file_create_0k", "file_delete_0k", "file_create_10k",
    "file_delete_10k", "mmap_latency",
    "pipe_bw", "af_unix_bw", "tcp_bw", "file_reread_bw", "mmap_reread_bw",
    "ctxsw_2p_0k", "ctxsw_2p_16k",
]

#: The file-operation subset used by the Fig. 3 sweeps.
FILE_OP_BENCHES = ["open_close", "file_create_0k", "file_delete_0k", "stat"]


class LmbenchSuite:
    """Runs the micro-benchmarks against one kernel instance.

    ``scale`` multiplies every iteration count — 1.0 for full runs,
    smaller for smoke tests.
    """

    CHUNK = 4096
    TRANSFER_BYTES = 1 << 20          # per bandwidth measurement
    REREAD_FILE_BYTES = 64 * 1024
    MMAP_FILE_BYTES = 64 * 1024

    def __init__(self, kernel: Kernel, task: Optional[Task] = None,
                 scale: float = 1.0):
        self.kernel = kernel
        self.task = task or kernel.procs.init
        self.scale = scale
        self._workdir = "/tmp/lmbench"
        kernel.vfs.makedirs(self._workdir)
        kernel.vfs.makedirs("/usr/bin")
        if not kernel.vfs.exists("/usr/bin/lat_proc"):
            kernel.vfs.create_file("/usr/bin/lat_proc", mode=0o755)

    def _iters(self, base: int) -> int:
        return max(1, int(base * self.scale))

    # -- measurement helpers ---------------------------------------------------
    def _time_loop(self, name: str, iters: int,
                   op: Callable[[], None]) -> BenchResult:
        # A short warmup settles caches; a pre-measurement collection
        # keeps GC pauses from landing inside the timed window.
        for _ in range(_warmup_count(iters)):
            op()
        gc.collect()
        start = time.perf_counter_ns()
        for _ in range(iters):
            op()
        elapsed = time.perf_counter_ns() - start
        return BenchResult(name, elapsed / iters, "ns/op", iters,
                           smaller_is_better=True)

    def _bandwidth(self, name: str, total_bytes: int,
                   elapsed_ns: int) -> BenchResult:
        mb = total_bytes / (1024 * 1024)
        seconds = elapsed_ns / 1e9
        return BenchResult(name, mb / seconds, "MB/s", 1,
                           smaller_is_better=False)

    # -- process latencies ---------------------------------------------------
    def bench_syscall(self) -> BenchResult:
        k, t = self.kernel, self.task
        return self._time_loop("syscall", self._iters(20000),
                               lambda: k.sys_getpid(t))

    def bench_fork(self) -> BenchResult:
        k, t = self.kernel, self.task

        def op():
            child = k.sys_fork(t)
            k.sys_exit(child, 0)
            k.sys_waitpid(t)

        return self._time_loop("fork", self._iters(2000), op)

    def bench_exec(self) -> BenchResult:
        k, t = self.kernel, self.task
        worker = k.sys_fork(t)
        result = self._time_loop(
            "exec", self._iters(2000),
            lambda: k.sys_execve(worker, "/usr/bin/lat_proc"))
        k.sys_exit(worker, 0)
        k.sys_waitpid(t)
        return result

    def bench_stat(self) -> BenchResult:
        k, t = self.kernel, self.task
        path = f"{self._workdir}/statfile"
        if not k.vfs.exists(path):
            k.vfs.create_file(path)
        return self._time_loop("stat", self._iters(10000),
                               lambda: k.sys_stat(t, path))

    def bench_open_close(self) -> BenchResult:
        k, t = self.kernel, self.task
        path = f"{self._workdir}/openfile"
        if not k.vfs.exists(path):
            k.vfs.create_file(path)

        def op():
            fd = k.sys_open(t, path, OpenFlags.O_RDONLY)
            k.sys_close(t, fd)

        return self._time_loop("open_close", self._iters(8000), op)

    def bench_io(self) -> BenchResult:
        """Null I/O: 1-byte read from an open fd (Table III's 'I/O' row)."""
        k, t = self.kernel, self.task
        path = f"{self._workdir}/iofile"
        if not k.vfs.exists(path):
            k.vfs.create_file(path)
        k.write_file(t, path, b"x" * 1024)
        fd = k.sys_open(t, path, OpenFlags.O_RDONLY)

        def op():
            k.sys_lseek(t, fd, 0)
            k.sys_read(t, fd, 1)

        result = self._time_loop("io", self._iters(10000), op)
        k.sys_close(t, fd)
        return result

    # -- file access -----------------------------------------------------------
    def _bench_file_create(self, size: int, label: str) -> BenchResult:
        k, t = self.kernel, self.task
        payload = b"d" * size
        iters = self._iters(2000)
        total = iters + _warmup_count(iters)
        names = [f"{self._workdir}/c{label}_{i}" for i in range(total)]
        make_idx = [0]

        def make():
            path = names[make_idx[0]]
            make_idx[0] += 1
            fd = k.sys_open(t, path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
            if payload:
                k.sys_write(t, fd, payload)
            k.sys_close(t, fd)

        result = self._time_loop(f"file_create_{label}", iters, make)
        for path in names[:make_idx[0]]:
            k.vfs.unlink(path)
        return result

    def _bench_file_delete(self, size: int, label: str) -> BenchResult:
        k, t = self.kernel, self.task
        payload = b"d" * size
        iters = self._iters(2000)
        total = iters + _warmup_count(iters)
        names = [f"{self._workdir}/d{label}_{i}" for i in range(total)]
        for path in names:
            fd = k.sys_open(t, path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
            if payload:
                k.sys_write(t, fd, payload)
            k.sys_close(t, fd)
        del_idx = [0]

        def op():
            k.sys_unlink(t, names[del_idx[0]])
            del_idx[0] += 1

        return self._time_loop(f"file_delete_{label}", iters, op)

    def bench_file_create_0k(self) -> BenchResult:
        return self._bench_file_create(0, "0k")

    def bench_file_delete_0k(self) -> BenchResult:
        return self._bench_file_delete(0, "0k")

    def bench_file_create_10k(self) -> BenchResult:
        return self._bench_file_create(10 * 1024, "10k")

    def bench_file_delete_10k(self) -> BenchResult:
        return self._bench_file_delete(10 * 1024, "10k")

    def bench_mmap_latency(self) -> BenchResult:
        k, t = self.kernel, self.task
        path = f"{self._workdir}/mmapfile"
        if not k.vfs.exists(path):
            k.vfs.create_file(path)
        k.write_file(t, path, b"m" * self.MMAP_FILE_BYTES)
        fd = k.sys_open(t, path, OpenFlags.O_RDONLY)

        def op():
            area = k.sys_mmap(t, self.MMAP_FILE_BYTES, MapProt.PROT_READ,
                              fd=fd)
            # Touch one byte per page (fault-in), as lat_mmap does.
            for off in range(0, self.MMAP_FILE_BYTES, 4096):
                area.read(off, 1)
            k.sys_munmap(t, area)

        result = self._time_loop("mmap_latency", self._iters(200), op)
        k.sys_close(t, fd)
        return result

    # -- bandwidths ---------------------------------------------------------------
    #: Passes per bandwidth measurement; the best pass is reported
    #: (additive interference only ever slows a pass down).
    BW_PASSES = 3

    def _best_pass(self, name: str, one_pass: Callable[[], int]
                   ) -> BenchResult:
        one_pass()  # warmup
        gc.collect()
        best: Optional[BenchResult] = None
        for _ in range(self.BW_PASSES):
            start = time.perf_counter_ns()
            moved = one_pass()
            elapsed = time.perf_counter_ns() - start
            result = self._bandwidth(name, moved, elapsed)
            if best is None or result.value > best.value:
                best = result
        return best

    def bench_pipe_bw(self) -> BenchResult:
        k, t = self.kernel, self.task
        r_fd, w_fd = k.sys_pipe(t)
        chunk = b"p" * self.CHUNK

        def one_pass() -> int:
            moved = 0
            while moved < self.TRANSFER_BYTES:
                k.sys_write(t, w_fd, chunk)
                k.sys_read(t, r_fd, self.CHUNK)
                moved += self.CHUNK
            return moved

        result = self._best_pass("pipe_bw", one_pass)
        k.sys_close(t, r_fd)
        k.sys_close(t, w_fd)
        return result

    def _socket_bw(self, name: str, family: SocketFamily,
                   addr) -> BenchResult:
        k, t = self.kernel, self.task
        server = k.sys_socket(t, family)
        k.sys_bind(t, server, addr)
        k.sys_listen(t, server)
        client = k.sys_socket(t, family)
        k.sys_connect(t, client, addr)
        conn = k.sys_accept(t, server)
        chunk = b"s" * self.CHUNK

        def one_pass() -> int:
            moved = 0
            while moved < self.TRANSFER_BYTES:
                k.sys_send(t, client, chunk)
                k.sys_recv(t, conn, self.CHUNK)
                moved += self.CHUNK
            return moved

        result = self._best_pass(name, one_pass)
        for fd in (client, conn, server):
            k.sys_close(t, fd)
        return result

    def bench_af_unix_bw(self) -> BenchResult:
        return self._socket_bw("af_unix_bw", SocketFamily.AF_UNIX,
                               f"/tmp/lmbench_{id(self)}.sock")

    def bench_tcp_bw(self) -> BenchResult:
        return self._socket_bw("tcp_bw", SocketFamily.AF_INET,
                               ("127.0.0.1", 31400 + (id(self) % 1000)))

    def bench_file_reread_bw(self) -> BenchResult:
        k, t = self.kernel, self.task
        path = f"{self._workdir}/reread"
        if not k.vfs.exists(path):
            k.vfs.create_file(path)
        k.write_file(t, path, b"r" * self.REREAD_FILE_BYTES)
        fd = k.sys_open(t, path, OpenFlags.O_RDONLY)
        passes = max(1, int(16 * self.scale))

        def one_pass() -> int:
            moved = 0
            for _ in range(passes):
                k.sys_lseek(t, fd, 0)
                while True:
                    data = k.sys_read(t, fd, self.CHUNK)
                    if not data:
                        break
                    moved += len(data)
            return moved

        result = self._best_pass("file_reread_bw", one_pass)
        k.sys_close(t, fd)
        return result

    def bench_mmap_reread_bw(self) -> BenchResult:
        k, t = self.kernel, self.task
        path = f"{self._workdir}/mmap_reread"
        if not k.vfs.exists(path):
            k.vfs.create_file(path)
        k.write_file(t, path, b"m" * self.MMAP_FILE_BYTES)
        fd = k.sys_open(t, path, OpenFlags.O_RDONLY)
        area = k.sys_mmap(t, self.MMAP_FILE_BYTES, MapProt.PROT_READ, fd=fd)
        passes = max(1, int(64 * self.scale))

        def one_pass() -> int:
            moved = 0
            for _ in range(passes):
                for off in range(0, self.MMAP_FILE_BYTES, self.CHUNK):
                    moved += len(area.read(off, self.CHUNK))
            return moved

        result = self._best_pass("mmap_reread_bw", one_pass)
        k.sys_munmap(t, area)
        k.sys_close(t, fd)
        return result

    # -- context switching ----------------------------------------------------------
    def _ctxsw(self, name: str, working_set: int) -> BenchResult:
        k, t = self.kernel, self.task
        children = [k.sys_fork(t), k.sys_fork(t)]
        contexts = [k.scheduler.add(c, working_set) for c in children]
        result = self._time_loop(name, self._iters(20000),
                                 k.scheduler.switch_once)
        for child in children:
            k.scheduler.remove(child)
            k.sys_exit(child, 0)
            k.sys_waitpid(t)
        del contexts
        return result

    def bench_ctxsw_2p_0k(self) -> BenchResult:
        return self._ctxsw("ctxsw_2p_0k", 0)

    def bench_ctxsw_2p_16k(self) -> BenchResult:
        return self._ctxsw("ctxsw_2p_16k", 16 * 1024)

    # -- suites --------------------------------------------------------------------
    def run(self, names: Optional[List[str]] = None
            ) -> Dict[str, BenchResult]:
        """Run the named benchmarks (default: the full Table II set)."""
        names = names or TABLE2_BENCHES
        results: Dict[str, BenchResult] = {}
        for name in names:
            method = getattr(self, f"bench_{name}")
            results[name] = method()
        return results
