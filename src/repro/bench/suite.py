"""``sack-bench suite`` — the declarative scenario harness.

A YAML config names a suite, a list of scenarios (each a workload plus
a parameter *matrix* whose list-valued axes sweep a cross-product), and
the regression *gates* the run is judged by::

    suite: smoke
    defaults:
      seed: 7
    scenarios:
      - name: fleet-scale
        workload: fleet
        matrix:
          vehicles: 8
          workers: [1, 4]
          hook_latency: true
      - name: avc-hit-path
        workload: avc
        matrix:
          rules: [50, 200]
    gates:
      fleet_vehicles_per_second: 10   # fail check on >10% drop
      avc_speedup: 50

``expand_cells`` turns that into one :class:`SweepCell` per matrix
combination; ``--dry-run`` prints exactly that matrix and executes
nothing.  ``run_suite`` executes each cell through the *existing*
harnesses — the fleet scheduler, the chaos harness, the AVC
microbenchmark loop, the per-hook latency breakdown — and writes a run
directory::

    <out>/<suite>-<UTC stamp>-<confighash8>/
      manifest.json        # envelope: config hash, git SHA, host, cells
      config.json          # the resolved config the hash covers
      cells/<cell id>.json # envelope: params, metrics, obs capture
      summary.json         # envelope: gate metrics per cell (check input)

Every cell doubles as an observability capture: its JSON folds in the
kernel's :mod:`repro.obs` metrics-hub counters (via the same
``aggregate_counters`` fold the fleet report uses) and, where spans are
cheap to arm, the span tracer's CPU breakdown.  ``suite check``
compares ``summary.json`` against the committed trajectory
(:mod:`repro.bench.trajectory`) and exits non-zero on any gate breach.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import platform
import time
import tracemalloc
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .envelope import make_envelope, utc_now_iso
from .timing import best_of

#: Resolved-config hash length used in run-directory names.
_HASH_LEN = 12


class ConfigError(ValueError):
    """A suite config failed validation; ``path`` locates the offender."""

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"{path}: {message}")


# -- axis schema ---------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Axis:
    """One sweepable parameter of a workload's matrix."""

    name: str
    kind: str                  # "int" | "float" | "bool" | "choice"
    default: object
    choices: Tuple[str, ...] = ()
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def parse(self, value, path: str):
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise ConfigError(path, f"expected true/false, "
                                        f"got {value!r}")
            return value
        if self.kind == "choice":
            if not isinstance(value, str) or value not in self.choices:
                raise ConfigError(
                    path, f"expected one of {list(self.choices)}, "
                          f"got {value!r}")
            return value
        if isinstance(value, bool) or \
                not isinstance(value, (int, float)):
            raise ConfigError(path, f"expected a number, got {value!r}")
        if self.kind == "int" and not isinstance(value, int):
            raise ConfigError(path, f"expected an integer, got {value!r}")
        if self.minimum is not None and value < self.minimum:
            raise ConfigError(path, f"must be >= {self.minimum:g}, "
                                    f"got {value!r}")
        if self.maximum is not None and value > self.maximum:
            raise ConfigError(path, f"must be <= {self.maximum:g}, "
                                    f"got {value!r}")
        return int(value) if self.kind == "int" else float(value)


def _axes(*axes: Axis) -> Dict[str, Axis]:
    return {axis.name: axis for axis in axes}


_SEED = Axis("seed", "int", 0, minimum=0)
_MEASURE_MEMORY_ON = Axis("measure_memory", "bool", True)
_MEASURE_MEMORY_OFF = Axis("measure_memory", "bool", False)

#: Per-workload matrix schemas.  Axis order here fixes cell-id layout.
WORKLOAD_AXES: Dict[str, Dict[str, Axis]] = {
    "fleet": _axes(
        Axis("vehicles", "int", 8, minimum=1),
        Axis("workers", "int", 1, minimum=1),
        Axis("backend", "choice", "serial",
             choices=("serial", "threads", "process")),
        Axis("epochs", "int", 6, minimum=1),
        Axis("mode", "choice", "independent",
             choices=("independent", "apparmor")),
        Axis("fault_intensity", "float", 0.0, minimum=0.0, maximum=1.0),
        Axis("drive_cycle", "choice", "traffic",
             choices=("traffic", "calm", "crash")),
        Axis("rollout", "bool", False),
        Axis("hook_latency", "bool", False),
        _SEED, _MEASURE_MEMORY_ON,
    ),
    "chaos": _axes(
        Axis("ticks", "int", 200, minimum=1),
        Axis("mode", "choice", "independent",
             choices=("independent", "apparmor")),
        Axis("fault_intensity", "float", 0.05, minimum=0.0, maximum=1.0),
        _SEED, _MEASURE_MEMORY_ON,
    ),
    "recovery": _axes(
        Axis("vehicles", "int", 8, minimum=1),
        Axis("workers", "int", 1, minimum=1),
        Axis("epochs", "int", 12, minimum=2),
        Axis("crash_epoch", "int", 3, minimum=0),
        Axis("checkpoint_interval", "int", 2, minimum=1),
        Axis("crash_probability", "float", 0.0, minimum=0.0,
             maximum=1.0),
        _SEED, _MEASURE_MEMORY_ON,
    ),
    "avc": _axes(
        Axis("rules", "int", 200, minimum=1),
        Axis("iterations", "int", 2000, minimum=1),
        Axis("reps", "int", 3, minimum=1),
        _SEED, _MEASURE_MEMORY_OFF,
    ),
    "hooks": _axes(
        Axis("scale", "float", 0.1, minimum=0.001, maximum=1.0),
        _SEED, _MEASURE_MEMORY_OFF,
    ),
    "telemetry": _axes(
        Axis("vehicles", "int", 25, minimum=1),
        Axis("workers", "int", 1, minimum=1),
        Axis("epochs", "int", 12, minimum=2),
        Axis("short_window", "int", 3, minimum=1),
        Axis("long_window", "int", 12, minimum=1),
        _SEED, _MEASURE_MEMORY_OFF,
    ),
    "verify": _axes(
        # Revisions in the checked OTA chain: 1 verifies the built-in
        # IVI policy alone; higher values alternate it with the
        # emergency-lockdown example so OTA edges appear in the model.
        Axis("revisions", "int", 2, minimum=1, maximum=8),
        Axis("reps", "int", 3, minimum=1),
        _SEED, _MEASURE_MEMORY_OFF,
    ),
}


# -- config model --------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class SweepCell:
    """One fully-resolved point of a scenario's sweep."""

    scenario: str
    workload: str
    params: Tuple[Tuple[str, object], ...]
    swept: Tuple[str, ...]          # axes that were list-valued

    @property
    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)

    @property
    def cell_id(self) -> str:
        if not self.swept:
            return self.scenario
        parts = []
        values = self.param_dict
        for axis in self.swept:
            value = values[axis]
            if isinstance(value, bool):
                value = "on" if value else "off"
            parts.append(f"{axis}={value}")
        return f"{self.scenario}__" + ",".join(parts)


@dataclasses.dataclass
class ScenarioSpec:
    """One scenario: a workload plus its (possibly swept) matrix."""

    name: str
    workload: str
    matrix: Dict[str, object]       # axis -> scalar or list of scalars


@dataclasses.dataclass
class SuiteConfig:
    """A parsed, validated suite file."""

    name: str
    scenarios: List[ScenarioSpec]
    gates: Dict[str, Optional[float]]
    out: str = "bench-runs"

    def to_dict(self) -> Dict[str, object]:
        return {
            "suite": self.name,
            "out": self.out,
            "scenarios": [{"name": s.name, "workload": s.workload,
                           "matrix": s.matrix}
                          for s in self.scenarios],
            "gates": dict(self.gates),
        }

    def config_hash(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:_HASH_LEN]


_NAME_SAFE = set("abcdefghijklmnopqrstuvwxyz"
                 "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.")


def _check_name(value, path: str) -> str:
    if not isinstance(value, str) or not value:
        raise ConfigError(path, f"expected a non-empty string, "
                                f"got {value!r}")
    bad = set(value) - _NAME_SAFE
    if bad:
        raise ConfigError(path, f"name {value!r} contains "
                                f"non-filesystem-safe characters "
                                f"{sorted(bad)}")
    return value


def parse_suite_config(doc, source: str = "<config>") -> SuiteConfig:
    """Validate a YAML/JSON document into a :class:`SuiteConfig`."""
    from .trajectory import direction_of
    if not isinstance(doc, dict):
        raise ConfigError(source, "top level must be a mapping")
    allowed = {"suite", "out", "defaults", "scenarios", "gates"}
    unknown = sorted(set(doc) - allowed)
    if unknown:
        raise ConfigError(source, f"unknown keys {unknown}; "
                                  f"allowed: {sorted(allowed)}")
    name = _check_name(doc.get("suite"), f"{source}.suite")
    out = doc.get("out", "bench-runs")
    if not isinstance(out, str) or not out:
        raise ConfigError(f"{source}.out",
                          f"expected a path string, got {out!r}")

    defaults = doc.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ConfigError(f"{source}.defaults", "must be a mapping")

    raw_scenarios = doc.get("scenarios")
    if not isinstance(raw_scenarios, list) or not raw_scenarios:
        raise ConfigError(f"{source}.scenarios",
                          "must be a non-empty list")
    scenarios: List[ScenarioSpec] = []
    seen_names = set()
    for i, raw in enumerate(raw_scenarios):
        path = f"{source}.scenarios[{i}]"
        if not isinstance(raw, dict):
            raise ConfigError(path, "must be a mapping")
        extra = sorted(set(raw) - {"name", "workload", "matrix"})
        if extra:
            raise ConfigError(path, f"unknown keys {extra}")
        sname = _check_name(raw.get("name"), f"{path}.name")
        if sname in seen_names:
            raise ConfigError(f"{path}.name",
                              f"duplicate scenario name {sname!r}")
        seen_names.add(sname)
        workload = raw.get("workload")
        if workload not in WORKLOAD_AXES:
            raise ConfigError(
                f"{path}.workload",
                f"unknown workload {workload!r}; "
                f"choose from {sorted(WORKLOAD_AXES)}")
        axes = WORKLOAD_AXES[workload]
        matrix_in = raw.get("matrix", {})
        if not isinstance(matrix_in, dict):
            raise ConfigError(f"{path}.matrix", "must be a mapping")
        merged = {k: v for k, v in defaults.items() if k in axes}
        merged.update(matrix_in)
        matrix: Dict[str, object] = {}
        for axis_name, value in merged.items():
            apath = f"{path}.matrix.{axis_name}"
            axis = axes.get(axis_name)
            if axis is None:
                raise ConfigError(
                    apath, f"unknown axis for workload {workload!r}; "
                           f"allowed: {sorted(axes)}")
            if isinstance(value, list):
                if not value:
                    raise ConfigError(apath, "sweep list is empty")
                parsed = [axis.parse(v, f"{apath}[{j}]")
                          for j, v in enumerate(value)]
                if len(set(map(repr, parsed))) != len(parsed):
                    raise ConfigError(apath,
                                      f"sweep values repeat: {value!r}")
                matrix[axis_name] = parsed
            else:
                matrix[axis_name] = axis.parse(value, apath)
        scenarios.append(ScenarioSpec(sname, workload, matrix))

    raw_gates = doc.get("gates", {})
    if not isinstance(raw_gates, dict):
        raise ConfigError(f"{source}.gates", "must be a mapping")
    gates: Dict[str, Optional[float]] = {}
    for metric, tolerance in raw_gates.items():
        gpath = f"{source}.gates.{metric}"
        if direction_of(str(metric)) is None:
            raise ConfigError(
                gpath, "cannot infer better-direction from the metric "
                       "name; use a *_ns / *_per_second / *speedup* "
                       "style name")
        if tolerance is not None:
            if isinstance(tolerance, bool) or \
                    not isinstance(tolerance, (int, float)) or \
                    tolerance <= 0:
                raise ConfigError(gpath, f"tolerance must be a positive "
                                         f"percentage, got {tolerance!r}")
            tolerance = float(tolerance)
        gates[str(metric)] = tolerance
    return SuiteConfig(name=name, scenarios=scenarios, gates=gates,
                       out=out)


def load_suite_config(path: str) -> SuiteConfig:
    import yaml
    with open(path, "r", encoding="utf-8") as fh:
        doc = yaml.safe_load(fh)
    return parse_suite_config(doc, source=os.path.basename(path))


def expand_cells(config: SuiteConfig) -> List[SweepCell]:
    """The full sweep cross-product, in declaration order."""
    cells: List[SweepCell] = []
    for scenario in config.scenarios:
        axes = WORKLOAD_AXES[scenario.workload]
        resolved: Dict[str, List[object]] = {}
        swept: List[str] = []
        for axis_name, axis in axes.items():
            value = scenario.matrix.get(axis_name, axis.default)
            if isinstance(value, list):
                resolved[axis_name] = value
                swept.append(axis_name)
            else:
                resolved[axis_name] = [value]
        names = list(resolved)
        for combo in itertools.product(*(resolved[n] for n in names)):
            cells.append(SweepCell(
                scenario=scenario.name, workload=scenario.workload,
                params=tuple(zip(names, combo)), swept=tuple(swept)))
    ids = [c.cell_id for c in cells]
    dupes = sorted({i for i in ids if ids.count(i) > 1})
    if dupes:
        raise ConfigError("scenarios",
                          f"sweep produces duplicate cell ids {dupes}")
    return cells


# -- workload executors --------------------------------------------------------

#: Synthetic policy template shared with ``benchmarks/test_avc.py``:
#: *rule_count* bulk rules with the probe path matching last, so every
#: uncached check pays the full linear walk a large real policy would.
def avc_bench_policy(rule_count: int) -> str:
    rules = "\n".join(f"    allow read /dev/car/sensor{i:03d};"
                      for i in range(rule_count))
    return f"""
policy avc_bench;
initial normal;
states {{
  normal = 0;
  emergency = 1;
}}
transitions {{
  normal -> emergency on crash_detected;
  emergency -> normal on emergency_cleared;
}}
permissions {{
  BULK;
  DOORS;
}}
state_per {{
  normal: BULK;
  emergency: BULK, DOORS;
}}
per_rules {{
  BULK {{
{rules}
    allow read /dev/car/probe;
  }}
  DOORS {{
    allow write /dev/car/door subject=rescue_daemon;
  }}
}}
guard /dev/car/**;
"""


def _fold_counters(kernels) -> Dict[str, int]:
    from ..fleet.report import aggregate_counters
    return aggregate_counters(k.obs.metrics.to_dict() for k in kernels)


def _run_fleet_cell(params: Dict[str, object]
                    ) -> Tuple[Dict[str, float], Dict[str, object]]:
    from ..fleet.bundle import BundleSigner, make_bundle
    from ..fleet.orchestrator import (Fleet, FleetConfig, ScriptedDriver,
                                      TrafficDriver)
    from ..vehicle.ivi import DEFAULT_SACK_POLICY

    cycle = params["drive_cycle"]
    epochs = int(params["epochs"])

    def make_driver():
        # Fresh per fleet: scripted drivers carry per-run schedule state,
        # and the process cell boots a shadow fleet alongside the primary.
        if cycle == "traffic":
            return TrafficDriver(int(params["seed"]))
        if cycle == "calm":
            return ScriptedDriver()
        # crash: first vehicle crashes early and recovers later
        driver = ScriptedDriver().at(1, "veh000", "crash")
        if epochs > 4:
            driver.at(epochs - 2, "veh000", "clear")
        return driver

    def make_config(backend: str) -> FleetConfig:
        return FleetConfig(
            n_vehicles=int(params["vehicles"]), seed=int(params["seed"]),
            workers=int(params["workers"]), mode=str(params["mode"]),
            backend=backend,
            vehicle_fault_intensity=float(params["fault_intensity"]))

    backend = str(params["backend"])
    # Under the process backend the vehicles live in worker processes, so
    # the coordinator cannot reach into their kernels for the per-hook
    # latency histograms; the knob is in-process-only.
    hook_latency = bool(params["hook_latency"]) and backend != "process"
    fleet = Fleet(make_config(backend), driver=make_driver())
    try:
        if hook_latency:
            for vehicle in fleet.vehicles.values():
                vehicle.world.kernel.security.enable_hook_latency()
        def stage_rollout(target) -> None:
            if params["rollout"]:
                target.stage_rollout(make_bundle(
                    1, DEFAULT_SACK_POLICY,
                    signer=BundleSigner(target.config.fleet_key)))

        stage_rollout(fleet)
        report = fleet.run(epochs).report

        metrics: Dict[str, float] = {
            "fleet_vehicles_per_second": report.vehicles_per_second(),
            "fleet_compute_makespan_ms":
                report.compute_makespan_ns / 1e6,
            "fleet_transitions": float(report.total_transitions),
            "fleet_bus_copies_delivered":
                float(report.bus_stats.get("copies_delivered", 0)),
            "fleet_violations": float(len(report.violations)),
        }
        obs: Dict[str, object] = {
            "counters": report.counters,
            "fingerprint": report.fingerprint(),
            "rollout": report.rollout,
            "bus": report.bus_stats,
        }
        if hook_latency:
            rows = []
            for vehicle in fleet.vehicles.values():
                summary = vehicle.world.kernel.security \
                    .hook_latency_summary()
                rows.extend(summary.values())
            if rows:
                total = sum(r["count"] for r in rows)
                metrics["hook_mean_ns"] = sum(
                    r["count"] * r["mean_ns"] for r in rows) / total
                metrics["hook_p99_ns"] = max(r["p99_ns"] for r in rows)
            obs["hook_latency"] = {
                vid: v.world.kernel.security.hook_latency_summary()
                for vid, v in sorted(fleet.vehicles.items())}
    finally:
        fleet.close()
    if backend == "process":
        # Shadow run on the honest-GIL thread backend: the recorded
        # fleet_mp_speedup gate defends the multiprocessing win, and the
        # fingerprint pair doubles as an in-suite conformance check.
        shadow = Fleet(make_config("threads"), driver=make_driver())
        try:
            # Identical workload — only the backend differs.
            stage_rollout(shadow)
            threads_report = shadow.run(epochs).report
        finally:
            shadow.close()
        threads_vps = threads_report.vehicles_per_second()
        metrics["fleet_mp_speedup"] = (
            report.vehicles_per_second() / threads_vps
            if threads_vps else 0.0)
        obs["threads_fingerprint"] = threads_report.fingerprint()
        obs["mp_bit_identical"] = (report.fingerprint()
                                   == threads_report.fingerprint())
    return metrics, obs


def _run_chaos_cell(params: Dict[str, object]
                    ) -> Tuple[Dict[str, float], Dict[str, object]]:
    from ..faults.chaos import run_chaos
    report = run_chaos(int(params["seed"]), ticks=int(params["ticks"]),
                       mode=str(params["mode"]),
                       intensity=float(params["fault_intensity"]))
    faults_fired = sum(row.get("injected", 0)
                       for row in report.fault_report.values())
    metrics: Dict[str, float] = {
        "chaos_transitions": float(len(report.transitions)),
        "chaos_faults_injected": float(faults_fired),
        "chaos_violations": float(len(report.violations)),
        "chaos_spans": float(len(report.spans)),
    }
    obs: Dict[str, object] = {
        "stats": report.stats,
        "fault_report": report.fault_report,
        "fingerprint": report.fingerprint(),
        "final_state": report.final_state,
    }
    return metrics, obs


def _run_recovery_cell(params: Dict[str, object]
                       ) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Crash-and-recover cell: one forced crash (plus optional random
    crash faults), measuring virtual restore downtime and determinism."""
    from ..faults import points as fault_points
    from ..faults.plan import FaultRule
    from ..fleet.orchestrator import Fleet, FleetConfig

    epochs = int(params["epochs"])
    crash_epoch = max(0, min(int(params["crash_epoch"]), epochs - 1))

    def run_once():
        fleet = Fleet(FleetConfig(
            n_vehicles=int(params["vehicles"]),
            seed=int(params["seed"]),
            workers=int(params["workers"]),
            checkpoint_interval_epochs=
            int(params["checkpoint_interval"])))
        probability = float(params["crash_probability"])
        if probability > 0:
            fleet.fleet_plan.add_rule(FaultRule(
                point=fault_points.FLEET_VEHICLE_CRASH,
                probability=probability))
        fleet.force_crash(fleet.ids[0], epoch=crash_epoch)
        return fleet, fleet.run(epochs).report

    fleet, report = run_once()
    second_fleet, second = run_once()
    second_fleet.close()
    resilience = report.resilience
    metrics: Dict[str, float] = {
        "recovery_restore_latency_ns":
            float(fleet.supervisor.mean_restore_latency_ns() or 0.0),
        "recovery_crashes": float(resilience.get("crashes", 0)),
        "recovery_restores": float(resilience.get("restores", 0)),
        "recovery_quarantined": float(resilience.get("quarantined", 0)),
        "recovery_violations": float(len(report.violations)),
        "recovery_determinism_ratio":
            1.0 if report.fingerprint() == second.fingerprint() else 0.0,
    }
    obs: Dict[str, object] = {
        "resilience": resilience,
        "fingerprint": report.fingerprint(),
        "violations": list(report.violations),
        "checkpoints": fleet.host.checkpoint_rows(),
    }
    fleet.close()
    return metrics, obs


def _boot_avc_world(rules: int, cache_enabled: bool):
    from ..kernel import OpenFlags, user_credentials
    from .harness import CONFIG_SACK_INDEPENDENT, build_world
    world = build_world(CONFIG_SACK_INDEPENDENT,
                        policy_text=avc_bench_policy(rules))
    kernel = world.kernel
    kernel.security.avc.enabled = cache_enabled
    kernel.vfs.makedirs("/dev/car")
    kernel.vfs.create_file("/dev/car/probe", mode=0o666)
    task = kernel.sys_fork(kernel.procs.init)
    task.comm = "bench_app"
    task.cred = user_credentials(1000)
    fd = kernel.sys_open(task, "/dev/car/probe", OpenFlags.O_RDONLY)
    file = task.get_fd(fd).obj
    return kernel, task, file


def _run_avc_cell(params: Dict[str, object]
                  ) -> Tuple[Dict[str, float], Dict[str, object]]:
    from ..kernel import MAY_READ
    rules = int(params["rules"])
    iterations = int(params["iterations"])
    reps = int(params["reps"])

    def loop(security, task, file, n):
        for _ in range(n):
            security.file_permission(task, file, MAY_READ)

    hot_kernel, hot_task, hot_file = _boot_avc_world(rules, True)
    cold_kernel, cold_task, cold_file = _boot_avc_world(rules, False)
    loop(hot_kernel.security, hot_task, hot_file, 10)  # warm the cache
    hot = best_of(lambda: loop(hot_kernel.security, hot_task, hot_file,
                               iterations), reps=reps)
    cold = best_of(lambda: loop(cold_kernel.security, cold_task,
                                cold_file, iterations), reps=reps)
    metrics: Dict[str, float] = {
        "avc_cached_ns_per_op": hot / iterations * 1e9,
        "avc_uncached_ns_per_op": cold / iterations * 1e9,
        "avc_speedup": cold / hot if hot else 0.0,
    }
    # A short traced slice for the span CPU breakdown: tracing the timed
    # loops would perturb them, so the capture runs after measurement.
    spans = hot_kernel.obs.spans
    spans.enable()
    spans.trace_all_hooks()
    loop(hot_kernel.security, hot_task, hot_file, 25)
    obs: Dict[str, object] = {
        "counters": _fold_counters([hot_kernel]),
        "span_breakdown": spans.breakdown(),
        "avc": {"hits": hot_kernel.security.avc.core.hits,
                "misses": hot_kernel.security.avc.core.misses},
    }
    return metrics, obs


def _run_hooks_cell(params: Dict[str, object]
                    ) -> Tuple[Dict[str, float], Dict[str, object]]:
    from .harness import run_hook_latency_breakdown
    breakdown = run_hook_latency_breakdown(
        scale=float(params["scale"]))
    metrics: Dict[str, float] = {}
    for config, hooks in breakdown.items():
        if not hooks:
            continue
        total = sum(r["count"] for r in hooks.values())
        key = config.replace("-", "_")
        metrics[f"hooks_{key}_mean_ns"] = sum(
            r["count"] * r["mean_ns"] for r in hooks.values()) / total
        metrics[f"hooks_{key}_p99_ns"] = max(
            r["p99_ns"] for r in hooks.values())
    return metrics, {"hook_latency": breakdown}


def _run_telemetry_cell(params: Dict[str, object]
                        ) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Telemetry-overhead cell: the same seeded fleet with the pipeline
    off and on.  Both runs are on the virtual clock, so the overhead
    percentage is deterministic — the modelled per-frame scrape cost
    against fleet throughput, not host noise."""
    from ..fleet.orchestrator import Fleet, FleetConfig

    base = dict(n_vehicles=int(params["vehicles"]),
                seed=int(params["seed"]),
                workers=int(params["workers"]))
    epochs = int(params["epochs"])
    off_fleet = Fleet(FleetConfig(**base))
    off = off_fleet.run(epochs).report
    off_fleet.close()
    on_fleet = Fleet(FleetConfig(
        **base, telemetry=True,
        telemetry_short_window_epochs=int(params["short_window"]),
        telemetry_long_window_epochs=int(params["long_window"])))
    on = on_fleet.run(epochs).report
    on_fleet.close()
    vps_off = off.vehicles_per_second()
    vps_on = on.vehicles_per_second()
    overhead_pct = ((vps_off - vps_on) / vps_off * 100.0
                    if vps_off > 0 else 0.0)
    telemetry = on.telemetry
    metrics: Dict[str, float] = {
        "telemetry_overhead_pct": overhead_pct,
        "telemetry_vehicles_per_second": vps_on,
        "telemetry_frames": float(telemetry.get("frames", 0)),
        "telemetry_series_tracked":
            float(telemetry.get("series_tracked", 0)),
        "telemetry_slo_alerts":
            float(telemetry.get("slo", {}).get("alerts_total", 0)),
    }
    obs: Dict[str, object] = {
        "rollup_digest": telemetry.get("rollup_digest"),
        "rollups": telemetry.get("rollups"),
        "overhead": telemetry.get("overhead"),
        "fingerprint_off": off.fingerprint(),
        "fingerprint_on": on.fingerprint(),
    }
    return metrics, obs


def _run_verify_cell(params: Dict[str, object]
                     ) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Static-checker cell: prove P1–P5 over an OTA revision chain.

    The chain is the built-in IVI policy plus renamed copies of itself,
    so every cell is self-contained (no example files) and every
    revision verifies clean; the interesting outputs are proof effort
    (decision-oracle checks — deterministic for a given chain) and the
    checker's wall-time per check.
    """
    from ..vehicle.devices import IOCTL_SYMBOLS
    from ..vehicle.ivi import DEFAULT_SACK_POLICY
    from ..verify import verify_policies

    revisions = int(params["revisions"])
    reps = int(params["reps"])
    chain = [DEFAULT_SACK_POLICY]
    for i in range(1, revisions):
        chain.append(DEFAULT_SACK_POLICY.replace(
            "policy ivi_default;", f"policy ivi_rev{i};", 1))

    last: Dict[str, object] = {}

    def prove() -> None:
        last["report"] = verify_policies(chain,
                                         ioctl_symbols=IOCTL_SYMBOLS)

    wall_s = best_of(prove, reps=reps)
    report = last["report"]
    stats = report.model_stats
    checks = int(stats["checks"])
    metrics: Dict[str, float] = {
        "verify_wall_ms": wall_s * 1e3,
        "verify_check_ns": (wall_s / checks * 1e9) if checks else 0.0,
        "verify_states_per_second": (stats["states"] / wall_s
                                     if wall_s > 0 else 0.0),
        "verify_model_states": float(stats["states"]),
        "verify_model_edges": float(stats["transitions"]),
        "verify_decision_checks": float(checks),
        "verify_properties": float(len(report.results)),
        "verify_violations": float(len(report.failed_properties)),
    }
    obs: Dict[str, object] = {
        "model": dict(stats),
        "policies": list(report.policy_names),
        "properties": [{"prop_id": r.prop_id, "passed": r.passed,
                        "checks": r.checks, "elapsed_ns": r.elapsed_ns}
                       for r in report.results],
    }
    return metrics, obs


_EXECUTORS: Dict[str, Callable[[Dict[str, object]],
                               Tuple[Dict[str, float],
                                     Dict[str, object]]]] = {
    "fleet": _run_fleet_cell,
    "chaos": _run_chaos_cell,
    "recovery": _run_recovery_cell,
    "avc": _run_avc_cell,
    "hooks": _run_hooks_cell,
    "telemetry": _run_telemetry_cell,
    "verify": _run_verify_cell,
}

#: Workloads whose metrics gate against another workload's trajectory
#: file (recovery cells ride the chaos set: both exercise fault paths;
#: telemetry cells are an observability workload and ride the obs set).
_METRIC_SET_ALIASES: Dict[str, str] = {"recovery": "chaos",
                                       "telemetry": "obs"}


def run_cell(cell: SweepCell) -> Dict[str, object]:
    """Execute one cell; returns its JSON-ready result document."""
    params = cell.param_dict
    executor = _EXECUTORS[cell.workload]
    trace_memory = bool(params.get("measure_memory"))
    start = time.perf_counter()
    if trace_memory:
        # tracemalloc roughly doubles allocation cost, so it is only
        # armed for virtual-clock workloads whose gate metrics cannot
        # see host slowdowns (fleet, chaos); wall-clock cells keep it
        # off by default.
        tracemalloc.start()
        try:
            metrics, obs = executor(params)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        metrics["peak_mem_kb"] = peak / 1024.0
    else:
        metrics, obs = executor(params)
    wall_s = time.perf_counter() - start
    return {
        "cell": cell.cell_id,
        "scenario": cell.scenario,
        "workload": cell.workload,
        "params": params,
        "metrics": metrics,
        "observability": obs,
        "wall_time_s": round(wall_s, 3),
    }


# -- the batch runner ----------------------------------------------------------

@dataclasses.dataclass
class SuiteRun:
    """A completed (or dry-run) suite invocation."""

    config: SuiteConfig
    cells: List[SweepCell]
    run_dir: Optional[str] = None
    results: List[Dict[str, object]] = dataclasses.field(
        default_factory=list)

    def summary_cells(self) -> List[Dict[str, object]]:
        return [{"cell": r["cell"], "workload": r["workload"],
                 "metrics": r["metrics"]} for r in self.results]

    def gate_metrics_by_set(self) -> Dict[str, Dict[str, float]]:
        """Fold cell metrics per metric set (= workload name).

        When a sweep produces the same metric in several cells (four
        fleet cells all report ``fleet_vehicles_per_second``), the fold
        keeps the *worst* value per gate direction — the gate then
        defends the weakest cell, not the luckiest.
        """
        from .trajectory import direction_of
        folded: Dict[str, Dict[str, float]] = {}
        for result in self.results:
            metric_set = _METRIC_SET_ALIASES.get(result["workload"],
                                                 result["workload"])
            bucket = folded.setdefault(metric_set, {})
            for metric, value in result["metrics"].items():
                direction = direction_of(metric)
                if metric not in bucket:
                    bucket[metric] = float(value)
                elif direction == "higher":
                    bucket[metric] = min(bucket[metric], float(value))
                elif direction == "lower":
                    bucket[metric] = max(bucket[metric], float(value))
        return folded


def run_suite(config: SuiteConfig, out_root: Optional[str] = None,
              dry_run: bool = False,
              show: Callable[[str], None] = lambda line: None
              ) -> SuiteRun:
    """Expand, validate, and (unless *dry_run*) execute every cell."""
    cells = expand_cells(config)
    run = SuiteRun(config=config, cells=cells)
    if dry_run:
        return run

    stamp = utc_now_iso().replace(":", "").replace("-", "") \
        .split("+")[0]
    run_id = f"{config.name}-{stamp}-{config.config_hash()}"
    run_dir = os.path.join(out_root or config.out, run_id)
    os.makedirs(os.path.join(run_dir, "cells"), exist_ok=True)
    run.run_dir = run_dir

    started = time.perf_counter()
    for index, cell in enumerate(cells):
        show(f"[{index + 1}/{len(cells)}] {cell.cell_id}")
        result = run_cell(cell)
        run.results.append(result)
        cell_doc = make_envelope("suite-cell", result,
                                 seed=cell.param_dict.get("seed"))
        with open(os.path.join(run_dir, "cells",
                               f"{cell.cell_id}.json"),
                  "w", encoding="utf-8") as fh:
            json.dump(cell_doc, fh, indent=2)
    wall_s = time.perf_counter() - started

    resolved = config.to_dict()
    with open(os.path.join(run_dir, "config.json"), "w",
              encoding="utf-8") as fh:
        json.dump(resolved, fh, indent=2)
    manifest = make_envelope("suite-run", {
        "suite": config.name,
        "config_hash": config.config_hash(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "gates": dict(config.gates),
        "cells": [c.cell_id for c in cells],
        "wall_time_s": round(wall_s, 3),
    })
    with open(os.path.join(run_dir, "manifest.json"), "w",
              encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)
    summary = make_envelope("suite-summary", {
        "suite": config.name,
        "config_hash": config.config_hash(),
        "gates": dict(config.gates),
        "cells": run.summary_cells(),
        "by_metric_set": run.gate_metrics_by_set(),
    })
    with open(os.path.join(run_dir, "summary.json"), "w",
              encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2)
    return run


def load_run_summary(run_dir: str) -> Dict[str, object]:
    from .envelope import check_envelope
    with open(os.path.join(run_dir, "summary.json"), "r",
              encoding="utf-8") as fh:
        return check_envelope(json.load(fh))


def latest_run_dir(out_root: str) -> str:
    """Newest run directory (by name, which embeds the UTC stamp)."""
    candidates = sorted(
        entry for entry in os.listdir(out_root)
        if os.path.isfile(os.path.join(out_root, entry, "summary.json")))
    if not candidates:
        raise FileNotFoundError(
            f"no completed suite runs under {out_root}")
    return os.path.join(out_root, candidates[-1])


def check_run(run_dir: str, trajectory_dir: str):
    """Gate a run against the committed trajectory.

    Returns ``(regressions, checked)`` where *checked* lists every
    ``metric_set/metric`` pair that was actually compared (a gate over a
    metric the run never produced, or with no committed baseline, is
    skipped — the caller can surface that).
    """
    from .trajectory import (DEFAULT_TOLERANCE_PCT, check_metrics,
                             direction_of, load_or_new)
    summary = load_run_summary(run_dir)
    data = summary["data"]
    gates = data.get("gates") or {}
    by_set = data.get("by_metric_set") or {}
    source = _suite_source(data)
    regressions = []
    checked: List[str] = []
    for metric_set, metrics in sorted(by_set.items()):
        relevant = {m: t for m, t in gates.items() if m in metrics}
        if not relevant:
            continue
        trajectory = load_or_new(trajectory_dir, metric_set)
        for metric in relevant:
            if trajectory.latest_value(metric, source=source) \
                    is not None and direction_of(metric) is not None:
                checked.append(f"{metric_set}/{metric}")
        regressions.extend(check_metrics(
            trajectory, metrics, relevant,
            default_tolerance_pct=DEFAULT_TOLERANCE_PCT,
            source=source))
    return regressions, checked


def _suite_source(summary_data: Dict[str, object]) -> str:
    """The trajectory ``source`` tag for a suite run's records.

    Baselines are suite-scoped (``suite:smoke`` vs ``suite:mp``): two
    suites folding the same metric over different cell populations must
    not serve as each other's baselines.
    """
    return f"suite:{summary_data.get('suite', 'unknown')}"


def append_run_to_trajectory(run_dir: str, trajectory_dir: str
                             ) -> List[str]:
    """Append a run's per-set gate metrics to the trajectory files."""
    from .trajectory import load_or_new, trajectory_path
    summary = load_run_summary(run_dir)
    data = summary["data"]
    updated: List[str] = []
    for metric_set, metrics in sorted(
            (data.get("by_metric_set") or {}).items()):
        if not metrics:
            continue
        trajectory = load_or_new(trajectory_dir, metric_set)
        trajectory.append(metrics, source=_suite_source(data),
                          sha=summary.get("git_sha"))
        path = trajectory_path(trajectory_dir, metric_set)
        trajectory.save(path)
        updated.append(path)
    return updated
