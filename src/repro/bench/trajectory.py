"""The persisted perf trajectory: append-only ``BENCH_*.json`` history.

Until now the ``BENCH_*.json`` files existed only as CI artifacts —
each run overwrote the last and nothing was committed, so there was no
longitudinal record to defend the 15x AVC win or the 3.97x fleet
scaling against regressions.  This module gives each *metric set*
(``avc``, ``obs``, ``fleet``, ``chaos``) an append-only, schema-versioned
history file committed under ``benchmarks/trajectory/``::

    {
      "schema": "sack-bench-trajectory/v1",
      "metric_set": "fleet",
      "records": [
        {"git_sha": ..., "timestamp": ..., "seed": ..., "source": ...,
         "metrics": {"fleet_vehicles_per_second": 123.4, ...}},
        ...
      ]
    }

Records are appended, never rewritten — the git history plus the record
list *is* the trajectory.  :func:`check_metrics` compares a fresh run
against the newest committed value of each metric, direction-aware
(vehicles/sec up is good; ns/op up is bad), and reports every breach of
its tolerance.  ``sack-bench suite check`` turns those breaches into a
non-zero exit, which is what the CI regression gate keys on.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Optional, Sequence

from .envelope import git_sha, utc_now_iso

#: Trajectory schema identifier; bump on incompatible record changes.
TRAJECTORY_SCHEMA = "sack-bench-trajectory/v1"

#: Default tolerance (percent) when a gate names no explicit threshold.
DEFAULT_TOLERANCE_PCT = 20.0

#: Metric-name suffixes that mean "smaller is better".  Anything not
#: matched here or in _HIGHER_SUFFIXES must be declared explicitly via
#: a gate entry; :func:`direction_of` then refuses to guess.
_LOWER_SUFFIXES = ("_ns", "_us", "_ms", "_ns_per_op", "_us_per_event",
                   "_kb", "_bytes", "_makespan_ms", "_pct")

#: Substrings that mean "bigger is better" (checked first, anywhere in
#: the name, so per-axis variants like ``speedup_1_to_4`` still match).
_HIGHER_MARKERS = ("per_second", "speedup", "accuracy_pct", "ratio",
                   "throughput", "vps")


def direction_of(metric: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` is better, or None if unknown."""
    for marker in _HIGHER_MARKERS:
        if marker in metric:
            return "higher"
    for suffix in _LOWER_SUFFIXES:
        if metric.endswith(suffix):
            return "lower"
    return None


@dataclasses.dataclass
class Regression:
    """One gate breach: a metric moved the wrong way past tolerance."""

    metric_set: str
    metric: str
    baseline: float
    current: float
    delta_pct: float
    tolerance_pct: float

    def __str__(self) -> str:
        return (f"{self.metric_set}/{self.metric}: "
                f"{self.baseline:g} -> {self.current:g} "
                f"({self.delta_pct:+.1f}%, tolerance "
                f"{self.tolerance_pct:.0f}%)")


class Trajectory:
    """One metric set's append-only history file."""

    def __init__(self, metric_set: str,
                 records: Optional[List[Dict[str, object]]] = None):
        self.metric_set = metric_set
        self.records: List[Dict[str, object]] = list(records or [])

    # -- persistence -------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Trajectory":
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict) or \
                doc.get("schema") != TRAJECTORY_SCHEMA:
            raise ValueError(
                f"{path}: not a {TRAJECTORY_SCHEMA} trajectory file")
        records = doc.get("records")
        if not isinstance(records, list):
            raise ValueError(f"{path}: 'records' must be a list")
        return cls(str(doc.get("metric_set", "unknown")), records)

    def save(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({
                "schema": TRAJECTORY_SCHEMA,
                "metric_set": self.metric_set,
                "records": self.records,
            }, fh, indent=2, sort_keys=False)
            fh.write("\n")

    # -- record access -----------------------------------------------------

    def append(self, metrics: Dict[str, float],
               seed: Optional[int] = None, source: str = "suite",
               sha: Optional[str] = None,
               timestamp: Optional[str] = None) -> Dict[str, object]:
        clean = {}
        for name, value in metrics.items():
            if isinstance(value, bool) or \
                    not isinstance(value, (int, float)):
                raise ValueError(
                    f"metric {name!r} must be numeric, got {value!r}")
            clean[name] = float(value)
        record = {
            "git_sha": sha if sha is not None else git_sha(),
            "timestamp": timestamp or utc_now_iso(),
            "seed": seed,
            "source": source,
            "metrics": clean,
        }
        self.records.append(record)
        return record

    def latest_value(self, metric: str,
                     source: Optional[str] = None) -> Optional[float]:
        """Newest committed value of *metric*, scanning backwards.

        With *source*, records from that exact source are preferred —
        two suites may legitimately report the same metric over
        different cell populations (smoke's fleet sweep includes a
        1-worker cell; the mp suite is all 4-worker cells), and a gate
        must compare a run against its own lineage, not whichever suite
        appended last.  If no same-source record carries the metric the
        scan falls back to any source, so the first run of a renamed or
        new suite still inherits a baseline instead of silently passing.
        """
        if source is not None:
            for record in reversed(self.records):
                if record.get("source") != source:
                    continue
                metrics = record.get("metrics") or {}
                if metric in metrics:
                    return float(metrics[metric])
        for record in reversed(self.records):
            metrics = record.get("metrics") or {}
            if metric in metrics:
                return float(metrics[metric])
        return None

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for record in self.records:
            for name in (record.get("metrics") or {}):
                if name not in names:
                    names.append(name)
        return names


def trajectory_path(trajectory_dir: str, metric_set: str) -> str:
    return os.path.join(trajectory_dir, f"BENCH_{metric_set}.json")


def load_or_new(trajectory_dir: str, metric_set: str) -> Trajectory:
    path = trajectory_path(trajectory_dir, metric_set)
    if os.path.exists(path):
        return Trajectory.load(path)
    return Trajectory(metric_set)


def check_metrics(trajectory: Trajectory, metrics: Dict[str, float],
                  gates: Dict[str, float],
                  default_tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
                  source: Optional[str] = None,
                  ) -> List[Regression]:
    """Compare *metrics* against the trajectory's newest baselines.

    Only metrics named in *gates* (metric -> tolerance percent; None
    picks the default) are enforced — wall-clock metrics too noisy to
    gate still get recorded, they just never fail the build.  A gated
    metric with no committed baseline or no known direction is skipped:
    the first run *establishes* the baseline rather than failing it.
    *source* scopes baseline lookup to same-source records first (see
    :meth:`Trajectory.latest_value`).
    """
    regressions: List[Regression] = []
    for metric, tolerance in gates.items():
        tol = default_tolerance_pct if tolerance is None \
            else float(tolerance)
        if metric not in metrics:
            continue
        baseline = trajectory.latest_value(metric, source=source)
        if baseline is None or baseline == 0:
            continue
        direction = direction_of(metric)
        if direction is None:
            continue
        current = float(metrics[metric])
        delta_pct = (current - baseline) / abs(baseline) * 100.0
        regressed = delta_pct < -tol if direction == "higher" \
            else delta_pct > tol
        if regressed:
            regressions.append(Regression(
                metric_set=trajectory.metric_set, metric=metric,
                baseline=baseline, current=current,
                delta_pct=delta_pct, tolerance_pct=tol))
    return regressions


# -- pytest-benchmark ingestion ------------------------------------------------

def metrics_from_pytest_benchmark(doc: Dict[str, object]
                                  ) -> Dict[str, float]:
    """Flatten a ``--benchmark-json`` document into trajectory metrics.

    Each benchmark contributes its mean wall-clock seconds as
    ``<name>_mean_ns`` plus every numeric scalar from ``extra_info``
    (prefixed with the benchmark name; nested dicts flatten with their
    key path).  That captures exactly the numbers the benchmark files
    advertise — ``speedup``, ``vehicles_per_second`` per worker count,
    per-op latencies — under stable, direction-inferable names.
    """
    out: Dict[str, float] = {}

    def put(name: str, value) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            out[name] = float(value)

    def flatten(prefix: str, value) -> None:
        if isinstance(value, dict):
            for key, sub in value.items():
                flatten(f"{prefix}_{key}", sub)
        else:
            put(prefix, value)

    for bench in doc.get("benchmarks", []):
        raw = str(bench.get("name", "bench"))
        name = raw.removeprefix("test_")
        stats = bench.get("stats") or {}
        if isinstance(stats.get("mean"), (int, float)):
            put(f"{name}_mean_ns", stats["mean"] * 1e9)
        extra = bench.get("extra_info") or {}
        for key, value in extra.items():
            # extra_info keys already carry their own unit suffixes
            # (speedup, *_ns_per_op, vehicles_per_second); nested dicts
            # (per-worker maps, hook breakdowns) flatten by key path.
            flatten(f"{name}_{key}", value)
    return out


def ingest_pytest_benchmark(trajectory_dir: str, metric_set: str,
                            bench_json_path: str,
                            seed: Optional[int] = None,
                            sha: Optional[str] = None) -> Trajectory:
    """Append one pytest-benchmark JSON file to a trajectory and save."""
    with open(bench_json_path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    metrics = metrics_from_pytest_benchmark(doc)
    if not metrics:
        raise ValueError(f"{bench_json_path}: no benchmarks to ingest")
    trajectory = load_or_new(trajectory_dir, metric_set)
    trajectory.append(metrics, seed=seed, source="pytest-benchmark",
                      sha=sha)
    trajectory.save(trajectory_path(trajectory_dir, metric_set))
    return trajectory


def load_all(trajectory_dir: str) -> List[Trajectory]:
    """Every ``BENCH_*.json`` trajectory under *trajectory_dir*."""
    out: List[Trajectory] = []
    if not os.path.isdir(trajectory_dir):
        return out
    for name in sorted(os.listdir(trajectory_dir)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            out.append(Trajectory.load(
                os.path.join(trajectory_dir, name)))
    return out
