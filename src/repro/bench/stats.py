"""Small statistics helpers for benchmark aggregation."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from .lmbench import BenchResult


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def pct_delta(baseline: float, value: float) -> float:
    """Percentage change of *value* relative to *baseline*."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline * 100.0


def mean_results(runs: List[Dict[str, BenchResult]]
                 ) -> Dict[str, BenchResult]:
    """Average several benchmark runs bench-by-bench."""
    return _merge_results(runs, mean)


def median_results(runs: List[Dict[str, BenchResult]]
                   ) -> Dict[str, BenchResult]:
    """Bench-by-bench median — robust to scheduler/GC outliers."""
    return _merge_results(runs, median)


def _merge_results(runs: List[Dict[str, BenchResult]],
                   reduce_fn) -> Dict[str, BenchResult]:
    if not runs:
        raise ValueError("no runs to merge")
    merged: Dict[str, BenchResult] = {}
    for name, first in runs[0].items():
        values = [run[name].value for run in runs]
        merged[name] = BenchResult(
            name=name, value=reduce_fn(values), unit=first.unit,
            iterations=first.iterations,
            smaller_is_better=first.smaller_is_better)
    return merged
