"""Smartphone generalisation of SACK (the paper's third claimed domain)."""

from .phone import (CAM_CAPTURE, CONTEXT_UID, GPS_READ_FIX,
                    MIC_RECORD_START, MIC_RECORD_STOP, PHONE_APPS,
                    PHONE_IOCTL_SYMBOLS, PHONE_SACK_POLICY, PhoneWorld,
                    SMS_SEND, build_phone)

__all__ = ["CAM_CAPTURE", "CONTEXT_UID", "GPS_READ_FIX",
           "MIC_RECORD_START", "MIC_RECORD_STOP", "PHONE_APPS",
           "PHONE_IOCTL_SYMBOLS", "PHONE_SACK_POLICY", "PhoneWorld",
           "SMS_SEND", "build_phone"]
