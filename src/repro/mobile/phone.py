"""A situation-aware smartphone under SACK.

The third domain from the paper's conclusion.  The situations come from
the smartphone context-policy literature the paper surveys (Apex, CRePE,
MOSES, FlaskDroid): *normal* use, *in_meeting* (microphone/camera are
privacy-critical; the calendar is the detector), *driving* (distracting
messaging is restricted — the motivation shared with the vehicle's volume
case), and *locked* (screen off in a pocket: sensors only).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..kernel import Capability, Kernel, OpenFlags, user_credentials
from ..kernel.devices import CharDevice, ioc_r, ioc_w
from ..kernel.errors import Errno, KernelError
from ..kernel.process import Task
from ..kernel.vfs.file import OpenFile
from ..lsm import boot_kernel
from ..sack import SackFs, SackLsm

MIC_RECORD_START = ioc_w(0x901)
MIC_RECORD_STOP = ioc_w(0x902)
CAM_CAPTURE = ioc_w(0xA01)
SMS_SEND = ioc_w(0xB01)
GPS_READ_FIX = ioc_r(0xC01)

PHONE_IOCTL_SYMBOLS: Dict[str, int] = {
    "MIC_RECORD_START": MIC_RECORD_START,
    "MIC_RECORD_STOP": MIC_RECORD_STOP,
    "CAM_CAPTURE": CAM_CAPTURE,
    "SMS_SEND": SMS_SEND,
    "GPS_READ_FIX": GPS_READ_FIX,
}


class Microphone(CharDevice):
    def __init__(self):
        super().__init__("mic")
        self.recording = False

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        if cmd == MIC_RECORD_START:
            self.recording = True
            return 0
        if cmd == MIC_RECORD_STOP:
            self.recording = False
            return 0
        raise KernelError(Errno.ENOTTY, f"mic: unknown ioctl {cmd:#x}")


class Camera(CharDevice):
    def __init__(self):
        super().__init__("cam")
        self.captures = 0

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        if cmd == CAM_CAPTURE:
            self.captures += 1
            return self.captures
        raise KernelError(Errno.ENOTTY, f"cam: unknown ioctl {cmd:#x}")


class SmsModem(CharDevice):
    def __init__(self):
        super().__init__("sms")
        self.sent = 0

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        if cmd == SMS_SEND:
            self.sent += 1
            return self.sent
        raise KernelError(Errno.ENOTTY, f"sms: unknown ioctl {cmd:#x}")


class Gps(CharDevice):
    def __init__(self):
        super().__init__("gps")

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        if cmd == GPS_READ_FIX:
            return 1
        raise KernelError(Errno.ENOTTY, f"gps: unknown ioctl {cmd:#x}")


#: uid of the context service (calendar + activity recognition).
CONTEXT_UID = 992

PHONE_APPS = {
    "voice_assistant": 3001,
    "social_app": 3002,
    "nav_app": 3003,
    "context_service": CONTEXT_UID,
}

PHONE_SACK_POLICY = """
policy smartphone;
initial normal;

states {
  normal = 0;
  in_meeting = 1 "calendar says: meeting in progress";
  driving = 2 "activity recognition: in a moving car";
  locked = 3 "screen locked, in pocket";
}

transitions {
  normal -> in_meeting on meeting_started;
  in_meeting -> normal on meeting_ended;
  normal -> driving on driving_started;
  driving -> normal on driving_ended;
  normal -> locked on screen_locked;
  locked -> normal on screen_unlocked;
}

permissions {
  SENSORS "location fixes";
  MICROPHONE "record audio";
  CAMERA "take pictures";
  MESSAGING "send SMS";
}

state_per {
  normal: SENSORS, MICROPHONE, CAMERA, MESSAGING;
  in_meeting: SENSORS, MESSAGING;
  driving: SENSORS, MICROPHONE;
  locked: SENSORS;
}

per_rules {
  SENSORS {
    allow read /dev/phone/**;
    allow ioctl /dev/phone/gps cmd=GPS_READ_FIX;
  }
  MICROPHONE {
    allow ioctl /dev/phone/mic cmd=MIC_RECORD_START,MIC_RECORD_STOP subject=voice_assistant;
  }
  CAMERA {
    allow ioctl /dev/phone/cam cmd=CAM_CAPTURE;
  }
  MESSAGING {
    allow ioctl /dev/phone/sms cmd=SMS_SEND subject=social_app;
  }
}

guard /dev/phone/**;
"""


class PhoneWorld:
    """A booted smartphone under independent SACK."""

    def __init__(self, kernel: Kernel, sack: SackLsm,
                 devices: Dict[str, object], tasks: Dict[str, Task]):
        self.kernel = kernel
        self.sack = sack
        self.devices = devices
        self.tasks = tasks

    @property
    def situation(self) -> Optional[str]:
        return self.sack.current_state

    def send_event(self, event: str) -> None:
        self.kernel.write_file(self.tasks["context_service"],
                               "/sys/kernel/security/SACK/events",
                               f"{event}\n".encode(), create=False)

    def device_ioctl(self, app: str, device: str, cmd: int,
                     arg: int = 0) -> int:
        task = self.tasks[app]
        fd = self.kernel.sys_open(task, f"/dev/phone/{device}",
                                  OpenFlags.O_RDONLY)
        try:
            return self.kernel.sys_ioctl(task, fd, cmd, arg)
        finally:
            self.kernel.sys_close(task, fd)


def build_phone(policy_text: str = PHONE_SACK_POLICY) -> PhoneWorld:
    sack = SackLsm()
    kernel, _ = boot_kernel([sack])
    SackFs(kernel, sack, authorized_event_uids={CONTEXT_UID},
           ioctl_symbols=PHONE_IOCTL_SYMBOLS)

    devices = {"mic": Microphone(), "cam": Camera(), "sms": SmsModem(),
               "gps": Gps()}
    kernel.vfs.makedirs("/dev/phone")
    for name, driver in devices.items():
        rdev = kernel.devices.alloc_rdev()
        kernel.devices.register(rdev, driver)
        kernel.vfs.mknod(f"/dev/phone/{name}", rdev, mode=0o666)

    init = kernel.procs.init
    tasks: Dict[str, Task] = {}
    for name, uid in PHONE_APPS.items():
        exe = f"/usr/bin/{name}"
        kernel.vfs.create_file(exe, mode=0o755)
        task = kernel.sys_fork(init)
        task.cred = user_credentials(uid)
        kernel.sys_execve(task, exe, comm=name)
        tasks[name] = task

    kernel.write_file(init, "/sys/kernel/security/SACK/policy",
                      policy_text.encode(), create=False)
    return PhoneWorld(kernel, sack, devices, tasks)
