"""Character devices and the device registry.

CAV hardware (doors, windows, audio, CAN) appears to user space as character
device nodes under ``/dev/car``; SACK's case study gates ``write`` and
``ioctl`` on exactly these nodes.  Drivers subclass :class:`CharDevice`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .errors import Errno, KernelError
from .vfs.file import OpenFile

#: Conventional major number for the simulated vehicle devices.
CAR_DEVICE_MAJOR = 240

# Linux _IOC direction bits (bits 30-31 of the command number).
IOC_NONE = 0
IOC_WRITE = 1
IOC_READ = 2
_IOC_DIRSHIFT = 30


def ioc(direction: int, nr: int) -> int:
    """Build an ioctl command number with _IOC-style direction bits."""
    return (direction << _IOC_DIRSHIFT) | nr


def ioc_r(nr: int) -> int:
    """A read-direction ioctl (``_IOR``): device state flows to the caller."""
    return ioc(IOC_READ, nr)


def ioc_w(nr: int) -> int:
    """A write-direction ioctl (``_IOW``): the caller changes device state."""
    return ioc(IOC_WRITE, nr)


def ioctl_direction(cmd: int) -> int:
    """Extract the direction bits from an ioctl command number."""
    return (cmd >> _IOC_DIRSHIFT) & 0x3


def ioctl_is_write(cmd: int) -> bool:
    """Treat write-direction and direction-less ioctls as state-changing."""
    return ioctl_direction(cmd) != IOC_READ


class CharDevice:
    """Base class for character-device drivers.

    Subclasses override the file operations they support; unsupported
    operations fail with the errno Linux drivers typically return.
    """

    def __init__(self, name: str):
        self.name = name

    def open(self, task, file: OpenFile) -> None:
        """Called when the node is opened; may initialise private_data."""

    def release(self, task, file: OpenFile) -> None:
        """Called when the last reference to the open file is dropped."""

    def read(self, task, file: OpenFile, count: int) -> bytes:
        raise KernelError(Errno.EINVAL, f"{self.name}: read not supported")

    def write(self, task, file: OpenFile, data: bytes) -> int:
        raise KernelError(Errno.EINVAL, f"{self.name}: write not supported")

    def ioctl(self, task, file: OpenFile, cmd: int, arg: int) -> int:
        raise KernelError(Errno.ENOTTY, f"{self.name}: unknown ioctl {cmd}")


class DeviceRegistry:
    """Maps ``(major, minor)`` device numbers to driver instances."""

    def __init__(self):
        self._drivers: Dict[Tuple[int, int], CharDevice] = {}
        self._next_minor: Dict[int, int] = {}

    def register(self, rdev: Tuple[int, int], driver: CharDevice) -> None:
        if rdev in self._drivers:
            raise KernelError(Errno.EBUSY, f"device {rdev} already registered")
        self._drivers[rdev] = driver

    def alloc_rdev(self, major: int = CAR_DEVICE_MAJOR) -> Tuple[int, int]:
        """Allocate the next free minor number under *major*."""
        minor = self._next_minor.get(major, 0)
        while (major, minor) in self._drivers:
            minor += 1
        self._next_minor[major] = minor + 1
        return (major, minor)

    def lookup(self, rdev: Tuple[int, int]) -> CharDevice:
        try:
            return self._drivers[rdev]
        except KeyError:
            raise KernelError(Errno.ENODEV, f"no driver for {rdev}") from None

    def unregister(self, rdev: Tuple[int, int]) -> None:
        self._drivers.pop(rdev, None)

    def __len__(self) -> int:
        return len(self._drivers)
