"""IPC primitives: pipes, UNIX sockets, and a loopback TCP stack.

These exist so the LMBench-style bandwidth benchmarks (pipe, AF_UNIX, TCP)
exercise real code paths through the LSM socket hooks, and so the IVI apps
can talk to each other the way the paper's user-space stack does.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from .errors import Errno, KernelError

#: Default kernel buffer size for pipes and sockets (64 KiB, as in Linux).
PIPE_BUF_SIZE = 64 * 1024


class ByteChannel:
    """A bounded byte FIFO shared by one writer end and one reader end."""

    def __init__(self, capacity: int = PIPE_BUF_SIZE):
        self.capacity = capacity
        self._chunks: Deque[bytes] = deque()
        self._size = 0
        self.writer_closed = False
        self.reader_closed = False

    @property
    def size(self) -> int:
        return self._size

    @property
    def space(self) -> int:
        return self.capacity - self._size

    def push(self, data: bytes) -> int:
        """Write up to the free space; returns bytes accepted."""
        if self.reader_closed:
            raise KernelError(Errno.EPIPE, "reader closed")
        accept = min(len(data), self.space)
        if accept == 0 and len(data) > 0:
            raise KernelError(Errno.EAGAIN, "channel full")
        if accept:
            self._chunks.append(bytes(data[:accept]))
            self._size += accept
        return accept

    def pull(self, count: int) -> bytes:
        """Read up to *count* bytes; empty bytes means EOF when writer gone."""
        if self._size == 0:
            if self.writer_closed:
                return b""
            raise KernelError(Errno.EAGAIN, "channel empty")
        out = bytearray()
        while self._chunks and len(out) < count:
            chunk = self._chunks[0]
            take = min(len(chunk), count - len(out))
            out.extend(chunk[:take])
            if take == len(chunk):
                self._chunks.popleft()
            else:
                self._chunks[0] = chunk[take:]
        self._size -= len(out)
        return bytes(out)


class Pipe:
    """An anonymous pipe: a channel plus its two endpoints."""

    def __init__(self, capacity: int = PIPE_BUF_SIZE):
        self.channel = ByteChannel(capacity)

    def write(self, data: bytes) -> int:
        return self.channel.push(data)

    def read(self, count: int) -> bytes:
        return self.channel.pull(count)

    def close_writer(self) -> None:
        self.channel.writer_closed = True

    def close_reader(self) -> None:
        self.channel.reader_closed = True


class SocketFamily(enum.Enum):
    AF_UNIX = "unix"
    AF_INET = "inet"


class SocketState(enum.Enum):
    NEW = "new"
    LISTENING = "listening"
    CONNECTED = "connected"
    CLOSED = "closed"


class Socket:
    """A stream socket endpoint (UNIX or loopback TCP).

    Socket ids are allocated by the owning :class:`NetworkStack`
    (per-kernel); the class counter only backs bare test constructions.
    """

    _id_counter = itertools.count(1)

    def __init__(self, family: SocketFamily,
                 capacity: int = PIPE_BUF_SIZE,
                 sid: Optional[int] = None):
        self.id = sid if sid is not None else next(Socket._id_counter)
        self.family = family
        self.state = SocketState.NEW
        self.capacity = capacity
        self.bound_addr: Optional[object] = None
        self.peer: Optional["Socket"] = None
        self.rx: Optional[ByteChannel] = None
        self.tx: Optional[ByteChannel] = None
        self.backlog: Deque["Socket"] = deque()
        #: Per-LSM state (``sock->sk_security``).
        self.security: Dict[str, object] = {}

    def send(self, data: bytes) -> int:
        if self.state is not SocketState.CONNECTED or self.tx is None:
            raise KernelError(Errno.ENOTCONN, "socket not connected")
        return self.tx.push(data)

    def recv(self, count: int) -> bytes:
        if self.state is not SocketState.CONNECTED or self.rx is None:
            raise KernelError(Errno.ENOTCONN, "socket not connected")
        return self.rx.pull(count)

    def close(self) -> None:
        if self.tx is not None:
            self.tx.writer_closed = True
        if self.rx is not None:
            self.rx.reader_closed = True
        self.state = SocketState.CLOSED


def connect_pair(a: Socket, b: Socket,
                 capacity: int = PIPE_BUF_SIZE) -> None:
    """Wire two sockets together with a channel in each direction."""
    ab = ByteChannel(capacity)
    ba = ByteChannel(capacity)
    a.tx, a.rx = ab, ba
    b.tx, b.rx = ba, ab
    a.peer, b.peer = b, a
    a.state = b.state = SocketState.CONNECTED


class NetworkStack:
    """Loopback-only network: named listeners and connection setup.

    UNIX sockets bind to filesystem-ish string paths; INET sockets bind to
    ``(host, port)`` tuples.  There is no routing — everything is local,
    which matches the LMBench local-communication benchmarks.
    """

    def __init__(self):
        self._listeners: Dict[object, Socket] = {}
        self._ids = itertools.count(1)

    def socket(self, family: SocketFamily) -> Socket:
        return Socket(family, sid=next(self._ids))

    def bind(self, sock: Socket, addr: object) -> None:
        if addr in self._listeners:
            raise KernelError(Errno.EADDRINUSE, str(addr))
        sock.bound_addr = addr

    def listen(self, sock: Socket, backlog: int = 16) -> None:
        if sock.bound_addr is None:
            raise KernelError(Errno.EINVAL, "socket not bound")
        sock.state = SocketState.LISTENING
        self._listeners[sock.bound_addr] = sock

    def connect(self, sock: Socket, addr: object) -> None:
        listener = self._listeners.get(addr)
        if listener is None or listener.state is not SocketState.LISTENING:
            raise KernelError(Errno.ECONNREFUSED, str(addr))
        if listener.family is not sock.family:
            raise KernelError(Errno.EINVAL, "address family mismatch")
        server_side = Socket(listener.family, capacity=listener.capacity,
                             sid=next(self._ids))
        connect_pair(sock, server_side)
        listener.backlog.append(server_side)

    def accept(self, listener: Socket) -> Socket:
        if listener.state is not SocketState.LISTENING:
            raise KernelError(Errno.EINVAL, "socket not listening")
        if not listener.backlog:
            raise KernelError(Errno.EAGAIN, "no pending connection")
        return listener.backlog.popleft()

    def close_listener(self, sock: Socket) -> None:
        if sock.bound_addr is not None:
            self._listeners.pop(sock.bound_addr, None)
        sock.close()
