"""Simulated Linux kernel substrate.

Everything the SACK reproduction needs from an operating system: a virtual
clock, credentials and capabilities, a VFS, character devices, IPC, an mmap
layer, processes, a scheduler, and a syscall layer that invokes security
hooks at the same points the real kernel does.
"""

from .clock import VirtualClock
from .credentials import (Capability, Credentials, ROOT_CREDENTIALS,
                          user_credentials)
from .devices import CAR_DEVICE_MAJOR, CharDevice, DeviceRegistry
from .errors import Errno, KernelError
from .ipc import NetworkStack, Pipe, Socket, SocketFamily
from .memory import AddressSpace, MapProt, PAGE_SIZE, VmArea
from .process import FdKind, ProcessTable, Task, TaskState
from .scheduler import SchedContext, Scheduler
from .security import NullSecurity, SecurityHooks
from .syscalls import (AuditLog, AuditRecord, Kernel, MAY_EXEC, MAY_READ,
                       MAY_WRITE)
from .vfs import OpenFlags, VirtualFileSystem

__all__ = [
    "VirtualClock", "Capability", "Credentials", "ROOT_CREDENTIALS",
    "user_credentials", "CharDevice", "DeviceRegistry", "CAR_DEVICE_MAJOR",
    "Errno", "KernelError", "NetworkStack", "Pipe", "Socket", "SocketFamily",
    "AddressSpace", "MapProt", "PAGE_SIZE", "VmArea", "FdKind",
    "ProcessTable", "Task", "TaskState", "SchedContext", "Scheduler",
    "NullSecurity", "SecurityHooks", "Kernel", "AuditLog", "AuditRecord",
    "MAY_EXEC", "MAY_READ", "MAY_WRITE", "OpenFlags", "VirtualFileSystem",
]
