"""Kernel error numbers and the exception type used by the syscall layer.

The simulated kernel mirrors the Linux convention: syscalls either return a
value or fail with a well-known errno.  In Python we raise
:class:`KernelError` carrying an :class:`Errno`; the syscall wrappers in
:mod:`repro.kernel.syscalls` translate that into the ``-errno`` style return
codes where callers want them.
"""

from __future__ import annotations

import enum


class Errno(enum.IntEnum):
    """Subset of Linux errno values used by the simulator."""

    EPERM = 1
    ENOENT = 2
    ESRCH = 3
    EINTR = 4
    EIO = 5
    ENXIO = 6
    EBADF = 9
    ECHILD = 10
    EAGAIN = 11
    ENOMEM = 12
    EACCES = 13
    EFAULT = 14
    EBUSY = 16
    EEXIST = 17
    EXDEV = 18
    ENODEV = 19
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    ENFILE = 23
    EMFILE = 24
    ENOTTY = 25
    EFBIG = 27
    ENOSPC = 28
    ESPIPE = 29
    EROFS = 30
    EMLINK = 31
    EPIPE = 32
    ERANGE = 34
    ENAMETOOLONG = 36
    ENOSYS = 38
    ENOTEMPTY = 39
    ELOOP = 40
    ENODATA = 61
    EBADMSG = 74
    EOPNOTSUPP = 95
    EADDRINUSE = 98
    ENETUNREACH = 101
    ECONNRESET = 104
    ENOBUFS = 105
    EISCONN = 106
    ENOTCONN = 107
    ETIMEDOUT = 110
    ECONNREFUSED = 111
    EALREADY = 114
    EINPROGRESS = 115


class KernelError(Exception):
    """Raised by kernel internals when an operation fails with an errno."""

    def __init__(self, errno: Errno, message: str = ""):
        self.errno = Errno(errno)
        detail = message or self.errno.name
        super().__init__(f"[{self.errno.name}] {detail}")

    def __int__(self) -> int:
        return -int(self.errno)


def require(condition: bool, errno: Errno, message: str = "") -> None:
    """Raise :class:`KernelError` with *errno* unless *condition* holds."""
    if not condition:
        raise KernelError(errno, message)
