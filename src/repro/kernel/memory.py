"""A miniature mmap layer for the simulated kernel.

Models just enough of the VM subsystem for the LMBench mmap benchmarks:
file-backed mappings with page-granular fault-in, plus anonymous mappings
used by the context-switch benchmark's working sets.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Optional

from .errors import Errno, KernelError
from .vfs.inode import Inode

PAGE_SIZE = 4096


class MapProt(enum.IntFlag):
    PROT_NONE = 0x0
    PROT_READ = 0x1
    PROT_WRITE = 0x2
    PROT_EXEC = 0x4


class VmArea:
    """One virtual memory area (a single ``mmap`` result).

    Mapping ids are allocated by the owning kernel so concurrent kernels
    number their mappings independently (and identically for identical
    workloads); the class counter only backs bare test constructions.
    """

    _id_counter = itertools.count(1)

    def __init__(self, length: int, prot: MapProt,
                 inode: Optional[Inode] = None, offset: int = 0,
                 area_id: Optional[int] = None):
        if length <= 0:
            raise KernelError(Errno.EINVAL, "mapping length must be positive")
        if offset % PAGE_SIZE != 0:
            raise KernelError(Errno.EINVAL, "offset must be page aligned")
        self.id = (area_id if area_id is not None
                   else next(VmArea._id_counter))
        self.length = length
        self.prot = prot
        self.inode = inode
        self.offset = offset
        self.pages: Dict[int, bytearray] = {}
        self.fault_count = 0
        self.unmapped = False

    @property
    def npages(self) -> int:
        return (self.length + PAGE_SIZE - 1) // PAGE_SIZE

    def _fault_in(self, page_index: int) -> bytearray:
        """Materialise a page, copying file content for file mappings."""
        if page_index < 0 or page_index >= self.npages:
            raise KernelError(Errno.EFAULT,
                              f"page {page_index} outside mapping")
        page = self.pages.get(page_index)
        if page is None:
            self.fault_count += 1
            page = bytearray(PAGE_SIZE)
            if self.inode is not None and self.inode.data is not None:
                start = self.offset + page_index * PAGE_SIZE
                src = self.inode.data[start:start + PAGE_SIZE]
                page[:len(src)] = src
            self.pages[page_index] = page
        return page

    def read(self, addr: int, count: int) -> bytes:
        """Read *count* bytes starting at mapping-relative *addr*."""
        if self.unmapped:
            raise KernelError(Errno.EFAULT, "use after munmap")
        if not self.prot & MapProt.PROT_READ:
            raise KernelError(Errno.EACCES, "mapping not readable")
        if addr < 0 or addr + count > self.length:
            raise KernelError(Errno.EFAULT, "read outside mapping")
        out = bytearray()
        while count > 0:
            page = self._fault_in(addr // PAGE_SIZE)
            page_off = addr % PAGE_SIZE
            take = min(count, PAGE_SIZE - page_off)
            out.extend(page[page_off:page_off + take])
            addr += take
            count -= take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        if self.unmapped:
            raise KernelError(Errno.EFAULT, "use after munmap")
        if not self.prot & MapProt.PROT_WRITE:
            raise KernelError(Errno.EACCES, "mapping not writable")
        if addr < 0 or addr + len(data) > self.length:
            raise KernelError(Errno.EFAULT, "write outside mapping")
        pos = 0
        while pos < len(data):
            page = self._fault_in((addr + pos) // PAGE_SIZE)
            page_off = (addr + pos) % PAGE_SIZE
            take = min(len(data) - pos, PAGE_SIZE - page_off)
            page[page_off:page_off + take] = data[pos:pos + take]
            pos += take


class AddressSpace:
    """The set of live mappings of one task (``mm_struct``)."""

    def __init__(self):
        self.areas: Dict[int, VmArea] = {}

    def add(self, area: VmArea) -> VmArea:
        self.areas[area.id] = area
        return area

    def remove(self, area_id: int) -> None:
        area = self.areas.pop(area_id, None)
        if area is None:
            raise KernelError(Errno.EINVAL, f"no mapping {area_id}")
        area.unmapped = True
        area.pages.clear()

    def clear(self) -> None:
        for area in self.areas.values():
            area.unmapped = True
            area.pages.clear()
        self.areas.clear()

    def __len__(self) -> int:
        return len(self.areas)
