"""A cooperative scheduler used by the context-switch benchmarks.

LMBench's ``lat_ctx`` measures the cost of switching between N processes
that each touch a working set between switches.  We model that directly: a
ring of contexts, each with a working-set buffer; ``switch_once`` saves one
register file, restores the next, and touches the working set (simulating
cache refill work, which is what makes 2p/16K slower than 2p/0K).
"""

from __future__ import annotations

from typing import List, Optional

from .errors import Errno, KernelError
from .process import Task

#: Size of the simulated register file saved/restored per switch.
REGISTER_FILE_WORDS = 64


class SchedContext:
    """Scheduler-visible state of one runnable entity."""

    def __init__(self, task: Task, working_set_bytes: int = 0):
        self.task = task
        self.registers: List[int] = [0] * REGISTER_FILE_WORDS
        self.working_set = bytearray(working_set_bytes)
        self.run_count = 0


class Scheduler:
    """A round-robin ring of contexts with explicit switch cost."""

    def __init__(self):
        self.ring: List[SchedContext] = []
        self.current_index = 0
        self.switch_count = 0

    def add(self, task: Task, working_set_bytes: int = 0) -> SchedContext:
        ctx = SchedContext(task, working_set_bytes)
        self.ring.append(ctx)
        return ctx

    def remove(self, task: Task) -> None:
        self.ring = [c for c in self.ring if c.task.pid != task.pid]
        self.current_index = 0

    @property
    def current(self) -> Optional[SchedContext]:
        if not self.ring:
            return None
        return self.ring[self.current_index % len(self.ring)]

    def switch_once(self) -> SchedContext:
        """Switch to the next context in the ring and return it."""
        if len(self.ring) < 1:
            raise KernelError(Errno.ESRCH, "nothing to schedule")
        prev = self.ring[self.current_index % len(self.ring)]
        self.current_index = (self.current_index + 1) % len(self.ring)
        nxt = self.ring[self.current_index]
        # Save/restore the register file.
        prev.registers = [r + 1 for r in prev.registers[:8]] + \
            prev.registers[8:]
        nxt.registers = list(nxt.registers)
        # Touch the incoming working set (cache refill cost model).
        ws = nxt.working_set
        for off in range(0, len(ws), 64):
            ws[off] = (ws[off] + 1) & 0xFF
        nxt.run_count += 1
        self.switch_count += 1
        return nxt
