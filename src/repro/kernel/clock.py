"""Virtual time for the simulated kernel.

All *functional* behaviour in the simulator (timestamps, transition
frequencies, SDS polling periods) uses a :class:`VirtualClock` so runs are
deterministic.  Benchmarks measure real elapsed time separately with
``time.perf_counter_ns``; the virtual clock never feeds benchmark numbers.
"""

from __future__ import annotations

NSEC_PER_USEC = 1_000
NSEC_PER_MSEC = 1_000_000
NSEC_PER_SEC = 1_000_000_000


class VirtualClock:
    """Monotonic, manually-advanced nanosecond clock."""

    def __init__(self, start_ns: int = 0):
        if start_ns < 0:
            raise ValueError("clock cannot start before zero")
        self._now_ns = start_ns

    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    @property
    def now_us(self) -> float:
        return self._now_ns / NSEC_PER_USEC

    @property
    def now_ms(self) -> float:
        return self._now_ns / NSEC_PER_MSEC

    @property
    def now_s(self) -> float:
        return self._now_ns / NSEC_PER_SEC

    def advance_ns(self, delta_ns: int) -> int:
        """Move time forward by *delta_ns* nanoseconds; returns the new time."""
        if delta_ns < 0:
            raise ValueError("time cannot move backwards")
        self._now_ns += delta_ns
        return self._now_ns

    def advance_us(self, delta_us: float) -> int:
        return self.advance_ns(int(delta_us * NSEC_PER_USEC))

    def advance_ms(self, delta_ms: float) -> int:
        return self.advance_ns(int(delta_ms * NSEC_PER_MSEC))

    def advance_s(self, delta_s: float) -> int:
        return self.advance_ns(int(delta_s * NSEC_PER_SEC))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now_ns={self._now_ns})"
