"""The syscall layer: DAC checks, LSM hook invocation, and dispatch.

:class:`Kernel` assembles the substrate (clock, VFS, processes, devices,
network, scheduler) behind a Linux-shaped syscall API.  Every syscall takes
the calling :class:`~repro.kernel.process.Task` as its first argument — the
simulator's stand-in for ``current``.

Ordering matches Linux: DAC (mode bits) first, then the LSM hook, then the
operation.  A denial from either raises :class:`KernelError` with ``EACCES``
/ ``EPERM`` so callers cannot tell which layer refused (as in Linux).
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Tuple

from ..obs.hub import Observability
from ..obs.tracepoints import SYS_ENTER, SYS_EXIT
from .clock import VirtualClock
from .credentials import Capability
from .devices import DeviceRegistry
from .errors import Errno, KernelError
from .ipc import NetworkStack, Pipe, Socket, SocketFamily
from .memory import MapProt, VmArea
from .process import FdKind, ProcessTable, Task
from .scheduler import Scheduler
from .security import NullSecurity, SecurityHooks
from .vfs import (OpenFile, OpenFlags, VirtualFileSystem, normalize)

# Access masks used by file_permission / DAC checks (Linux MAY_*).
MAY_EXEC = 0x1
MAY_WRITE = 0x2
MAY_READ = 0x4


class AuditRecord:
    """One security-relevant event (denials, state transitions, ...)."""

    def __init__(self, when_ns: int, kind: str, detail: str,
                 pid: int = 0, comm: str = ""):
        self.when_ns = when_ns
        self.kind = kind
        self.detail = detail
        self.pid = pid
        self.comm = comm

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AuditRecord({self.kind}, {self.detail!r}, pid={self.pid})"


class AuditLog:
    """Ring buffer of audit records, queryable by kind."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self.records: List[AuditRecord] = []

    def emit(self, record: AuditRecord) -> None:
        self.records.append(record)
        if len(self.records) > self.capacity:
            del self.records[: len(self.records) - self.capacity]

    def by_kind(self, kind: str) -> List[AuditRecord]:
        return [r for r in self.records if r.kind == kind]

    def clear(self) -> None:
        self.records.clear()


class Kernel:
    """The assembled simulated kernel."""

    def __init__(self, security: Optional[SecurityHooks] = None,
                 clock: Optional[VirtualClock] = None,
                 obs: Optional[Observability] = None):
        self.clock = clock or VirtualClock()
        self.vfs = VirtualFileSystem(self.clock)
        self.procs = ProcessTable()
        self.devices = DeviceRegistry()
        self.net = NetworkStack()
        self.scheduler = Scheduler()
        self.audit = AuditLog()
        self.obs = obs or Observability(clock=self.clock)
        self._tp_sys_enter = self.obs.tracepoints.get(SYS_ENTER)
        self._syscall_wrappers: Dict[str, object] = {}
        self.security: SecurityHooks = security or NullSecurity()
        self.syscall_counts: Dict[str, int] = {}
        #: Per-kernel object-id allocators: open files and mappings are
        #: numbered within this kernel only, so fleets of kernels stay
        #: bit-for-bit identical however many run in one process.
        self._file_ids = itertools.count(1)
        self._vma_ids = itertools.count(1)
        self._build_base_tree()

    def _build_base_tree(self) -> None:
        for d in ("/dev", "/etc", "/tmp", "/proc", "/sys", "/usr/bin",
                  "/usr/lib", "/var/log", "/home"):
            self.vfs.makedirs(d)
        self.vfs.mount("devtmpfs", "/dev")
        self.vfs.mount("proc", "/proc")
        self.vfs.mount("sysfs", "/sys")

    # -- helpers --------------------------------------------------------------
    def _count(self, name: str) -> None:
        self.syscall_counts[name] = self.syscall_counts.get(name, 0) + 1
        tp = self._tp_sys_enter
        if tp.callbacks:
            tp.emit(name=name, now_ns=self.clock.now_ns)

    # -- syscall instrumentation (kprobe-style, zero cost when off) -----------
    def instrument_syscalls(self) -> None:
        """Wrap every ``sys_*`` entry point with exit tracing + latency.

        Like ftrace's runtime call-site patching: the wrappers shadow the
        bound methods on the instance, fire ``syscalls:sys_exit`` and feed
        the ``syscall_latency_ns`` histograms; an uninstrumented kernel
        pays nothing.  Nested syscalls (``write_file``'s open/write/close,
        ``sys_read`` on sockets) each record their own span, as nested
        ftrace events do.
        """
        if self._syscall_wrappers:
            return
        tp_exit = self.obs.tracepoints.get(SYS_EXIT)
        for attr in dir(type(self)):
            if not attr.startswith("sys_"):
                continue
            method = getattr(self, attr)
            name = attr[4:]
            hist = self.obs.metrics.histogram("syscall_latency_ns",
                                              {"name": name})

            def wrapper(*args, _method=method, _hist=hist, _name=name,
                        **kwargs):
                t0 = time.perf_counter_ns()
                err = 0
                try:
                    return _method(*args, **kwargs)
                except KernelError as exc:
                    err = int(exc.errno)
                    raise
                finally:
                    dt = time.perf_counter_ns() - t0
                    _hist.record(dt)
                    if tp_exit.callbacks:
                        tp_exit.emit(name=_name, errno=err, latency_ns=dt)

            setattr(self, attr, wrapper)
            self._syscall_wrappers[attr] = wrapper

    def uninstrument_syscalls(self) -> None:
        """Remove the wrappers; dispatch reverts to the bare methods."""
        for attr in self._syscall_wrappers:
            if self.__dict__.get(attr) is self._syscall_wrappers[attr]:
                del self.__dict__[attr]
        self._syscall_wrappers.clear()

    def _check(self, rc: int, task: Task, what: str) -> None:
        """Translate an LSM hook return code into a raised denial."""
        if rc != 0:
            errno = Errno(-rc) if -rc in Errno._value2member_map_ else Errno.EACCES
            self.audit.emit(AuditRecord(self.clock.now_ns, "denied",
                                        what, task.pid, task.comm))
            raise KernelError(errno, what)

    def capable(self, task: Task, cap: Capability) -> bool:
        """``capable()``: does *task* hold *cap*, per the security stack?"""
        return self.security.capable(task, cap) == 0

    def _dac_permission(self, task: Task, inode, mask: int,
                        path: str) -> None:
        """Classic UNIX mode-bit check with CAP_DAC_OVERRIDE escape."""
        cred = task.cred
        if cred.euid == 0 or self.capable(task, Capability.CAP_DAC_OVERRIDE):
            return
        if cred.euid == inode.uid:
            bits = (inode.mode >> 6) & 0o7
        elif cred.egid == inode.gid:
            bits = (inode.mode >> 3) & 0o7
        else:
            bits = inode.mode & 0o7
        want = 0
        if mask & MAY_READ:
            want |= 0o4
        if mask & MAY_WRITE:
            want |= 0o2
        if mask & MAY_EXEC:
            want |= 0o1
        if (bits & want) != want:
            raise KernelError(Errno.EACCES, f"dac: {path}")

    # -- process syscalls -------------------------------------------------------
    def sys_getpid(self, task: Task) -> int:
        self._count("getpid")
        return task.pid

    def sys_fork(self, task: Task) -> Task:
        """Fork ``task``; returns the child Task (the simulator's 'pid')."""
        self._count("fork")
        child = self.procs.spawn(task)
        rc = self.security.task_alloc(task, child)
        if rc != 0:
            self.procs.exit(child, code=-rc)
            self.procs.reap(task)
            self._check(rc, task, "task_alloc")
        return child

    def sys_execve(self, task: Task, path: str,
                   comm: Optional[str] = None) -> None:
        """Replace the task image with *path* (must be an executable file)."""
        self._count("execve")
        dentry = self.vfs.resolve(path, task.cwd)
        if dentry.inode.is_dir:
            raise KernelError(Errno.EISDIR, path)
        self._dac_permission(task, dentry.inode, MAY_EXEC, path)
        exe_path = dentry.path()
        self._check(self.security.bprm_check_security(task, exe_path),
                    task, f"exec {exe_path}")
        task.exe_path = exe_path
        task.comm = comm or exe_path.rsplit("/", 1)[-1]
        task.mm.clear()
        self.security.bprm_committed_creds(task, exe_path)

    def sys_exit(self, task: Task, code: int = 0) -> None:
        self._count("exit")
        self.scheduler.remove(task)
        self.procs.exit(task, code)

    def sys_waitpid(self, task: Task) -> Optional[Task]:
        self._count("waitpid")
        return self.procs.reap(task)

    def sys_kill(self, task: Task, pid: int) -> None:
        self._count("kill")
        target = self.procs.get(pid)
        if (task.cred.euid != 0 and task.cred.euid != target.cred.uid
                and not self.capable(task, Capability.CAP_KILL)):
            raise KernelError(Errno.EPERM, f"kill {pid}")
        self._check(self.security.task_kill(task, target), task, f"kill {pid}")
        self.procs.exit(target, code=-9)

    # -- filesystem syscalls -----------------------------------------------------
    def sys_open(self, task: Task, path: str, flags: OpenFlags = OpenFlags.O_RDONLY,
                 mode: int = 0o644) -> int:
        """Open (optionally creating) *path*; returns an fd."""
        self._count("open")
        if not isinstance(flags, OpenFlags):
            flags = OpenFlags(flags)
        norm = normalize(path, task.cwd)
        dentry = self.vfs.try_resolve(norm)
        if dentry is None:
            if not flags & OpenFlags.O_CREAT:
                raise KernelError(Errno.ENOENT, norm)
            parent = self.vfs.resolve(norm.rsplit("/", 1)[0] or "/")
            self._dac_permission(task, parent.inode, MAY_WRITE, norm)
            self._check(self.security.inode_create(task, parent.inode,
                                                   norm, mode),
                        task, f"create {norm}")
            dentry = self.vfs.create_file(norm, mode=mode,
                                          uid=task.cred.euid,
                                          gid=task.cred.egid)
        elif flags & OpenFlags.O_CREAT and flags & OpenFlags.O_EXCL:
            raise KernelError(Errno.EEXIST, norm)

        inode = dentry.inode
        raw = int(flags)
        wants_write = bool(raw & 0x3)          # O_WRONLY or O_RDWR
        wants_read = (raw & 0x1) == 0          # not O_WRONLY
        if inode.is_dir and wants_write:
            raise KernelError(Errno.EISDIR, norm)
        mask = (MAY_READ if wants_read else 0) | \
            (MAY_WRITE if wants_write else 0)
        self._dac_permission(task, inode, mask, norm)

        driver = None
        if inode.is_chardev:
            driver = self.devices.lookup(inode.rdev)
        file = OpenFile(dentry, inode, flags, driver=driver,
                        fid=next(self._file_ids))
        self._check(self.security.file_open(task, file), task, f"open {norm}")
        if driver is not None:
            driver.open(task, file)
        if flags & OpenFlags.O_TRUNC and inode.is_regular and not inode.is_pseudo:
            inode.truncate(0)
        if flags & OpenFlags.O_APPEND and inode.is_regular and not inode.is_pseudo:
            file.pos = inode.size
        return task.install_fd(FdKind.FILE, file)

    def sys_close(self, task: Task, fd: int) -> None:
        self._count("close")
        entry = task.remove_fd(fd)
        if entry.kind is FdKind.FILE:
            file: OpenFile = entry.obj
            if not file.closed:
                file.closed = True
                if file.driver is not None:
                    file.driver.release(task, file)
        elif entry.kind is FdKind.PIPE_READ:
            entry.obj.close_reader()
        elif entry.kind is FdKind.PIPE_WRITE:
            entry.obj.close_writer()
        elif entry.kind is FdKind.SOCKET:
            sock: Socket = entry.obj
            self.net.close_listener(sock)

    def sys_read(self, task: Task, fd: int, count: int) -> bytes:
        self._count("read")
        entry = task.get_fd(fd)
        if entry.kind is FdKind.PIPE_READ:
            return entry.obj.read(count)
        if entry.kind is FdKind.SOCKET:
            return self.sys_recv(task, fd, count)
        if entry.kind is not FdKind.FILE:
            raise KernelError(Errno.EBADF, f"fd {fd}")
        file: OpenFile = entry.obj
        file.require_readable()
        self._check(self.security.file_permission(task, file, MAY_READ),
                    task, f"read {file.path}")
        inode = file.inode
        if inode.is_pseudo:
            if inode.pseudo_ops.read is None:
                raise KernelError(Errno.EINVAL, f"{file.path} is write-only")
            content = inode.pseudo_ops.read(task)
            data = content[file.pos:file.pos + count]
            file.pos += len(data)
            return data
        if file.driver is not None:
            return file.driver.read(task, file, count)
        data = inode.read_at(file.pos, count)
        file.pos += len(data)
        inode.atime_ns = self.clock.now_ns
        return data

    def sys_write(self, task: Task, fd: int, data: bytes) -> int:
        self._count("write")
        entry = task.get_fd(fd)
        if entry.kind is FdKind.PIPE_WRITE:
            return entry.obj.write(data)
        if entry.kind is FdKind.SOCKET:
            return self.sys_send(task, fd, data)
        if entry.kind is not FdKind.FILE:
            raise KernelError(Errno.EBADF, f"fd {fd}")
        file: OpenFile = entry.obj
        file.require_writable()
        self._check(self.security.file_permission(task, file, MAY_WRITE),
                    task, f"write {file.path}")
        inode = file.inode
        if inode.is_pseudo:
            if inode.pseudo_ops.write is None:
                raise KernelError(Errno.EINVAL, f"{file.path} is read-only")
            return inode.pseudo_ops.write(task, bytes(data))
        if file.driver is not None:
            return file.driver.write(task, file, bytes(data))
        written = inode.write_at(file.pos, bytes(data))
        file.pos += written
        inode.mtime_ns = self.clock.now_ns
        return written

    def sys_ioctl(self, task: Task, fd: int, cmd: int, arg: int = 0) -> int:
        self._count("ioctl")
        entry = task.get_fd(fd)
        if entry.kind is not FdKind.FILE:
            raise KernelError(Errno.ENOTTY, f"fd {fd}")
        file: OpenFile = entry.obj
        file.require_open()
        self._check(self.security.file_ioctl(task, file, cmd, arg),
                    task, f"ioctl {file.path} cmd={cmd}")
        if file.driver is None:
            raise KernelError(Errno.ENOTTY, file.path)
        return file.driver.ioctl(task, file, cmd, arg)

    def sys_stat(self, task: Task, path: str) -> Dict[str, object]:
        self._count("stat")
        dentry = self.vfs.resolve(path, task.cwd)
        self._check(self.security.inode_getattr(task, dentry.path()),
                    task, f"stat {path}")
        return dentry.inode.stat()

    def sys_mkdir(self, task: Task, path: str, mode: int = 0o755) -> None:
        self._count("mkdir")
        norm = normalize(path, task.cwd)
        parent = self.vfs.resolve(norm.rsplit("/", 1)[0] or "/")
        self._dac_permission(task, parent.inode, MAY_WRITE, norm)
        self._check(self.security.inode_mkdir(task, parent.inode, norm, mode),
                    task, f"mkdir {norm}")
        self.vfs.mkdir(norm, mode=mode, uid=task.cred.euid, gid=task.cred.egid)

    def sys_rmdir(self, task: Task, path: str) -> None:
        self._count("rmdir")
        dentry = self.vfs.resolve(path, task.cwd, follow_symlinks=False)
        self._check(self.security.inode_rmdir(task, dentry.inode,
                                              dentry.path()),
                    task, f"rmdir {path}")
        self.vfs.rmdir(dentry.path())

    def sys_unlink(self, task: Task, path: str) -> None:
        self._count("unlink")
        dentry = self.vfs.resolve(path, task.cwd, follow_symlinks=False)
        parent = dentry.parent
        if parent is not None:
            self._dac_permission(task, parent.inode, MAY_WRITE, path)
        self._check(self.security.inode_unlink(task, dentry.inode,
                                               dentry.path()),
                    task, f"unlink {path}")
        self.vfs.unlink(dentry.path())

    def sys_rename(self, task: Task, old: str, new: str) -> None:
        self._count("rename")
        old_norm = normalize(old, task.cwd)
        new_norm = normalize(new, task.cwd)
        self._check(self.security.inode_rename(task, old_norm, new_norm),
                    task, f"rename {old_norm} -> {new_norm}")
        self.vfs.rename(old_norm, new_norm)

    def sys_mknod(self, task: Task, path: str, rdev: Tuple[int, int],
                  mode: int = 0o600) -> None:
        self._count("mknod")
        if not self.capable(task, Capability.CAP_MKNOD):
            raise KernelError(Errno.EPERM, f"mknod {path}")
        norm = normalize(path, task.cwd)
        parent = self.vfs.resolve(norm.rsplit("/", 1)[0] or "/")
        self._check(self.security.inode_mknod(task, parent.inode, norm, mode),
                    task, f"mknod {norm}")
        self.vfs.mknod(norm, rdev, mode=mode, uid=task.cred.euid,
                       gid=task.cred.egid)

    def sys_chdir(self, task: Task, path: str) -> None:
        self._count("chdir")
        dentry = self.vfs.resolve(path, task.cwd)
        if not dentry.inode.is_dir:
            raise KernelError(Errno.ENOTDIR, path)
        task.cwd = dentry.path()

    def sys_chmod(self, task: Task, path: str, mode: int) -> None:
        self._count("chmod")
        dentry = self.vfs.resolve(path, task.cwd)
        inode = dentry.inode
        if (task.cred.euid != inode.uid
                and not self.capable(task, Capability.CAP_FOWNER)):
            raise KernelError(Errno.EPERM, f"chmod {path}")
        self._check(self.security.inode_setattr(task, dentry.path()),
                    task, f"chmod {path}")
        inode.mode = mode & 0o7777

    def sys_chown(self, task: Task, path: str, uid: int, gid: int) -> None:
        self._count("chown")
        dentry = self.vfs.resolve(path, task.cwd)
        if not self.capable(task, Capability.CAP_CHOWN):
            raise KernelError(Errno.EPERM, f"chown {path}")
        self._check(self.security.inode_setattr(task, dentry.path()),
                    task, f"chown {path}")
        dentry.inode.uid = uid
        dentry.inode.gid = gid

    def sys_lseek(self, task: Task, fd: int, pos: int) -> int:
        self._count("lseek")
        entry = task.get_fd(fd)
        if entry.kind is not FdKind.FILE:
            raise KernelError(Errno.ESPIPE, f"fd {fd}")
        file: OpenFile = entry.obj
        file.require_open()
        if pos < 0:
            raise KernelError(Errno.EINVAL, "negative offset")
        file.pos = pos
        return pos

    # -- pipes / sockets --------------------------------------------------------
    def sys_pipe(self, task: Task) -> Tuple[int, int]:
        self._count("pipe")
        pipe = Pipe()
        r_fd = task.install_fd(FdKind.PIPE_READ, pipe)
        w_fd = task.install_fd(FdKind.PIPE_WRITE, pipe)
        return r_fd, w_fd

    def sys_socket(self, task: Task, family: SocketFamily) -> int:
        self._count("socket")
        self._check(self.security.socket_create(task, family),
                    task, f"socket {family.value}")
        sock = self.net.socket(family)
        return task.install_fd(FdKind.SOCKET, sock)

    def _sock_of(self, task: Task, fd: int) -> Socket:
        entry = task.get_fd(fd)
        if entry.kind is not FdKind.SOCKET:
            raise KernelError(Errno.EBADF, f"fd {fd} is not a socket")
        return entry.obj

    def sys_bind(self, task: Task, fd: int, addr: object) -> None:
        self._count("bind")
        sock = self._sock_of(task, fd)
        self._check(self.security.socket_bind(task, sock, addr),
                    task, f"bind {addr}")
        self.net.bind(sock, addr)

    def sys_listen(self, task: Task, fd: int, backlog: int = 16) -> None:
        self._count("listen")
        sock = self._sock_of(task, fd)
        self._check(self.security.socket_listen(task, sock),
                    task, "listen")
        self.net.listen(sock, backlog)

    def sys_connect(self, task: Task, fd: int, addr: object) -> None:
        self._count("connect")
        sock = self._sock_of(task, fd)
        self._check(self.security.socket_connect(task, sock, addr),
                    task, f"connect {addr}")
        self.net.connect(sock, addr)

    def sys_accept(self, task: Task, fd: int) -> int:
        self._count("accept")
        listener = self._sock_of(task, fd)
        self._check(self.security.socket_accept(task, listener),
                    task, "accept")
        conn = self.net.accept(listener)
        return task.install_fd(FdKind.SOCKET, conn)

    def sys_send(self, task: Task, fd: int, data: bytes) -> int:
        self._count("send")
        sock = self._sock_of(task, fd)
        self._check(self.security.socket_sendmsg(task, sock, len(data)),
                    task, "send")
        return sock.send(data)

    def sys_recv(self, task: Task, fd: int, count: int) -> bytes:
        self._count("recv")
        sock = self._sock_of(task, fd)
        self._check(self.security.socket_recvmsg(task, sock, count),
                    task, "recv")
        return sock.recv(count)

    # -- memory ----------------------------------------------------------------
    def sys_mmap(self, task: Task, length: int, prot: MapProt,
                 fd: Optional[int] = None, offset: int = 0) -> VmArea:
        self._count("mmap")
        inode = None
        file = None
        if fd is not None:
            entry = task.get_fd(fd)
            if entry.kind is not FdKind.FILE:
                raise KernelError(Errno.EBADF, f"fd {fd}")
            file = entry.obj
            file.require_open()
            inode = file.inode
            if not inode.is_regular or inode.is_pseudo:
                raise KernelError(Errno.ENODEV, file.path)
        self._check(self.security.mmap_file(task, file, int(prot)),
                    task, "mmap")
        return task.mm.add(VmArea(length, prot, inode=inode, offset=offset,
                                  area_id=next(self._vma_ids)))

    def sys_munmap(self, task: Task, area: VmArea) -> None:
        self._count("munmap")
        task.mm.remove(area.id)

    # -- convenience (used by SDS / IVI user-space code) -------------------------
    def write_file(self, task: Task, path: str, data: bytes,
                   create: bool = True, append: bool = False) -> int:
        """open+write+close helper used heavily by user-space components."""
        flags = OpenFlags.O_WRONLY
        if create:
            flags |= OpenFlags.O_CREAT
        if append:
            flags |= OpenFlags.O_APPEND
        fd = self.sys_open(task, path, flags)
        try:
            return self.sys_write(task, fd, data)
        finally:
            self.sys_close(task, fd)

    def read_file(self, task: Task, path: str,
                  count: int = 1 << 20) -> bytes:
        fd = self.sys_open(task, path, OpenFlags.O_RDONLY)
        try:
            return self.sys_read(task, fd, count)
        finally:
            self.sys_close(task, fd)
