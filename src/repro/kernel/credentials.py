"""Task credentials: user/group ids and Linux-style capabilities.

SACK's threat model (paper §III-A) leans on the capability system: writing
policy requires ``CAP_MAC_ADMIN`` and bypassing MAC requires
``CAP_MAC_OVERRIDE``, which attackers are assumed not to hold.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import FrozenSet, Iterable


class Capability(enum.Enum):
    """Subset of Linux capabilities relevant to the simulation."""

    CAP_CHOWN = "CAP_CHOWN"
    CAP_DAC_OVERRIDE = "CAP_DAC_OVERRIDE"
    CAP_DAC_READ_SEARCH = "CAP_DAC_READ_SEARCH"
    CAP_FOWNER = "CAP_FOWNER"
    CAP_KILL = "CAP_KILL"
    CAP_SETUID = "CAP_SETUID"
    CAP_SETGID = "CAP_SETGID"
    CAP_NET_ADMIN = "CAP_NET_ADMIN"
    CAP_NET_RAW = "CAP_NET_RAW"
    CAP_SYS_ADMIN = "CAP_SYS_ADMIN"
    CAP_SYS_MODULE = "CAP_SYS_MODULE"
    CAP_SYS_RAWIO = "CAP_SYS_RAWIO"
    CAP_MKNOD = "CAP_MKNOD"
    CAP_MAC_ADMIN = "CAP_MAC_ADMIN"
    CAP_MAC_OVERRIDE = "CAP_MAC_OVERRIDE"
    CAP_AUDIT_WRITE = "CAP_AUDIT_WRITE"


#: The full capability set granted to uid-0 tasks at world creation.
FULL_CAPS: FrozenSet[Capability] = frozenset(Capability)

#: Capabilities a plain (non-root) IVI app starts with: none.
NO_CAPS: FrozenSet[Capability] = frozenset()


@dataclasses.dataclass(frozen=True)
class Credentials:
    """Immutable credential record attached to each task.

    Mirrors ``struct cred``: real and effective ids plus the effective
    capability set.  Frozen so credential changes always go through
    :meth:`with_uid` / :meth:`with_caps`, making audit trails reliable.
    """

    uid: int = 0
    gid: int = 0
    euid: int = 0
    egid: int = 0
    caps: FrozenSet[Capability] = FULL_CAPS

    def has_cap(self, cap: Capability) -> bool:
        """True when the effective capability set contains *cap*."""
        return cap in self.caps

    @property
    def is_root(self) -> bool:
        return self.euid == 0

    def with_uid(self, uid: int, gid: int | None = None) -> "Credentials":
        """Return new credentials running as *uid* (drops caps unless root)."""
        gid = uid if gid is None else gid
        caps = self.caps if uid == 0 else NO_CAPS
        return Credentials(uid=uid, gid=gid, euid=uid, egid=gid, caps=caps)

    def with_caps(self, caps: Iterable[Capability]) -> "Credentials":
        """Return new credentials whose capability set is exactly *caps*."""
        return dataclasses.replace(self, caps=frozenset(caps))

    def adding_caps(self, *caps: Capability) -> "Credentials":
        """Return new credentials with *caps* added to the effective set."""
        return dataclasses.replace(self, caps=self.caps | frozenset(caps))

    def dropping_caps(self, *caps: Capability) -> "Credentials":
        """Return new credentials with *caps* removed from the effective set."""
        return dataclasses.replace(self, caps=self.caps - frozenset(caps))


ROOT_CREDENTIALS = Credentials()


def user_credentials(uid: int, gid: int | None = None,
                     caps: Iterable[Capability] = ()) -> Credentials:
    """Credentials for an unprivileged user, optionally with extra caps."""
    gid = uid if gid is None else gid
    return Credentials(uid=uid, gid=gid, euid=uid, egid=gid,
                       caps=frozenset(caps))
