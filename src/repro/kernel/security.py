"""The security-hook interface the syscall layer calls into.

This is the seam between the kernel substrate and the LSM framework:
:mod:`repro.kernel.syscalls` calls these methods at the same points Linux
calls ``security_*()``; :class:`repro.lsm.framework.LsmFramework` implements
them by walking the registered module stack.  :class:`NullSecurity` is the
``CONFIG_SECURITY=n`` build — every hook allows.

All hooks return 0 to allow or a negative errno to deny.
"""

from __future__ import annotations

from .credentials import Capability


class SecurityHooks:
    """No-op implementation; also documents the full hook surface."""

    name = "none"

    # -- task hooks ----------------------------------------------------------
    def task_alloc(self, parent, child) -> int:
        return 0

    def bprm_check_security(self, task, exe_path: str) -> int:
        return 0

    def bprm_committed_creds(self, task, exe_path: str) -> None:
        pass

    def task_kill(self, task, target) -> int:
        return 0

    def capable(self, task, cap: Capability) -> int:
        """0 when *task* may use *cap* (default: possession suffices)."""
        return 0 if task.cred.has_cap(cap) else -1

    # -- inode hooks ---------------------------------------------------------
    def inode_create(self, task, parent_inode, path: str, mode: int) -> int:
        return 0

    def inode_mkdir(self, task, parent_inode, path: str, mode: int) -> int:
        return 0

    def inode_mknod(self, task, parent_inode, path: str, mode: int) -> int:
        return 0

    def inode_unlink(self, task, inode, path: str) -> int:
        return 0

    def inode_rmdir(self, task, inode, path: str) -> int:
        return 0

    def inode_rename(self, task, old_path: str, new_path: str) -> int:
        return 0

    def inode_getattr(self, task, path: str) -> int:
        return 0

    def inode_setattr(self, task, path: str) -> int:
        return 0

    # -- file hooks ----------------------------------------------------------
    def file_open(self, task, file) -> int:
        return 0

    def file_permission(self, task, file, mask: int) -> int:
        return 0

    def file_ioctl(self, task, file, cmd: int, arg: int) -> int:
        return 0

    def mmap_file(self, task, file, prot: int) -> int:
        return 0

    # -- socket hooks ----------------------------------------------------------
    def socket_create(self, task, family) -> int:
        return 0

    def socket_bind(self, task, sock, addr) -> int:
        return 0

    def socket_listen(self, task, sock) -> int:
        return 0

    def socket_connect(self, task, sock, addr) -> int:
        return 0

    def socket_accept(self, task, sock) -> int:
        return 0

    def socket_sendmsg(self, task, sock, size: int) -> int:
        return 0

    def socket_recvmsg(self, task, sock, size: int) -> int:
        return 0


class NullSecurity(SecurityHooks):
    """Kernel built without any LSM — used for the no-LSM baselines."""

    name = "null"
