"""Tasks and the process table.

Each :class:`Task` mirrors the parts of ``task_struct`` that access control
touches: credentials, the fd table, the executable path (AppArmor attaches
profiles by exe path), a per-LSM security blob, and an address space.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Optional

from .credentials import Credentials, ROOT_CREDENTIALS
from .errors import Errno, KernelError
from .memory import AddressSpace

#: Per-process fd table size, mirroring a modest RLIMIT_NOFILE.
MAX_FDS = 1024


class FdKind(enum.Enum):
    FILE = "file"
    PIPE_READ = "pipe_read"
    PIPE_WRITE = "pipe_write"
    SOCKET = "socket"


class FileDescriptor:
    """One fd-table slot: a kind tag plus the kernel object it references."""

    def __init__(self, kind: FdKind, obj: object):
        self.kind = kind
        self.obj = obj

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FileDescriptor({self.kind.value}, {self.obj!r})"


class TaskState(enum.Enum):
    RUNNING = "running"
    ZOMBIE = "zombie"
    DEAD = "dead"


class Task:
    """A process in the simulated kernel."""

    def __init__(self, pid: int, ppid: int, comm: str,
                 cred: Credentials, cwd: str = "/",
                 exe_path: str = ""):
        self.pid = pid
        self.ppid = ppid
        self.comm = comm
        self.cred = cred
        self.cwd = cwd
        self.exe_path = exe_path or f"/proc/{pid}/exe"
        self.state = TaskState.RUNNING
        self.exit_code: Optional[int] = None
        self.fds: Dict[int, FileDescriptor] = {}
        self._next_fd = 0
        self.mm = AddressSpace()
        #: Per-LSM state, keyed by module name (``task->security``).
        self.security: Dict[str, object] = {}

    # -- fd table ------------------------------------------------------------
    def install_fd(self, kind: FdKind, obj: object) -> int:
        """Place *obj* in the lowest free fd slot; returns the fd number."""
        if len(self.fds) >= MAX_FDS:
            raise KernelError(Errno.EMFILE, f"pid {self.pid}")
        fd = 0
        while fd in self.fds:
            fd += 1
        self.fds[fd] = FileDescriptor(kind, obj)
        return fd

    def get_fd(self, fd: int) -> FileDescriptor:
        try:
            return self.fds[fd]
        except KeyError:
            raise KernelError(Errno.EBADF, f"pid {self.pid} fd {fd}") from None

    def remove_fd(self, fd: int) -> FileDescriptor:
        entry = self.get_fd(fd)
        del self.fds[fd]
        return entry

    @property
    def is_alive(self) -> bool:
        return self.state is TaskState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Task(pid={self.pid}, comm={self.comm!r})"


class ProcessTable:
    """All tasks in the system, with fork/exit/reap mechanics.

    Like the VFS this is mechanism only — the syscall layer invokes LSM
    hooks (``task_alloc``, ``bprm_check_security``) around these calls.
    """

    def __init__(self):
        self._pids = itertools.count(1)
        self.tasks: Dict[int, Task] = {}
        init = Task(pid=next(self._pids), ppid=0, comm="init",
                    cred=ROOT_CREDENTIALS, exe_path="/sbin/init")
        self.tasks[init.pid] = init
        self.init = init

    def get(self, pid: int) -> Task:
        task = self.tasks.get(pid)
        if task is None:
            raise KernelError(Errno.ESRCH, f"no task {pid}")
        return task

    def spawn(self, parent: Task, comm: Optional[str] = None) -> Task:
        """Fork *parent*: duplicate creds, cwd, fd table and security blob."""
        if not parent.is_alive:
            raise KernelError(Errno.ESRCH, f"parent {parent.pid} not running")
        child = Task(pid=next(self._pids), ppid=parent.pid,
                     comm=comm or parent.comm, cred=parent.cred,
                     cwd=parent.cwd, exe_path=parent.exe_path)
        # fds are shared objects, new table — matching fork() semantics.
        child.fds = dict(parent.fds)
        child._next_fd = parent._next_fd
        # LSM task blobs are copied by value where they are simple;
        # modules that need deep state handle it in their task_alloc hook.
        child.security = dict(parent.security)
        self.tasks[child.pid] = child
        return child

    def exit(self, task: Task, code: int = 0) -> None:
        if task.pid == self.init.pid:
            raise KernelError(Errno.EPERM, "init cannot exit")
        task.state = TaskState.ZOMBIE
        task.exit_code = code
        task.fds.clear()
        task.mm.clear()

    def reap(self, parent: Task) -> Optional[Task]:
        """Collect one zombie child of *parent*; None when there is none."""
        for task in self.tasks.values():
            if task.ppid == parent.pid and task.state is TaskState.ZOMBIE:
                task.state = TaskState.DEAD
                del self.tasks[task.pid]
                return task
        return None

    def children_of(self, pid: int):
        return [t for t in self.tasks.values() if t.ppid == pid]

    def alive_count(self) -> int:
        return sum(1 for t in self.tasks.values() if t.is_alive)
