"""Open-file objects and open flags."""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Optional

from ..errors import Errno, KernelError
from .dentry import Dentry
from .inode import Inode


class OpenFlags(enum.IntFlag):
    """Subset of Linux ``open(2)`` flags."""

    O_RDONLY = 0x0
    O_WRONLY = 0x1
    O_RDWR = 0x2
    O_CREAT = 0x40
    O_EXCL = 0x80
    O_TRUNC = 0x200
    O_APPEND = 0x400
    O_DIRECTORY = 0x10000

    @property
    def wants_read(self) -> bool:
        return not (self & OpenFlags.O_WRONLY)

    @property
    def wants_write(self) -> bool:
        return bool(self & (OpenFlags.O_WRONLY | OpenFlags.O_RDWR))


class OpenFile:
    """A ``struct file``: an open instance of an inode.

    Carries the position, the access mode it was opened with, and a
    per-open security blob (``file->f_security``).  Device files also get a
    reference to their driver at open time, mirroring how Linux swaps in the
    driver's ``file_operations``.
    """

    _id_counter = itertools.count(1)

    def __init__(self, dentry: Optional[Dentry], inode: Inode,
                 flags: OpenFlags, driver: Optional[object] = None,
                 fid: Optional[int] = None):
        self.id = fid if fid is not None else next(OpenFile._id_counter)
        self.dentry = dentry
        self.inode = inode
        self.flags = flags
        self.pos = 0
        self.driver = driver
        self.closed = False
        # Hot-path caches, fixed at open time (like f_mode / f_path):
        # access-mode bools avoid enum-flag arithmetic per read/write, and
        # the path string avoids a dentry walk per LSM check.
        self.wants_read = flags.wants_read
        self.wants_write = flags.wants_write
        self.path = dentry.path() if dentry is not None else "<anon>"
        #: Per-LSM state, keyed by module name (``file->f_security``).
        self.security: Dict[str, object] = {}
        #: Device-driver private state (``file->private_data``).
        self.private_data: object = None

    def require_open(self) -> None:
        if self.closed:
            raise KernelError(Errno.EBADF, "file already closed")

    def require_readable(self) -> None:
        self.require_open()
        if not self.wants_read:
            raise KernelError(Errno.EBADF, f"{self.path} not open for read")

    def require_writable(self) -> None:
        self.require_open()
        if not self.wants_write:
            raise KernelError(Errno.EBADF, f"{self.path} not open for write")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OpenFile({self.path!r}, flags={self.flags!r})"
