"""Inodes: the per-object state of the simulated VFS.

An inode carries everything access control cares about — owner, mode bits,
file type, device numbers — plus a ``security`` blob dictionary where LSMs
stash per-object state (mirroring ``inode->i_security``).
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Dict, Optional, Tuple

from ..errors import Errno, KernelError


class FileType(enum.Enum):
    """File types understood by the simulator (a subset of Linux's)."""

    REGULAR = "reg"
    DIRECTORY = "dir"
    CHARDEV = "chr"
    FIFO = "fifo"
    SOCKET = "sock"
    SYMLINK = "lnk"


class PseudoFileOps:
    """Callbacks backing a pseudo-file (securityfs-style).

    ``read`` produces the whole file content; ``write`` consumes the whole
    buffer.  Either may raise :class:`KernelError`.  ``task`` is the calling
    task so handlers can enforce capability checks, exactly like real
    securityfs file ops consult ``current_cred()``.
    """

    def __init__(self,
                 read: Optional[Callable[[object], bytes]] = None,
                 write: Optional[Callable[[object, bytes], int]] = None):
        self.read = read
        self.write = write


class Inode:
    """A single filesystem object.

    Inode numbers are allocated by the owning VFS (per-kernel), so two
    kernels built side by side assign identical numbers to identical
    trees.  The class-level counter only backs inodes constructed outside
    any VFS (unit tests poking at bare inodes).
    """

    _ino_counter = itertools.count(1)

    def __init__(self, file_type: FileType, mode: int = 0o644,
                 uid: int = 0, gid: int = 0,
                 rdev: Optional[Tuple[int, int]] = None,
                 symlink_target: Optional[str] = None,
                 pseudo_ops: Optional[PseudoFileOps] = None,
                 now_ns: int = 0, ino: Optional[int] = None):
        self.ino: int = ino if ino is not None else next(Inode._ino_counter)
        self.file_type = file_type
        self.mode = mode & 0o7777
        self.uid = uid
        self.gid = gid
        self.nlink = 2 if file_type is FileType.DIRECTORY else 1
        self.rdev = rdev
        self.symlink_target = symlink_target
        self.pseudo_ops = pseudo_ops
        self.data = bytearray() if file_type is FileType.REGULAR else None
        self.atime_ns = self.mtime_ns = self.ctime_ns = now_ns
        #: Per-LSM state, keyed by module name (``inode->i_security``).
        self.security: Dict[str, object] = {}

    # -- type predicates ---------------------------------------------------
    @property
    def is_dir(self) -> bool:
        return self.file_type is FileType.DIRECTORY

    @property
    def is_regular(self) -> bool:
        return self.file_type is FileType.REGULAR

    @property
    def is_chardev(self) -> bool:
        return self.file_type is FileType.CHARDEV

    @property
    def is_symlink(self) -> bool:
        return self.file_type is FileType.SYMLINK

    @property
    def is_pseudo(self) -> bool:
        return self.pseudo_ops is not None

    @property
    def size(self) -> int:
        if self.data is not None:
            return len(self.data)
        return 0

    # -- data access (regular files) ---------------------------------------
    def read_at(self, offset: int, count: int) -> bytes:
        """Read up to *count* bytes at *offset* from a regular file."""
        if self.data is None:
            raise KernelError(Errno.EINVAL, "inode has no data pages")
        if offset < 0 or count < 0:
            raise KernelError(Errno.EINVAL, "negative offset or count")
        return bytes(self.data[offset:offset + count])

    def write_at(self, offset: int, buf: bytes) -> int:
        """Write *buf* at *offset*, extending the file as needed."""
        if self.data is None:
            raise KernelError(Errno.EINVAL, "inode has no data pages")
        if offset < 0:
            raise KernelError(Errno.EINVAL, "negative offset")
        if offset > len(self.data):
            self.data.extend(b"\x00" * (offset - len(self.data)))
        self.data[offset:offset + len(buf)] = buf
        return len(buf)

    def truncate(self, length: int = 0) -> None:
        if self.data is None:
            raise KernelError(Errno.EINVAL, "inode has no data pages")
        if length < 0:
            raise KernelError(Errno.EINVAL, "negative length")
        if length <= len(self.data):
            del self.data[length:]
        else:
            self.data.extend(b"\x00" * (length - len(self.data)))

    def stat(self) -> Dict[str, object]:
        """Return a ``stat``-like mapping for this inode."""
        return {
            "ino": self.ino,
            "type": self.file_type.value,
            "mode": self.mode,
            "uid": self.uid,
            "gid": self.gid,
            "nlink": self.nlink,
            "size": self.size,
            "rdev": self.rdev,
            "atime_ns": self.atime_ns,
            "mtime_ns": self.mtime_ns,
            "ctime_ns": self.ctime_ns,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Inode(ino={self.ino}, type={self.file_type.value}, "
                f"mode={oct(self.mode)}, uid={self.uid})")
