"""Path normalisation helpers for the simulated VFS.

Paths are plain strings using ``/`` separators, as in Linux.  The VFS always
works on *normalised absolute* paths: no ``.``/``..`` components, no
duplicate slashes, no trailing slash (except the root itself).
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import Errno, KernelError

#: Maximum path length, mirroring Linux ``PATH_MAX``.
PATH_MAX = 4096
#: Maximum single component length, mirroring ``NAME_MAX``.
NAME_MAX = 255


def split_components(path: str) -> List[str]:
    """Split *path* into components, dropping empty and ``.`` entries."""
    return [c for c in path.split("/") if c not in ("", ".")]


def normalize(path: str, cwd: str = "/") -> str:
    """Return the canonical absolute form of *path* relative to *cwd*.

    ``..`` components are resolved lexically (the simulator has no bind
    mounts, so lexical resolution matches directory-walk resolution for
    everything except symlinks, which the VFS resolves separately).
    """
    if not path:
        raise KernelError(Errno.ENOENT, "empty path")
    if len(path) > PATH_MAX:
        raise KernelError(Errno.ENAMETOOLONG, path[:32] + "...")
    # Fast path: already-canonical absolute paths (the overwhelmingly
    # common case on hot syscall paths) skip the split/join round trip.
    if (len(path) <= NAME_MAX and path.startswith("/")
            and "//" not in path and "/./" not in path
            and "/../" not in path and not path.endswith(("/.", "/.."))
            and (len(path) == 1 or not path.endswith("/"))):
        return path
    if not path.startswith("/"):
        if not cwd.startswith("/"):
            raise KernelError(Errno.EINVAL, f"cwd must be absolute: {cwd}")
        path = cwd.rstrip("/") + "/" + path

    resolved: List[str] = []
    for comp in split_components(path):
        if len(comp) > NAME_MAX:
            raise KernelError(Errno.ENAMETOOLONG, comp[:32] + "...")
        if comp == "..":
            if resolved:
                resolved.pop()
        else:
            resolved.append(comp)
    return "/" + "/".join(resolved)


def split_parent(path: str) -> Tuple[str, str]:
    """Split a normalised absolute path into ``(parent_path, basename)``.

    The root path has no parent; asking for one is an error.
    """
    if path == "/":
        raise KernelError(Errno.EINVAL, "root has no parent")
    parent, _, name = path.rpartition("/")
    return (parent or "/", name)


def is_subpath(path: str, ancestor: str) -> bool:
    """True when *path* lives at or below *ancestor* (both normalised)."""
    if ancestor == "/":
        return True
    return path == ancestor or path.startswith(ancestor + "/")
