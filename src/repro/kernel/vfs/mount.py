"""Mount records for the simulated VFS.

The simulator keeps a single dentry tree; a "mount" labels a subtree with a
filesystem type (ramfs, securityfs, devtmpfs...).  That is enough to model
what the paper relies on: securityfs being a distinct filesystem under
``/sys/kernel/security`` with its own access rules.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from .path import is_subpath


@dataclasses.dataclass(frozen=True)
class Mount:
    """One mounted filesystem instance."""

    fstype: str
    mountpoint: str
    read_only: bool = False


class MountTable:
    """Tracks mounts and answers "which filesystem owns this path?"."""

    def __init__(self):
        self._mounts: Dict[str, Mount] = {}

    def add(self, mount: Mount) -> None:
        self._mounts[mount.mountpoint] = mount

    def remove(self, mountpoint: str) -> None:
        self._mounts.pop(mountpoint, None)

    def all(self) -> List[Mount]:
        return sorted(self._mounts.values(), key=lambda m: m.mountpoint)

    def owner_of(self, path: str) -> Mount:
        """Return the most specific mount containing *path*."""
        best = self._mounts["/"]
        for mount in self._mounts.values():
            if is_subpath(path, mount.mountpoint):
                if len(mount.mountpoint) > len(best.mountpoint):
                    best = mount
        return best
