"""Virtual filesystem for the simulated kernel."""

from .dentry import Dentry
from .file import OpenFile, OpenFlags
from .filesystem import VirtualFileSystem
from .inode import FileType, Inode, PseudoFileOps
from .mount import Mount, MountTable
from .path import NAME_MAX, PATH_MAX, is_subpath, normalize, split_parent

__all__ = [
    "Dentry", "OpenFile", "OpenFlags", "VirtualFileSystem", "FileType",
    "Inode", "PseudoFileOps", "Mount", "MountTable", "normalize",
    "split_parent", "is_subpath", "PATH_MAX", "NAME_MAX",
]
