"""Dentries: the name tree of the simulated VFS."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..errors import Errno, KernelError
from .inode import Inode


class Dentry:
    """A named link from a directory to an inode.

    The dentry tree *is* the namespace; path resolution walks it.  Unlike
    Linux we keep the whole tree in memory (no dcache eviction) — the
    simulator's worlds are small.
    """

    def __init__(self, name: str, inode: Inode,
                 parent: Optional["Dentry"] = None):
        self.name = name
        self.inode = inode
        self.parent = parent
        self.children: Dict[str, "Dentry"] = {}

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def path(self) -> str:
        """Absolute path of this dentry."""
        if self.is_root:
            return "/"
        parts = []
        node: Optional[Dentry] = self
        while node is not None and not node.is_root:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    def lookup(self, name: str) -> "Dentry":
        """Find child *name*; raises ``ENOENT`` when absent."""
        try:
            return self.children[name]
        except KeyError:
            raise KernelError(Errno.ENOENT,
                              f"{self.path()}/{name}") from None

    def has_child(self, name: str) -> bool:
        return name in self.children

    def attach(self, name: str, inode: Inode) -> "Dentry":
        """Create a child dentry *name* pointing at *inode*."""
        if not self.inode.is_dir:
            raise KernelError(Errno.ENOTDIR, self.path())
        if name in self.children:
            raise KernelError(Errno.EEXIST, f"{self.path()}/{name}")
        child = Dentry(name, inode, parent=self)
        self.children[name] = child
        if inode.is_dir:
            self.inode.nlink += 1
        return child

    def detach(self, name: str) -> "Dentry":
        """Remove and return child dentry *name*."""
        child = self.lookup(name)
        del self.children[name]
        if child.inode.is_dir:
            self.inode.nlink -= 1
        child.inode.nlink -= 1
        child.parent = None
        return child

    def iter_children(self) -> Iterator["Dentry"]:
        return iter(self.children.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Dentry({self.path()!r}, ino={self.inode.ino})"
