"""The virtual filesystem: a dentry tree plus namespace operations.

This layer is *mechanism only* — it performs no permission checks.  DAC
checks and LSM hooks live in :mod:`repro.kernel.syscalls`, mirroring the
Linux split between ``fs/namei.c`` mechanics and ``security/`` policy.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from ..clock import VirtualClock
from ..errors import Errno, KernelError
from .dentry import Dentry
from .inode import FileType, Inode, PseudoFileOps
from .mount import Mount, MountTable
from .path import normalize, split_components, split_parent

#: Maximum symlink traversals during one resolution (Linux: 40).
MAX_SYMLINK_DEPTH = 40


class VirtualFileSystem:
    """A single-namespace VFS rooted at ``/``."""

    def __init__(self, clock: Optional[VirtualClock] = None):
        self.clock = clock or VirtualClock()
        #: Per-VFS inode number allocator: two kernels built side by side
        #: must stamp identical inode numbers onto identical trees (fleet
        #: runs fingerprint them), so numbering never crosses instances.
        self._ino_alloc = itertools.count(1)
        self.root = Dentry("", Inode(FileType.DIRECTORY, mode=0o755,
                                     now_ns=self.clock.now_ns,
                                     ino=next(self._ino_alloc)))
        self.mounts = MountTable()
        self.mounts.add(Mount(fstype="ramfs", mountpoint="/"))

    # -- resolution ---------------------------------------------------------
    def resolve(self, path: str, cwd: str = "/",
                follow_symlinks: bool = True) -> Dentry:
        """Walk the tree and return the dentry for *path*.

        Raises ``ENOENT`` for missing components, ``ENOTDIR`` when a
        non-final component is not a directory, and ``ELOOP`` on symlink
        cycles.
        """
        return self._walk(normalize(path, cwd), follow_symlinks, depth=0)

    def _walk(self, norm_path: str, follow: bool, depth: int) -> Dentry:
        if depth > MAX_SYMLINK_DEPTH:
            raise KernelError(Errno.ELOOP, norm_path)
        node = self.root
        comps = split_components(norm_path)
        for i, comp in enumerate(comps):
            if not node.inode.is_dir:
                raise KernelError(Errno.ENOTDIR, node.path())
            node = node.lookup(comp)
            is_final = i == len(comps) - 1
            if node.inode.is_symlink and (follow or not is_final):
                target = normalize(node.inode.symlink_target or "",
                                   cwd=node.parent.path())
                rest = "/".join(comps[i + 1:])
                combined = target if not rest else target.rstrip("/") + "/" + rest
                return self._walk(normalize(combined), follow, depth + 1)
        return node

    def try_resolve(self, path: str, cwd: str = "/") -> Optional[Dentry]:
        """Like :meth:`resolve` but returns ``None`` on ``ENOENT``."""
        try:
            return self.resolve(path, cwd)
        except KernelError as err:
            if err.errno is Errno.ENOENT:
                return None
            raise

    def exists(self, path: str, cwd: str = "/") -> bool:
        return self.try_resolve(path, cwd) is not None

    def _resolve_parent(self, path: str, cwd: str) -> Tuple[Dentry, str]:
        norm = normalize(path, cwd)
        parent_path, name = split_parent(norm)
        parent = self.resolve(parent_path)
        if not parent.inode.is_dir:
            raise KernelError(Errno.ENOTDIR, parent_path)
        return parent, name

    # -- creation -----------------------------------------------------------
    def create_file(self, path: str, mode: int = 0o644, uid: int = 0,
                    gid: int = 0, cwd: str = "/") -> Dentry:
        """Create an empty regular file."""
        parent, name = self._resolve_parent(path, cwd)
        inode = Inode(FileType.REGULAR, mode=mode, uid=uid, gid=gid,
                      now_ns=self.clock.now_ns, ino=next(self._ino_alloc))
        return parent.attach(name, inode)

    def mkdir(self, path: str, mode: int = 0o755, uid: int = 0,
              gid: int = 0, cwd: str = "/") -> Dentry:
        parent, name = self._resolve_parent(path, cwd)
        inode = Inode(FileType.DIRECTORY, mode=mode, uid=uid, gid=gid,
                      now_ns=self.clock.now_ns, ino=next(self._ino_alloc))
        return parent.attach(name, inode)

    def makedirs(self, path: str, mode: int = 0o755) -> Dentry:
        """Create *path* and any missing ancestors (like ``mkdir -p``)."""
        norm = normalize(path)
        node = self.root
        for comp in split_components(norm):
            if node.has_child(comp):
                node = node.lookup(comp)
                if not node.inode.is_dir:
                    raise KernelError(Errno.ENOTDIR, node.path())
            else:
                node = node.attach(comp, Inode(
                    FileType.DIRECTORY, mode=mode,
                    now_ns=self.clock.now_ns, ino=next(self._ino_alloc)))
        return node

    def mknod(self, path: str, rdev: Tuple[int, int], mode: int = 0o600,
              uid: int = 0, gid: int = 0) -> Dentry:
        """Create a character-device node with device numbers *rdev*."""
        parent, name = self._resolve_parent(path, "/")
        inode = Inode(FileType.CHARDEV, mode=mode, uid=uid, gid=gid,
                      rdev=rdev, now_ns=self.clock.now_ns,
                      ino=next(self._ino_alloc))
        return parent.attach(name, inode)

    def symlink(self, target: str, linkpath: str) -> Dentry:
        parent, name = self._resolve_parent(linkpath, "/")
        inode = Inode(FileType.SYMLINK, mode=0o777,
                      symlink_target=target, now_ns=self.clock.now_ns,
                      ino=next(self._ino_alloc))
        return parent.attach(name, inode)

    def create_pseudo(self, path: str, ops: PseudoFileOps,
                      mode: int = 0o600) -> Dentry:
        """Create a pseudo-file (securityfs-style) backed by callbacks."""
        parent, name = self._resolve_parent(path, "/")
        inode = Inode(FileType.REGULAR, mode=mode, pseudo_ops=ops,
                      now_ns=self.clock.now_ns, ino=next(self._ino_alloc))
        inode.data = None  # content comes from callbacks, not pages
        return parent.attach(name, inode)

    # -- removal ------------------------------------------------------------
    def unlink(self, path: str, cwd: str = "/") -> Inode:
        """Remove a non-directory entry; returns the orphaned inode."""
        dentry = self.resolve(path, cwd, follow_symlinks=False)
        if dentry.inode.is_dir:
            raise KernelError(Errno.EISDIR, path)
        if dentry.parent is None:
            raise KernelError(Errno.EBUSY, path)
        return dentry.parent.detach(dentry.name).inode

    def rmdir(self, path: str, cwd: str = "/") -> Inode:
        dentry = self.resolve(path, cwd, follow_symlinks=False)
        if not dentry.inode.is_dir:
            raise KernelError(Errno.ENOTDIR, path)
        if dentry.children:
            raise KernelError(Errno.ENOTEMPTY, path)
        if dentry.parent is None:
            raise KernelError(Errno.EBUSY, "cannot remove root")
        return dentry.parent.detach(dentry.name).inode

    def rename(self, old: str, new: str, cwd: str = "/") -> Dentry:
        src = self.resolve(old, cwd, follow_symlinks=False)
        if src.parent is None:
            raise KernelError(Errno.EBUSY, "cannot move root")
        new_parent, new_name = self._resolve_parent(new, cwd)
        if new_parent.has_child(new_name):
            existing = new_parent.lookup(new_name)
            if existing.inode.is_dir and existing.children:
                raise KernelError(Errno.ENOTEMPTY, new)
            new_parent.detach(new_name)
        moved = src.parent.detach(src.name)
        return new_parent.attach(new_name, moved.inode)

    # -- queries ------------------------------------------------------------
    def listdir(self, path: str, cwd: str = "/") -> List[str]:
        dentry = self.resolve(path, cwd)
        if not dentry.inode.is_dir:
            raise KernelError(Errno.ENOTDIR, path)
        return sorted(dentry.children)

    def mount(self, fstype: str, mountpoint: str,
              read_only: bool = False) -> Mount:
        """Record a filesystem mount at *mountpoint* (created if missing)."""
        self.makedirs(mountpoint)
        mount = Mount(fstype=fstype, mountpoint=normalize(mountpoint),
                      read_only=read_only)
        self.mounts.add(mount)
        return mount
