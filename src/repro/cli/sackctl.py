"""``sackctl`` — the SACK policy administration tool.

Subcommands::

    sackctl check <policy.sack>          validate; exit 1 on errors
    sackctl verify [policy.sack]         statically model-check the policy
                                         (default: built-in IVI policy)
                                         against the cross-state safety
                                         properties; prints per-property
                                         pass/fail, model-size stats, and
                                         counterexample traces; exit 1 on
                                         any violation (--replay executes
                                         each counterexample against a
                                         live kernel, --export dumps them
                                         as JSON)
    sackctl format <policy.sack>         print the canonical form
    sackctl compile <policy.sack>        show per-state compiled rulesets
    sackctl simulate <policy.sack> -e crash_detected -e emergency_cleared
                                         drive the SSM through events
    sackctl query <policy.sack> --state S --op write --path /dev/car/door
                                         [--subject comm] [--cmd NAME]
                                         one access decision
    sackctl trace <policy.sack> -e crash_detected --access read:/dev/car/gps
                                         boot a kernel, drive events and
                                         accesses, print the trace buffer
    sackctl audit <policy.sack> -e crash_detected --access ioctl:/dev/car/door:DOOR_UNLOCK
                                         same, but print the audit records
    sackctl chaos --seed 1..5 --ticks 200
                                         seeded fault-injection scenarios
                                         with fail-closed invariant checks;
                                         exit 1 on any violation
    sackctl spans <policy.sack> -e crash_detected --access read:/dev/car/gps
                                         drive events and accesses with the
                                         causal span tracer on; print the
                                         span trees and latency breakdown
                                         (--chrome / --folded for the
                                         export formats)
    sackctl fleet status --vehicles 10 --epochs 8
                                         boot a fleet of vehicle kernels,
                                         run it, and print the roll-up
    sackctl fleet rollout --vehicles 10 [--fail-canary]
                                         staged OTA rollout (canary ->
                                         waves -> full); --fail-canary
                                         injects a canary apply failure
                                         and shows the automatic rollback
    sackctl fleet rollback --vehicles 10 operator-initiated mid-rollout abort
    sackctl fleet bus --vehicles 6       crash one vehicle and tail the V2X
                                         bus (publish/deliver/drop/filter)
    sackctl fleet top --vehicles 25      live fleet dashboard: throughput,
                                         per-state counts, SLO/burn-rate
                                         status, top denial series
    sackctl fleet metrics --vehicles 10  whole-fleet OpenMetrics dump from
                                         the streaming telemetry pipeline

The observability subcommands (``trace``, ``audit``, ``spans``, ``avc``)
accept ``--kernel <vehicle-id> --fleet-size N``: instead of booting one
standalone kernel they boot a fleet, run it briefly so cross-vehicle
traffic exists, then drive the events/accesses into — and dump the
observability of — the selected vehicle's kernel only.  Every vehicle
kernel carries its own tracefs/audit/AVC state, so what you see is that
vehicle's view, not a fleet-wide mixture.

``trace`` and ``audit`` run against a real booted simulator kernel with
independent SACK enforcing, SACKfs mounted, and tracefs recording every
tracepoint; accesses are issued by an unprivileged task (uid 1000) so MAC
decisions actually bite.  Access syntax: ``op:path[:ioctl_cmd]`` with op
one of read/write/ioctl.

ioctl command names resolve against the vehicle device ABI
(``repro.vehicle.devices.IOCTL_SYMBOLS``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from ..sack import (SituationEvent, check_policy, compile_policy,
                    format_policy, has_errors, parse_policy)
from ..sack.policy.model import RuleOp
from ..vehicle.devices import IOCTL_SYMBOLS


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_policy(handle.read())


def cmd_check(args) -> int:
    policy = _load(args.policy)
    diagnostics = check_policy(policy)
    for diag in diagnostics:
        print(diag)
    if has_errors(diagnostics):
        print(f"{policy.name}: FAILED "
              f"({sum(d.severity.value == 'error' for d in diagnostics)} "
              f"error(s))")
        return 1
    print(f"{policy.name}: OK ({len(diagnostics)} warning(s))")
    return 0


def cmd_verify(args) -> int:
    import json as _json

    from ..verify import SolverUnavailable, verify_policy

    if args.policy:
        with open(args.policy, "r", encoding="utf-8") as handle:
            policy_text = handle.read()
        source = args.policy
    else:
        from ..vehicle.ivi import DEFAULT_SACK_POLICY
        policy_text = DEFAULT_SACK_POLICY
        source = "built-in IVI policy"
    try:
        report = verify_policy(policy_text, ioctl_symbols=IOCTL_SYMBOLS,
                               properties=args.property or None,
                               solver=args.solver)
    except SolverUnavailable as exc:
        print(f"error: {exc}")
        return 2
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(f"verifying {source}")
        for line in report.summary_lines():
            print(line)
    # Status/side-channel output goes to stderr under --json so stdout
    # stays parseable (same convention as ``sackctl chaos --json``).
    out = sys.stderr if args.json else sys.stdout
    if args.export:
        doc = {"policy": source,
               "counterexamples": [cex.to_dict()
                                   for cex in report.counterexamples]}
        with open(args.export, "w", encoding="utf-8") as handle:
            _json.dump(doc, handle, indent=2)
            handle.write("\n")
        print(f"{len(doc['counterexamples'])} counterexample(s) "
              f"exported to {args.export}", file=out)
    if args.replay and report.counterexamples:
        from ..verify import replay_counterexample
        print("replaying counterexample(s) on a live kernel:", file=out)
        for cex in report.counterexamples:
            result = replay_counterexample(cex, policy_text)
            status = "CONFIRMED" if result.confirmed else "NOT confirmed"
            print(f"  {cex.property_id}: {status} — {result.detail}",
                  file=out)
    return 0 if report.ok else 1


def cmd_format(args) -> int:
    print(format_policy(_load(args.policy)), end="")
    return 0


def cmd_compile(args) -> int:
    policy = _load(args.policy)
    compiled = compile_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)
    for state in sorted(compiled.rulesets):
        ruleset = compiled.rulesets[state]
        marker = " (initial)" if state == policy.initial else ""
        print(f"state {state}{marker}: {ruleset.rule_count} rules")
        for table, label in ((ruleset.deny_by_op, "deny"),
                             (ruleset.allow_by_op, "allow")):
            for op in sorted(table, key=lambda o: o.value):
                for rule in table[op]:
                    print(f"  {label} {op.value} {rule.source.path_glob}"
                          + (f" subject={rule.source.subject}"
                             if rule.source.subject else "")
                          + (f" cmds={sorted(rule.cmds)}"
                             if rule.cmds else ""))
    return 0


def cmd_simulate(args) -> int:
    policy = _load(args.policy)
    compile_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)  # validate
    ssm = policy.build_ssm()
    print(f"initial: {ssm.current_name}")
    for name in args.event or []:
        transition = ssm.process_event(SituationEvent(name=name))
        if transition is None:
            print(f"  {name}: ignored (still {ssm.current_name})")
        else:
            print(f"  {name}: {transition.from_state} -> "
                  f"{transition.to_state}")
    stats = ssm.stats()
    print(f"final: {ssm.current_name} "
          f"({stats['transitions']} transitions, "
          f"{stats['events_ignored']} ignored)")
    return 0


def cmd_graph(args) -> int:
    policy = _load(args.policy)
    ssm = policy.build_ssm()
    print(ssm.to_dot(title=policy.name))
    return 0


def cmd_query(args) -> int:
    policy = _load(args.policy)
    compiled = compile_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)
    state = args.state or policy.initial
    try:
        ruleset = compiled.ruleset_for(state)
    except KeyError as exc:
        print(exc)
        return 2
    op = RuleOp(args.op)
    cmd = None
    if args.cmd is not None:
        cmd = IOCTL_SYMBOLS.get(args.cmd)
        if cmd is None:
            if not args.cmd.isdigit():
                print(f"unknown ioctl command {args.cmd!r}")
                return 2
            cmd = int(args.cmd)
    allowed = ruleset.check(op, args.path, args.subject or "", cmd)
    print(f"state={state} op={op.value} path={args.path}"
          + (f" subject={args.subject}" if args.subject else "")
          + (f" cmd={args.cmd}" if args.cmd else "")
          + f" -> {'ALLOW' if allowed else 'DENY'}")
    return 0 if allowed else 1


def _boot_observed_world(policy_path: str):
    """Boot independent SACK + SACKfs + tracefs for the obs subcommands."""
    from ..kernel import user_credentials
    from ..lsm import boot_kernel
    from ..obs import mount_tracefs
    from ..sack import SackFs, SackLsm

    sack = SackLsm()
    kernel, _ = boot_kernel([sack])
    sackfs = SackFs(kernel, sack, authorized_event_uids={990},
                    ioctl_symbols=IOCTL_SYMBOLS)
    with open(policy_path, "r", encoding="utf-8") as handle:
        policy_text = handle.read()
    kernel.write_file(kernel.procs.init,
                      "/sys/kernel/security/SACK/policy",
                      policy_text.encode(), create=False)
    mount_tracefs(kernel)

    sds = kernel.sys_fork(kernel.procs.init)
    sds.comm = "sds"
    sds.cred = user_credentials(990)
    app = kernel.sys_fork(kernel.procs.init)
    app.comm = "app"
    app.cred = user_credentials(1000)
    return kernel, sack, sds, app


def _build_fleet(args, policy_text: Optional[str] = None, **overrides):
    """Assemble a Fleet from the shared fleet CLI knobs."""
    from ..fleet import Fleet, FleetConfig
    config = FleetConfig(
        n_vehicles=getattr(args, "vehicles", None)
        or getattr(args, "fleet_size", 10),
        seed=getattr(args, "fleet_seed", None)
        if getattr(args, "fleet_seed", None) is not None
        else getattr(args, "seed", 0),
        workers=getattr(args, "workers", 1),
        backend=getattr(args, "backend", None) or "serial",
        policy_text=policy_text,
        **overrides)
    return Fleet(config)


def _boot_observed_target(args):
    """The kernel the obs subcommands run against.

    Without ``--kernel``: one standalone booted kernel (as before).
    With ``--kernel <vehicle-id>``: boot a fleet of ``--fleet-size``
    vehicle kernels, run ``--fleet-epochs`` epochs of traffic, and
    return the selected vehicle's kernel with its own sds/app tasks.
    Returns ``(kernel, sds_task, app_task, fleet_or_none)``.
    """
    if getattr(args, "kernel", None) is None:
        kernel, _sack, sds, app = _boot_observed_world(args.policy)
        return kernel, sds, app, None
    from ..obs import mount_tracefs
    with open(args.policy, "r", encoding="utf-8") as handle:
        policy_text = handle.read()
    fleet = _build_fleet(args, policy_text=policy_text)
    vehicle = fleet.vehicles.get(args.kernel)
    if vehicle is None:
        raise ValueError(
            f"no vehicle {args.kernel!r} in this fleet; "
            f"ids: {', '.join(fleet.ids)}")
    kernel = vehicle.world.kernel
    if not kernel.vfs.exists("/sys/kernel/tracing/trace"):
        mount_tracefs(kernel)
    return kernel, vehicle.world.task("sds"), \
        vehicle.world.task("media_app"), fleet


def _warm_fleet(fleet, args) -> None:
    """Run the selected fleet briefly so cross-vehicle traffic exists."""
    if fleet is None:
        return
    epochs = getattr(args, "fleet_epochs", 3)
    if epochs > 0 and len(fleet.ids) > 1:
        # Crash the lead vehicle so V2X alerts actually cross kernels.
        from ..fleet.orchestrator import ScriptedDriver
        fleet.driver = ScriptedDriver([(1, fleet.ids[0], "crash")])
    fleet.run(max(0, epochs))


def _drive(kernel, sds, app, events, accesses) -> List[str]:
    """Feed events and accesses in order; returns outcome lines."""
    from ..kernel import KernelError, OpenFlags

    log: List[str] = []
    for name in events or []:
        kernel.clock.advance_ns(1_000_000)
        try:
            kernel.write_file(sds, "/sys/kernel/security/SACK/events",
                              f"{name}\n".encode(), create=False)
            log.append(f"event {name}: delivered")
        except KernelError as exc:
            log.append(f"event {name}: rejected ({exc})")
    for spec in accesses or []:
        parts = spec.split(":")
        if (len(parts) < 2 or parts[0] not in ("read", "write", "ioctl")
                or not parts[1].startswith("/")):
            raise ValueError(f"bad --access {spec!r}; "
                             f"use op:/abs/path[:ioctl_cmd]")
        op, path = parts[0], parts[1]
        if not kernel.vfs.exists(path):
            parent = path.rsplit("/", 1)[0]
            if parent:
                kernel.vfs.makedirs(parent)
            kernel.vfs.create_file(path, mode=0o666)
        kernel.clock.advance_ns(1_000_000)
        try:
            if op == "read":
                fd = kernel.sys_open(app, path, OpenFlags.O_RDONLY)
                kernel.sys_read(app, fd, 16)
            elif op == "write":
                fd = kernel.sys_open(app, path, OpenFlags.O_WRONLY)
                kernel.sys_write(app, fd, b"x")
            else:
                cmd_name = parts[2] if len(parts) > 2 else "0"
                cmd = IOCTL_SYMBOLS.get(cmd_name,
                                        int(cmd_name)
                                        if cmd_name.isdigit() else None)
                if cmd is None:
                    raise ValueError(f"unknown ioctl command {cmd_name!r}")
                fd = kernel.sys_open(app, path, OpenFlags.O_RDONLY)
                kernel.sys_ioctl(app, fd, cmd, 0)
            kernel.sys_close(app, fd)
            log.append(f"access {spec}: ALLOWED")
        except KernelError as exc:
            log.append(f"access {spec}: DENIED ({exc})")
    return log


def cmd_trace(args) -> int:
    kernel, sds, app, fleet = _boot_observed_target(args)
    kernel.obs.enable_all_recording()
    if args.syscalls:
        kernel.instrument_syscalls()
    _warm_fleet(fleet, args)
    for line in _drive(kernel, sds, app, args.event, args.access):
        print(line)
    print()
    # Dogfood the pseudo-file rather than reaching into the hub.
    print(kernel.read_file(kernel.procs.init,
                           "/sys/kernel/tracing/trace").decode(), end="")
    return 0


def cmd_audit(args) -> int:
    kernel, sds, app, fleet = _boot_observed_target(args)
    _warm_fleet(fleet, args)
    for line in _drive(kernel, sds, app, args.event, args.access):
        print(line)
    print()
    text = kernel.read_file(kernel.procs.init,
                            "/sys/kernel/security/SACK/audit").decode()
    print(text if text.strip() else "(no audit records)", end="" if
          text.strip() else "\n")
    return 0


def cmd_spans(args) -> int:
    kernel, sds, app, fleet = _boot_observed_target(args)
    # Dogfood the tracefs control file rather than reaching into the hub.
    kernel.write_file(kernel.procs.init,
                      "/sys/kernel/tracing/SACK/spans/enable", b"1",
                      create=False)
    _warm_fleet(fleet, args)
    log = _drive(kernel, sds, app, args.event, args.access)
    read = lambda p: kernel.read_file(kernel.procs.init, p).decode()
    if args.chrome:
        print(read("/sys/kernel/tracing/SACK/spans/chrome"), end="")
        return 0
    if args.folded:
        print(read("/sys/kernel/tracing/SACK/spans/folded"), end="")
        return 0
    for line in log:
        print(line)
    print()
    text = read("/sys/kernel/tracing/SACK/spans/trace")
    print(text if text.strip() else "(no spans recorded)",
          end="" if text.strip() else "\n")
    print()
    print(read("/sys/kernel/tracing/SACK/spans/breakdown"), end="")
    return 0


def cmd_avc(args) -> int:
    kernel, sds, app, fleet = _boot_observed_target(args)
    # Dogfood the tracefs control files rather than reaching into the
    # framework object.
    root = "/sys/kernel/tracing/SACK/avc"
    if args.disable:
        kernel.write_file(kernel.procs.init, f"{root}/enable", b"0",
                          create=False)
    _warm_fleet(fleet, args)
    for line in _drive(kernel, sds, app, args.event, args.access):
        print(line)
    if args.flush:
        kernel.write_file(kernel.procs.init, f"{root}/flush", b"1",
                          create=False)
    print()
    print(kernel.read_file(kernel.procs.init, f"{root}/stats").decode(),
          end="")
    return 0


def cmd_dtable(args) -> int:
    kernel, sds, app, fleet = _boot_observed_target(args)
    # Dogfood the tracefs control files rather than reaching into the
    # framework object.
    root = "/sys/kernel/tracing/SACK/dtable"
    kernel.write_file(kernel.procs.init, f"{root}/enable", b"1",
                      create=False)
    _warm_fleet(fleet, args)
    for line in _drive(kernel, sds, app, args.event, args.access):
        print(line)
    print()
    print(kernel.read_file(kernel.procs.init, f"{root}/stats").decode(),
          end="")
    if args.avc:
        print()
        print(kernel.read_file(
            kernel.procs.init,
            "/sys/kernel/tracing/SACK/avc/stats").decode(), end="")
    return 0


def _parse_seeds(spec: str) -> List[int]:
    """``"7"`` -> [7]; ``"1..5"`` -> [1, 2, 3, 4, 5]."""
    if ".." in spec:
        lo, _, hi = spec.partition("..")
        first, last = int(lo), int(hi)
        if last < first:
            raise ValueError(f"bad seed range {spec!r}")
        return list(range(first, last + 1))
    return [int(spec)]


def cmd_chaos(args) -> int:
    import json as _json

    from ..faults import chaos

    seeds = _parse_seeds(args.seed)
    reports = chaos.run_soak(seeds, ticks=args.ticks, mode=args.mode,
                             intensity=args.intensity,
                             dtable=getattr(args, "dtable", False))
    if args.json:
        print(_json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            for line in report.summary_lines():
                print(line)
    # Status goes to stderr under --json so stdout stays parseable.
    out = sys.stderr if args.json else sys.stdout
    failed = [r for r in reports if not r.ok]
    if failed:
        print(f"chaos: {len(failed)}/{len(reports)} seed(s) violated "
              f"fail-closed invariants", file=out)
        return 1
    print(f"chaos: {len(reports)} seed(s), all fail-closed invariants held",
          file=out)
    return 0


def _fleet_policy_text(args) -> Optional[str]:
    if getattr(args, "policy", None):
        with open(args.policy, "r", encoding="utf-8") as handle:
            return handle.read()
    return None


def _fleet_bundle(fleet, version: int):
    """A fully signed bundle carrying the fleet's running policy."""
    from ..fleet.bundle import BundleSigner, make_bundle
    from ..vehicle.ivi import DEFAULT_SACK_POLICY
    policy_text = fleet.config.policy_text or DEFAULT_SACK_POLICY
    return make_bundle(version, policy_text,
                       signer=BundleSigner(fleet.config.fleet_key))


def _print_vehicle_rows(fleet, only: Optional[str] = None) -> None:
    sup = fleet.supervisor
    print(f"{'vehicle':<8} {'situation':<24} {'bundle':<7} "
          f"{'online':<7} {'state':<12} {'crashes':<8} "
          f"{'denials':<8} events")
    for vid in fleet.ids:
        if only is not None and vid != only:
            continue
        # Route through the host so the rows work no matter where the
        # vehicle lives (coordinator thread or a worker process).
        health = fleet.host.health_snapshot(vid)
        bundle = health["bundle_version"]
        status = sup.status[vid]
        print(f"{vid:<8} {health['situation']:<24} "
              f"{'v%s' % bundle if bundle is not None else 'boot':<7} "
              f"{'yes' if health['online'] else 'NO':<7} "
              f"{status.state:<12} {status.crashes:<8} "
              f"{health['denials']:<8} "
              f"{health['events_accepted']}+{health['events_rejected']}rej")


def _parsed_slos(args) -> Tuple:
    from ..fleet import parse_slo
    return tuple(parse_slo(spec) for spec in (args.slo or []))


def cmd_fleet_status(args) -> int:
    overrides = {}
    if getattr(args, "telemetry", False):
        overrides["telemetry"] = True
    with _build_fleet(args, policy_text=_fleet_policy_text(args),
                      **overrides) as fleet:
        if args.kernel is not None and args.kernel not in fleet.ids:
            raise ValueError(f"no vehicle {args.kernel!r}; "
                             f"ids: {', '.join(fleet.ids)}")
        result = fleet.run(args.epochs)
        if getattr(args, "format", None) == "json":
            # The uniform bench envelope (schema sack-bench/v1)
            # dashboards and CI already parse.
            import json as _json
            from ..bench.envelope import make_envelope
            print(_json.dumps(make_envelope("fleet-status",
                                            result.report.to_dict(),
                                            seed=fleet.config.seed),
                              indent=2))
            return 0 if result.ok else 1
        if args.json:
            import json as _json
            print(_json.dumps(result.report.to_dict(), indent=2))
            return 0 if result.ok else 1
        for line in result.report.summary_lines():
            print(line)
        print()
        _print_vehicle_rows(fleet, only=args.kernel)
        return 0 if result.ok else 1


def _render_fleet_top(fleet, top_n: int) -> List[str]:
    """One dashboard frame over a telemetry-enabled fleet."""
    tel = fleet.telemetry
    agg = tel.aggregator
    sup = fleet.supervisor
    epoch = fleet.epoch_index - 1
    report_vps = (fleet.config.n_vehicles * fleet.epoch_index
                  / (fleet.compute_makespan_ns / 1e9)
                  if fleet.compute_makespan_ns else 0.0)
    lines = [
        f"sack fleet top — epoch {fleet.epoch_index}, seed "
        f"{fleet.config.seed}, {fleet.config.n_vehicles} vehicle(s), "
        f"{fleet.config.workers} worker(s)",
        f"  throughput {report_vps:.0f} vehicle-epochs/s | telemetry "
        f"{agg.frames_total} frame(s), {agg.series_tracked} series"
        + (f", {sum(agg.series_dropped.values())} dropped"
           if agg.series_dropped else ""),
    ]
    situations: dict = {}
    for vid in fleet.ids:
        name = fleet.vehicles[vid].situation or "?"
        situations[name] = situations.get(name, 0) + 1
    states: dict = {}
    for vid in fleet.ids:
        state = sup.status[vid].state
        states[state] = states.get(state, 0) + 1
    online = sum(1 for vid in fleet.ids if fleet.vehicles[vid].online)
    lines.append("  situations: " + ", ".join(
        f"{k}={v}" for k, v in sorted(situations.items()))
        + f" | vehicles: " + ", ".join(
            f"{k}={v}" for k, v in sorted(states.items()))
        + f" | online {online}/{len(fleet.ids)}")
    lines.append("")
    lines.append(f"  {'SLO':<32} {'scope':<8} {'measured':>10} "
                 f"{'burn s/l':>15} state")
    live = tuple(vid for vid in fleet.ids if not sup.is_dead(vid))
    for row in tel.engine.status_rows(epoch, live):
        measured = row["measured_short"]
        lines.append(
            f"  {row['objective']:<32} {row['scope']:<8} "
            f"{'-' if measured is None else '%g' % measured:>10} "
            f"{'%g/%g' % (row['burn_short'], row['burn_long']):>15} "
            f"{row['state']}")
    top = agg.top_series("lsm_denials_total", epoch,
                         agg.long_window, n=top_n)
    lines.append("")
    if top:
        lines.append(f"  top denial series (last {agg.long_window} "
                     f"epoch(s)):")
        for key, total in top:
            lines.append(f"    {key:<56} {total:g}")
    else:
        lines.append("  no denials in the current window")
    return lines


def cmd_fleet_top(args) -> int:
    overrides = {"telemetry": True,
                 "telemetry_short_window_epochs": args.short_window,
                 "telemetry_long_window_epochs": args.long_window}
    slos = _parsed_slos(args)
    if slos:
        overrides["slos"] = slos
    fleet = _build_fleet(args, policy_text=_fleet_policy_text(args),
                         **overrides)
    refresh = max(1, args.refresh)
    clear = sys.stdout.isatty() and not args.once
    while fleet.epoch_index < args.epochs:
        fleet.run(min(refresh, args.epochs - fleet.epoch_index))
        if args.once and fleet.epoch_index < args.epochs:
            continue
        if clear:
            print("\x1b[2J\x1b[H", end="")
        for line in _render_fleet_top(fleet, args.top):
            print(line)
        print()
        _print_vehicle_rows(fleet)
        print()
    alerts = fleet.telemetry.engine.alerts_total
    if alerts:
        print(f"{alerts} SLO alert(s) fired")
    return 0


def cmd_fleet_metrics(args) -> int:
    overrides = {"telemetry": True}
    slos = _parsed_slos(args)
    if slos:
        overrides["slos"] = slos
    fleet = _build_fleet(args, policy_text=_fleet_policy_text(args),
                         **overrides)
    fleet.run(args.epochs)
    print(fleet.telemetry.aggregator.to_openmetrics(), end="")
    return 0


def cmd_fleet_rollout(args) -> int:
    from ..faults import points as fault_points
    overrides = {}
    if getattr(args, "slo_breach", False):
        # Arm an impossible objective over the telemetry pipeline: no
        # fleet sustains a million heartbeats/s, so the burn-rate alert
        # fires once the windows fill and the canary health gate trips.
        from ..fleet import parse_slo
        overrides.update(
            telemetry=True,
            slos=(parse_slo("heartbeat_rate>=1000000"),),
            telemetry_short_window_epochs=2,
            telemetry_long_window_epochs=3)
    fleet = _build_fleet(args, policy_text=_fleet_policy_text(args),
                         **overrides)
    bundle = _fleet_bundle(fleet, version=args.bundle_version)
    if args.fail_canary:
        # The canary's first apply fails once; the health gate trips and
        # the controller walks the whole fleet back automatically.
        fleet.arm_vehicle_fault(fleet.ids[0],
                                fault_points.FLEET_BUNDLE_APPLY_FAIL,
                                probability=1.0, times=1)
    from ..fleet.rollout import ProofRefusedError
    try:
        fleet.stage_rollout(bundle)
    except ProofRefusedError as exc:
        # The static proof gate refused the bundle before any vehicle —
        # canary included — was offered it.
        print(f"staging {bundle.describe()}")
        print(f"REFUSED before canary: {exc}")
        decision = exc.decision
        if decision is not None and decision.report is not None:
            for line in decision.report.summary_lines():
                print(f"  {line}")
        for line in fleet.controller.status_lines():
            print(line)
        return 1
    result = fleet.run(args.epochs)
    print(f"staged {bundle.describe()}")
    for epoch, message in fleet.controller.history:
        print(f"  epoch {epoch}: {message}")
    state = fleet.controller.state.value
    print(f"final: {state}")
    _print_vehicle_rows(fleet)
    telemetry = result.report.telemetry
    if telemetry:
        slo = telemetry.get("slo", {})
        print(f"telemetry: {slo.get('alerts_total', 0)} SLO alert(s)")
    if result.report.violations:
        for violation in result.report.violations:
            print(f"VIOLATION: {violation}")
        return 1
    expected = "rolled_back" \
        if (args.fail_canary or getattr(args, "slo_breach", False)) \
        else "complete"
    return 0 if state == expected else 1


def cmd_fleet_rollback(args) -> int:
    fleet = _build_fleet(args, policy_text=_fleet_policy_text(args))
    fleet.stage_rollout(_fleet_bundle(fleet, version=args.bundle_version))
    fleet.run(max(1, args.epochs // 2))
    print(f"aborting rollout at epoch {fleet.epoch_index} "
          f"(state {fleet.controller.state.value})")
    fleet.controller.abort()
    result = fleet.run(args.epochs - max(1, args.epochs // 2))
    for epoch, message in fleet.controller.history:
        print(f"  epoch {epoch}: {message}")
    print(f"final: {fleet.controller.state.value}")
    _print_vehicle_rows(fleet)
    return 0 if result.ok else 1


def cmd_fleet_bus(args) -> int:
    from ..fleet.orchestrator import ScriptedDriver
    fleet = _build_fleet(args, policy_text=_fleet_policy_text(args))
    crash_at = min(1, max(0, args.epochs - 1))
    driver = ScriptedDriver([(crash_at, fleet.ids[0], "crash")])
    if args.epochs > 4:
        driver.at(args.epochs - 2, fleet.ids[0], "clear")
    fleet.driver = driver
    result = fleet.run(args.epochs)
    for record in fleet.bus.tail(args.lines):
        print(record.to_line())
    print()
    stats = fleet.bus.stats_dict()
    print("bus: " + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())))
    return 0 if result.ok else 1


def cmd_fleet_checkpoint(args) -> int:
    fleet = _build_fleet(
        args, policy_text=_fleet_policy_text(args),
        always_checkpoint=True,
        checkpoint_interval_epochs=args.interval)
    result = fleet.run(args.epochs)
    rows = fleet.host.checkpoint_rows()
    print(f"{len(rows)} vehicle checkpoint(s) after {args.epochs} "
          f"epoch(s), interval {args.interval} "
          f"(epoch -1 = boot baseline)")
    print(f"{'vehicle':<8} {'epoch':<6} digest")
    for row in rows:
        print(f"{row['vehicle']:<8} {row['epoch']:<6} "
              f"{str(row['digest'])[:16]}")
    return 0 if result.ok else 1


def _run_restore_once(args):
    """One seeded crash-and-recover run; returns (fleet, result, events)."""
    from ..obs import tracepoints as tp_names
    fleet = _build_fleet(
        args, policy_text=_fleet_policy_text(args),
        checkpoint_interval_epochs=args.interval,
        max_restarts=args.max_restarts)
    victim = args.vehicle or fleet.ids[0]
    if victim not in fleet.vehicles:
        raise ValueError(f"no vehicle {victim!r}; "
                         f"ids: {', '.join(fleet.ids)}")
    events: List[Tuple[str, dict]] = []
    reg = fleet.supervisor.obs.tracepoints
    for name in (tp_names.FLEET_CRASH_TP, tp_names.FLEET_RESTORE_TP,
                 tp_names.FLEET_QUARANTINE_TP):
        reg.attach(name, lambda n, fields: events.append((n, dict(fields))))
    crash_epoch = max(0, min(args.crash_epoch, args.epochs - 1))
    fleet.force_crash(victim, epoch=crash_epoch)
    result = fleet.run(args.epochs)
    return fleet, result, events


def cmd_fleet_restore(args) -> int:
    fleet, result, events = _run_restore_once(args)
    print("recovery timeline:")
    for name, fields in events:
        rendered = ", ".join(f"{k}={fields[k]}" for k in sorted(fields))
        print(f"  {name}: {rendered}")
    if not events:
        print("  (no crash fired; epochs may be too few)")
    print()
    for line in result.report.summary_lines():
        print(line)
    print()
    _print_vehicle_rows(fleet)
    if args.double_run:
        first = result.report.fingerprint()
        _, second_result, _ = _run_restore_once(args)
        second = second_result.report.fingerprint()
        print()
        print(f"run 1 fingerprint {first}")
        print(f"run 2 fingerprint {second}")
        if first != second:
            print("FINGERPRINT MISMATCH: recovery is not deterministic")
            return 1
        print("fingerprints identical: recovery is deterministic")
    return 0 if result.ok else 1


def _add_kernel_selector(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel", metavar="VEHICLE_ID",
                        help="inspect this vehicle's kernel inside a "
                             "booted fleet instead of a standalone one")
    parser.add_argument("--fleet-size", type=int, default=3,
                        help="fleet size for --kernel (default: 3)")
    parser.add_argument("--fleet-seed", type=int, default=0,
                        help="fleet seed for --kernel (default: 0)")
    parser.add_argument("--fleet-epochs", type=int, default=3,
                        help="epochs of fleet traffic to run before "
                             "driving events/accesses (default: 3)")


def _add_fleet_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--vehicles", type=int, default=10,
                        help="fleet size (default: 10)")
    parser.add_argument("--seed", type=int, default=0,
                        help="fleet seed (default: 0)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker pool size (default: 1)")
    parser.add_argument("--backend",
                        choices=["serial", "threads", "process"],
                        default="serial",
                        help="epoch scheduler backend (default: serial; "
                             "all three are bit-identical)")
    parser.add_argument("--epochs", type=int, default=12,
                        help="epochs to run (default: 12)")
    parser.add_argument("--policy", help="policy file for every vehicle "
                                         "(default: built-in IVI policy)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sackctl",
        description="SACK policy administration tool")
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="validate a policy file")
    p_check.add_argument("policy")
    p_check.set_defaults(func=cmd_check)

    p_verify = sub.add_parser(
        "verify", help="statically model-check a policy against the "
                       "cross-state safety properties")
    p_verify.add_argument("policy", nargs="?",
                          help="policy file (default: built-in IVI "
                               "policy)")
    p_verify.add_argument("--property", action="append", metavar="ID",
                          help="check only this property (repeatable; "
                               "e.g. P2 or P2:koffee-unreachable)")
    p_verify.add_argument("--solver", default="exhaustive",
                          help="solver backend (default: exhaustive)")
    p_verify.add_argument("--json", action="store_true",
                          help="emit the full report as JSON")
    p_verify.add_argument("--export", metavar="FILE",
                          help="write counterexample traces to FILE as "
                               "JSON")
    p_verify.add_argument("--replay", action="store_true",
                          help="execute each counterexample against a "
                               "live kernel and report whether it "
                               "reproduces")
    p_verify.set_defaults(func=cmd_verify)

    p_format = sub.add_parser("format", help="print canonical form")
    p_format.add_argument("policy")
    p_format.set_defaults(func=cmd_format)

    p_compile = sub.add_parser("compile",
                               help="show per-state compiled rulesets")
    p_compile.add_argument("policy")
    p_compile.set_defaults(func=cmd_compile)

    p_sim = sub.add_parser("simulate",
                           help="drive the state machine through events")
    p_sim.add_argument("policy")
    p_sim.add_argument("-e", "--event", action="append",
                       help="event name (repeatable, in order)")
    p_sim.set_defaults(func=cmd_simulate)

    p_graph = sub.add_parser("graph",
                             help="emit the state machine as Graphviz DOT")
    p_graph.add_argument("policy")
    p_graph.set_defaults(func=cmd_graph)

    p_query = sub.add_parser("query", help="evaluate one access")
    p_query.add_argument("policy")
    p_query.add_argument("--state", help="situation state "
                                         "(default: initial)")
    p_query.add_argument("--op", required=True,
                         choices=[op.value for op in RuleOp])
    p_query.add_argument("--path", required=True)
    p_query.add_argument("--subject")
    p_query.add_argument("--cmd", help="ioctl command name or number")
    p_query.set_defaults(func=cmd_query)

    p_trace = sub.add_parser(
        "trace", help="run events/accesses in a booted kernel and dump "
                      "the tracefs ring buffer")
    p_trace.add_argument("policy")
    p_trace.add_argument("-e", "--event", action="append",
                         help="event name (repeatable, in order)")
    p_trace.add_argument("--access", action="append",
                         help="op:path[:ioctl_cmd] (repeatable, in order)")
    p_trace.add_argument("--syscalls", action="store_true",
                         help="also record syscall exits with latency "
                              "(entry events are always traced)")
    _add_kernel_selector(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_audit = sub.add_parser(
        "audit", help="run events/accesses in a booted kernel and dump "
                      "the audit records")
    p_audit.add_argument("policy")
    p_audit.add_argument("-e", "--event", action="append",
                         help="event name (repeatable, in order)")
    p_audit.add_argument("--access", action="append",
                         help="op:path[:ioctl_cmd] (repeatable, in order)")
    _add_kernel_selector(p_audit)
    p_audit.set_defaults(func=cmd_audit)

    p_spans = sub.add_parser(
        "spans", help="run events/accesses with the causal span tracer on "
                      "and dump span trees + latency breakdown")
    p_spans.add_argument("policy")
    p_spans.add_argument("-e", "--event", action="append",
                         help="event name (repeatable, in order)")
    p_spans.add_argument("--access", action="append",
                         help="op:path[:ioctl_cmd] (repeatable, in order)")
    p_spans.add_argument("--chrome", action="store_true",
                         help="emit Chrome trace-event JSON instead")
    p_spans.add_argument("--folded", action="store_true",
                         help="emit folded flamegraph stacks instead")
    _add_kernel_selector(p_spans)
    p_spans.set_defaults(func=cmd_spans)

    p_avc = sub.add_parser(
        "avc", help="run events/accesses in a booted kernel and dump the "
                    "access-vector-cache counters")
    p_avc.add_argument("policy")
    p_avc.add_argument("-e", "--event", action="append",
                       help="event name (repeatable, in order)")
    p_avc.add_argument("--access", action="append",
                       help="op:path[:ioctl_cmd] (repeatable, in order)")
    p_avc.add_argument("--disable", action="store_true",
                       help="run with the cache off (baseline comparison)")
    p_avc.add_argument("--flush", action="store_true",
                       help="flush the cache after the workload, before "
                            "dumping stats")
    _add_kernel_selector(p_avc)
    p_avc.set_defaults(func=cmd_avc)

    p_dtable = sub.add_parser(
        "dtable", help="run events/accesses with the precompiled decision "
                       "table on and dump its counters")
    p_dtable.add_argument("policy")
    p_dtable.add_argument("-e", "--event", action="append",
                          help="event name (repeatable, in order)")
    p_dtable.add_argument("--access", action="append",
                          help="op:path[:ioctl_cmd] (repeatable, in order)")
    p_dtable.add_argument("--avc", action="store_true",
                          help="also dump the AVC counters (what the table "
                               "kept off the cache path)")
    _add_kernel_selector(p_dtable)
    p_dtable.set_defaults(func=cmd_dtable)

    p_chaos = sub.add_parser(
        "chaos", help="seeded fault-injection scenarios with fail-closed "
                      "invariant checks")
    p_chaos.add_argument("--seed", default="1",
                         help="seed or inclusive range 'A..B' "
                              "(default: 1)")
    p_chaos.add_argument("--ticks", type=int, default=200,
                         help="scenario length in ticks (default: 200)")
    p_chaos.add_argument("--mode", default="independent",
                         choices=["independent", "apparmor"],
                         help="enforcement backend (default: independent)")
    p_chaos.add_argument("--intensity", type=float, default=0.05,
                         help="max per-point fault probability "
                              "(default: 0.05)")
    p_chaos.add_argument("--json", action="store_true",
                         help="emit one JSON report per seed")
    p_chaos.add_argument("--dtable", action="store_true",
                         help="run with the precompiled decision table "
                              "enabled (exercises invariant I11)")
    p_chaos.set_defaults(func=cmd_chaos)

    p_fleet = sub.add_parser(
        "fleet", help="multi-vehicle fleet orchestration: status, staged "
                      "OTA rollout/rollback, V2X bus")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    pf_status = fleet_sub.add_parser(
        "status", help="run a seeded fleet and print the roll-up")
    _add_fleet_common(pf_status)
    pf_status.add_argument("--kernel", metavar="VEHICLE_ID",
                           help="only show this vehicle's row")
    pf_status.add_argument("--json", action="store_true",
                           help="emit the report as JSON")
    pf_status.add_argument("--format", choices=["text", "json"],
                           default=None,
                           help="json = wrap the report in the uniform "
                                "sack-bench/v1 envelope")
    pf_status.add_argument("--telemetry", action="store_true",
                           help="run with the streaming telemetry "
                                "pipeline enabled")
    pf_status.set_defaults(func=cmd_fleet_status)

    pf_top = fleet_sub.add_parser(
        "top", help="live fleet dashboard: throughput, per-state "
                    "counts, SLO/burn status, top denial series")
    _add_fleet_common(pf_top)
    pf_top.add_argument("--refresh", type=int, default=4,
                        help="epochs per dashboard refresh (default: 4)")
    pf_top.add_argument("--top", type=int, default=5,
                        help="top-N denial series to show (default: 5)")
    pf_top.add_argument("--once", action="store_true",
                        help="render only the final frame (CI-friendly)")
    pf_top.add_argument("--slo", action="append", metavar="SPEC",
                        help="objective like 'denial_rate<=200' "
                             "(repeatable; default: built-in set)")
    pf_top.add_argument("--short-window", type=int, default=3,
                        help="short burn window in epochs (default: 3)")
    pf_top.add_argument("--long-window", type=int, default=12,
                        help="long burn window in epochs (default: 12)")
    pf_top.set_defaults(func=cmd_fleet_top)

    pf_metrics = fleet_sub.add_parser(
        "metrics", help="run a telemetry-enabled fleet and dump the "
                        "whole-fleet OpenMetrics exposition")
    _add_fleet_common(pf_metrics)
    pf_metrics.add_argument("--slo", action="append", metavar="SPEC",
                            help="objective like 'denial_rate<=200' "
                                 "(repeatable)")
    pf_metrics.set_defaults(func=cmd_fleet_metrics)

    pf_rollout = fleet_sub.add_parser(
        "rollout", help="staged OTA policy rollout (canary -> waves -> "
                        "full) with health gating")
    _add_fleet_common(pf_rollout)
    pf_rollout.add_argument("--bundle-version", type=int, default=1,
                            help="version to stage (default: 1)")
    pf_rollout.add_argument("--fail-canary", action="store_true",
                            help="inject a canary apply failure and show "
                                 "the automatic fleet-wide rollback")
    pf_rollout.add_argument("--slo-breach", action="store_true",
                            help="arm an impossible SLO so a burn-rate "
                                 "alert aborts the canary (telemetry "
                                 "path demo)")
    pf_rollout.set_defaults(func=cmd_fleet_rollout)

    pf_rollback = fleet_sub.add_parser(
        "rollback", help="operator abort mid-rollout; fleet reverts to "
                         "the committed bundle")
    _add_fleet_common(pf_rollback)
    pf_rollback.add_argument("--bundle-version", type=int, default=1,
                             help="version to stage then abort "
                                  "(default: 1)")
    pf_rollback.set_defaults(func=cmd_fleet_rollback)

    pf_bus = fleet_sub.add_parser(
        "bus", help="crash one vehicle and tail the V2X bus")
    _add_fleet_common(pf_bus)
    pf_bus.add_argument("--lines", type=int, default=50,
                        help="tail length (default: 50)")
    pf_bus.set_defaults(func=cmd_fleet_bus)

    pf_ckpt = fleet_sub.add_parser(
        "checkpoint", help="run a fleet with periodic vehicle "
                           "checkpoints on and print the store")
    _add_fleet_common(pf_ckpt)
    pf_ckpt.add_argument("--interval", type=int, default=4,
                         help="epochs between checkpoints (default: 4)")
    pf_ckpt.set_defaults(func=cmd_fleet_checkpoint)

    pf_restore = fleet_sub.add_parser(
        "restore", help="crash one vehicle, recover it from checkpoint "
                        "+ journal replay, print the timeline")
    _add_fleet_common(pf_restore)
    pf_restore.add_argument("--vehicle", metavar="VEHICLE_ID",
                            help="vehicle to crash (default: first)")
    pf_restore.add_argument("--crash-epoch", type=int, default=3,
                            help="epoch the crash fires (default: 3)")
    pf_restore.add_argument("--interval", type=int, default=2,
                            help="checkpoint interval (default: 2)")
    pf_restore.add_argument("--max-restarts", type=int, default=3,
                            help="restarts before quarantine "
                                 "(default: 3)")
    pf_restore.add_argument("--double-run", action="store_true",
                            help="run twice and require identical "
                                 "fingerprints (CI determinism check)")
    pf_restore.set_defaults(func=cmd_fleet_restore)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(exc)
        return 2
    except ValueError as exc:
        print(f"error: {exc}")
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
