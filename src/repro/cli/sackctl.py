"""``sackctl`` — the SACK policy administration tool.

Subcommands::

    sackctl check <policy.sack>          validate; exit 1 on errors
    sackctl format <policy.sack>         print the canonical form
    sackctl compile <policy.sack>        show per-state compiled rulesets
    sackctl simulate <policy.sack> -e crash_detected -e emergency_cleared
                                         drive the SSM through events
    sackctl query <policy.sack> --state S --op write --path /dev/car/door
                                         [--subject comm] [--cmd NAME]
                                         one access decision
    sackctl trace <policy.sack> -e crash_detected --access read:/dev/car/gps
                                         boot a kernel, drive events and
                                         accesses, print the trace buffer
    sackctl audit <policy.sack> -e crash_detected --access ioctl:/dev/car/door:DOOR_UNLOCK
                                         same, but print the audit records
    sackctl chaos --seed 1..5 --ticks 200
                                         seeded fault-injection scenarios
                                         with fail-closed invariant checks;
                                         exit 1 on any violation
    sackctl spans <policy.sack> -e crash_detected --access read:/dev/car/gps
                                         drive events and accesses with the
                                         causal span tracer on; print the
                                         span trees and latency breakdown
                                         (--chrome / --folded for the
                                         export formats)

``trace`` and ``audit`` run against a real booted simulator kernel with
independent SACK enforcing, SACKfs mounted, and tracefs recording every
tracepoint; accesses are issued by an unprivileged task (uid 1000) so MAC
decisions actually bite.  Access syntax: ``op:path[:ioctl_cmd]`` with op
one of read/write/ioctl.

ioctl command names resolve against the vehicle device ABI
(``repro.vehicle.devices.IOCTL_SYMBOLS``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..sack import (SituationEvent, check_policy, compile_policy,
                    format_policy, has_errors, parse_policy)
from ..sack.policy.model import RuleOp
from ..vehicle.devices import IOCTL_SYMBOLS


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_policy(handle.read())


def cmd_check(args) -> int:
    policy = _load(args.policy)
    diagnostics = check_policy(policy)
    for diag in diagnostics:
        print(diag)
    if has_errors(diagnostics):
        print(f"{policy.name}: FAILED "
              f"({sum(d.severity.value == 'error' for d in diagnostics)} "
              f"error(s))")
        return 1
    print(f"{policy.name}: OK ({len(diagnostics)} warning(s))")
    return 0


def cmd_format(args) -> int:
    print(format_policy(_load(args.policy)), end="")
    return 0


def cmd_compile(args) -> int:
    policy = _load(args.policy)
    compiled = compile_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)
    for state in sorted(compiled.rulesets):
        ruleset = compiled.rulesets[state]
        marker = " (initial)" if state == policy.initial else ""
        print(f"state {state}{marker}: {ruleset.rule_count} rules")
        for table, label in ((ruleset.deny_by_op, "deny"),
                             (ruleset.allow_by_op, "allow")):
            for op in sorted(table, key=lambda o: o.value):
                for rule in table[op]:
                    print(f"  {label} {op.value} {rule.source.path_glob}"
                          + (f" subject={rule.source.subject}"
                             if rule.source.subject else "")
                          + (f" cmds={sorted(rule.cmds)}"
                             if rule.cmds else ""))
    return 0


def cmd_simulate(args) -> int:
    policy = _load(args.policy)
    compile_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)  # validate
    ssm = policy.build_ssm()
    print(f"initial: {ssm.current_name}")
    for name in args.event or []:
        transition = ssm.process_event(SituationEvent(name=name))
        if transition is None:
            print(f"  {name}: ignored (still {ssm.current_name})")
        else:
            print(f"  {name}: {transition.from_state} -> "
                  f"{transition.to_state}")
    stats = ssm.stats()
    print(f"final: {ssm.current_name} "
          f"({stats['transitions']} transitions, "
          f"{stats['events_ignored']} ignored)")
    return 0


def cmd_graph(args) -> int:
    policy = _load(args.policy)
    ssm = policy.build_ssm()
    print(ssm.to_dot(title=policy.name))
    return 0


def cmd_query(args) -> int:
    policy = _load(args.policy)
    compiled = compile_policy(policy, ioctl_symbols=IOCTL_SYMBOLS)
    state = args.state or policy.initial
    try:
        ruleset = compiled.ruleset_for(state)
    except KeyError as exc:
        print(exc)
        return 2
    op = RuleOp(args.op)
    cmd = None
    if args.cmd is not None:
        cmd = IOCTL_SYMBOLS.get(args.cmd)
        if cmd is None:
            if not args.cmd.isdigit():
                print(f"unknown ioctl command {args.cmd!r}")
                return 2
            cmd = int(args.cmd)
    allowed = ruleset.check(op, args.path, args.subject or "", cmd)
    print(f"state={state} op={op.value} path={args.path}"
          + (f" subject={args.subject}" if args.subject else "")
          + (f" cmd={args.cmd}" if args.cmd else "")
          + f" -> {'ALLOW' if allowed else 'DENY'}")
    return 0 if allowed else 1


def _boot_observed_world(policy_path: str):
    """Boot independent SACK + SACKfs + tracefs for the obs subcommands."""
    from ..kernel import user_credentials
    from ..lsm import boot_kernel
    from ..obs import mount_tracefs
    from ..sack import SackFs, SackLsm

    sack = SackLsm()
    kernel, _ = boot_kernel([sack])
    sackfs = SackFs(kernel, sack, authorized_event_uids={990},
                    ioctl_symbols=IOCTL_SYMBOLS)
    with open(policy_path, "r", encoding="utf-8") as handle:
        policy_text = handle.read()
    kernel.write_file(kernel.procs.init,
                      "/sys/kernel/security/SACK/policy",
                      policy_text.encode(), create=False)
    mount_tracefs(kernel)

    sds = kernel.sys_fork(kernel.procs.init)
    sds.comm = "sds"
    sds.cred = user_credentials(990)
    app = kernel.sys_fork(kernel.procs.init)
    app.comm = "app"
    app.cred = user_credentials(1000)
    return kernel, sack, sds, app


def _drive(kernel, sds, app, events, accesses) -> List[str]:
    """Feed events and accesses in order; returns outcome lines."""
    from ..kernel import KernelError, OpenFlags

    log: List[str] = []
    for name in events or []:
        kernel.clock.advance_ns(1_000_000)
        try:
            kernel.write_file(sds, "/sys/kernel/security/SACK/events",
                              f"{name}\n".encode(), create=False)
            log.append(f"event {name}: delivered")
        except KernelError as exc:
            log.append(f"event {name}: rejected ({exc})")
    for spec in accesses or []:
        parts = spec.split(":")
        if (len(parts) < 2 or parts[0] not in ("read", "write", "ioctl")
                or not parts[1].startswith("/")):
            raise ValueError(f"bad --access {spec!r}; "
                             f"use op:/abs/path[:ioctl_cmd]")
        op, path = parts[0], parts[1]
        if not kernel.vfs.exists(path):
            parent = path.rsplit("/", 1)[0]
            if parent:
                kernel.vfs.makedirs(parent)
            kernel.vfs.create_file(path, mode=0o666)
        kernel.clock.advance_ns(1_000_000)
        try:
            if op == "read":
                fd = kernel.sys_open(app, path, OpenFlags.O_RDONLY)
                kernel.sys_read(app, fd, 16)
            elif op == "write":
                fd = kernel.sys_open(app, path, OpenFlags.O_WRONLY)
                kernel.sys_write(app, fd, b"x")
            else:
                cmd_name = parts[2] if len(parts) > 2 else "0"
                cmd = IOCTL_SYMBOLS.get(cmd_name,
                                        int(cmd_name)
                                        if cmd_name.isdigit() else None)
                if cmd is None:
                    raise ValueError(f"unknown ioctl command {cmd_name!r}")
                fd = kernel.sys_open(app, path, OpenFlags.O_RDONLY)
                kernel.sys_ioctl(app, fd, cmd, 0)
            kernel.sys_close(app, fd)
            log.append(f"access {spec}: ALLOWED")
        except KernelError as exc:
            log.append(f"access {spec}: DENIED ({exc})")
    return log


def cmd_trace(args) -> int:
    kernel, sack, sds, app = _boot_observed_world(args.policy)
    kernel.obs.enable_all_recording()
    if args.syscalls:
        kernel.instrument_syscalls()
    for line in _drive(kernel, sds, app, args.event, args.access):
        print(line)
    print()
    # Dogfood the pseudo-file rather than reaching into the hub.
    print(kernel.read_file(kernel.procs.init,
                           "/sys/kernel/tracing/trace").decode(), end="")
    return 0


def cmd_audit(args) -> int:
    kernel, sack, sds, app = _boot_observed_world(args.policy)
    for line in _drive(kernel, sds, app, args.event, args.access):
        print(line)
    print()
    text = kernel.read_file(kernel.procs.init,
                            "/sys/kernel/security/SACK/audit").decode()
    print(text if text.strip() else "(no audit records)", end="" if
          text.strip() else "\n")
    return 0


def cmd_spans(args) -> int:
    kernel, sack, sds, app = _boot_observed_world(args.policy)
    # Dogfood the tracefs control file rather than reaching into the hub.
    kernel.write_file(kernel.procs.init,
                      "/sys/kernel/tracing/SACK/spans/enable", b"1",
                      create=False)
    log = _drive(kernel, sds, app, args.event, args.access)
    read = lambda p: kernel.read_file(kernel.procs.init, p).decode()
    if args.chrome:
        print(read("/sys/kernel/tracing/SACK/spans/chrome"), end="")
        return 0
    if args.folded:
        print(read("/sys/kernel/tracing/SACK/spans/folded"), end="")
        return 0
    for line in log:
        print(line)
    print()
    text = read("/sys/kernel/tracing/SACK/spans/trace")
    print(text if text.strip() else "(no spans recorded)",
          end="" if text.strip() else "\n")
    print()
    print(read("/sys/kernel/tracing/SACK/spans/breakdown"), end="")
    return 0


def cmd_avc(args) -> int:
    kernel, sack, sds, app = _boot_observed_world(args.policy)
    # Dogfood the tracefs control files rather than reaching into the
    # framework object.
    root = "/sys/kernel/tracing/SACK/avc"
    if args.disable:
        kernel.write_file(kernel.procs.init, f"{root}/enable", b"0",
                          create=False)
    for line in _drive(kernel, sds, app, args.event, args.access):
        print(line)
    if args.flush:
        kernel.write_file(kernel.procs.init, f"{root}/flush", b"1",
                          create=False)
    print()
    print(kernel.read_file(kernel.procs.init, f"{root}/stats").decode(),
          end="")
    return 0


def _parse_seeds(spec: str) -> List[int]:
    """``"7"`` -> [7]; ``"1..5"`` -> [1, 2, 3, 4, 5]."""
    if ".." in spec:
        lo, _, hi = spec.partition("..")
        first, last = int(lo), int(hi)
        if last < first:
            raise ValueError(f"bad seed range {spec!r}")
        return list(range(first, last + 1))
    return [int(spec)]


def cmd_chaos(args) -> int:
    import json as _json

    from ..faults import chaos

    seeds = _parse_seeds(args.seed)
    reports = chaos.run_soak(seeds, ticks=args.ticks, mode=args.mode,
                             intensity=args.intensity)
    if args.json:
        print(_json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            for line in report.summary_lines():
                print(line)
    # Status goes to stderr under --json so stdout stays parseable.
    out = sys.stderr if args.json else sys.stdout
    failed = [r for r in reports if not r.ok]
    if failed:
        print(f"chaos: {len(failed)}/{len(reports)} seed(s) violated "
              f"fail-closed invariants", file=out)
        return 1
    print(f"chaos: {len(reports)} seed(s), all fail-closed invariants held",
          file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sackctl",
        description="SACK policy administration tool")
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="validate a policy file")
    p_check.add_argument("policy")
    p_check.set_defaults(func=cmd_check)

    p_format = sub.add_parser("format", help="print canonical form")
    p_format.add_argument("policy")
    p_format.set_defaults(func=cmd_format)

    p_compile = sub.add_parser("compile",
                               help="show per-state compiled rulesets")
    p_compile.add_argument("policy")
    p_compile.set_defaults(func=cmd_compile)

    p_sim = sub.add_parser("simulate",
                           help="drive the state machine through events")
    p_sim.add_argument("policy")
    p_sim.add_argument("-e", "--event", action="append",
                       help="event name (repeatable, in order)")
    p_sim.set_defaults(func=cmd_simulate)

    p_graph = sub.add_parser("graph",
                             help="emit the state machine as Graphviz DOT")
    p_graph.add_argument("policy")
    p_graph.set_defaults(func=cmd_graph)

    p_query = sub.add_parser("query", help="evaluate one access")
    p_query.add_argument("policy")
    p_query.add_argument("--state", help="situation state "
                                         "(default: initial)")
    p_query.add_argument("--op", required=True,
                         choices=[op.value for op in RuleOp])
    p_query.add_argument("--path", required=True)
    p_query.add_argument("--subject")
    p_query.add_argument("--cmd", help="ioctl command name or number")
    p_query.set_defaults(func=cmd_query)

    p_trace = sub.add_parser(
        "trace", help="run events/accesses in a booted kernel and dump "
                      "the tracefs ring buffer")
    p_trace.add_argument("policy")
    p_trace.add_argument("-e", "--event", action="append",
                         help="event name (repeatable, in order)")
    p_trace.add_argument("--access", action="append",
                         help="op:path[:ioctl_cmd] (repeatable, in order)")
    p_trace.add_argument("--syscalls", action="store_true",
                         help="also record syscall exits with latency "
                              "(entry events are always traced)")
    p_trace.set_defaults(func=cmd_trace)

    p_audit = sub.add_parser(
        "audit", help="run events/accesses in a booted kernel and dump "
                      "the audit records")
    p_audit.add_argument("policy")
    p_audit.add_argument("-e", "--event", action="append",
                         help="event name (repeatable, in order)")
    p_audit.add_argument("--access", action="append",
                         help="op:path[:ioctl_cmd] (repeatable, in order)")
    p_audit.set_defaults(func=cmd_audit)

    p_spans = sub.add_parser(
        "spans", help="run events/accesses with the causal span tracer on "
                      "and dump span trees + latency breakdown")
    p_spans.add_argument("policy")
    p_spans.add_argument("-e", "--event", action="append",
                         help="event name (repeatable, in order)")
    p_spans.add_argument("--access", action="append",
                         help="op:path[:ioctl_cmd] (repeatable, in order)")
    p_spans.add_argument("--chrome", action="store_true",
                         help="emit Chrome trace-event JSON instead")
    p_spans.add_argument("--folded", action="store_true",
                         help="emit folded flamegraph stacks instead")
    p_spans.set_defaults(func=cmd_spans)

    p_avc = sub.add_parser(
        "avc", help="run events/accesses in a booted kernel and dump the "
                    "access-vector-cache counters")
    p_avc.add_argument("policy")
    p_avc.add_argument("-e", "--event", action="append",
                       help="event name (repeatable, in order)")
    p_avc.add_argument("--access", action="append",
                       help="op:path[:ioctl_cmd] (repeatable, in order)")
    p_avc.add_argument("--disable", action="store_true",
                       help="run with the cache off (baseline comparison)")
    p_avc.add_argument("--flush", action="store_true",
                       help="flush the cache after the workload, before "
                            "dumping stats")
    p_avc.set_defaults(func=cmd_avc)

    p_chaos = sub.add_parser(
        "chaos", help="seeded fault-injection scenarios with fail-closed "
                      "invariant checks")
    p_chaos.add_argument("--seed", default="1",
                         help="seed or inclusive range 'A..B' "
                              "(default: 1)")
    p_chaos.add_argument("--ticks", type=int, default=200,
                         help="scenario length in ticks (default: 200)")
    p_chaos.add_argument("--mode", default="independent",
                         choices=["independent", "apparmor"],
                         help="enforcement backend (default: independent)")
    p_chaos.add_argument("--intensity", type=float, default=0.05,
                         help="max per-point fault probability "
                              "(default: 0.05)")
    p_chaos.add_argument("--json", action="store_true",
                         help="emit one JSON report per seed")
    p_chaos.set_defaults(func=cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(exc)
        return 2
    except ValueError as exc:
        print(f"error: {exc}")
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
