"""Command-line tools: ``sackctl`` and ``sack-bench``.

Submodules are imported lazily by the console-script entry points so
``python -m repro.cli.sackctl`` works without double-import warnings.
"""

__all__ = ["benchcli", "sackctl"]
