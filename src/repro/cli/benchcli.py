"""``sack-bench`` — run the paper's experiments from the command line.

Subcommands mirror the benchmark files::

    sack-bench table2   [--scale 0.5] [--reps 5]
    sack-bench table3   [--scale 0.25] [--reps 5]
    sack-bench fig3a    [--scale 0.4]
    sack-bench fig3b
    sack-bench latency
    sack-bench transport
    sack-bench transition
    sack-bench abac
    sack-bench census
    sack-bench hooks    [--json out.json]

``--json PATH`` (where supported) additionally writes the raw result
dictionary to *PATH* for downstream tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..bench import (CONFIG_APPARMOR, FILE_OP_BENCHES, LATENCY_EVENTS,
                     TABLE2_CONFIGS, mean_abs_overhead_pct, pct_delta,
                     render_comparison_table, render_sweep_table,
                     run_baseline_comparison, run_event_latency,
                     run_frequency_sweep, run_hook_census,
                     run_hook_latency_breakdown, run_lmbench,
                     run_rule_sweep, run_state_sweep,
                     run_transition_cost_ablation, run_transport_ablation)


def _maybe_dump_json(args, data) -> None:
    path = getattr(args, "json", None)
    if path:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2)
        print(f"wrote {path}")


def cmd_table2(args) -> int:
    results = run_lmbench(scale=args.scale, repetitions=args.reps)
    print(render_comparison_table(results, CONFIG_APPARMOR,
                                  "Table II: LMBench results of SACK"))
    for config in TABLE2_CONFIGS[1:]:
        pct = mean_abs_overhead_pct(results, CONFIG_APPARMOR, config)
        print(f"{config}: mean |overhead| {pct:.2f}%")
    return 0


def cmd_table3(args) -> int:
    benches = ["syscall", "io", "file_create_0k", "file_delete_0k",
               "file_create_10k", "file_delete_10k", "stat", "open_close"]
    sweep = run_rule_sweep(benches=benches, repetitions=args.reps,
                           scale=args.scale)
    print(render_sweep_table(sweep, 0,
                             "Table III: LMBench vs SACK rule count"))
    return 0


def cmd_fig3a(args) -> int:
    sweep = run_state_sweep(scale=args.scale, repetitions=args.reps)
    base = sweep["baseline"]
    print("Fig. 3(a): file-op overhead vs number of situation states")
    for key, results in sweep.items():
        if key == "baseline":
            continue
        deltas = [pct_delta(base[b].value, results[b].value)
                  for b in FILE_OP_BENCHES]
        print(f"  {key:>4} states: {sum(deltas) / len(deltas):+.2f}%")
    return 0


def cmd_fig3b(args) -> int:
    results = run_frequency_sweep(accesses=max(2000, int(20000 * args.scale)))
    print("Fig. 3(b): overhead vs transition period")
    for key, row in results.items():
        label = key if key == "baseline" else f"{key} ms"
        print(f"  {label:>10}: {row['ns_per_access']:.0f} ns/access, "
              f"{row['transitions']} transitions, "
              f"{row['overhead_pct']:+.2f}%")
    return 0


def cmd_latency(args) -> int:
    out = run_event_latency(samples_per_event=max(20, int(300 * args.scale)))
    print("Situation awareness latency (SACKfs)")
    for name in LATENCY_EVENTS:
        m = out[name]
        print(f"  {name:>20}: mean {m['mean_us']:.2f} us, "
              f"p99 {m['p99_us']:.2f} us, "
              f"accuracy {m['accuracy_pct']:.0f}%")
    return 0


def cmd_transport(args) -> int:
    out = run_transport_ablation(samples=max(50, int(1000 * args.scale)))
    print("Event transport ablation (us/event)")
    for channel, value in out.items():
        print(f"  {channel.removesuffix('_us'):>16}: {value:.2f}")
    return 0


def cmd_transition(args) -> int:
    out = run_transition_cost_ablation(transitions=max(20, int(200 * args.scale)))
    print("Transition cost (us): independent vs bridge")
    for count, row in out.items():
        print(f"  {count:>5} rules: {row['independent_us']:.1f} vs "
              f"{row['bridge_us']:.1f} ({row['ratio']:.0f}x)")
    return 0


def cmd_abac(args) -> int:
    out = run_baseline_comparison(accesses=max(500, int(10000 * args.scale)))
    print("SACK vs ABAC baseline (ns/governed access)")
    for count, row in out.items():
        print(f"  {count:>5} rules: abac {row['abac_ns']:.0f}, "
              f"sack {row['sack_ns']:.0f} ({row['ratio']:.1f}x)")
    return 0


def cmd_census(args) -> int:
    census = run_hook_census(scale=args.scale)
    print("Hook census (exact counts)")
    for config, row in census.items():
        print(f"  {config:>18}: {row['syscalls']} syscalls, "
              f"{row['hook_calls']} hook calls, "
              f"{row['sack_hook_calls']} from SACK")
    _maybe_dump_json(args, census)
    return 0


def cmd_hooks(args) -> int:
    breakdown = run_hook_latency_breakdown(scale=args.scale)
    print("Per-hook latency under the LMBench workload "
          "(merged across modules)")
    for config, hooks in breakdown.items():
        print(f"  {config}:")
        rows = sorted(hooks.items(),
                      key=lambda kv: kv[1]["count"], reverse=True)
        for hook, row in rows:
            print(f"    {hook:<22} n={int(row['count']):>8} "
                  f"mean {row['mean_ns']:>8.0f} ns  "
                  f"p50 {row['p50_ns']:>8.0f} ns  "
                  f"p99 {row['p99_ns']:>8.0f} ns")
    _maybe_dump_json(args, breakdown)
    return 0


_COMMANDS = {
    "table2": cmd_table2,
    "table3": cmd_table3,
    "fig3a": cmd_fig3a,
    "fig3b": cmd_fig3b,
    "latency": cmd_latency,
    "transport": cmd_transport,
    "transition": cmd_transition,
    "abac": cmd_abac,
    "census": cmd_census,
    "hooks": cmd_hooks,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sack-bench",
        description="Regenerate the SACK paper's tables and figures")
    parser.add_argument("experiment", choices=sorted(_COMMANDS))
    parser.add_argument("--scale", type=float, default=0.25,
                        help="iteration multiplier (1.0 = full)")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions for noise reduction")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the raw result dict to PATH "
                             "(census and hooks)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.experiment](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
