"""``sack-bench`` — run the paper's experiments and the scenario suite.

Experiment subcommands mirror the benchmark files::

    sack-bench table2   [--scale 0.5] [--reps 5]
    sack-bench table3   [--scale 0.25] [--reps 5]
    sack-bench fig3a    [--scale 0.4]
    sack-bench fig3b
    sack-bench latency
    sack-bench transport
    sack-bench transition
    sack-bench abac
    sack-bench census
    sack-bench hooks

The declarative batch runner lives under ``suite``::

    sack-bench suite run config.yaml [--out DIR] [--dry-run]
    sack-bench suite check [--run DIR | --out DIR] [--trajectory DIR]
    sack-bench suite report [--trajectory DIR] [--run DIR] [--out FILE]
    sack-bench suite ingest BENCH.json --set avc [--trajectory DIR]

Every subcommand accepts ``--json PATH`` (``-`` for stdout) and emits
the same ``sack-bench/v1`` envelope — schema version, kind, timestamp,
git SHA, seed, payload — so any output file feeds the trajectory store
without per-subcommand special-casing.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from ..bench import (CONFIG_APPARMOR, FILE_OP_BENCHES, LATENCY_EVENTS,
                     TABLE2_CONFIGS, mean_abs_overhead_pct, pct_delta,
                     render_comparison_table, render_sweep_table,
                     run_baseline_comparison, run_event_latency,
                     run_frequency_sweep, run_hook_census,
                     run_hook_latency_breakdown, run_lmbench,
                     run_rule_sweep, run_state_sweep,
                     run_transition_cost_ablation, run_transport_ablation)
from ..bench.envelope import make_envelope

#: Default location of the committed perf trajectory.
DEFAULT_TRAJECTORY_DIR = "benchmarks/trajectory"


def _emit(args, kind: str, data, seed: Optional[int] = None) -> None:
    """Write the uniform JSON envelope when ``--json`` was given."""
    path = getattr(args, "json", None)
    if not path:
        return
    doc = make_envelope(kind, data, seed=seed)
    if path == "-":
        json.dump(doc, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
    print(f"wrote {path}")


def _results_dict(results) -> Dict[str, Dict[str, object]]:
    """``{config: {bench: {value, unit, ...}}}`` from BenchResult maps."""
    import dataclasses
    return {str(key): {name: dataclasses.asdict(res)
                       for name, res in row.items()}
            for key, row in results.items()}


def cmd_table2(args) -> int:
    results = run_lmbench(scale=args.scale, repetitions=args.reps)
    print(render_comparison_table(results, CONFIG_APPARMOR,
                                  "Table II: LMBench results of SACK"))
    overheads = {}
    for config in TABLE2_CONFIGS[1:]:
        pct = mean_abs_overhead_pct(results, CONFIG_APPARMOR, config)
        overheads[config] = pct
        print(f"{config}: mean |overhead| {pct:.2f}%")
    _emit(args, "table2", {"results": _results_dict(results),
                           "mean_abs_overhead_pct": overheads})
    return 0


def cmd_table3(args) -> int:
    benches = ["syscall", "io", "file_create_0k", "file_delete_0k",
               "file_create_10k", "file_delete_10k", "stat", "open_close"]
    sweep = run_rule_sweep(benches=benches, repetitions=args.reps,
                           scale=args.scale)
    print(render_sweep_table(sweep, 0,
                             "Table III: LMBench vs SACK rule count"))
    _emit(args, "table3", {"results": _results_dict(sweep)})
    return 0


def cmd_fig3a(args) -> int:
    sweep = run_state_sweep(scale=args.scale, repetitions=args.reps)
    base = sweep["baseline"]
    print("Fig. 3(a): file-op overhead vs number of situation states")
    deltas_by_count = {}
    for key, results in sweep.items():
        if key == "baseline":
            continue
        deltas = [pct_delta(base[b].value, results[b].value)
                  for b in FILE_OP_BENCHES]
        deltas_by_count[str(key)] = sum(deltas) / len(deltas)
        print(f"  {key:>4} states: {deltas_by_count[str(key)]:+.2f}%")
    _emit(args, "fig3a", {"results": _results_dict(sweep),
                          "mean_overhead_pct": deltas_by_count})
    return 0


def cmd_fig3b(args) -> int:
    results = run_frequency_sweep(accesses=max(2000, int(20000 * args.scale)))
    print("Fig. 3(b): overhead vs transition period")
    for key, row in results.items():
        label = key if key == "baseline" else f"{key} ms"
        print(f"  {label:>10}: {row['ns_per_access']:.0f} ns/access, "
              f"{row['transitions']} transitions, "
              f"{row['overhead_pct']:+.2f}%")
    _emit(args, "fig3b",
          {"results": {str(k): v for k, v in results.items()}})
    return 0


def cmd_latency(args) -> int:
    out = run_event_latency(samples_per_event=max(20, int(300 * args.scale)))
    print("Situation awareness latency (SACKfs)")
    for name in LATENCY_EVENTS:
        m = out[name]
        print(f"  {name:>20}: mean {m['mean_us']:.2f} us, "
              f"p99 {m['p99_us']:.2f} us, "
              f"accuracy {m['accuracy_pct']:.0f}%")
    _emit(args, "latency", {"events": out})
    return 0


def cmd_transport(args) -> int:
    out = run_transport_ablation(samples=max(50, int(1000 * args.scale)))
    print("Event transport ablation (us/event)")
    for channel, value in out.items():
        print(f"  {channel.removesuffix('_us'):>16}: {value:.2f}")
    _emit(args, "transport", {"channels": out})
    return 0


def cmd_transition(args) -> int:
    out = run_transition_cost_ablation(transitions=max(20, int(200 * args.scale)))
    print("Transition cost (us): independent vs bridge")
    for count, row in out.items():
        print(f"  {count:>5} rules: {row['independent_us']:.1f} vs "
              f"{row['bridge_us']:.1f} ({row['ratio']:.0f}x)")
    _emit(args, "transition",
          {"rule_counts": {str(k): v for k, v in out.items()}})
    return 0


def cmd_abac(args) -> int:
    out = run_baseline_comparison(accesses=max(500, int(10000 * args.scale)))
    print("SACK vs ABAC baseline (ns/governed access)")
    for count, row in out.items():
        print(f"  {count:>5} rules: abac {row['abac_ns']:.0f}, "
              f"sack {row['sack_ns']:.0f} ({row['ratio']:.1f}x)")
    _emit(args, "abac",
          {"rule_counts": {str(k): v for k, v in out.items()}})
    return 0


def cmd_census(args) -> int:
    census = run_hook_census(scale=args.scale)
    print("Hook census (exact counts)")
    for config, row in census.items():
        print(f"  {config:>18}: {row['syscalls']} syscalls, "
              f"{row['hook_calls']} hook calls, "
              f"{row['sack_hook_calls']} from SACK")
    _emit(args, "census", {"configs": census})
    return 0


def cmd_hooks(args) -> int:
    breakdown = run_hook_latency_breakdown(scale=args.scale)
    print("Per-hook latency under the LMBench workload "
          "(merged across modules)")
    for config, hooks in breakdown.items():
        print(f"  {config}:")
        rows = sorted(hooks.items(),
                      key=lambda kv: kv[1]["count"], reverse=True)
        for hook, row in rows:
            print(f"    {hook:<22} n={int(row['count']):>8} "
                  f"mean {row['mean_ns']:>8.0f} ns  "
                  f"p50 {row['p50_ns']:>8.0f} ns  "
                  f"p99 {row['p99_ns']:>8.0f} ns")
    _emit(args, "hooks", {"configs": breakdown})
    return 0


# -- suite subcommands ---------------------------------------------------------

def cmd_suite_run(args) -> int:
    from ..bench.suite import load_suite_config, run_suite
    config = load_suite_config(args.config)
    run = run_suite(config, out_root=args.out, dry_run=args.dry_run,
                    show=lambda line: print(line))
    if args.dry_run:
        print(f"suite {config.name}: {len(run.cells)} cell(s) "
              f"(config hash {config.config_hash()}) — dry run, "
              f"nothing executed")
        for cell in run.cells:
            rendered = ", ".join(f"{k}={v}" for k, v in cell.params)
            print(f"  {cell.cell_id}: {cell.workload}({rendered})")
        _emit(args, "suite-dry-run", {
            "suite": config.name,
            "config_hash": config.config_hash(),
            "cells": [{"cell": c.cell_id, "workload": c.workload,
                       "params": c.param_dict} for c in run.cells],
        })
        return 0
    print(f"suite {config.name}: {len(run.results)} cell(s) -> "
          f"{run.run_dir}")
    _emit(args, "suite-run", {
        "suite": config.name,
        "config_hash": config.config_hash(),
        "run_dir": run.run_dir,
        "cells": run.summary_cells(),
    })
    return 0


def _resolve_run_dir(args) -> str:
    from ..bench.suite import latest_run_dir
    if args.run:
        return args.run
    return latest_run_dir(args.out)


def cmd_suite_check(args) -> int:
    from ..bench.suite import append_run_to_trajectory, check_run
    run_dir = _resolve_run_dir(args)
    regressions, checked = check_run(run_dir, args.trajectory)
    print(f"checked {run_dir} against {args.trajectory}: "
          f"{len(checked)} gated metric(s) with committed baselines")
    for name in checked:
        print(f"  gate {name}")
    for regression in regressions:
        print(f"  REGRESSION {regression}")
    _emit(args, "suite-check", {
        "run_dir": run_dir,
        "trajectory_dir": args.trajectory,
        "checked": checked,
        "regressions": [vars(r) for r in regressions],
        "ok": not regressions,
    })
    if regressions:
        print(f"{len(regressions)} regression(s) beyond tolerance")
        return 1
    if args.update:
        for path in append_run_to_trajectory(run_dir, args.trajectory):
            print(f"appended record to {path}")
    print("no regressions beyond tolerance")
    return 0


def cmd_suite_report(args) -> int:
    from ..bench.pareto import render_report
    from ..bench.suite import load_run_summary
    from ..bench.trajectory import load_all
    trajectories = load_all(args.trajectory)
    run_summary = None
    if args.run:
        run_summary = load_run_summary(args.run)["data"]
    text = render_report(trajectories, run_summary)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    _emit(args, "suite-report", {
        "trajectory_dir": args.trajectory,
        "metric_sets": [t.metric_set for t in trajectories],
        "report_path": args.out,
    })
    return 0


def cmd_suite_ingest(args) -> int:
    from ..bench.trajectory import ingest_pytest_benchmark
    trajectory = ingest_pytest_benchmark(
        args.trajectory, args.set, args.bench_json, seed=args.seed)
    record = trajectory.records[-1]
    print(f"appended {len(record['metrics'])} metric(s) to "
          f"BENCH_{args.set}.json ({len(trajectory.records)} record(s) "
          f"total)")
    _emit(args, "suite-ingest", {
        "metric_set": args.set,
        "metrics": record["metrics"],
        "records": len(trajectory.records),
    }, seed=args.seed)
    return 0


_EXPERIMENTS = {
    "table2": cmd_table2,
    "table3": cmd_table3,
    "fig3a": cmd_fig3a,
    "fig3b": cmd_fig3b,
    "latency": cmd_latency,
    "transport": cmd_transport,
    "transition": cmd_transition,
    "abac": cmd_abac,
    "census": cmd_census,
    "hooks": cmd_hooks,
}


def _add_json_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the sack-bench/v1 envelope to PATH "
                             "('-' for stdout)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sack-bench",
        description="Regenerate the SACK paper's tables and figures, "
                    "and run the declarative benchmark suite")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, handler in sorted(_EXPERIMENTS.items()):
        p = sub.add_parser(name, help=f"run the {name} experiment")
        p.add_argument("--scale", type=float, default=0.25,
                       help="iteration multiplier (1.0 = full)")
        p.add_argument("--reps", type=int, default=3,
                       help="repetitions for noise reduction")
        _add_json_arg(p)
        p.set_defaults(handler=handler)

    suite = sub.add_parser("suite",
                           help="declarative scenario suite: "
                                "run / check / report / ingest")
    suite_sub = suite.add_subparsers(dest="suite_command", required=True)

    p = suite_sub.add_parser("run", help="execute a YAML suite config")
    p.add_argument("config", help="suite YAML file")
    p.add_argument("--out", default=None,
                   help="output root (default: the config's 'out')")
    p.add_argument("--dry-run", action="store_true",
                   help="validate and list the sweep matrix, "
                        "execute nothing")
    _add_json_arg(p)
    p.set_defaults(handler=cmd_suite_run)

    p = suite_sub.add_parser(
        "check", help="gate a run against the committed trajectory")
    p.add_argument("--run", default=None,
                   help="run directory (default: newest under --out)")
    p.add_argument("--out", default="bench-runs",
                   help="output root to search for the newest run")
    p.add_argument("--trajectory", default=DEFAULT_TRAJECTORY_DIR,
                   help="trajectory directory with BENCH_*.json files")
    p.add_argument("--update", action="store_true",
                   help="on success, append the run's metrics to the "
                        "trajectory files")
    _add_json_arg(p)
    p.set_defaults(handler=cmd_suite_check)

    p = suite_sub.add_parser(
        "report", help="render trend tables and the Pareto frontier")
    p.add_argument("--trajectory", default=DEFAULT_TRAJECTORY_DIR)
    p.add_argument("--run", default=None,
                   help="suite run directory for the Pareto section")
    p.add_argument("--out", default=None,
                   help="markdown output path (default: stdout)")
    _add_json_arg(p)
    p.set_defaults(handler=cmd_suite_report)

    p = suite_sub.add_parser(
        "ingest", help="append a pytest-benchmark JSON to a trajectory")
    p.add_argument("bench_json", help="--benchmark-json output file")
    p.add_argument("--set", required=True,
                   help="metric set name (avc, obs, fleet, ...)")
    p.add_argument("--trajectory", default=DEFAULT_TRAJECTORY_DIR)
    p.add_argument("--seed", type=int, default=None)
    _add_json_arg(p)
    p.set_defaults(handler=cmd_suite_ingest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
