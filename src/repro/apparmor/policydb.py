"""The live AppArmor policy store.

Profiles are loaded at boot but — crucially for SACK-enhanced AppArmor —
can be *replaced at runtime*, the equivalent of ``apparmor_parser -r``.
Every mutation bumps a revision counter; tasks hold profile *names*, so a
replaced profile takes effect for running processes immediately, exactly
the behaviour the SACK bridge needs at situation transitions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .globs import glob_match, literal_prefix_len
from .parser import parse_profiles
from .profile import Profile


class PolicyDb:
    """Name-indexed profile store with attachment resolution."""

    def __init__(self):
        self._profiles: Dict[str, Profile] = {}
        self.revision = 0
        self.replace_count = 0
        # Attachment lookups are hot (every exec); AppArmor compiles them
        # into a DFA at load time, we memoise per policy revision instead.
        self._attach_cache: Dict[str, Optional[str]] = {}
        self._attach_cache_revision = -1
        self._subscribers: List = []

    def subscribe(self, callback) -> None:
        """Call *callback* () after every revision bump — the stack AVC's
        invalidation feed (live tasks see replaced profiles immediately,
        so cached decisions must die with the old revision)."""
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def _notify(self) -> None:
        for callback in list(self._subscribers):
            callback()

    # -- loading -------------------------------------------------------------
    def load_profile(self, profile: Profile) -> None:
        """Add or replace one profile."""
        if profile.name in self._profiles:
            self.replace_count += 1
        self._profiles[profile.name] = profile
        self.revision += 1
        self._notify()

    def load_text(self, text: str) -> List[Profile]:
        """Parse and load profile text; returns the loaded profiles."""
        profiles = parse_profiles(text)
        for profile in profiles:
            self.load_profile(profile)
        return profiles

    def replace_profile(self, profile: Profile) -> None:
        """Replace an existing profile (it must already be loaded)."""
        if profile.name not in self._profiles:
            raise KeyError(f"no profile named {profile.name!r} to replace")
        self.load_profile(profile)

    def remove_profile(self, name: str) -> None:
        if name in self._profiles:
            del self._profiles[name]
            self.revision += 1
            self._notify()

    # -- queries ---------------------------------------------------------------
    def get(self, name: str) -> Optional[Profile]:
        return self._profiles.get(name)

    def profile_names(self) -> List[str]:
        return sorted(self._profiles)

    def __len__(self) -> int:
        return len(self._profiles)

    def attach_for_exe(self, exe_path: str) -> Optional[Profile]:
        """Find the profile whose attachment matches *exe_path*.

        When several attachments match, the most specific (longest literal
        prefix, then longest glob) wins, as in AppArmor.
        """
        if self._attach_cache_revision != self.revision:
            self._attach_cache.clear()
            self._attach_cache_revision = self.revision
        if exe_path in self._attach_cache:
            name = self._attach_cache[exe_path]
            return self._profiles.get(name) if name is not None else None
        profile = self._attach_for_exe_slow(exe_path)
        self._attach_cache[exe_path] = profile.name if profile else None
        return profile

    def _attach_for_exe_slow(self, exe_path: str) -> Optional[Profile]:
        best: Optional[Profile] = None
        best_key = (-1, -1)
        for profile in self._profiles.values():
            att = profile.attachment
            if att is None or not glob_match(att, exe_path):
                continue
            key = (literal_prefix_len(att), len(att))
            if key > best_key:
                best, best_key = profile, key
        return best

    def total_rules(self) -> int:
        return sum(p.rule_count() for p in self._profiles.values())
